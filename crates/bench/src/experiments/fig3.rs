//! Figure 3 — breakdown of execution time by operation type.
//!
//! The paper's heatmap: one row per workload, columns grouped into the
//! seven op classes (A Matrix .. G Data Movement), only ops above 1%
//! shown.

use std::fmt::Write as _;

use fathom_dataflow::OpClass;
use fathom_profile::report;

use crate::experiments::profiles::all_training_profiles;
use crate::{write_artifact, Effort};

/// Regenerates Figure 3 over all eight training profiles.
pub fn run(effort: &Effort) -> String {
    let profiles = all_training_profiles(effort);

    let mut out = String::new();
    let _ = writeln!(out, "FIGURE 3: Execution time by operation type (training, CPU)\n");
    out.push_str(&report::render_heatmap(&profiles, 0.01));

    // Per-class percentage table (the quantitative form of the heatmap).
    let _ = writeln!(out, "\nClass shares (%):");
    let _ = write!(out, "{:<9}", "workload");
    for c in OpClass::ALL {
        let _ = write!(out, " {:>5}", format!("{}", c.letter()));
    }
    out.push('\n');
    let mut csv_rows = Vec::new();
    for p in &profiles {
        let _ = write!(out, "{:<9}", p.workload);
        let fractions = p.class_fractions();
        for (_, f) in fractions {
            let _ = write!(out, " {:>5.1}", f * 100.0);
        }
        out.push('\n');
        csv_rows.push((p.workload.clone(), fractions.iter().map(|(_, f)| *f).collect()));
    }
    let _ = writeln!(
        out,
        "\nLegend: A Matrix Ops, B Convolution, C Elementwise, D Reduction/Expansion,\n\
         E Random Sampling, F Optimization, G Data Movement"
    );
    let _ = writeln!(
        out,
        "\nPaper's claims to reproduce: conv nets dominated by B; fully-connected\n\
         nets by A; speech almost exclusively A (+ CTC in D); seq2seq/memnet show\n\
         heavy C and G from LSTM gates and memory addressing."
    );

    write_artifact(
        "fig3_breakdown.csv",
        &report::to_csv(&["workload", "A", "B", "C", "D", "E", "F", "G"], &csv_rows),
    );
    write_artifact("fig3_breakdown.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_covers_all_workloads() {
        let out = run(&Effort::quick());
        for name in ["seq2seq", "memnet", "speech", "autoenc", "residual", "vgg", "alexnet", "deepq"] {
            assert!(out.contains(name));
        }
        assert!(out.contains("Class shares"));
    }
}
