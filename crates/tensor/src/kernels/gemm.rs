//! Packed, register-tiled GEMM engine (op class A in the paper's taxonomy).
//!
//! This is the BLIS-style counterpart to the row-parallel kernel in
//! [`crate::kernels::matmul`]: both operands are first *packed* into
//! contiguous panels, then an MR×NR register-tiled microkernel walks the
//! panels with unit stride. Packing pays one pass over each operand and
//! buys three things:
//!
//! 1. Every microkernel read is sequential, so the `transpose_a` path —
//!    a strided column walk in the row kernel — costs the same as the
//!    plain layout.
//! 2. The accumulator tile is a local `[[f32; NR]; MR]` array with
//!    independent lanes, which the compiler can keep in vector registers
//!    and auto-vectorize *without* reassociating any floating-point sum.
//! 3. Work splits over a 2D grid of MC×NC output tiles rather than rows
//!    of C, so small-m matrices (one row per request in serving,
//!    per-step seq2seq/memnet matrices) still fan out across workers.
//!
//! # Determinism
//!
//! Parallel output is bitwise identical to serial. Each C element is
//! owned by exactly one output tile (tiles partition the M×N plane), and
//! its value is produced by a fixed-order sum: K blocks are walked in
//! ascending order, each block's partial sum accumulates sequentially
//! over `kk` into a fresh microkernel accumulator, and the block results
//! are added into a tile-resident accumulator left to right before the
//! tile is stored once. None of that order depends on worker count, tile
//! ownership, or whether the element sits in a full or edge tile — edge
//! tiles compute the same lanes against zero padding.
//!
//! # Epilogue fusion
//!
//! [`gemm_into_fused`] threads an [`Epilogue`] program into the
//! writeback: because the tile accumulator holds each element's final
//! K-reduced value before any store, bias adds / activations / residual
//! adds apply to registers and C is written exactly once, already
//! post-processed. The epilogue runs per element after the fixed-order
//! reduction completes, so it changes no sum order and the bitwise
//! contract above carries over unchanged (see
//! [`crate::kernels::epilogue`] for the formula-level contract).
//!
//! Packing buffers come from the thread's installed [`crate::BufferPool`]
//! (see [`crate::recycle::take_buffer`]), so steady-state training does
//! no kernel-scratch allocation.

use crate::kernels::epilogue::Epilogue;
use crate::pool::ExecPool;
use crate::recycle;
use crate::tensor::Tensor;

/// Microkernel tile rows: one accumulator row per packed-A lane.
pub const MR: usize = 8;
/// Microkernel tile columns: one SIMD-friendly strip of packed B.
pub const NR: usize = 16;
/// K-dimension block: a KC-deep slice of packed A and B panels stays
/// resident in L1/L2 while a tile's partial products accumulate.
const KC: usize = 512;
/// Rows of C per parallel task (must be a multiple of `MR`).
const MC: usize = 64;
/// Columns of C per parallel task (must be a multiple of `NR`).
const NC: usize = 64;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");

/// Raw output pointer shared across tile tasks. Safe because the tile
/// grid partitions C: no two tasks touch the same element.
struct SharedOut(*mut f32);
unsafe impl Sync for SharedOut {}

impl SharedOut {
    /// Accessor rather than field reads inside closures: 2021-edition
    /// closures capture individual fields, and a captured bare `*mut`
    /// would lose the wrapper's `Sync`.
    fn ptr(&self) -> *mut f32 {
        self.0
    }
}

/// Whether `matmul` should route a `[m,k]x[k,n]` product through the
/// packed engine rather than the row-parallel kernel.
///
/// Deliberately independent of `m`: serving's batch-independence
/// contract compares batch-1 against batch-B outputs bitwise, and `m` is
/// the batch-scaled dimension. Keying the choice on `m` would make the
/// two runs take different kernels. Small `k*n` products do not amortize
/// the packing pass, and `n < NR` leaves most microkernel lanes padding.
pub fn use_packed(k: usize, n: usize) -> bool {
    k >= 32 && n >= NR && k.saturating_mul(n) >= 8192
}

/// `C = op(A) * op(B)` through the packed engine. Same contract as
/// [`crate::kernels::matmul::matmul`].
///
/// # Panics
///
/// Panics if either input is not rank 2 or the contraction dimensions
/// disagree.
pub fn matmul_packed(
    a: &Tensor,
    b: &Tensor,
    transpose_a: bool,
    transpose_b: bool,
    pool: &ExecPool,
) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, ka) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (kb, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    assert_eq!(
        ka, kb,
        "matmul contraction mismatch: op(a) is [{m}, {ka}], op(b) is [{kb}, {n}]"
    );
    let mut c = recycle::take_buffer(m * n);
    gemm_into(&mut c, m, n, ka, a.data(), transpose_a, b.data(), transpose_b, pool);
    Tensor::from_vec(c, [m, n])
}

/// `op(A) * op(B)` through the packed engine when the geometry warrants
/// it (see [`use_packed`]), with `epilogue` applied before each tile is
/// stored; falls back to the row-parallel kernel plus a flat epilogue
/// pass otherwise. Either route is bitwise identical to the matching
/// unfused matmul followed by the unfused elementwise chain.
///
/// # Panics
///
/// Panics on non-rank-2 inputs, contraction mismatch, an invalid
/// epilogue, or mis-sized operands.
pub fn matmul_fused(
    a: &Tensor,
    b: &Tensor,
    transpose_a: bool,
    transpose_b: bool,
    epilogue: &Epilogue,
    operands: &[&Tensor],
    pool: &ExecPool,
) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, ka) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (kb, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    assert_eq!(
        ka, kb,
        "matmul contraction mismatch: op(a) is [{m}, {ka}], op(b) is [{kb}, {n}]"
    );
    let ops: Vec<&[f32]> = operands.iter().map(|t| t.data()).collect();
    if use_packed(ka, n) {
        let mut c = recycle::take_buffer(m * n);
        gemm_into_fused(
            &mut c,
            m,
            n,
            ka,
            a.data(),
            transpose_a,
            b.data(),
            transpose_b,
            Some(epilogue),
            &ops,
            pool,
        );
        Tensor::from_vec(c, [m, n])
    } else {
        let mut c = crate::kernels::matmul::matmul(a, b, transpose_a, transpose_b, pool);
        epilogue.apply_flat(c.data_mut(), m, n, &ops, pool);
        c
    }
}

/// Writes `op(A) * op(B)` into `c` (`c` is fully overwritten; prior
/// contents are ignored). `a` is `[m, k]` (`[k, m]` when `transpose_a`)
/// and `b` is `[k, n]` (`[n, k]` when `transpose_b`), both row-major.
///
/// # Panics
///
/// Panics if `c.len() != m * n` or an operand slice is shorter than its
/// claimed extent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    transpose_a: bool,
    b: &[f32],
    transpose_b: bool,
    pool: &ExecPool,
) {
    gemm_into_fused(c, m, n, k, a, transpose_a, b, transpose_b, None, &[], pool);
}

/// [`gemm_into`] with an optional [`Epilogue`] applied to each
/// accumulator tile before it is stored. The epilogue sees the final
/// K-reduced element values in registers, so the fused result is
/// bitwise identical to `gemm_into` followed by
/// [`Epilogue::apply_flat`].
///
/// # Panics
///
/// Panics on length mismatches, an invalid epilogue, or mis-sized
/// operands.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_fused(
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    transpose_a: bool,
    b: &[f32],
    transpose_b: bool,
    epilogue: Option<&Epilogue>,
    operands: &[&[f32]],
    pool: &ExecPool,
) {
    assert_eq!(c.len(), m * n, "gemm output length mismatch");
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    if let Some(ep) = epilogue {
        ep.check_operands(m, n, operands);
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // An empty contraction is all zeros; the epilogue still applies.
        c.fill(0.0);
        if let Some(ep) = epilogue {
            ep.apply_flat(c, m, n, operands, pool);
        }
        return;
    }

    let m_strips = m.div_ceil(MR);
    let n_strips = n.div_ceil(NR);
    let k_blocks = k.div_ceil(KC);
    let m_pad = m_strips * MR;
    let n_pad = n_strips * NR;

    // Pack both operands once, up front, in parallel over strips. A
    // strip is MR (or NR) rows/columns of one K block, stored as
    // `[kc][MR]` (`[kc][NR]`): the microkernel then reads both panels
    // with unit stride regardless of the source transpose flags.
    // Rows/columns past the matrix edge pack as zeros, so edge tiles
    // run the identical lane schedule as interior tiles.
    let mut apack = recycle::take_buffer(k * m_pad);
    let mut bpack = recycle::take_buffer(k * n_pad);
    let a_out = SharedOut(apack.as_mut_ptr());
    pool.for_indices(k_blocks * m_strips, KC * MR, |idx| {
        let (p, s) = (idx / m_strips, idx % m_strips);
        let kstart = p * KC;
        let kc = KC.min(k - kstart);
        // SAFETY: strip (p, s) owns exactly this MR*kc region; the
        // (p, s) -> offset map is injective across tasks.
        let strip = unsafe {
            std::slice::from_raw_parts_mut(a_out.ptr().add(kstart * m_pad + s * MR * kc), MR * kc)
        };
        for (kk, row) in strip.chunks_exact_mut(MR).enumerate() {
            let krow = kstart + kk;
            for (r, slot) in row.iter_mut().enumerate() {
                let i = s * MR + r;
                *slot = if i >= m {
                    0.0
                } else if transpose_a {
                    a[krow * m + i]
                } else {
                    a[i * k + krow]
                };
            }
        }
    });
    let b_out = SharedOut(bpack.as_mut_ptr());
    pool.for_indices(k_blocks * n_strips, KC * NR, |idx| {
        let (p, t) = (idx / n_strips, idx % n_strips);
        let kstart = p * KC;
        let kc = KC.min(k - kstart);
        // SAFETY: strip (p, t) owns exactly this NR*kc region.
        let strip = unsafe {
            std::slice::from_raw_parts_mut(b_out.ptr().add(kstart * n_pad + t * NR * kc), NR * kc)
        };
        for (kk, row) in strip.chunks_exact_mut(NR).enumerate() {
            let krow = kstart + kk;
            for (col, slot) in row.iter_mut().enumerate() {
                let j = t * NR + col;
                *slot = if j >= n {
                    0.0
                } else if transpose_b {
                    b[j * k + krow]
                } else {
                    b[krow * n + j]
                };
            }
        }
    });

    // 2D parallelism over the MC×NC output-tile grid. Each task owns a
    // disjoint C rectangle (at most MC×NC floats, 16 KB — L1/L2
    // resident). K blocks are walked in the *outer* loop so each packed
    // A/B panel is reused across the whole macro tile while hot — with
    // the K loop innermost, a deep contraction streams every panel per
    // register tile and the working set blows past cache. Accumulation
    // is per element in ascending p order on both paths below, so the
    // reduction order is fixed (see module docs). With an epilogue the
    // tile accumulates in a local block so the whole program can be
    // applied to it before the single store; without one it accumulates
    // directly into the cache-hot C rectangle.
    let mc_blocks = m.div_ceil(MC);
    let nc_blocks = n.div_ceil(NC);
    let c_out = SharedOut(c.as_mut_ptr());
    let (ap, bp) = (apack.as_slice(), bpack.as_slice());
    pool.for_indices(mc_blocks * nc_blocks, 2 * MC * NC * k, |idx| {
        let (ic, jc) = (idx / nc_blocks, idx % nc_blocks);
        let i_hi = (ic * MC + MC).min(m);
        let j_hi = (jc * NC + NC).min(n);
        let (s_lo, s_hi) = (ic * MC / MR, i_hi.div_ceil(MR));
        let (t_lo, t_hi) = (jc * NC / NR, j_hi.div_ceil(NR));
        if let Some(ep) = epilogue {
            // Accumulate the macro tile in a local block, apply the
            // whole epilogue to it (one dispatch per instruction per
            // tile — per-row application at 64-element grain costs more
            // than the saved round trip), then store each row once.
            let mut block = [0.0f32; MC * NC];
            for p in 0..k_blocks {
                let kstart = p * KC;
                let kc = KC.min(k - kstart);
                for s in s_lo..s_hi {
                    let apanel = &ap[kstart * m_pad + s * MR * kc..][..MR * kc];
                    for t in t_lo..t_hi {
                        let bpanel = &bp[kstart * n_pad + t * NR * kc..][..NR * kc];
                        let acc = micro_kernel(apanel, bpanel, kc);
                        let (r0, c0) = ((s - s_lo) * MR, (t - t_lo) * NR);
                        for (r, acc_row) in acc.iter().enumerate() {
                            let brow = &mut block[(r0 + r) * NC + c0..][..NR];
                            for (bv, &av) in brow.iter_mut().zip(acc_row) {
                                *bv += av;
                            }
                        }
                    }
                }
            }
            let rows = i_hi - ic * MC;
            let cols = j_hi - jc * NC;
            ep.apply_block(&mut block, ic * MC, jc * NC, rows, cols, NC, n, operands);
            for r_local in 0..rows {
                // SAFETY: rows [ic*MC, i_hi) × cols [jc*NC, j_hi) lie
                // inside this task's rectangle; rectangles partition C.
                let c_row = unsafe {
                    std::slice::from_raw_parts_mut(
                        c_out.ptr().add((ic * MC + r_local) * n + jc * NC),
                        cols,
                    )
                };
                c_row.copy_from_slice(&block[r_local * NC..][..cols]);
            }
        } else {
            // No epilogue: accumulate straight into the C rectangle.
            // It is at most MC×NC floats (16 KB), so it stays cache-hot
            // across K blocks; the first block stores and later blocks
            // add, which keeps the per-element reduction in ascending p
            // order (bitwise identical to the block path) without a
            // zero-fill pass over C.
            for p in 0..k_blocks {
                let kstart = p * KC;
                let kc = KC.min(k - kstart);
                for s in s_lo..s_hi {
                    let apanel = &ap[kstart * m_pad + s * MR * kc..][..MR * kc];
                    let rows = MR.min(i_hi - s * MR);
                    for t in t_lo..t_hi {
                        let bpanel = &bp[kstart * n_pad + t * NR * kc..][..NR * kc];
                        let acc = micro_kernel(apanel, bpanel, kc);
                        let cols = NR.min(j_hi - t * NR);
                        for (r, acc_row) in acc.iter().enumerate().take(rows) {
                            // SAFETY: rows [s*MR, i_hi) × cols
                            // [t*NR, j_hi) lie inside this task's
                            // rectangle; rectangles partition C.
                            let c_row = unsafe {
                                std::slice::from_raw_parts_mut(
                                    c_out.ptr().add((s * MR + r) * n + t * NR),
                                    cols,
                                )
                            };
                            if p == 0 {
                                for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                    *cv = av;
                                }
                            } else {
                                for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                    *cv += av;
                                }
                            }
                        }
                    }
                }
            }
        }
    });
    recycle::give_buffer(apack);
    recycle::give_buffer(bpack);
}

/// One MR×NR tile against one K block of packed panels. `apanel` is
/// `[kc][MR]`, `bpanel` is `[kc][NR]`. The accumulator lanes are
/// independent (no cross-lane sum), so the compiler vectorizes this
/// without changing any reduction order.
#[inline]
fn micro_kernel(apanel: &[f32], bpanel: &[f32], kc: usize) -> [[f32; NR]; MR] {
    const { assert!(MR == 8, "micro_kernel unrolls exactly MR accumulator rows") };
    // One named accumulator row per MR lane, updated through `axpy`. The
    // row loop is unrolled by hand rather than written `for r in 0..MR`:
    // given a 2D accumulator array, LLVM's loop vectorizer (with wide
    // vectors available) prefers vectorizing *across rows* with
    // gather/scatter on the accumulator — an order of magnitude slower
    // than broadcasting `a` and streaming `b`. With the rows as distinct
    // locals only the contiguous NR axis is left to vectorize, which is
    // the canonical broadcast GEMM kernel.
    let mut r0 = [0.0f32; NR];
    let mut r1 = [0.0f32; NR];
    let mut r2 = [0.0f32; NR];
    let mut r3 = [0.0f32; NR];
    let mut r4 = [0.0f32; NR];
    let mut r5 = [0.0f32; NR];
    let mut r6 = [0.0f32; NR];
    let mut r7 = [0.0f32; NR];
    for kk in 0..kc {
        let a: &[f32; MR] = apanel[kk * MR..kk * MR + MR].try_into().unwrap();
        let b: &[f32; NR] = bpanel[kk * NR..kk * NR + NR].try_into().unwrap();
        axpy(&mut r0, a[0], b);
        axpy(&mut r1, a[1], b);
        axpy(&mut r2, a[2], b);
        axpy(&mut r3, a[3], b);
        axpy(&mut r4, a[4], b);
        axpy(&mut r5, a[5], b);
        axpy(&mut r6, a[6], b);
        axpy(&mut r7, a[7], b);
    }
    [r0, r1, r2, r3, r4, r5, r6, r7]
}

/// `acc += a * b` over one register-width row; the independent lanes
/// vectorize without reordering any per-lane sum.
#[inline(always)]
fn axpy(acc: &mut [f32; NR], a: f32, b: &[f32; NR]) {
    for (slot, &bv) in acc.iter_mut().zip(b) {
        *slot += a * bv;
    }
}

// ---------------------------------------------------------------------
// bf16 storage / f32 accumulate path (DESIGN.md §18).
//
// The pack step is the natural conversion point: every operand element
// already takes exactly one pass through a pack closure, so converting
// there costs one rounding per element, halves the panel bytes the
// microkernel streams, and lets the panels carry the k-pair-interleaved
// layout the AVX-512 BF16 dot-product instruction consumes — on hosts
// with `vdpbf16ps` each instruction retires two multiply-accumulates
// per f32 lane, which is where the speedup over the f32 engine comes
// from. Accumulation stays f32 everywhere. The bf16 functions mirror
// their f32 counterparts line for line rather than abstracting over a
// panel element type: a generic panel would need either a trait
// dispatch in the innermost loop or a macro over the whole engine, and
// both obscure the unsafe partition arguments the comments below lean
// on. The duplication is deliberate and bounded to this file.
// ---------------------------------------------------------------------

use crate::kernels::quant::{bf16_to_f32, f32_to_bf16};

/// Raw bf16 panel pointer shared across pack tasks; same disjoint-strip
/// partition argument as [`SharedOut`].
struct SharedOutU16(*mut u16);
unsafe impl Sync for SharedOutU16 {}

impl SharedOutU16 {
    fn ptr(&self) -> *mut u16 {
        self.0
    }
}

/// Takes a zeroed pooled scratch buffer able to hold `len_u16` bf16
/// values, returning it with the f32 backing it reinterprets. The
/// backing stays a `Vec<f32>` so the buffer recycles through the same
/// [`crate::BufferPool`] as the f32 panels; `f32`'s 4-byte alignment
/// satisfies `u16`'s.
fn take_u16_buffer(len_u16: usize) -> Vec<f32> {
    recycle::take_buffer(len_u16.div_ceil(2))
}

/// `C = op(A) * op(B)` with both operands packed as bf16 and all
/// accumulation in f32. Same contract as [`matmul_packed`] except each
/// operand element is rounded once to bf16 at pack time.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the contraction dimensions
/// disagree.
pub fn matmul_packed_bf16(
    a: &Tensor,
    b: &Tensor,
    transpose_a: bool,
    transpose_b: bool,
    pool: &ExecPool,
) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, ka) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (kb, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    assert_eq!(
        ka, kb,
        "matmul contraction mismatch: op(a) is [{m}, {ka}], op(b) is [{kb}, {n}]"
    );
    let mut c = recycle::take_buffer(m * n);
    gemm_into_fused_bf16(&mut c, m, n, ka, a.data(), transpose_a, b.data(), transpose_b, None, &[], pool);
    Tensor::from_vec(c, [m, n])
}

/// [`matmul_fused`] on the bf16 packed path: operands are rounded to
/// bf16 at pack time, accumulation and the fused epilogue stay f32.
/// Falls back to the full-precision fused route when the geometry does
/// not warrant packing (see [`use_packed`]) — below that threshold the
/// pack pass the bf16 win rides on does not run at all.
///
/// # Panics
///
/// Panics on non-rank-2 inputs, contraction mismatch, an invalid
/// epilogue, or mis-sized operands.
pub fn matmul_fused_bf16(
    a: &Tensor,
    b: &Tensor,
    transpose_a: bool,
    transpose_b: bool,
    epilogue: &Epilogue,
    operands: &[&Tensor],
    pool: &ExecPool,
) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, ka) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (kb, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    assert_eq!(
        ka, kb,
        "matmul contraction mismatch: op(a) is [{m}, {ka}], op(b) is [{kb}, {n}]"
    );
    if !use_packed(ka, n) {
        return matmul_fused(a, b, transpose_a, transpose_b, epilogue, operands, pool);
    }
    let ops: Vec<&[f32]> = operands.iter().map(|t| t.data()).collect();
    let mut c = recycle::take_buffer(m * n);
    gemm_into_fused_bf16(
        &mut c,
        m,
        n,
        ka,
        a.data(),
        transpose_a,
        b.data(),
        transpose_b,
        Some(epilogue),
        &ops,
        pool,
    );
    Tensor::from_vec(c, [m, n])
}

/// [`gemm_into_fused`] with bf16 panel storage. Identical tile grid,
/// identical ascending-p reduction order, f32 accumulators throughout —
/// so parallel output is bitwise identical to serial by the same
/// argument as the f32 engine (the module-level determinism contract
/// does not mention element width anywhere). Within a micro tile the k
/// sum associates in adjacent pairs (see [`micro_kernel_bf16`]), which
/// changes last-bit rounding relative to the f32 engine but not the
/// worker-count invariance.
///
/// # Panics
///
/// Panics on length mismatches, an invalid epilogue, or mis-sized
/// operands.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_fused_bf16(
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    transpose_a: bool,
    b: &[f32],
    transpose_b: bool,
    epilogue: Option<&Epilogue>,
    operands: &[&[f32]],
    pool: &ExecPool,
) {
    assert_eq!(c.len(), m * n, "gemm output length mismatch");
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    if let Some(ep) = epilogue {
        ep.check_operands(m, n, operands);
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        if let Some(ep) = epilogue {
            ep.apply_flat(c, m, n, operands, pool);
        }
        return;
    }

    let m_strips = m.div_ceil(MR);
    let n_strips = n.div_ceil(NR);
    let k_blocks = k.div_ceil(KC);
    let m_pad = m_strips * MR;
    let n_pad = n_strips * NR;

    // Pack both operands as bf16 in k-pair-interleaved strips: each
    // strip stores, for every pair of adjacent k rows, the pair's two
    // values adjacent per lane — `[A[2p,i], A[2p+1,i]]` in the a strip,
    // `[B[2p,j], B[2p+1,j]]` in the b strip. That is exactly the operand
    // order of the AVX-512 BF16 dot-product instruction (`vdpbf16ps`)
    // the micro kernel issues when the host has it; the scalar fallback
    // walks the same layout. Edge rows/columns and the phantom k row of
    // an odd-length block pack as zero bits, and a zero *pair* (both
    // operands padded) contributes an exact +0.0 per lane.
    let k_even = k + (k & 1);
    let mut apack = take_u16_buffer(k_even * m_pad);
    let mut bpack = take_u16_buffer(k_even * n_pad);
    let a_out = SharedOutU16(apack.as_mut_ptr().cast::<u16>());
    pool.for_indices(k_blocks * m_strips, KC * MR, |idx| {
        let (p, s) = (idx / m_strips, idx % m_strips);
        let kstart = p * KC;
        let kc = KC.min(k - kstart);
        let kc_even = kc + (kc & 1);
        // SAFETY: strip (p, s) owns exactly this MR*kc_even region; the
        // (p, s) -> offset map is injective across tasks (every block
        // before p is a full even KC, so kstart * m_pad is the block
        // base), and the backing allocation holds k_even * m_pad slots.
        let strip = unsafe {
            std::slice::from_raw_parts_mut(
                a_out.ptr().add(kstart * m_pad + s * MR * kc_even),
                MR * kc_even,
            )
        };
        for (pp, pair_row) in strip.chunks_exact_mut(2 * MR).enumerate() {
            for (r, slot_pair) in pair_row.chunks_exact_mut(2).enumerate() {
                let i = s * MR + r;
                for (h, slot) in slot_pair.iter_mut().enumerate() {
                    let krow = kstart + 2 * pp + h;
                    *slot = if i >= m || krow >= kstart + kc {
                        0
                    } else if transpose_a {
                        f32_to_bf16(a[krow * m + i])
                    } else {
                        f32_to_bf16(a[i * k + krow])
                    };
                }
            }
        }
    });
    let b_out = SharedOutU16(bpack.as_mut_ptr().cast::<u16>());
    pool.for_indices(k_blocks * n_strips, KC * NR, |idx| {
        let (p, t) = (idx / n_strips, idx % n_strips);
        let kstart = p * KC;
        let kc = KC.min(k - kstart);
        let kc_even = kc + (kc & 1);
        // SAFETY: strip (p, t) owns exactly this NR*kc_even region.
        let strip = unsafe {
            std::slice::from_raw_parts_mut(
                b_out.ptr().add(kstart * n_pad + t * NR * kc_even),
                NR * kc_even,
            )
        };
        // B dominates pack cost (k*n elements against A's m*k, reused
        // only m/MR times), so the interior non-transposed strip — the
        // only shape the hot geometries hit — gets the hardware convert.
        #[cfg(target_arch = "x86_64")]
        if !transpose_b && t * NR + NR <= n && std::arch::is_x86_feature_detected!("avx512bf16") {
            // SAFETY: the feature test gates the call; columns
            // [t*NR, t*NR + NR) are fully in range per the test above.
            unsafe { pack_b_strip_pairs_hw(strip, b, n, kstart, kc, t * NR) };
            return;
        }
        for (pp, pair_row) in strip.chunks_exact_mut(2 * NR).enumerate() {
            for (col, slot_pair) in pair_row.chunks_exact_mut(2).enumerate() {
                let j = t * NR + col;
                for (h, slot) in slot_pair.iter_mut().enumerate() {
                    let krow = kstart + 2 * pp + h;
                    *slot = if j >= n || krow >= kstart + kc {
                        0
                    } else if transpose_b {
                        f32_to_bf16(b[j * k + krow])
                    } else {
                        f32_to_bf16(b[krow * n + j])
                    };
                }
            }
        }
    });

    let mc_blocks = m.div_ceil(MC);
    let nc_blocks = n.div_ceil(NC);
    let c_out = SharedOut(c.as_mut_ptr());
    // SAFETY: the pack tasks above have completed (for_indices joins),
    // so these are plain shared reads of the fully initialized panels.
    let ap: &[u16] =
        unsafe { std::slice::from_raw_parts(apack.as_ptr().cast::<u16>(), k_even * m_pad) };
    let bp: &[u16] =
        unsafe { std::slice::from_raw_parts(bpack.as_ptr().cast::<u16>(), k_even * n_pad) };
    pool.for_indices(mc_blocks * nc_blocks, 2 * MC * NC * k, |idx| {
        let (ic, jc) = (idx / nc_blocks, idx % nc_blocks);
        let i_hi = (ic * MC + MC).min(m);
        let j_hi = (jc * NC + NC).min(n);
        let (s_lo, s_hi) = (ic * MC / MR, i_hi.div_ceil(MR));
        let (t_lo, t_hi) = (jc * NC / NR, j_hi.div_ceil(NR));
        if let Some(ep) = epilogue {
            let mut block = [0.0f32; MC * NC];
            for p in 0..k_blocks {
                let kstart = p * KC;
                let kc_even = KC.min(k - kstart).next_multiple_of(2);
                for s in s_lo..s_hi {
                    let apanel = &ap[kstart * m_pad + s * MR * kc_even..][..MR * kc_even];
                    for t in t_lo..t_hi {
                        let bpanel = &bp[kstart * n_pad + t * NR * kc_even..][..NR * kc_even];
                        let acc = micro_kernel_bf16(apanel, bpanel, kc_even / 2);
                        let (r0, c0) = ((s - s_lo) * MR, (t - t_lo) * NR);
                        for (r, acc_row) in acc.iter().enumerate() {
                            let brow = &mut block[(r0 + r) * NC + c0..][..NR];
                            for (bv, &av) in brow.iter_mut().zip(acc_row) {
                                *bv += av;
                            }
                        }
                    }
                }
            }
            let rows = i_hi - ic * MC;
            let cols = j_hi - jc * NC;
            ep.apply_block(&mut block, ic * MC, jc * NC, rows, cols, NC, n, operands);
            for r_local in 0..rows {
                // SAFETY: rows [ic*MC, i_hi) × cols [jc*NC, j_hi) lie
                // inside this task's rectangle; rectangles partition C.
                let c_row = unsafe {
                    std::slice::from_raw_parts_mut(
                        c_out.ptr().add((ic * MC + r_local) * n + jc * NC),
                        cols,
                    )
                };
                c_row.copy_from_slice(&block[r_local * NC..][..cols]);
            }
        } else {
            for p in 0..k_blocks {
                let kstart = p * KC;
                let kc_even = KC.min(k - kstart).next_multiple_of(2);
                for s in s_lo..s_hi {
                    let apanel = &ap[kstart * m_pad + s * MR * kc_even..][..MR * kc_even];
                    let rows = MR.min(i_hi - s * MR);
                    for t in t_lo..t_hi {
                        let bpanel = &bp[kstart * n_pad + t * NR * kc_even..][..NR * kc_even];
                        let acc = micro_kernel_bf16(apanel, bpanel, kc_even / 2);
                        let cols = NR.min(j_hi - t * NR);
                        for (r, acc_row) in acc.iter().enumerate().take(rows) {
                            // SAFETY: rows [s*MR, i_hi) × cols
                            // [t*NR, j_hi) lie inside this task's
                            // rectangle; rectangles partition C.
                            let c_row = unsafe {
                                std::slice::from_raw_parts_mut(
                                    c_out.ptr().add((s * MR + r) * n + t * NR),
                                    cols,
                                )
                            };
                            if p == 0 {
                                for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                    *cv = av;
                                }
                            } else {
                                for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                    *cv += av;
                                }
                            }
                        }
                    }
                }
            }
        }
    });
    recycle::give_buffer(apack);
    recycle::give_buffer(bpack);
}

/// Packs one full-width, non-transposed B strip into the k-pair
/// interleaved layout with the AVX-512 BF16 convert: two k rows convert
/// (`vcvtne2ps2bf16`) and interleave (`vpermw`) in four instructions
/// per pair, against ~10 scalar integer ops per *element* for the
/// portable round-to-nearest-even — without this the conversion of a
/// large B outweighs the microkernel's win at small m. The hardware
/// convert rounds to nearest even like [`f32_to_bf16`] but flushes f32
/// denormals (|x| < 2^-126) to zero where the scalar path keeps their
/// bf16 denormal bits — a sub-1e-38 discrepancy below anything the
/// bf16 rounding the pack performs can represent distinctly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512bf16")]
unsafe fn pack_b_strip_pairs_hw(
    strip: &mut [u16],
    b: &[f32],
    n: usize,
    kstart: usize,
    kc: usize,
    j0: usize,
) {
    use std::arch::x86_64::{
        __m512i, _mm512_cvtne2ps_pbh, _mm512_loadu_ps, _mm512_loadu_si512,
        _mm512_permutexvar_epi16, _mm512_setzero_ps, _mm512_storeu_si512,
    };
    const { assert!(NR == 16, "the convert/interleave schedule is shaped for 16 lanes") };
    // Word j of cvtne2's result is column j of row k0 for j < 16 and
    // column j-16 of row k1 above; this permutation interleaves them
    // into the pair layout [B[k0,j], B[k1,j], ...].
    const INTERLEAVE: [u16; 32] = [
        0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6, 22, 7, 23, 8, 24, 9, 25, 10, 26, 11, 27, 12,
        28, 13, 29, 14, 30, 15, 31,
    ];
    debug_assert!(j0 + NR <= n && strip.len().is_multiple_of(2 * NR));
    // SAFETY (all blocks below): row k0 < kstart + kc <= k, and the
    // caller guarantees j0 + NR <= n, so every 16-float load sits inside
    // `b`; the store target is strip-local; loads/stores are unaligned-
    // tolerant.
    unsafe {
        let idx = _mm512_loadu_si512(INTERLEAVE.as_ptr() as *const __m512i);
        for pp in 0..strip.len() / (2 * NR) {
            let k0 = kstart + 2 * pp;
            let row0 = _mm512_loadu_ps(b.as_ptr().add(k0 * n + j0));
            // An odd block tail pads its phantom second row with zeros.
            let row1 = if 2 * pp + 1 < kc {
                _mm512_loadu_ps(b.as_ptr().add((k0 + 1) * n + j0))
            } else {
                _mm512_setzero_ps()
            };
            let pair: __m512i = std::mem::transmute(_mm512_cvtne2ps_pbh(row1, row0));
            let interleaved = _mm512_permutexvar_epi16(idx, pair);
            _mm512_storeu_si512(strip.as_mut_ptr().add(pp * 2 * NR) as *mut __m512i, interleaved);
        }
    }
}

/// [`micro_kernel`] over k-pair-interleaved bf16 panels. On hosts with
/// AVX-512 BF16 each accumulator row takes one `vdpbf16ps` per k pair —
/// two bf16 multiply-accumulates per f32 lane per instruction, double
/// the MAC density of the f32 kernel's separate mul/add stream, which
/// (on top of the halved panel bytes) is where the bf16 engine's
/// speedup comes from. The scalar fallback computes the same pair sums
/// (`acc += a0*b0 + a1*b1`) in plain f32 over the same layout.
///
/// Either way the reduction order is a pure function of the panel
/// layout, so a given host produces bitwise-identical results at every
/// worker count. Unlike the f32 kernel, the k sum is associated in
/// adjacent pairs, and the hardware and fallback paths may differ from
/// each other in final-bit rounding — the determinism contract is per
/// host, not cross-host.
#[inline]
fn micro_kernel_bf16(apanel: &[u16], bpanel: &[u16], kc_pairs: usize) -> [[f32; NR]; MR] {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512bf16") {
        // SAFETY: the feature test above gates the call; avx512bf16
        // implies the avx512f registers the kernel uses.
        return unsafe { micro_kernel_bf16_vdp(apanel, bpanel, kc_pairs) };
    }
    micro_kernel_bf16_scalar(apanel, bpanel, kc_pairs)
}

/// Hardware path: broadcast each a pair, stream the b pair row, and let
/// `vdpbf16ps` widen, multiply, and pair-sum into the f32 accumulators.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bf16")]
unsafe fn micro_kernel_bf16_vdp(apanel: &[u16], bpanel: &[u16], kc_pairs: usize) -> [[f32; NR]; MR] {
    use std::arch::x86_64::{
        __m512bh, __m512i, _mm512_dpbf16_ps, _mm512_loadu_si512, _mm512_set1_epi32,
        _mm512_setzero_ps, _mm512_storeu_ps,
    };
    const { assert!(MR == 8 && NR == 16, "vdpbf16ps kernel is shaped for 8 zmm accumulators") };
    debug_assert!(apanel.len() >= kc_pairs * 2 * MR && bpanel.len() >= kc_pairs * 2 * NR);
    let mut acc = [_mm512_setzero_ps(); MR];
    let ap = apanel.as_ptr();
    let bp = bpanel.as_ptr();
    for pp in 0..kc_pairs {
        // SAFETY: pair pp spans [pp*2*NR, pp*2*NR + 2*NR) of bpanel and
        // [pp*2*MR, pp*2*MR + 2*MR) of apanel, both in bounds per the
        // debug_assert above; loads are unaligned-tolerant.
        unsafe {
            let b: __m512bh =
                std::mem::transmute(_mm512_loadu_si512(bp.add(pp * 2 * NR) as *const __m512i));
            let arow = ap.add(pp * 2 * MR).cast::<i32>();
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let a: __m512bh = std::mem::transmute(_mm512_set1_epi32(arow.add(r).read_unaligned()));
                *acc_row = _mm512_dpbf16_ps(*acc_row, a, b);
            }
        }
    }
    let mut out = [[0.0f32; NR]; MR];
    for (row, acc_row) in out.iter_mut().zip(acc) {
        // SAFETY: each row holds exactly NR = 16 f32 slots.
        unsafe { _mm512_storeu_ps(row.as_mut_ptr(), acc_row) };
    }
    out
}

/// Portable path over the same pair-interleaved panels: widen both k
/// rows of the pair, then accumulate `a0*b0 + a1*b1` per lane.
fn micro_kernel_bf16_scalar(apanel: &[u16], bpanel: &[u16], kc_pairs: usize) -> [[f32; NR]; MR] {
    const { assert!(MR == 8, "micro_kernel_bf16_scalar unrolls exactly MR accumulator rows") };
    let mut r0 = [0.0f32; NR];
    let mut r1 = [0.0f32; NR];
    let mut r2 = [0.0f32; NR];
    let mut r3 = [0.0f32; NR];
    let mut r4 = [0.0f32; NR];
    let mut r5 = [0.0f32; NR];
    let mut r6 = [0.0f32; NR];
    let mut r7 = [0.0f32; NR];
    for pp in 0..kc_pairs {
        let ah: &[u16; 2 * MR] = apanel[pp * 2 * MR..][..2 * MR].try_into().unwrap();
        let bh: &[u16; 2 * NR] = bpanel[pp * 2 * NR..][..2 * NR].try_into().unwrap();
        let mut b0 = [0.0f32; NR];
        let mut b1 = [0.0f32; NR];
        for j in 0..NR {
            b0[j] = bf16_to_f32(bh[2 * j]);
            b1[j] = bf16_to_f32(bh[2 * j + 1]);
        }
        axpy2(&mut r0, bf16_to_f32(ah[0]), &b0, bf16_to_f32(ah[1]), &b1);
        axpy2(&mut r1, bf16_to_f32(ah[2]), &b0, bf16_to_f32(ah[3]), &b1);
        axpy2(&mut r2, bf16_to_f32(ah[4]), &b0, bf16_to_f32(ah[5]), &b1);
        axpy2(&mut r3, bf16_to_f32(ah[6]), &b0, bf16_to_f32(ah[7]), &b1);
        axpy2(&mut r4, bf16_to_f32(ah[8]), &b0, bf16_to_f32(ah[9]), &b1);
        axpy2(&mut r5, bf16_to_f32(ah[10]), &b0, bf16_to_f32(ah[11]), &b1);
        axpy2(&mut r6, bf16_to_f32(ah[12]), &b0, bf16_to_f32(ah[13]), &b1);
        axpy2(&mut r7, bf16_to_f32(ah[14]), &b0, bf16_to_f32(ah[15]), &b1);
    }
    [r0, r1, r2, r3, r4, r5, r6, r7]
}

/// `acc += a0 * b0 + a1 * b1` over one register-width row — the scalar
/// image of one `vdpbf16ps` (modulo that instruction's internal
/// rounding); lanes stay independent, so this vectorizes without
/// reordering any per-lane sum.
#[inline(always)]
fn axpy2(acc: &mut [f32; NR], a0: f32, b0: &[f32; NR], a1: f32, b1: &[f32; NR]) {
    for ((slot, &v0), &v1) in acc.iter_mut().zip(b0).zip(b1) {
        *slot += a0 * v0 + a1 * v1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::matmul_naive;
    use crate::rng::Rng;

    fn close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        assert!(a.max_abs_diff(b) < tol, "{what}: max diff {}", a.max_abs_diff(b));
    }

    #[test]
    fn matches_naive_on_odd_shapes_for_all_transposes() {
        let mut rng = Rng::seeded(11);
        for &(m, k, n) in &[(1, 37, 17), (13, 300, 31), (67, 129, 19), (8, 256, 16)] {
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                let a = Tensor::randn(if ta { [k, m] } else { [m, k] }, 0.0, 1.0, &mut rng);
                let b = Tensor::randn(if tb { [n, k] } else { [k, n] }, 0.0, 1.0, &mut rng);
                let packed = matmul_packed(&a, &b, ta, tb, &ExecPool::new(4).with_grain(1));
                let naive = matmul_naive(&a, &b, ta, tb);
                close(&packed, &naive, 1e-3, &format!("m={m} k={k} n={n} ta={ta} tb={tb}"));
            }
        }
    }

    #[test]
    fn parallel_is_bitwise_identical_to_serial() {
        let mut rng = Rng::seeded(29);
        let a = Tensor::randn([129, 517], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([517, 143], 0.0, 1.0, &mut rng);
        let serial = matmul_packed(&a, &b, false, false, &ExecPool::serial());
        for threads in [2, 4, 8] {
            let par = matmul_packed(&a, &b, false, false, &ExecPool::new(threads).with_grain(1));
            assert_eq!(serial.data(), par.data(), "{threads} workers diverged");
        }
    }

    #[test]
    fn degenerate_extents_yield_zeros_or_empty() {
        let pool = ExecPool::serial();
        let c = matmul_packed(&Tensor::zeros([0, 5]), &Tensor::zeros([5, 4]), false, false, &pool);
        assert_eq!(c.shape().dims(), &[0, 4]);
        let c = matmul_packed(&Tensor::ones([3, 0]), &Tensor::ones([0, 4]), false, false, &pool);
        assert_eq!(c.shape().dims(), &[3, 4]);
        assert!(c.data().iter().all(|&v| v == 0.0), "k=0 product must be all zeros");
    }

    #[test]
    fn gemm_into_overwrites_stale_output() {
        let mut c = vec![f32::NAN; 4];
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        gemm_into(&mut c, 2, 2, 2, &a, false, &b, false, &ExecPool::serial());
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn dispatch_threshold_ignores_m() {
        assert!(use_packed(512, 512));
        assert!(!use_packed(4, 512), "tiny k cannot amortize packing");
        assert!(!use_packed(512, 8), "n below NR leaves lanes as padding");
    }

    use crate::kernels::epilogue::{EpilogueArg, EpilogueInstr, OperandKind};
    use crate::kernels::fused::FusedOp;

    fn bias_relu_epilogue() -> Epilogue {
        Epilogue {
            n_operands: 1,
            instrs: vec![
                EpilogueInstr {
                    op: FusedOp::Add,
                    args: vec![
                        EpilogueArg::Acc,
                        EpilogueArg::Operand { index: 0, kind: OperandKind::Col },
                    ],
                },
                EpilogueInstr { op: FusedOp::Relu, args: vec![EpilogueArg::Acc] },
            ],
        }
    }

    #[test]
    fn fused_epilogue_is_bitwise_identical_to_unfused_then_flat() {
        let mut rng = Rng::seeded(41);
        // Straddles tile edges on both axes and the packed threshold.
        for &(m, k, n) in &[(1, 64, 160), (13, 300, 31), (67, 129, 19), (5, 10, 7)] {
            let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
            let bias = Tensor::randn([n], 0.0, 1.0, &mut rng);
            let ep = bias_relu_epilogue();
            let pool = ExecPool::new(4).with_grain(1);
            let fused = matmul_fused(&a, &b, false, false, &ep, &[&bias], &pool);
            let mut unfused = crate::kernels::matmul::matmul(&a, &b, false, false, &pool);
            ep.apply_flat(unfused.data_mut(), m, n, &[bias.data()], &pool);
            assert_eq!(fused.data(), unfused.data(), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn fused_epilogue_parallel_is_bitwise_identical_to_serial() {
        let mut rng = Rng::seeded(43);
        let a = Tensor::randn([67, 300], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([300, 93], 0.0, 1.0, &mut rng);
        let bias = Tensor::randn([93], 0.0, 1.0, &mut rng);
        let ep = bias_relu_epilogue();
        let serial = matmul_fused(&a, &b, false, false, &ep, &[&bias], &ExecPool::serial());
        for threads in [2, 4, 8] {
            let pool = ExecPool::new(threads).with_grain(1);
            let par = matmul_fused(&a, &b, false, false, &ep, &[&bias], &pool);
            assert_eq!(serial.data(), par.data(), "{threads} workers diverged");
        }
    }

    #[test]
    fn zero_k_fused_product_applies_epilogue_to_zeros() {
        let bias = Tensor::from_vec(vec![1.0, -2.0], [2]);
        let a = Tensor::zeros([3, 0]);
        let b = Tensor::zeros([0, 2]);
        let ep = bias_relu_epilogue();
        let c = matmul_fused(&a, &b, false, false, &ep, &[&bias], &ExecPool::serial());
        // relu(0 + bias): [1, 0] per row.
        assert_eq!(c.data(), &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    use crate::kernels::quant::{bf16_to_f32, f32_to_bf16};

    /// Rounds every element to the bf16 grid, staying f32. The bf16
    /// engine's exact-arithmetic reference is `matmul_naive` over these.
    fn to_bf16_grid(t: &Tensor) -> Tensor {
        let data = t.data().iter().map(|&v| bf16_to_f32(f32_to_bf16(v))).collect();
        Tensor::from_vec(data, t.shape().dims())
    }

    #[test]
    fn bf16_matches_naive_on_bf16_rounded_operands() {
        let mut rng = Rng::seeded(47);
        for &(m, k, n) in &[(1, 37, 17), (13, 300, 31), (67, 129, 19), (8, 256, 16)] {
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                let a = Tensor::randn(if ta { [k, m] } else { [m, k] }, 0.0, 1.0, &mut rng);
                let b = Tensor::randn(if tb { [n, k] } else { [k, n] }, 0.0, 1.0, &mut rng);
                let packed = matmul_packed_bf16(&a, &b, ta, tb, &ExecPool::new(4).with_grain(1));
                // The only precision loss is the one rounding per
                // operand element at pack time: against the naive
                // product of pre-rounded operands only f32 accumulation
                // order differs, the same budget as the f32 engine test.
                let naive = matmul_naive(&to_bf16_grid(&a), &to_bf16_grid(&b), ta, tb);
                close(&packed, &naive, 1e-3, &format!("bf16 m={m} k={k} n={n} ta={ta} tb={tb}"));
            }
        }
    }

    #[test]
    fn bf16_parallel_is_bitwise_identical_to_serial() {
        let mut rng = Rng::seeded(53);
        let a = Tensor::randn([129, 517], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([517, 143], 0.0, 1.0, &mut rng);
        let serial = matmul_packed_bf16(&a, &b, false, false, &ExecPool::serial());
        for threads in [2, 4, 8] {
            let par =
                matmul_packed_bf16(&a, &b, false, false, &ExecPool::new(threads).with_grain(1));
            assert_eq!(serial.data(), par.data(), "bf16 {threads} workers diverged");
        }
    }

    #[test]
    fn bf16_fused_epilogue_matches_unfused_then_flat() {
        let mut rng = Rng::seeded(59);
        // First geometry is above the packed threshold, last is below it
        // (exercising the full-precision fallback).
        for &(m, k, n) in &[(13, 300, 31), (1, 64, 160), (5, 10, 7)] {
            let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
            let bias = Tensor::randn([n], 0.0, 1.0, &mut rng);
            let ep = bias_relu_epilogue();
            let pool = ExecPool::new(4).with_grain(1);
            let fused = matmul_fused_bf16(&a, &b, false, false, &ep, &[&bias], &pool);
            let mut unfused = if use_packed(k, n) {
                matmul_packed_bf16(&a, &b, false, false, &pool)
            } else {
                crate::kernels::matmul::matmul(&a, &b, false, false, &pool)
            };
            ep.apply_flat(unfused.data_mut(), m, n, &[bias.data()], &pool);
            assert_eq!(fused.data(), unfused.data(), "bf16 m={m} k={k} n={n}");
        }
    }

    #[test]
    fn bf16_zero_k_product_is_zero() {
        let c = matmul_packed_bf16(
            &Tensor::ones([3, 0]),
            &Tensor::ones([0, 4]),
            false,
            false,
            &ExecPool::serial(),
        );
        assert_eq!(c.shape().dims(), &[3, 4]);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }
}
