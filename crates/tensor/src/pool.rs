//! Intra-operation parallelism.
//!
//! TensorFlow exposes "hooks to specify the available thread pool for the
//! underlying Eigen library"; the paper's Figure 6 uses those hooks to
//! sweep intra-op parallelism from 1 to 8 threads. [`ExecPool`] is this
//! suite's equivalent: a *width-limited view* over the shared
//! work-stealing [`Runtime`], whose dispatch splits an output buffer into
//! disjoint contiguous chunks. Several views of different widths can sit
//! on one runtime — that is how the executor runs one op wide while
//! co-scheduling others on the same worker set.
//!
//! Work below a per-worker grain runs serially on the calling thread,
//! modeling the thread-dispatch avoidance of production linear algebra
//! libraries — which is exactly the behavior that keeps skinny-tensor
//! operations flat in the Figure 6 reproduction ("the trip count is too
//! low for thread-level parallelism, so the underlying library avoids
//! it").
//!
//! Chunk boundaries depend only on the dispatch width and the work
//! estimate — never on timing or on which thread runs a chunk — so for a
//! given width the bytes produced are identical to a serial loop.

use std::sync::Arc;

use crate::runtime::{Job, Latch, Runtime};

/// Minimum useful work (in touched elements) per participating worker.
pub const DEFAULT_GRAIN: usize = 16 * 1024;

/// A configurable intra-op execution pool: a dispatch-width view over a
/// shared [`Runtime`].
///
/// Cloning is cheap and shares the same runtime. A pool created with
/// `threads == 1` and no backing runtime performs no cross-thread
/// dispatch at all.
///
/// # Poisoning
///
/// The runtime executes every task under `catch_unwind`; a panicking task
/// sets a shared *poisoned* flag instead of killing a worker thread. The
/// next barrier point — the end of [`ExecPool::for_spans`] or
/// [`ExecPool::scoped`] — swaps the flag back off and re-raises the panic
/// on the calling thread, so the pool itself stays usable afterwards.
/// Because the flag is shared by every view of the runtime, a concurrent
/// dispatch on another thread may observe (and report) a panic raised by a
/// task it did not submit; panics are treated as fatal programming errors,
/// not recoverable conditions, so this imprecision is acceptable.
///
/// # Examples
///
/// ```
/// use fathom_tensor::ExecPool;
///
/// let pool = ExecPool::new(4);
/// let mut out = vec![0.0f32; 100_000];
/// pool.for_spans(&mut out, 1, 0, |i, span| span[0] = i as f32);
/// assert_eq!(out[99_999], 99_999.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExecPool {
    threads: usize,
    grain: usize,
    rt: Option<Arc<Runtime>>,
}

impl ExecPool {
    /// Creates a pool that may use up to `threads` threads per dispatch
    /// (the calling thread participates; `threads - 1` workers are
    /// spawned on a private runtime). `threads <= 1` means fully serial
    /// execution.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let rt = (threads > 1).then(|| Arc::new(Runtime::new(threads)));
        ExecPool { threads, grain: DEFAULT_GRAIN, rt }
    }

    /// A serial pool.
    pub fn serial() -> Self {
        ExecPool::new(1)
    }

    /// A width-`width` view over an existing runtime: dispatches split
    /// work across at most `width` chunks, but those chunks run on (and
    /// are stolen by) the shared worker set. `width` is clamped to the
    /// runtime's thread count so chunking never outpaces the machine.
    pub fn on_runtime(rt: &Arc<Runtime>, width: usize) -> Self {
        let threads = width.clamp(1, rt.threads());
        ExecPool { threads, grain: DEFAULT_GRAIN, rt: Some(Arc::clone(rt)) }
    }

    /// A view of this pool with a different dispatch width (clamped to
    /// the backing runtime's thread count). Cheap: shares the runtime.
    pub fn with_width(&self, width: usize) -> Self {
        match &self.rt {
            Some(rt) => ExecPool { threads: width.clamp(1, rt.threads()), grain: self.grain, rt: Some(Arc::clone(rt)) },
            None => ExecPool { threads: 1, grain: self.grain, rt: None },
        }
    }

    /// The backing runtime, when this pool dispatches at all.
    pub fn runtime(&self) -> Option<&Arc<Runtime>> {
        self.rt.as_ref()
    }

    /// Overrides the per-worker grain (in elements of total work).
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain.max(1);
        self
    }

    /// Maximum threads (including the caller) per dispatch.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`PoolScope`] that can launch individual tasks onto
    /// the shared runtime *without* a per-task barrier: tasks started with
    /// [`PoolScope::spawn`] run concurrently with the caller and with each
    /// other, and `scoped` only waits for all of them once `f` returns.
    ///
    /// On a pool with no backing runtime, spawned tasks run inline on the
    /// calling thread at `spawn` time.
    ///
    /// # Panics
    ///
    /// Panics after all tasks finish if any spawned task panicked (see the
    /// poisoning notes on [`ExecPool`]). If `f` itself panics, `scoped`
    /// still waits for every spawned task before the panic propagates —
    /// tasks borrow `f`'s environment, so the barrier must run even
    /// during unwinding. Note that a panicking `f` must not leave workers
    /// blocked on data only it would have produced, or the barrier
    /// deadlocks; catch such panics inside `f` and release the workers
    /// first.
    pub fn scoped<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        // Runs the barrier on drop, so spawned jobs that borrow the
        // caller's stack are finished before the frame dies even when `f`
        // unwinds (the same shape std::thread::scope uses). On the normal
        // path it also re-raises job panics; during unwinding it only
        // clears the poison flag and lets the original panic propagate.
        struct Barrier<'p> {
            latch: Latch,
            rt: Option<&'p Runtime>,
        }
        impl Drop for Barrier<'_> {
            fn drop(&mut self) {
                if let Some(rt) = self.rt {
                    if std::thread::panicking() {
                        // Do not execute arbitrary queued tasks during
                        // unwinding (a second panic would abort); the
                        // runtime's workers drain the remainder.
                        while self.latch.is_open() {
                            std::thread::park_timeout(std::time::Duration::from_micros(50));
                        }
                        rt.take_poison();
                    } else {
                        rt.wait(&self.latch);
                        if rt.take_poison() {
                            panic!("a pool task panicked inside ExecPool::scoped");
                        }
                    }
                }
            }
        }
        // The barrier must drop *in place* (scope end), never by-value
        // (`drop(barrier)` would move it): spawned jobs hold the latch's
        // raw address, so the latch cannot change stack slots while any
        // job is in flight.
        let barrier = Barrier { latch: Latch::new(0), rt: self.rt.as_deref() };
        let scope = PoolScope {
            rt: self.rt.as_deref(),
            latch: &barrier.latch,
            _env: std::marker::PhantomData,
        };
        f(&scope)
    }

    /// Splits `out` into consecutive spans of `span` elements and invokes
    /// `f(span_index, span_slice)` for each, in parallel across chunks of
    /// spans.
    ///
    /// `work_per_span` estimates the elements touched to produce one span
    /// beyond the span itself (e.g. the reduction length of a matmul
    /// row); it drives the how-many-workers decision.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`, `out.len()` is not a multiple of `span`, or
    /// a worker executing `f` panicked.
    pub fn for_spans<F>(&self, out: &mut [f32], span: usize, work_per_span: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        assert!(span > 0, "span must be positive");
        assert_eq!(out.len() % span, 0, "output length {} not a multiple of span {span}", out.len());
        let spans = out.len() / span;
        let total_work = out.len() + spans.saturating_mul(work_per_span);
        let workers = self.workers_for(total_work, spans);
        if workers <= 1 {
            for (i, chunk) in out.chunks_mut(span).enumerate() {
                f(i, chunk);
            }
            return;
        }
        let rt = self.rt.as_ref().expect("workers > 1 implies a live runtime");
        let spans_per_worker = spans.div_ceil(workers);
        let chunk_len = spans_per_worker * span;
        let latch = Latch::new(0);

        {
            let mut chunks = out.chunks_mut(chunk_len).enumerate();
            // The caller runs the first chunk itself after enqueueing the
            // rest, so a 2-way dispatch costs one wake-up.
            let first = chunks.next();
            for (w, chunk) in chunks {
                latch.add(1);
                let task = RawTask {
                    data: chunk.as_mut_ptr(),
                    len: chunk.len(),
                    f: &f as *const F as *const (),
                    latch: &latch as *const Latch,
                    rt: Arc::as_ptr(rt),
                };
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    // Capture the task as a whole (edition-2021 disjoint
                    // capture would otherwise capture the raw-pointer
                    // fields individually, which are not Send).
                    let task = task;
                    // SAFETY: `task` points at a disjoint sub-slice of
                    // `out`, at `f`, at `latch`, and at the runtime, all
                    // of which outlive the wait below; the latch
                    // guarantees completion before `for_spans` returns.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                        let chunk = std::slice::from_raw_parts_mut(task.data, task.len);
                        let f = &*(task.f as *const F);
                        let base = w * spans_per_worker;
                        for (i, sub) in chunk.chunks_mut(span).enumerate() {
                            f(base + i, sub);
                        }
                    }));
                    // Record failure *before* releasing the latch so the
                    // caller observes the flag after its wait.
                    unsafe {
                        if result.is_err() {
                            (*task.rt).poison();
                        }
                        (*task.latch).done();
                    }
                });
                // SAFETY: extend the job's borrow of stack data to
                // 'static; the latch wait below outlives its use.
                let job: Job = unsafe { std::mem::transmute(job) };
                rt.spawn_raw(job);
            }
            if let Some((_, chunk)) = first {
                for (i, sub) in chunk.chunks_mut(span).enumerate() {
                    f(i, sub);
                }
            }
        }
        rt.wait(&latch);
        if rt.take_poison() {
            panic!("a pool worker panicked while executing a kernel");
        }
    }

    /// Invokes `f(i)` for every index in `0..n`, parallelized over
    /// contiguous index chunks sized by the same policy as
    /// [`ExecPool::for_spans`].
    ///
    /// Unlike `for_spans`, no output buffer is managed: `f` is responsible
    /// for writing only data it owns for that index (e.g. one disjoint
    /// macro-tile of a matrix). This is the dispatch shape used by kernels
    /// whose parallel units are not contiguous output spans — the packed
    /// GEMM engine parallelizes over a 2-D tile grid this way.
    ///
    /// Chunk boundaries depend only on `n` and the work estimate, never on
    /// timing, so any `f` that writes a deterministic function of `i` to a
    /// disjoint region yields results identical to a serial loop.
    ///
    /// # Panics
    ///
    /// Panics if a worker executing `f` panicked.
    pub fn for_indices<F>(&self, n: usize, work_per_index: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let total_work = n.saturating_mul(work_per_index.max(1));
        let workers = self.workers_for(total_work, n);
        if workers <= 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let per = n.div_ceil(workers);
        self.scoped(|scope| {
            let f = &f;
            // The caller runs the first chunk itself after enqueueing the
            // rest (same shape as `for_spans`).
            let mut start = per;
            while start < n {
                let end = (start + per).min(n);
                scope.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
                start = end;
            }
            for i in 0..per.min(n) {
                f(i);
            }
        });
    }

    /// Parallel map-reduce over the index range `0..n`: `map` is invoked
    /// on disjoint subranges and the partial results are combined with
    /// `reduce`, in subrange order. Returns `identity` when `n == 0`.
    ///
    /// Used by coarse-grained kernels (e.g. CTC's per-utterance
    /// forward-backward) where per-item work is large.
    pub fn map_reduce<T, M, R>(&self, n: usize, work_per_item: usize, identity: T, map: M, reduce: R) -> T
    where
        T: Send,
        M: Fn(std::ops::Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T,
    {
        if n == 0 {
            return identity;
        }
        let workers = self.workers_for(n * work_per_item.max(1), n);
        if workers <= 1 {
            return reduce(identity, map(0..n));
        }
        let per = n.div_ceil(workers);
        let chunks = n.div_ceil(per);
        let mut parts: Vec<Option<T>> = Vec::with_capacity(chunks);
        parts.resize_with(chunks, || None);
        {
            let parts_ref = &SliceCells::new(&mut parts);
            self.scoped(|scope| {
                let map = &map;
                let mut start = per;
                let mut w = 1;
                while start < n {
                    let end = (start + per).min(n);
                    scope.spawn(move || {
                        // SAFETY: each task writes exactly one distinct
                        // slot; the scope barrier orders all writes
                        // before the reads below.
                        unsafe { parts_ref.set(w, Some(map(start..end))) };
                    });
                    start = end;
                    w += 1;
                }
                unsafe { parts_ref.set(0, Some(map(0..per.min(n)))) };
            });
        }
        let mut acc = identity;
        for p in parts {
            acc = reduce(acc, p.expect("every chunk produced a part"));
        }
        acc
    }

    /// The number of threads a dispatch with this much work would use —
    /// the pool's sizing policy, exposed so analytic device models can
    /// mirror it.
    pub fn planned_workers(&self, total_work: usize, parallel_units: usize) -> usize {
        self.workers_for(total_work, parallel_units)
    }

    /// How many threads to use for a dispatch: at most `threads`, at most
    /// one per parallel unit, and at most one per `grain` of total work.
    fn workers_for(&self, total_work: usize, parallel_units: usize) -> usize {
        if self.threads <= 1 {
            return 1;
        }
        let by_work = total_work / self.grain;
        by_work.min(self.threads).min(parallel_units).max(1)
    }
}

/// Disjoint-slot shared writes for `map_reduce` partials.
struct SliceCells<T> {
    ptr: *mut T,
}
unsafe impl<T: Send> Sync for SliceCells<T> {}
unsafe impl<T: Send> Send for SliceCells<T> {}
impl<T> SliceCells<T> {
    fn new(slice: &mut [T]) -> Self {
        SliceCells { ptr: slice.as_mut_ptr() }
    }
    /// # Safety
    /// Each index must be written by exactly one thread, and all writes
    /// must be ordered before any read (the scope barrier does both).
    unsafe fn set(&self, i: usize, value: T) {
        unsafe { *self.ptr.add(i) = value };
    }
}

/// Handle for launching barrier-free tasks inside [`ExecPool::scoped`].
///
/// Tasks may borrow from the environment of the `scoped` call (`'env`);
/// the scope's closing barrier guarantees they finish before those
/// borrows expire.
pub struct PoolScope<'a, 'env> {
    rt: Option<&'a Runtime>,
    latch: &'a Latch,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolScope { .. }")
    }
}

impl<'env> PoolScope<'_, 'env> {
    /// Starts `job` on the shared runtime and returns immediately; the
    /// enclosing [`ExecPool::scoped`] call waits for it. On a pool with
    /// no runtime the job runs inline before `spawn` returns.
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let Some(rt) = self.rt else {
            job();
            return;
        };
        self.latch.add(1);
        let latch = self.latch as *const Latch as usize;
        let rt_ptr = rt as *const Runtime as usize;
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let failed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err();
            // SAFETY: the latch and runtime live until the scope barrier
            // closes, which cannot happen before this `done`. The poison
            // store happens first so the waiter observes it after `wait`.
            unsafe {
                if failed {
                    (*(rt_ptr as *const Runtime)).poison();
                }
                (*(latch as *const Latch)).done();
            }
        });
        // SAFETY: extend the job's environment borrows to 'static; the
        // latch barrier at the end of `scoped` keeps `'env` alive until
        // every spawned job has run to completion.
        let wrapped: Job = unsafe { std::mem::transmute(wrapped) };
        rt.spawn_raw(wrapped);
    }
}

/// Raw pointers shipped to a worker; see the safety notes in `for_spans`.
struct RawTask {
    data: *mut f32,
    len: usize,
    f: *const (),
    latch: *const Latch,
    rt: *const Runtime,
}

// SAFETY: the pointers reference disjoint data that outlives the dispatch
// (enforced by the latch barrier in `for_spans`).
unsafe impl Send for RawTask {}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let mut serial_out = vec![0.0f32; 64 * 1024];
        let mut par_out = vec![0.0f32; 64 * 1024];
        ExecPool::serial().for_spans(&mut serial_out, 16, 0, |i, s| {
            for (j, v) in s.iter_mut().enumerate() {
                *v = (i * 16 + j) as f32 * 0.5;
            }
        });
        ExecPool::new(4).for_spans(&mut par_out, 16, 0, |i, s| {
            for (j, v) in s.iter_mut().enumerate() {
                *v = (i * 16 + j) as f32 * 0.5;
            }
        });
        assert_eq!(serial_out, par_out);
    }

    #[test]
    fn small_work_stays_serial() {
        // With work below the grain, even a many-threaded pool must not
        // dispatch: span indices then arrive strictly in order.
        let pool = ExecPool::new(8);
        let mut out = vec![0.0f32; 128];
        let order = std::sync::Mutex::new(Vec::new());
        pool.for_spans(&mut out, 1, 0, |i, _| order.lock().unwrap().push(i));
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_span_division() {
        // 10 spans across 4 workers: 3,3,3,1.
        let pool = ExecPool::new(4).with_grain(1);
        let mut out = vec![0.0f32; 10 * 3];
        pool.for_spans(&mut out, 3, 0, |i, s| s.fill(i as f32));
        for i in 0..10 {
            assert_eq!(&out[i * 3..i * 3 + 3], &[i as f32; 3]);
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple of span")]
    fn misaligned_span_panics() {
        ExecPool::serial().for_spans(&mut [0.0; 7], 2, 0, |_, _| {});
    }

    #[test]
    fn for_indices_covers_every_index_once() {
        let pool = ExecPool::new(4).with_grain(1);
        let hits: Vec<std::sync::atomic::AtomicUsize> =
            (0..37).map(|_| std::sync::atomic::AtomicUsize::new(0)).collect();
        pool.for_indices(37, 1, |i| {
            hits[i].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(std::sync::atomic::Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn for_indices_small_work_stays_serial_and_ordered() {
        let pool = ExecPool::new(8); // default grain: tiny work stays serial
        let order = std::sync::Mutex::new(Vec::new());
        pool.for_indices(64, 1, |i| order.lock().unwrap().push(i));
        assert_eq!(order.into_inner().unwrap(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn for_indices_empty_range_is_a_noop() {
        ExecPool::new(4).with_grain(1).for_indices(0, 1, |_| unreachable!());
    }

    #[test]
    fn for_indices_panic_propagates_and_pool_survives() {
        let pool = ExecPool::new(4).with_grain(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.for_indices(1024, 1, |i| assert!(i != 700, "deliberate failure"));
        }));
        assert!(result.is_err(), "panic in a worker must propagate");
        let ran = std::sync::atomic::AtomicBool::new(false);
        pool.for_indices(1, 1, |_| ran.store(true, std::sync::atomic::Ordering::SeqCst));
        assert!(ran.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn map_reduce_sums() {
        let pool = ExecPool::new(4).with_grain(1);
        let total = pool.map_reduce(
            1000,
            1,
            0u64,
            |r| r.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, 499_500);
    }

    #[test]
    fn map_reduce_empty() {
        let pool = ExecPool::new(4);
        let total = pool.map_reduce(0, 1, 7i64, |_| unreachable!(), |a, b| a + b);
        assert_eq!(total, 7);
    }

    #[test]
    fn map_reduce_order_is_deterministic() {
        // Parts must combine in subrange order regardless of which
        // worker finishes first.
        let pool = ExecPool::new(4).with_grain(1);
        let joined = pool.map_reduce(
            8,
            1,
            String::new(),
            |r| r.map(|i| i.to_string()).collect::<String>(),
            |a, b| a + &b,
        );
        assert_eq!(joined, "01234567");
    }

    #[test]
    fn pool_clamps_zero_threads() {
        assert_eq!(ExecPool::new(0).threads(), 1);
    }

    #[test]
    fn clones_share_workers() {
        let pool = ExecPool::new(4).with_grain(1);
        let clone = pool.clone();
        let mut a = vec![0.0f32; 1024];
        let mut b = vec![0.0f32; 1024];
        pool.for_spans(&mut a, 1, 0, |i, s| s[0] = i as f32);
        clone.for_spans(&mut b, 1, 0, |i, s| s[0] = i as f32);
        assert_eq!(a, b);
    }

    #[test]
    fn width_views_share_one_runtime() {
        let pool = ExecPool::new(4).with_grain(1);
        let narrow = pool.with_width(2);
        assert_eq!(narrow.threads(), 2);
        assert!(Arc::ptr_eq(pool.runtime().unwrap(), narrow.runtime().unwrap()));
        // Width above the runtime's thread count clamps.
        assert_eq!(pool.with_width(64).threads(), 4);
        // A narrow view still computes correctly.
        let mut out = vec![0.0f32; 512];
        narrow.for_spans(&mut out, 1, 0, |i, s| s[0] = i as f32);
        assert_eq!(out[511], 511.0);
    }

    #[test]
    fn serial_view_of_a_runtime_does_not_dispatch() {
        let pool = ExecPool::new(4).with_grain(1);
        let serial = pool.with_width(1);
        let order = std::sync::Mutex::new(Vec::new());
        serial.for_spans(&mut vec![0.0f32; 64], 1, 0, |i, _| order.lock().unwrap().push(i));
        assert_eq!(order.into_inner().unwrap(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_dispatches_are_stable() {
        // Exercise the queue/latch plumbing under churn.
        let pool = ExecPool::new(8).with_grain(1);
        for round in 0..200 {
            let mut out = vec![0.0f32; 256];
            pool.for_spans(&mut out, 4, 0, |i, s| s.fill((i + round) as f32));
            assert_eq!(out[0], round as f32);
            assert_eq!(out[252], (63 + round) as f32);
        }
    }

    #[test]
    fn worker_panic_is_reported() {
        let pool = ExecPool::new(4).with_grain(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = vec![0.0f32; 1024];
            pool.for_spans(&mut out, 1, 0, |i, _| {
                assert!(i != 900, "deliberate failure");
            });
        }));
        assert!(result.is_err(), "panic in a worker must propagate to the caller");
        // The pool must remain usable afterwards.
        let mut out = vec![0.0f32; 64];
        pool.for_spans(&mut out, 1, 0, |i, s| s[0] = i as f32);
        assert_eq!(out[63], 63.0);
    }

    #[test]
    fn workers_for_respects_grain() {
        let pool = ExecPool::new(8); // default grain 16k
        assert_eq!(pool.workers_for(1_000, 100), 1, "tiny work stays serial");
        assert_eq!(pool.workers_for(40_000, 100), 2, "two grains of work -> 2 workers");
        assert_eq!(pool.workers_for(10_000_000, 100), 8, "big work uses all threads");
        assert_eq!(pool.workers_for(10_000_000, 3), 3, "capped by parallel units");
    }

    #[test]
    fn scoped_jobs_borrow_the_stack() {
        let pool = ExecPool::new(4);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        pool.scoped(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        // scoped() blocks until every spawned job has run.
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn scoped_on_serial_pool_runs_inline() {
        let pool = ExecPool::serial();
        let mut hits = 0;
        let hits_ref = std::sync::Mutex::new(&mut hits);
        pool.scoped(|scope| {
            scope.spawn(|| {
                **hits_ref.lock().unwrap() += 1;
            });
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn scoped_waits_for_jobs_when_caller_panics() {
        // If the scoped closure panics while jobs borrowing its
        // environment are still running, the barrier must run during
        // unwinding — otherwise workers would dereference a dead frame.
        let pool = ExecPool::new(4);
        let data = vec![7u8; 1024];
        let finished = std::sync::atomic::AtomicBool::new(false);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    assert_eq!(data[0], 7);
                    finished.store(true, std::sync::atomic::Ordering::SeqCst);
                });
                panic!("caller failure");
            });
        }));
        assert!(result.is_err(), "the caller's panic must still propagate");
        assert!(
            finished.load(std::sync::atomic::Ordering::SeqCst),
            "the in-flight job must have completed before scoped unwound"
        );
        // The pool must remain usable, with no stale poison report.
        let ran = std::sync::atomic::AtomicBool::new(false);
        pool.scoped(|scope| {
            scope.spawn(|| ran.store(true, std::sync::atomic::Ordering::SeqCst));
        });
        assert!(ran.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn scoped_propagates_worker_panics() {
        let pool = ExecPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.spawn(|| panic!("deliberate failure"));
            });
        }));
        assert!(result.is_err(), "panic in a scoped job must propagate");
        // The pool must remain usable afterwards.
        let ran = std::sync::atomic::AtomicBool::new(false);
        pool.scoped(|scope| {
            scope.spawn(|| ran.store(true, std::sync::atomic::Ordering::SeqCst));
        });
        assert!(ran.load(std::sync::atomic::Ordering::SeqCst));
    }
}
