//! Property tests for the moldable-task width rule.
//!
//! The unified runtime relies on three contracts of
//! [`fathom_dataflow::sched::chosen_width`]: a width never exceeds the
//! available workers, it is monotone non-decreasing in the worker count
//! (a bigger machine never shrinks an op), and it is monotone
//! non-increasing in the number of co-runnable peers (more competition
//! never widens an op).

use fathom_dataflow::sched::chosen_width;
use proptest::prelude::*;

proptest! {
    /// The chosen width is always a usable thread count: at least 1,
    /// and never more than the machine has.
    #[test]
    fn width_is_within_the_machine(
        work in 0usize..1_000_000_000,
        peers in 0usize..64,
        workers in 0usize..256,
        grain in 0usize..100_000,
    ) {
        let w = chosen_width(work, peers, workers, grain);
        prop_assert!(w >= 1);
        prop_assert!(w <= workers.max(1));
    }

    /// Growing the machine never shrinks an op's width.
    #[test]
    fn width_is_monotone_in_workers(
        work in 0usize..1_000_000_000,
        peers in 1usize..64,
        grain in 1usize..100_000,
    ) {
        let mut prev = 0usize;
        for workers in 1..64 {
            let w = chosen_width(work, peers, workers, grain);
            prop_assert!(w >= prev, "width shrank from {prev} to {w} at {workers} workers");
            prev = w;
        }
    }

    /// More co-runnable peers never widens an op (the fair share only
    /// tightens), and an op alone gets at least as much as any
    /// contended op.
    #[test]
    fn width_is_antitone_in_peers(
        work in 0usize..1_000_000_000,
        workers in 1usize..64,
        grain in 1usize..100_000,
    ) {
        let mut prev = usize::MAX;
        for peers in 1..32 {
            let w = chosen_width(work, peers, workers, grain);
            prop_assert!(w <= prev, "width grew from {prev} to {w} at {peers} peers");
            prev = w;
        }
    }

    /// The work cap holds: an op never gets more threads than one per
    /// grain of work.
    #[test]
    fn width_respects_the_work_cap(
        work in 0usize..1_000_000_000,
        peers in 1usize..64,
        workers in 1usize..256,
        grain in 1usize..100_000,
    ) {
        let w = chosen_width(work, peers, workers, grain);
        prop_assert!(w <= (work / grain).max(1));
    }
}
