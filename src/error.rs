//! The workspace-wide error type.
//!
//! Each component crate keeps its own focused error enum — that is
//! where failure detail lives — but code that spans layers (the CLI,
//! integration tests, recovery supervisors) needs one type every
//! failure converts into, so `?` works across crate boundaries and
//! nothing falls back to `panic!` for lack of a common denominator.

use std::fmt;

use fathom::TrainError;
use fathom_data::idx::IdxError;
use fathom_dataflow::checkpoint::CheckpointError;
use fathom_dataflow::{ExecError, GraphError};
use fathom_serve::ServeError;

/// Any failure the Fathom suite can report, by originating layer.
#[derive(Debug)]
pub enum FathomError {
    /// Graph construction or validation failed (`fathom-dataflow`).
    Graph(GraphError),
    /// Graph execution failed (`fathom-dataflow`).
    Exec(ExecError),
    /// A checkpoint could not be written, read, or verified
    /// (`fathom-dataflow`).
    Checkpoint(CheckpointError),
    /// Training diverged past its guardrail retry budget (`fathom`).
    Diverged {
        /// Global step that could not complete.
        step: u64,
        /// Retries spent before giving up.
        retries: u32,
        /// The last guardrail trip's reason.
        reason: String,
    },
    /// An IDX dataset file was malformed (`fathom-data`).
    Idx(IdxError),
    /// The serving layer failed (`fathom-serve`).
    Serve(ServeError),
    /// An I/O failure outside any component crate (the CLI's own files).
    Io(std::io::Error),
    /// A failure with no structured source, e.g. CLI usage errors.
    Message(String),
}

impl fmt::Display for FathomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FathomError::Graph(e) => write!(f, "{e}"),
            FathomError::Exec(e) => write!(f, "{e}"),
            FathomError::Checkpoint(e) => write!(f, "{e}"),
            FathomError::Diverged { step, retries, reason } => write!(
                f,
                "training diverged at step {step} after {retries} retries: {reason}"
            ),
            FathomError::Idx(e) => write!(f, "{e}"),
            FathomError::Serve(e) => write!(f, "{e}"),
            FathomError::Io(e) => write!(f, "{e}"),
            FathomError::Message(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for FathomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FathomError::Graph(e) => Some(e),
            FathomError::Exec(e) => Some(e),
            FathomError::Checkpoint(e) => Some(e),
            FathomError::Diverged { .. } => None,
            FathomError::Idx(e) => Some(e),
            FathomError::Serve(e) => Some(e),
            FathomError::Io(e) => Some(e),
            FathomError::Message(_) => None,
        }
    }
}

impl From<GraphError> for FathomError {
    fn from(e: GraphError) -> Self {
        FathomError::Graph(e)
    }
}

impl From<ExecError> for FathomError {
    fn from(e: ExecError) -> Self {
        FathomError::Exec(e)
    }
}

impl From<CheckpointError> for FathomError {
    fn from(e: CheckpointError) -> Self {
        FathomError::Checkpoint(e)
    }
}

impl From<TrainError> for FathomError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Diverged { step, retries, reason } => {
                FathomError::Diverged { step, retries, reason }
            }
            TrainError::Exec(e) => FathomError::Exec(e),
            TrainError::Checkpoint(e) => FathomError::Checkpoint(e),
            TrainError::Pipeline(msg) => FathomError::Message(msg),
            TrainError::NotTrainable(msg) => FathomError::Message(msg),
        }
    }
}

impl From<IdxError> for FathomError {
    fn from(e: IdxError) -> Self {
        FathomError::Idx(e)
    }
}

impl From<ServeError> for FathomError {
    fn from(e: ServeError) -> Self {
        FathomError::Serve(e)
    }
}

impl From<std::io::Error> for FathomError {
    fn from(e: std::io::Error) -> Self {
        FathomError::Io(e)
    }
}

impl From<String> for FathomError {
    fn from(msg: String) -> Self {
        FathomError::Message(msg)
    }
}

impl From<&str> for FathomError {
    fn from(msg: &str) -> Self {
        FathomError::Message(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_via_question_mark() {
        fn graph() -> Result<(), FathomError> {
            Err(GraphError::Shape { op: "test", msg: "bad extent".into() })?
        }
        fn ckpt() -> Result<(), FathomError> {
            Err(CheckpointError::BadHeader("x".into()))?
        }
        fn serve() -> Result<(), FathomError> {
            Err(ServeError::Unservable("x".into()))?
        }
        fn train() -> Result<(), FathomError> {
            Err(TrainError::Diverged { step: 3, retries: 2, reason: "loss is NaN".into() })?
        }
        assert!(matches!(graph().unwrap_err(), FathomError::Graph(_)));
        assert!(matches!(train().unwrap_err(), FathomError::Diverged { step: 3, .. }));
        assert!(matches!(ckpt().unwrap_err(), FathomError::Checkpoint(_)));
        assert!(matches!(serve().unwrap_err(), FathomError::Serve(_)));
    }

    #[test]
    fn display_passes_the_inner_message_through() {
        let e = FathomError::from(ServeError::Fault("injected crash on replica 1".into()));
        assert!(e.to_string().contains("injected crash"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&FathomError::from("usage")).is_none());
    }
}
