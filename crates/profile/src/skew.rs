//! Cumulative execution-time skew (Figure 2).
//!
//! "A handful of 'heavy' operation types (usually 5 to 15) are
//! collectively responsible for upwards of 90% of the programs'
//! duration." These curves quantify that skew per workload.

use serde::{Deserialize, Serialize};

use crate::profile::OpProfile;

/// The cumulative time-share curve of one workload: element `i` is the
/// fraction of total time covered by the `i+1` heaviest op types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkewCurve {
    /// Workload name.
    pub workload: String,
    /// Cumulative fractions, non-decreasing, ending at ~1.0.
    pub cumulative: Vec<f64>,
    /// Op names in descending time order (parallel to `cumulative`).
    pub ops: Vec<String>,
}

impl SkewCurve {
    /// Computes the curve from a profile.
    pub fn from_profile(profile: &OpProfile) -> Self {
        let mut cumulative = Vec::new();
        let mut ops = Vec::new();
        let mut acc = 0.0;
        for e in profile.ranked() {
            acc += e.nanos / profile.total_nanos().max(f64::MIN_POSITIVE);
            cumulative.push(acc);
            ops.push(e.op.clone());
        }
        SkewCurve { workload: profile.workload.clone(), cumulative, ops }
    }

    /// Number of distinct op types observed.
    pub fn num_ops(&self) -> usize {
        self.cumulative.len()
    }

    /// The smallest number of op types covering at least `fraction` of
    /// total time (`None` when the curve never reaches it).
    pub fn ops_for_fraction(&self, fraction: f64) -> Option<usize> {
        self.cumulative.iter().position(|&c| c >= fraction).map(|i| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::cost::OpCost;
    use fathom_dataflow::trace::{RunTrace, TraceEvent};
    use fathom_dataflow::{NodeId, OpClass};

    fn profile_with(times: &[(&'static str, f64)]) -> OpProfile {
        let events = times
            .iter()
            .map(|(op, nanos)| TraceEvent {
                node: NodeId::default(),
                op,
                class: OpClass::MatrixOps,
                step: 0,
                nanos: *nanos,
                cost: OpCost::default(),
            })
            .collect();
        OpProfile::from_trace("toy", &RunTrace { events, steps: 1, ..RunTrace::default() })
    }

    #[test]
    fn cumulative_is_monotone_and_complete() {
        let p = profile_with(&[("A", 50.0), ("B", 30.0), ("C", 15.0), ("D", 5.0)]);
        let c = SkewCurve::from_profile(&p);
        assert_eq!(c.num_ops(), 4);
        for w in c.cumulative.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((c.cumulative.last().unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(c.ops[0], "A");
    }

    #[test]
    fn ops_for_fraction_counts_heavy_ops() {
        let p = profile_with(&[("A", 50.0), ("B", 30.0), ("C", 15.0), ("D", 5.0)]);
        let c = SkewCurve::from_profile(&p);
        assert_eq!(c.ops_for_fraction(0.5), Some(1));
        assert_eq!(c.ops_for_fraction(0.8), Some(2));
        assert_eq!(c.ops_for_fraction(0.9), Some(3));
        assert_eq!(c.ops_for_fraction(1.0), Some(4));
    }

    #[test]
    fn skewed_profile_reaches_90_percent_quickly() {
        // One dominant op among many tiny ones, like a conv net.
        const SMALL_OPS: [&str; 20] = [
            "op0", "op1", "op2", "op3", "op4", "op5", "op6", "op7", "op8", "op9", "op10",
            "op11", "op12", "op13", "op14", "op15", "op16", "op17", "op18", "op19",
        ];
        let mut times = vec![("Conv2D", 900.0)];
        for n in SMALL_OPS {
            times.push((n, 5.0));
        }
        let p = profile_with(&times);
        let c = SkewCurve::from_profile(&p);
        assert!(c.ops_for_fraction(0.9).unwrap() <= 2);
        assert_eq!(c.num_ops(), 21);
    }
}
