//! Resilient long-run training: snapshot cadence, divergence
//! guardrails, and deterministic mid-run resume.
//!
//! The paper's workloads are measured over long training runs, and long
//! runs die: machines reboot, loss curves explode, checkpoint writes get
//! torn mid-stream. [`Trainer`] wraps any training-mode [`Workload`]
//! with the three defenses a production loop carries:
//!
//! * **Snapshot cadence** ([`SnapshotPolicy`]): every N optimizer steps
//!   a resume checkpoint — variables, optimizer slots, RNG streams, and
//!   the workload's pipeline blob — is promoted crash-consistently into
//!   a rotation of the K newest files.
//! * **Divergence guardrails** ([`GuardrailPolicy`]): the per-step loss
//!   and global gradient norm are watched for NaN/Inf/explosion; a trip
//!   rolls the step back transactionally inside the session and the
//!   trainer retries under a bounded [`RetryPolicy`], surfacing
//!   [`TrainError::Diverged`] when the budget runs out.
//! * **Deterministic resume** ([`Trainer::resume`]): the newest loadable
//!   snapshot restores the run *bitwise* — every subsequent step
//!   produces the same loss bits as the uninterrupted run — falling back
//!   to older generations when the newest is torn or corrupt.
//!
//! Fault injection reuses the suite-wide [`FaultPlan`]: `train@K=crash`
//! kills the loop between steps, `train@K=nan` poisons one loss fetch,
//! and `ckpt-write` faults corrupt snapshot bytes on their way to disk.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use fathom_dataflow::checkpoint::{self, CheckpointError, TrainCursor};
use fathom_dataflow::{ExecError, FaultAction, FaultPlan, FaultSite, Guardrail, RuntimeCounters};

use crate::workload::Workload;

/// How often snapshots are taken and how many generations survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Take a snapshot every this many optimizer steps (0 disables).
    pub every: u64,
    /// Newest generations kept on disk; older files are pruned.
    pub keep: usize,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy { every: 10, keep: 3 }
    }
}

/// What the trainer does after a guardrail trip, before retrying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryPolicy {
    /// Retry the identical step. The session and data pipeline were
    /// rolled back transactionally, so this replays the same batch —
    /// the right answer for transient injected faults.
    Replay,
    /// Advance the data pipeline past the offending batch first.
    SkipBatch,
    /// Multiply every optimizer learning rate by `factor` first.
    LrBackoff {
        /// Multiplier applied to each `Apply*` op's learning rate.
        factor: f32,
    },
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryPolicy::Replay => write!(f, "replay"),
            RetryPolicy::SkipBatch => write!(f, "skip-batch"),
            RetryPolicy::LrBackoff { factor } => write!(f, "lr-backoff:{factor}"),
        }
    }
}

/// Divergence limits and the bounded retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardrailPolicy {
    /// Trip when `|loss|` exceeds this (NaN/Inf always trip).
    pub max_abs_loss: f32,
    /// Trip when the global gradient norm exceeds this.
    pub max_grad_norm: f32,
    /// Recovery action between retries.
    pub retry: RetryPolicy,
    /// Trips tolerated per step before declaring divergence.
    pub max_retries: u32,
}

impl Default for GuardrailPolicy {
    fn default() -> Self {
        GuardrailPolicy {
            max_abs_loss: 1e4,
            max_grad_norm: 1e6,
            retry: RetryPolicy::Replay,
            max_retries: 3,
        }
    }
}

/// One guardrail trip and how it resolved, for the run report.
#[derive(Debug, Clone)]
pub struct TripEvent {
    /// Global step the trip happened on.
    pub step: u64,
    /// The guardrail's reason string.
    pub reason: String,
    /// Which retry attempt this was (1 = first retry).
    pub attempt: u32,
    /// The policy applied before retrying.
    pub action: RetryPolicy,
}

/// How a [`Trainer::run`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainOutcome {
    /// All requested steps ran.
    Completed,
    /// An injected `train@K=crash` fault killed the loop after this many
    /// completed steps (the process would be dead; the caller resumes).
    Killed {
        /// Global step count at death.
        at_step: u64,
    },
}

/// Everything a resilient run wants to tell the caller, JSON-able for
/// the CLI and the soak gate.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Workload name.
    pub workload: &'static str,
    /// Optimizer steps completed across the run (including pre-resume).
    pub steps: u64,
    /// Step the run resumed from, if it resumed.
    pub resumed_from: Option<u64>,
    /// Loss of the last completed step.
    pub final_loss: Option<f32>,
    /// Gradient norm of the last completed step.
    pub final_grad_norm: Option<f32>,
    /// Guardrail trips, in order.
    pub trips: Vec<TripEvent>,
    /// Snapshots promoted to disk.
    pub snapshots_written: u64,
    /// Wall nanoseconds spent serializing + promoting snapshots.
    pub snapshot_nanos: u128,
    /// Wall nanoseconds spent inside workload steps.
    pub step_nanos: u128,
    /// Unified-runtime counters for the training session, sampled when
    /// the run ends.
    pub runtime: RuntimeCounters,
}

impl TrainReport {
    /// Hand-rolled JSON (the suite carries no serde).
    pub fn to_json(&self, outcome: &TrainOutcome) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        let outcome_str = match outcome {
            TrainOutcome::Completed => "completed".to_string(),
            TrainOutcome::Killed { at_step } => format!("killed@{at_step}"),
        };
        out.push_str(&format!("  \"outcome\": \"{outcome_str}\",\n"));
        out.push_str(&format!("  \"steps\": {},\n", self.steps));
        match self.resumed_from {
            Some(s) => out.push_str(&format!("  \"resumed_from\": {s},\n")),
            None => out.push_str("  \"resumed_from\": null,\n"),
        }
        // Non-finite floats degrade to null: JSON has no NaN/Infinity
        // tokens, and a diverged run's report must still parse.
        match self.final_loss {
            Some(l) if l.is_finite() => out.push_str(&format!("  \"final_loss\": {l},\n")),
            _ => out.push_str("  \"final_loss\": null,\n"),
        }
        match self.final_grad_norm {
            Some(g) if g.is_finite() => out.push_str(&format!("  \"final_grad_norm\": {g},\n")),
            _ => out.push_str("  \"final_grad_norm\": null,\n"),
        }
        out.push_str(&format!("  \"guardrail_trips\": {},\n", self.trips.len()));
        out.push_str("  \"trips\": [\n");
        for (i, t) in self.trips.iter().enumerate() {
            let comma = if i + 1 == self.trips.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"step\": {}, \"attempt\": {}, \"action\": \"{}\", \"reason\": {:?}}}{comma}\n",
                t.step, t.attempt, t.action, t.reason
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"snapshots_written\": {},\n", self.snapshots_written));
        out.push_str(&format!("  \"snapshot_nanos\": {},\n", self.snapshot_nanos));
        // Emitted only when the unified runtime recorded something, so
        // serial runs keep byte-identical JSON.
        if self.runtime.any() {
            let rc = &self.runtime;
            out.push_str(&format!(
                "  \"runtime\": {{\"allocations\": {}, \"arena_bytes\": {}, \"steal_count\": {}, \"wide_ops\": {}, \"coscheduled_ops\": {}}},\n",
                rc.allocations, rc.arena_bytes, rc.steal_count, rc.wide_ops, rc.coscheduled_ops
            ));
        }
        out.push_str(&format!("  \"step_nanos\": {}\n", self.step_nanos));
        out.push_str("}\n");
        out
    }
}

/// A failure of the resilient training loop.
#[derive(Debug)]
pub enum TrainError {
    /// The guardrail kept tripping past the retry budget.
    Diverged {
        /// Global step that could not complete.
        step: u64,
        /// Retries spent before giving up.
        retries: u32,
        /// The last trip's reason.
        reason: String,
    },
    /// A step failed for a non-guardrail reason.
    Exec(ExecError),
    /// A snapshot could not be written, or no resume generation loaded.
    Checkpoint(CheckpointError),
    /// The workload rejected its pipeline blob on import.
    Pipeline(String),
    /// The workload was built without a training graph, or exposes no
    /// loss/grad-norm probes to guard.
    NotTrainable(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged { step, retries, reason } => write!(
                f,
                "training diverged at step {step} after {retries} retries: {reason}"
            ),
            TrainError::Exec(e) => write!(f, "{e}"),
            TrainError::Checkpoint(e) => write!(f, "{e}"),
            TrainError::Pipeline(msg) => write!(f, "pipeline restore failed: {msg}"),
            TrainError::NotTrainable(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<ExecError> for TrainError {
    fn from(e: ExecError) -> Self {
        TrainError::Exec(e)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// How one guarded step attempt ended (internal to the run loop).
enum StepEnd {
    /// The step committed.
    Done,
    /// An injected `train@K=crash` fault fired; the loop dies here.
    Killed,
}

/// Nominal batches per epoch for cursor bookkeeping. The synthetic
/// corpora are infinite streams, so the epoch is a fixed accounting
/// window rather than a dataset size.
const EPOCH_LEN: u64 = 64;

/// Drives a training-mode [`Workload`] with snapshots, guardrails, and
/// resume. See the module docs for the full contract.
pub struct Trainer {
    model: Box<dyn Workload>,
    snapshot: SnapshotPolicy,
    guard: Option<GuardrailPolicy>,
    fault: Option<Arc<FaultPlan>>,
    dir: Option<PathBuf>,
    global_step: u64,
    report: TrainReport,
}

impl Trainer {
    /// Wraps a workload. Fails fast when the workload carries no
    /// training graph (no loss/grad-norm probes to drive or guard).
    pub fn new(model: Box<dyn Workload>) -> Result<Self, TrainError> {
        if model.train_probes().is_none() {
            return Err(TrainError::NotTrainable(format!(
                "workload '{}' was built without a training graph; \
                 build it in training mode to use the trainer",
                model.name()
            )));
        }
        let workload = model.name();
        Ok(Trainer {
            model,
            snapshot: SnapshotPolicy::default(),
            guard: None,
            fault: None,
            dir: None,
            global_step: 0,
            report: TrainReport { workload, ..TrainReport::default() },
        })
    }

    /// Sets the snapshot cadence and rotation depth.
    pub fn with_snapshots(mut self, policy: SnapshotPolicy, dir: impl Into<PathBuf>) -> Self {
        self.snapshot = policy;
        self.dir = Some(dir.into());
        self
    }

    /// Arms the divergence guardrail: non-finite fetches or variable
    /// updates, `|loss|` past `max_abs_loss`, or a gradient norm past
    /// `max_grad_norm` all trip and roll the step back.
    pub fn with_guardrail(mut self, policy: GuardrailPolicy) -> Self {
        let probes = self.model.train_probes().expect("checked in new()");
        let rail = Guardrail::finite()
            .with_limit(probes.loss, policy.max_abs_loss)
            .with_limit(probes.grad_norm, policy.max_grad_norm);
        self.model.session_mut().set_guardrail(Some(rail));
        self.guard = Some(policy);
        self
    }

    /// Arms a fault plan: `train` sites fire here, and `ckpt-write`
    /// faults corrupt snapshot bytes on their way to disk.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The wrapped workload.
    pub fn model(&self) -> &dyn Workload {
        &*self.model
    }

    /// Mutable access to the wrapped workload (tests, probes).
    pub fn model_mut(&mut self) -> &mut dyn Workload {
        &mut *self.model
    }

    /// Completed optimizer steps, across resume boundaries.
    pub fn global_step(&self) -> u64 {
        self.global_step
    }

    /// The run report accumulated so far.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    fn cursor(&self) -> TrainCursor {
        TrainCursor {
            global_step: self.global_step,
            epoch: self.global_step / EPOCH_LEN,
            position: self.global_step % EPOCH_LEN,
        }
    }

    fn snapshot_path(dir: &Path, step: u64) -> PathBuf {
        dir.join(format!("step-{step:06}.ckpt"))
    }

    /// Snapshot files in `dir`, newest (highest step) first.
    fn generations(dir: &Path) -> Vec<(u64, PathBuf)> {
        let mut found = Vec::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return found;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(step) = name
                .strip_prefix("step-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                found.push((step, entry.path()));
            }
        }
        found.sort_by_key(|&(step, _)| std::cmp::Reverse(step));
        found
    }

    /// Serializes, optionally corrupts (injected `ckpt-write` faults),
    /// and atomically promotes one snapshot; prunes old generations.
    fn write_snapshot(&mut self) -> Result<(), TrainError> {
        let Some(dir) = self.dir.clone() else {
            return Ok(());
        };
        let began = Instant::now();
        std::fs::create_dir_all(&dir).map_err(CheckpointError::from)?;
        let mut bytes = Vec::new();
        checkpoint::save_resume(
            self.model.session(),
            self.cursor(),
            &self.model.export_pipeline(),
            &mut bytes,
        )?;
        if let Some(plan) = &self.fault {
            if let Some(action) = plan.check(FaultSite::CheckpointWrite) {
                plan.corrupt(&mut bytes, &action);
            }
        }
        // tmp + fsync + rename, without re-verification: injected
        // corruption must be allowed to land so resume's generation
        // fallback gets exercised.
        let path = Self::snapshot_path(&dir, self.global_step);
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp).map_err(CheckpointError::from)?;
            f.write_all(&bytes).map_err(CheckpointError::from)?;
            f.sync_all().map_err(CheckpointError::from)?;
        }
        std::fs::rename(&tmp, &path).map_err(CheckpointError::from)?;
        let mut generations = Self::generations(&dir);
        let keep = self.snapshot.keep.clamp(1, generations.len().max(1));
        if generations.len() > keep {
            for (_, old) in generations.split_off(keep) {
                let _ = std::fs::remove_file(old);
            }
        }
        self.report.snapshots_written += 1;
        self.report.snapshot_nanos += began.elapsed().as_nanos();
        Ok(())
    }

    /// Restores the newest loadable snapshot in `dir`, falling back to
    /// older generations when the newest is torn or corrupt. Returns
    /// the global step the run resumed at.
    ///
    /// # Errors
    ///
    /// [`TrainError::Checkpoint`] when no generation loads (the last
    /// generation's typed error), [`TrainError::Pipeline`] when the
    /// workload rejects its own pipeline blob.
    pub fn resume(&mut self, dir: impl AsRef<Path>) -> Result<u64, TrainError> {
        let dir = dir.as_ref();
        let generations = Self::generations(dir);
        if generations.is_empty() {
            return Err(TrainError::Checkpoint(CheckpointError::BadHeader(format!(
                "no step-*.ckpt snapshots in {}",
                dir.display()
            ))));
        }
        let mut last_err = None;
        for (step, path) in &generations {
            match checkpoint::load_resume_from_path(self.model.session_mut(), path) {
                Ok(header) => {
                    self.model
                        .import_pipeline(&header.pipeline)
                        .map_err(TrainError::Pipeline)?;
                    self.global_step = header.cursor.global_step;
                    debug_assert_eq!(header.cursor.global_step, *step);
                    self.report.resumed_from = Some(self.global_step);
                    self.report.steps = self.global_step;
                    return Ok(self.global_step);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(TrainError::Checkpoint(last_err.expect("generations is non-empty")))
    }

    /// One guarded optimizer step, retrying under the guardrail policy.
    /// Every attempt (first try and each retry) counts as one pass of
    /// the `train` fault site, so persistent fault schedules can defeat
    /// replay retries and exercise the divergence path.
    fn guarded_step(&mut self) -> Result<StepEnd, TrainError> {
        let budget = self.guard.map(|p| p.max_retries).unwrap_or(0);
        let mut attempt = 0u32;
        loop {
            if let Some(plan) = &self.fault {
                match plan.check(FaultSite::TrainStep) {
                    Some(FaultAction::Crash) => return Ok(StepEnd::Killed),
                    Some(FaultAction::PoisonNan) => {
                        let probes = self.model.train_probes().expect("checked in new()");
                        self.model.session_mut().poison_next_fetch(probes.loss);
                    }
                    Some(FaultAction::Panic) => panic!("injected fault: train step panic"),
                    _ => {}
                }
            }
            let began = Instant::now();
            match self.model.try_step() {
                Ok(stats) => {
                    self.report.step_nanos += began.elapsed().as_nanos();
                    self.report.final_loss = stats.loss;
                    self.report.final_grad_norm = stats.grad_norm;
                    return Ok(StepEnd::Done);
                }
                Err(ExecError::GuardTripped(reason)) => {
                    self.report.step_nanos += began.elapsed().as_nanos();
                    attempt += 1;
                    if attempt > budget {
                        return Err(TrainError::Diverged {
                            step: self.global_step,
                            retries: budget,
                            reason,
                        });
                    }
                    let policy = self.guard.expect("trips imply an armed guardrail");
                    match policy.retry {
                        RetryPolicy::Replay => {}
                        RetryPolicy::SkipBatch => self.model.skip_batch(),
                        RetryPolicy::LrBackoff { factor } => {
                            self.model.session_mut().scale_learning_rates(factor);
                        }
                    }
                    self.report.trips.push(TripEvent {
                        step: self.global_step,
                        reason,
                        attempt,
                        action: policy.retry,
                    });
                }
                Err(other) => return Err(TrainError::Exec(other)),
            }
        }
    }

    /// Runs until `target_steps` total optimizer steps have completed
    /// (counting steps restored by [`Trainer::resume`]), snapshotting on
    /// cadence and recovering from guardrail trips.
    ///
    /// # Errors
    ///
    /// [`TrainError::Diverged`] when a step exhausts its retry budget,
    /// or the underlying exec/checkpoint failure.
    pub fn run(&mut self, target_steps: u64) -> Result<TrainOutcome, TrainError> {
        while self.global_step < target_steps {
            if let StepEnd::Killed = self.guarded_step()? {
                self.report.runtime = self.model.session().runtime_counters();
                return Ok(TrainOutcome::Killed { at_step: self.global_step });
            }
            self.global_step += 1;
            self.report.steps = self.global_step;
            if self.snapshot.every > 0 && self.global_step.is_multiple_of(self.snapshot.every) {
                self.write_snapshot()?;
            }
        }
        self.report.runtime = self.model.session().runtime_counters();
        Ok(TrainOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelKind;
    use crate::workload::BuildConfig;

    fn autoenc_trainer(seed: u64) -> Trainer {
        let cfg = BuildConfig { seed, ..BuildConfig::training() };
        Trainer::new(ModelKind::Autoenc.build(&cfg)).expect("training mode")
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fathom-train-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn inference_workloads_are_rejected() {
        let err = match Trainer::new(ModelKind::Autoenc.build(&BuildConfig::inference())) {
            Ok(_) => panic!("inference workload must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, TrainError::NotTrainable(_)), "got {err:?}");
    }

    #[test]
    fn kill_and_resume_is_bitwise_identical() {
        let dir = tmp_dir("resume");
        // Clean leg: 9 uninterrupted steps.
        let mut clean = autoenc_trainer(11);
        assert_eq!(clean.run(9).unwrap(), TrainOutcome::Completed);
        let clean_loss = clean.report().final_loss.unwrap();

        // Fault leg: killed at step 7, after the cadence-4 snapshot at 4.
        let mut killed = autoenc_trainer(11)
            .with_snapshots(SnapshotPolicy { every: 4, keep: 2 }, &dir)
            .with_faults(Arc::new(
                FaultPlan::new(0).with(FaultSite::TrainStep, 7, FaultAction::Crash),
            ));
        assert_eq!(killed.run(9).unwrap(), TrainOutcome::Killed { at_step: 7 });
        drop(killed);

        // Resume leg: a fresh process picks up at step 4 (the newest
        // snapshot) and must land on the clean leg's exact loss bits.
        let mut resumed = autoenc_trainer(11);
        let at = resumed.resume(&dir).unwrap();
        assert_eq!(at, 4);
        assert_eq!(resumed.run(9).unwrap(), TrainOutcome::Completed);
        let resumed_loss = resumed.report().final_loss.unwrap();
        assert_eq!(
            clean_loss.to_bits(),
            resumed_loss.to_bits(),
            "resume diverged: clean {clean_loss} vs resumed {resumed_loss}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_only_the_newest_generations() {
        let dir = tmp_dir("rotate");
        let mut t = autoenc_trainer(3).with_snapshots(SnapshotPolicy { every: 2, keep: 2 }, &dir);
        t.run(8).unwrap();
        let gens = Trainer::generations(&dir);
        let steps: Vec<u64> = gens.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![8, 6], "rotation kept {steps:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_nan_trips_and_replay_recovers() {
        let mut t = autoenc_trainer(5)
            .with_guardrail(GuardrailPolicy::default())
            .with_faults(Arc::new(
                FaultPlan::new(0).with(FaultSite::TrainStep, 2, FaultAction::PoisonNan),
            ));
        assert_eq!(t.run(5).unwrap(), TrainOutcome::Completed);
        assert_eq!(t.report().trips.len(), 1, "exactly one trip expected");
        assert_eq!(t.report().trips[0].step, 2);
        assert!(t.report().final_loss.unwrap().is_finite());
        // The recovered run matches a clean run bitwise: the tripped
        // step was rolled back and replayed without the poison.
        let mut clean = autoenc_trainer(5);
        clean.run(5).unwrap();
        assert_eq!(
            clean.report().final_loss.unwrap().to_bits(),
            t.report().final_loss.unwrap().to_bits()
        );
    }

    #[test]
    fn unrecoverable_divergence_is_typed() {
        // Poison every step: replay cannot outlast a persistent NaN
        // source, so the retry budget must exhaust into Diverged.
        let plan = FaultPlan::new(0)
            .with(FaultSite::TrainStep, 0, FaultAction::PoisonNan)
            .with(FaultSite::TrainStep, 1, FaultAction::PoisonNan)
            .with(FaultSite::TrainStep, 2, FaultAction::PoisonNan)
            .with(FaultSite::TrainStep, 3, FaultAction::PoisonNan);
        let mut t = autoenc_trainer(7)
            .with_guardrail(GuardrailPolicy {
                max_retries: 2,
                ..GuardrailPolicy::default()
            })
            .with_faults(Arc::new(plan));
        // Each retry attempt probes the next train hit, so hits 0..=2
        // re-poison every attempt of step 0 until the budget exhausts.
        let err = t.run(4).unwrap_err();
        match err {
            TrainError::Diverged { step: 0, retries: 2, .. } => {}
            other => panic!("expected Diverged at step 0, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let mut t = autoenc_trainer(13).with_snapshots(SnapshotPolicy { every: 2, keep: 3 }, &dir);
        t.run(6).unwrap();
        // Tear the newest snapshot the way a dying writer would.
        let newest = Trainer::generations(&dir)[0].1.clone();
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let mut resumed = autoenc_trainer(13);
        let at = resumed.resume(&dir).unwrap();
        assert_eq!(at, 4, "should fall back past the torn step-6 snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_report_round_trips_as_json() {
        let mut t = autoenc_trainer(1).with_guardrail(GuardrailPolicy::default());
        let outcome = t.run(2).unwrap();
        let json = t.report().to_json(&outcome);
        assert!(json.contains("\"workload\": \"autoenc\""));
        assert!(json.contains("\"outcome\": \"completed\""));
        assert!(json.contains("\"steps\": 2"));
        assert!(json.contains("\"guardrail_trips\": 0"));
        assert!(json.contains("\"final_grad_norm\""));
    }

    #[test]
    fn non_finite_report_floats_become_null_tokens() {
        let report = TrainReport {
            workload: "autoenc",
            steps: 3,
            final_loss: Some(f32::NAN),
            final_grad_norm: Some(f32::INFINITY),
            ..TrainReport::default()
        };
        let json = report.to_json(&TrainOutcome::Completed);
        assert!(json.contains("\"final_loss\": null"));
        assert!(json.contains("\"final_grad_norm\": null"));
        for token in ["NaN", "inf"] {
            assert!(!json.contains(token), "bare {token} leaked into JSON: {json}");
        }
    }

    #[test]
    fn snapshot_write_faults_corrupt_but_do_not_stop_training() {
        let dir = tmp_dir("ckptfault");
        let plan = Arc::new(
            FaultPlan::new(9).with(FaultSite::CheckpointWrite, 1, FaultAction::BitFlips {
                flips: 8,
            }),
        );
        let mut t = autoenc_trainer(17)
            .with_snapshots(SnapshotPolicy { every: 2, keep: 3 }, &dir)
            .with_faults(plan.clone());
        t.run(6).unwrap();
        assert_eq!(plan.fired_count(), 1, "the ckpt-write fault must fire");
        // The corrupted middle generation (step 4) must be skipped; 6 is
        // still good, so resume lands there.
        let mut resumed = autoenc_trainer(17);
        let at = resumed.resume(&dir).unwrap();
        assert_eq!(at, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deepq_kill_and_resume_is_bitwise_identical() {
        // The stateful outlier: resume must restore the environment,
        // replay buffer, and action RNG, not just variables.
        let dir = tmp_dir("deepq");
        let cfg = BuildConfig { seed: 23, ..BuildConfig::training() };
        let mut clean = Trainer::new(ModelKind::Deepq.build(&cfg)).unwrap();
        clean.run(8).unwrap();
        let clean_loss = clean.report().final_loss.unwrap();

        let mut killed = Trainer::new(ModelKind::Deepq.build(&cfg))
            .unwrap()
            .with_snapshots(SnapshotPolicy { every: 3, keep: 2 }, &dir)
            .with_faults(Arc::new(
                FaultPlan::new(0).with(FaultSite::TrainStep, 7, FaultAction::Crash),
            ));
        assert_eq!(killed.run(8).unwrap(), TrainOutcome::Killed { at_step: 7 });
        drop(killed);

        let mut resumed = Trainer::new(ModelKind::Deepq.build(&cfg)).unwrap();
        assert_eq!(resumed.resume(&dir).unwrap(), 6);
        resumed.run(8).unwrap();
        assert_eq!(
            clean_loss.to_bits(),
            resumed.report().final_loss.unwrap().to_bits(),
            "deepq resume diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
