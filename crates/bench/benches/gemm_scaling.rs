//! `cargo bench -p fathom-bench --bench gemm_scaling`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::gemm::run(&effort));
}
