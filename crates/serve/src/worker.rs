//! Session workers: one pre-built inference graph per (workload,
//! replica), executing coalesced request batches.
//!
//! A [`SessionWorker`] owns a warm [`Session`] built at the batcher's
//! `max_batch` extent. Each dispatch packs the requests' tensors into
//! the graph's fixed-shape placeholders (zero-padding unused slots),
//! runs the single fetch named by the workload's
//! [`BatchSpec`](fathom::BatchSpec), and splits the result back into one
//! tensor per request. The engine talks to workers only through the
//! [`BatchRunner`] trait, so deterministic tests substitute fake runners
//! with injected service times.

use std::io::Read;
use std::time::Instant;

use fathom::{BatchSpec, BuildConfig, Mode, ModelKind, PortDomain, Workload};
use fathom_dataflow::checkpoint::{self, CheckpointError};
use fathom_dataflow::{batch, ExecError, OpClass, RuntimeCounters};
use fathom_tensor::{Rng, Shape, Tensor};

/// A failure while serving.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying graph execution failed.
    Exec(ExecError),
    /// The request or workload cannot be served as configured.
    Unservable(String),
    /// Warm-start checkpoint could not be restored.
    Checkpoint(CheckpointError),
    /// A replica failed while executing a batch — a crashed process,
    /// an injected fault, or an engine-internal invariant violation.
    Fault(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Exec(e) => write!(f, "serving execution failed: {e}"),
            ServeError::Unservable(msg) => write!(f, "unservable: {msg}"),
            ServeError::Checkpoint(e) => write!(f, "warm start failed: {e}"),
            ServeError::Fault(msg) => write!(f, "replica fault: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        ServeError::Exec(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

/// One admitted inference request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Monotonic id in admission order.
    pub id: u64,
    /// Virtual arrival time, nanoseconds since the run began.
    pub arrival: u64,
    /// One tensor per input port, each with extent 1 on its batch axis.
    pub inputs: Vec<Tensor>,
}

/// The result of executing one coalesced batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-request outputs, in the order the requests were given.
    pub outputs: Vec<Tensor>,
    /// Wall time of the batch execution, nanoseconds.
    pub service_nanos: f64,
    /// Op time by paper class A-G (zeros unless the worker traces).
    pub class_nanos: [f64; 7],
}

/// Executes coalesced batches — the engine's only view of a worker.
pub trait BatchRunner {
    /// Most requests one batch can carry.
    fn capacity(&self) -> usize;

    /// Runs `reqs` (1..=capacity of them) as one batch.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the requests do not fit the graph or
    /// execution fails.
    fn run_batch(&mut self, reqs: &[&Request]) -> Result<BatchResult, ServeError>;

    /// Restores the runner to a servable state after [`run_batch`]
    /// returned an error. The engine's supervisor calls this when a
    /// quarantine expires; the default is a no-op for stateless runners.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the runner cannot be rebuilt; the
    /// supervisor then re-quarantines or retires the replica.
    ///
    /// [`run_batch`]: BatchRunner::run_batch
    fn recover(&mut self) -> Result<(), ServeError> {
        Ok(())
    }

    /// Cumulative unified-runtime counters for this runner's session
    /// (arena misses, steals, width decisions). The default is all-zero
    /// for runners not backed by a real session, which keeps the
    /// counters out of their reports.
    fn runtime_counters(&self) -> RuntimeCounters {
        RuntimeCounters::default()
    }
}

/// A [`BatchRunner`] backed by a real workload session.
pub struct SessionWorker {
    model: Box<dyn Workload>,
    spec: BatchSpec,
    trace: bool,
    kind: ModelKind,
    cfg: BuildConfig,
    /// Checkpoint of the variables this worker should serve with — the
    /// initial weights at construction, replaced by [`warm_start`].
    /// [`recover`](Self::recover) rebuilds the session from these bytes.
    ///
    /// [`warm_start`]: Self::warm_start
    baseline: Vec<u8>,
}

impl SessionWorker {
    /// Builds an inference-mode instance of `kind` sized for batching.
    /// The config's `mode` is forced to inference; set `cfg.batch` to the
    /// batcher's `max_batch` so capacity and coalescing limit agree.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Unservable`] when the workload does not
    /// publish a [`BatchSpec`] (it has no batch-independent fetch).
    pub fn new(kind: ModelKind, cfg: &BuildConfig) -> Result<Self, ServeError> {
        let cfg = BuildConfig { mode: Mode::Inference, ..cfg.clone() };
        let model = kind.build(&cfg);
        let spec = model.batch_spec().ok_or_else(|| {
            ServeError::Unservable(format!("{} does not support batched serving", kind.name()))
        })?;
        let mut baseline = Vec::new();
        checkpoint::save(model.session(), &mut baseline)?;
        Ok(SessionWorker { model, spec, trace: false, kind, cfg, baseline })
    }

    /// The workload's batching contract.
    pub fn spec(&self) -> &BatchSpec {
        &self.spec
    }

    /// The underlying workload (e.g. to checkpoint or inspect).
    pub fn workload_mut(&mut self) -> &mut dyn Workload {
        self.model.as_mut()
    }

    /// Captures per-batch op traces so [`BatchResult::class_nanos`] (and
    /// the report's class slices) are populated.
    pub fn enable_tracing(&mut self) {
        self.trace = true;
    }

    /// Restores trained variables from a checkpoint stream before
    /// serving. Training and inference graphs share their variable set
    /// (optimizer state lives outside graph variables), so training
    /// checkpoints load directly.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Checkpoint`] when the stream is invalid or
    /// disagrees with the graph.
    pub fn warm_start(&mut self, r: impl Read) -> Result<(), ServeError> {
        // The checkpoint is the source of truth for the deployment:
        // drop any held ranges/plan so a stream without a calibration
        // section yields an f32 worker, not one quantized from stale
        // ranges.
        self.model.session_mut().clear_calibration();
        checkpoint::load(self.model.session_mut(), r)?;
        // A checkpoint that carries calibration ranges restores a
        // quantized deployment: re-derive the int8 plan from the
        // persisted ranges instead of serving f32.
        if self.model.session().calibration_ranges().is_some() {
            self.model.session_mut().quantize_from_calibration().map_err(ServeError::Unservable)?;
        }
        // The restored weights become the recovery baseline: a replica
        // rebuilt after a crash serves the warm-started model, not the
        // random initialization.
        self.baseline.clear();
        checkpoint::save(self.model.session(), &mut self.baseline)?;
        Ok(())
    }

    /// Calibrates per-channel activation ranges over `batches` synthetic
    /// full batches and switches the session's eligible GEMMs to the
    /// per-channel int8 path. Returns how many GEMMs were quantized.
    ///
    /// The calibration ranges ride in the worker's recovery baseline
    /// (the checkpoint format persists them), so a replica rebuilt after
    /// a crash re-quantizes itself and keeps serving int8 — see
    /// [`recover`](Self::recover).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Unservable`] when the workload has no
    /// quantizable GEMM, or a calibration batch fails to execute.
    pub fn quantize(&mut self, batches: usize, rng: &mut Rng) -> Result<usize, ServeError> {
        let shapes = self.item_shapes();
        let domains = self.domains();
        self.model.session_mut().begin_calibration();
        for _ in 0..batches {
            let reqs: Vec<Request> = (0..self.spec.capacity)
                .map(|id| Request {
                    id: id as u64,
                    arrival: 0,
                    inputs: synth_inputs(&shapes, &domains, rng),
                })
                .collect();
            let refs: Vec<&Request> = reqs.iter().collect();
            if let Err(e) = self.run_batch(&refs) {
                // Leave the session out of calibration mode on failure.
                self.model.session_mut().finish_calibration();
                return Err(e);
            }
        }
        self.model.session_mut().finish_calibration();
        let gemms =
            self.model.session_mut().quantize_from_calibration().map_err(ServeError::Unservable)?;
        // Re-save the baseline so recovery restores the calibration
        // ranges along with the weights.
        self.baseline.clear();
        checkpoint::save(self.model.session(), &mut self.baseline)?;
        Ok(gemms)
    }

    /// True when this worker serves through the int8 quantized plan.
    pub fn is_quantized(&self) -> bool {
        self.model.session().quant_plan().is_some()
    }

    /// The shape one request must supply for each input port (batch axis
    /// pinned to extent 1), in port order.
    pub fn item_shapes(&self) -> Vec<Shape> {
        self.spec
            .inputs
            .iter()
            .map(|p| batch::item_shape(self.model.session().graph().shape(p.node), p.batch_axis))
            .collect()
    }

    /// The value domain of each input port, in port order.
    pub fn domains(&self) -> Vec<PortDomain> {
        self.spec.inputs.iter().map(|p| p.domain).collect()
    }
}

impl BatchRunner for SessionWorker {
    fn capacity(&self) -> usize {
        self.spec.capacity
    }

    fn run_batch(&mut self, reqs: &[&Request]) -> Result<BatchResult, ServeError> {
        if reqs.is_empty() || reqs.len() > self.spec.capacity {
            return Err(ServeError::Unservable(format!(
                "batch of {} requests does not fit capacity {}",
                reqs.len(),
                self.spec.capacity
            )));
        }
        let shapes = self.item_shapes();
        let mut feeds = Vec::with_capacity(self.spec.inputs.len());
        for (j, port) in self.spec.inputs.iter().enumerate() {
            let mut items = Vec::with_capacity(reqs.len());
            for r in reqs {
                let t = r.inputs.get(j).ok_or_else(|| {
                    ServeError::Unservable(format!(
                        "request {} supplies {} inputs, graph has {} ports",
                        r.id,
                        r.inputs.len(),
                        self.spec.inputs.len()
                    ))
                })?;
                if t.shape() != &shapes[j] {
                    return Err(ServeError::Unservable(format!(
                        "request {} port {j} is {} but the graph wants {}",
                        r.id,
                        t.shape(),
                        shapes[j]
                    )));
                }
                items.push(t);
            }
            feeds.push((port.node, batch::pack(&items, port.batch_axis, self.spec.capacity)));
        }

        if self.trace {
            self.model.session_mut().enable_tracing();
        }
        let started = Instant::now();
        let fetched =
            self.model.session_mut().run1(self.spec.output.node, &feeds).map_err(ServeError::Exec)?;
        let service_nanos = started.elapsed().as_nanos() as f64;
        let mut class_nanos = [0.0; 7];
        if self.trace {
            let trace = self.model.session_mut().take_trace();
            for e in &trace.events {
                // Invariant: every TraceEvent carries one of the seven
                // paper classes, and OpClass::ALL enumerates all seven,
                // so the position lookup cannot fail.
                let slot = OpClass::ALL.iter().position(|c| *c == e.class).expect("A-G class");
                class_nanos[slot] += e.nanos;
            }
        }
        let outputs = batch::split(&fetched, self.spec.output.batch_axis, reqs.len());
        Ok(BatchResult { outputs, service_nanos, class_nanos })
    }

    /// Rebuilds the workload session from scratch and reloads the
    /// baseline checkpoint — the supervised-recovery path after a
    /// replica crash. Tracing preference survives the rebuild.
    fn recover(&mut self) -> Result<(), ServeError> {
        let model = self.kind.build(&self.cfg);
        let spec = model.batch_spec().ok_or_else(|| {
            ServeError::Unservable(format!("{} does not support batched serving", self.kind.name()))
        })?;
        self.model = model;
        self.spec = spec;
        checkpoint::load(self.model.session_mut(), self.baseline.as_slice())?;
        // If the baseline was saved by a quantized worker it carries the
        // calibration ranges; re-quantize so the rebuilt replica serves
        // the same int8 plan it crashed with.
        if self.model.session().calibration_ranges().is_some() {
            self.model.session_mut().quantize_from_calibration().map_err(ServeError::Unservable)?;
        }
        Ok(())
    }

    fn runtime_counters(&self) -> RuntimeCounters {
        self.model.session().runtime_counters()
    }
}

/// Synthesizes one request payload: uniform reals for
/// [`PortDomain::Real`] ports, valid token ids for
/// [`PortDomain::Tokens`] ports. Used by the load generator, which knows
/// shapes and domains but nothing about the model internals.
pub fn synth_inputs(shapes: &[Shape], domains: &[PortDomain], rng: &mut Rng) -> Vec<Tensor> {
    shapes
        .iter()
        .zip(domains)
        .map(|(shape, domain)| match domain {
            PortDomain::Real => Tensor::rand_uniform(shape.clone(), 0.0, 1.0, rng),
            PortDomain::Tokens { vocab } => {
                let data = (0..shape.num_elements()).map(|_| rng.below(*vocab) as f32).collect();
                Tensor::from_vec(data, shape.clone())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, worker: &SessionWorker, rng: &mut Rng) -> Request {
        Request { id, arrival: 0, inputs: synth_inputs(&worker.item_shapes(), &worker.domains(), rng) }
    }

    #[test]
    fn alexnet_batches_and_splits() {
        let cfg = BuildConfig::inference().with_batch(3);
        let mut w = SessionWorker::new(ModelKind::Alexnet, &cfg).expect("servable");
        assert_eq!(w.capacity(), 3);
        let mut rng = Rng::seeded(11);
        let reqs: Vec<Request> = (0..2).map(|i| request(i, &w, &mut rng)).collect();
        let refs: Vec<&Request> = reqs.iter().collect();
        let out = w.run_batch(&refs).expect("runs");
        assert_eq!(out.outputs.len(), 2);
        for o in &out.outputs {
            assert_eq!(o.shape().dim(0), 1, "per-request output has batch extent 1");
            assert!(o.all_finite());
        }
        assert!(out.service_nanos > 0.0);
    }

    #[test]
    fn tracing_populates_class_slices() {
        let cfg = BuildConfig::inference().with_batch(2);
        let mut w = SessionWorker::new(ModelKind::Alexnet, &cfg).expect("servable");
        w.enable_tracing();
        let mut rng = Rng::seeded(5);
        let req = request(0, &w, &mut rng);
        let out = w.run_batch(&[&req]).expect("runs");
        // AlexNet inference must spend time in convolution (class B).
        assert!(out.class_nanos[1] > 0.0, "no convolution time traced: {:?}", out.class_nanos);
    }

    #[test]
    fn shape_mismatch_is_unservable_not_a_panic() {
        let cfg = BuildConfig::inference().with_batch(2);
        let mut w = SessionWorker::new(ModelKind::Alexnet, &cfg).expect("servable");
        let bogus = Request { id: 0, arrival: 0, inputs: vec![Tensor::zeros([1, 2])] };
        let err = w.run_batch(&[&bogus]).unwrap_err();
        assert!(matches!(err, ServeError::Unservable(_)), "got {err}");
    }

    #[test]
    fn overfull_batches_are_rejected() {
        let cfg = BuildConfig::inference().with_batch(1);
        let mut w = SessionWorker::new(ModelKind::Alexnet, &cfg).expect("servable");
        let mut rng = Rng::seeded(3);
        let reqs: Vec<Request> = (0..2).map(|i| request(i, &w, &mut rng)).collect();
        let refs: Vec<&Request> = reqs.iter().collect();
        assert!(matches!(w.run_batch(&refs).unwrap_err(), ServeError::Unservable(_)));
    }

    #[test]
    fn recover_rebuilds_the_session_with_identical_weights() {
        let cfg = BuildConfig::inference().with_batch(2);
        let mut w = SessionWorker::new(ModelKind::Alexnet, &cfg).expect("servable");
        let mut rng = Rng::seeded(21);
        let req = request(0, &w, &mut rng);
        let before = w.run_batch(&[&req]).expect("runs");
        w.recover().expect("recovers");
        let after = w.run_batch(&[&req]).expect("runs after recovery");
        assert_eq!(
            before.outputs[0].data(),
            after.outputs[0].data(),
            "recovery must restore the exact served weights"
        );
    }

    #[test]
    fn quantize_switches_serving_and_survives_recovery() {
        let cfg = BuildConfig::inference().with_batch(2);
        let mut w = SessionWorker::new(ModelKind::Memnet, &cfg).expect("servable");
        let mut rng = Rng::seeded(31);
        let req = request(0, &w, &mut rng);
        let f32_out = w.run_batch(&[&req]).expect("f32 baseline");
        assert!(!w.is_quantized());

        let gemms = w.quantize(2, &mut rng).expect("memnet has dense GEMMs");
        assert!(gemms >= 1, "at least one GEMM should quantize");
        assert!(w.is_quantized());
        let q_out = w.run_batch(&[&req]).expect("quantized run");
        assert_ne!(
            f32_out.outputs[0].data(),
            q_out.outputs[0].data(),
            "the int8 path must actually engage"
        );
        for o in &q_out.outputs {
            assert!(o.all_finite());
        }

        // A replica rebuilt after a crash must come back quantized (the
        // baseline persists the calibration ranges) and serve bitwise
        // the same outputs.
        w.recover().expect("recovers");
        assert!(w.is_quantized(), "recovery must restore the int8 plan");
        let r_out = w.run_batch(&[&req]).expect("runs after recovery");
        assert_eq!(q_out.outputs[0].data(), r_out.outputs[0].data());
    }

    #[test]
    fn warm_start_moves_a_quantized_deployment_between_workers() {
        let cfg = BuildConfig::inference().with_batch(2);
        let mut a = SessionWorker::new(ModelKind::Memnet, &cfg).expect("servable");
        let mut rng = Rng::seeded(47);
        a.quantize(2, &mut rng).expect("quantizes");
        let req = request(0, &a, &mut rng);
        let a_out = a.run_batch(&[&req]).expect("runs");
        let mut ckpt = Vec::new();
        checkpoint::save(a.workload_mut().session(), &mut ckpt).expect("saves");

        // The calibrated checkpoint restores a quantized deployment.
        let mut b = SessionWorker::new(ModelKind::Memnet, &cfg).expect("servable");
        b.warm_start(ckpt.as_slice()).expect("warm starts");
        assert!(b.is_quantized(), "calibrated checkpoint must re-quantize");
        let b_out = b.run_batch(&[&req]).expect("runs");
        assert_eq!(a_out.outputs[0].data(), b_out.outputs[0].data());

        // A plain (uncalibrated) checkpoint restores an f32 deployment,
        // even on a worker that was quantized before.
        let plain = SessionWorker::new(ModelKind::Memnet, &cfg).expect("servable");
        let mut plain_ckpt = Vec::new();
        checkpoint::save(plain.model.session(), &mut plain_ckpt).expect("saves");
        b.warm_start(plain_ckpt.as_slice()).expect("warm starts");
        assert!(!b.is_quantized(), "plain checkpoint must clear the int8 plan");
    }

    #[test]
    fn token_ports_synthesize_valid_ids() {
        let cfg = BuildConfig::inference().with_batch(2);
        let w = SessionWorker::new(ModelKind::Memnet, &cfg).expect("servable");
        let mut rng = Rng::seeded(9);
        let inputs = synth_inputs(&w.item_shapes(), &w.domains(), &mut rng);
        for (t, d) in inputs.iter().zip(w.domains()) {
            if let PortDomain::Tokens { vocab } = d {
                for &v in t.data() {
                    assert!(v >= 0.0 && (v as usize) < vocab && v.fract() == 0.0);
                }
            }
        }
    }
}
