//! `alexnet` — the watershed deep convolutional image classifier
//! (Krizhevsky, Sutskever & Hinton, NIPS 2012).
//!
//! Topology (5 conv + 3 fully-connected layers, ReLU throughout, dropout
//! on the first two dense layers — the regularization AlexNet introduced):
//!
//! ```text
//! conv 11x11/4 -> pool 3/2 -> conv 5x5 -> pool 3/2 ->
//! conv 3x3 -> conv 3x3 -> conv 3x3 -> pool 3/2 ->
//! fc -> dropout -> fc -> dropout -> fc(classes)
//! ```
//!
//! Local response normalization is omitted (it was already dropped by the
//! community as ineffective; see DESIGN.md). At `ModelScale::Reference`
//! the input is 64x64 with reduced channel counts; `Full` uses the paper's
//! 224x224 / 96-384 channel configuration.

use fathom_dataflow::{Optimizer, Session};
use fathom_nn::{conv2d, dense, dropout, flatten, max_pool, Activation};
use fathom_tensor::kernels::conv::Conv2dSpec;

use crate::models::common::ImageClassifier;
use crate::workload::{BuildConfig, Mode, ModelScale, StepStats, Workload, WorkloadMetadata};

/// Dimensions per scale.
struct Dims {
    batch: usize,
    side: usize,
    classes: usize,
    conv_channels: [usize; 5],
    fc: usize,
}

fn dims(scale: ModelScale) -> Dims {
    match scale {
        ModelScale::Reference => Dims {
            batch: 4,
            side: 64,
            classes: 10,
            conv_channels: [24, 48, 96, 96, 64],
            fc: 256,
        },
        ModelScale::Full => Dims {
            batch: 16,
            side: 224,
            classes: 1000,
            conv_channels: [96, 256, 384, 384, 256],
            fc: 4096,
        },
    }
}

/// Table II metadata for `alexnet`.
pub fn metadata() -> WorkloadMetadata {
    WorkloadMetadata {
        name: "alexnet",
        year: 2012,
        reference: "Krizhevsky, Sutskever & Hinton, NIPS 2012",
        style: "Convolutional, Full",
        layers: 5,
        task: "Supervised",
        dataset: "ImageNet",
        purpose: "Image classifier. Watershed for deep learning by beating \
                  hand-tuned image systems at ILSVRC 2012.",
    }
}

/// The `alexnet` workload.
pub struct Alexnet {
    inner: ImageClassifier,
}

impl Alexnet {
    /// Builds the workload per the configuration.
    pub fn build(cfg: &BuildConfig) -> Self {
        let mut d = dims(cfg.scale);
        d.batch = cfg.batch_or(d.batch);
        let training = cfg.mode == Mode::Training;
        let inner = ImageClassifier::new(
            metadata(),
            cfg,
            d.batch,
            d.side,
            d.classes,
            Optimizer::momentum(0.01),
            |g, p, images| {
                let [c1, c2, c3, c4, c5] = d.conv_channels;
                let x = conv2d(g, p, "conv1", images, 11, c1, Conv2dSpec { stride: 4, pad: 2 }, Activation::Relu);
                let x = max_pool(g, x, 3, 2);
                let x = conv2d(g, p, "conv2", x, 5, c2, Conv2dSpec::same(5), Activation::Relu);
                let x = max_pool(g, x, 3, 2);
                let x = conv2d(g, p, "conv3", x, 3, c3, Conv2dSpec::same(3), Activation::Relu);
                let x = conv2d(g, p, "conv4", x, 3, c4, Conv2dSpec::same(3), Activation::Relu);
                let x = conv2d(g, p, "conv5", x, 3, c5, Conv2dSpec::same(3), Activation::Relu);
                let x = max_pool(g, x, 3, 2);
                let x = flatten(g, x);
                let x = dense(g, p, "fc6", x, d.fc, Activation::Relu);
                let x = if training { dropout(g, x, 0.5) } else { x };
                let x = dense(g, p, "fc7", x, d.fc, Activation::Relu);
                let x = if training { dropout(g, x, 0.5) } else { x };
                dense(g, p, "fc8", x, d.classes, Activation::Linear)
            },
        );
        Alexnet { inner }
    }
}

impl Workload for Alexnet {
    fn metadata(&self) -> &WorkloadMetadata {
        self.inner.metadata()
    }

    fn mode(&self) -> Mode {
        self.inner.mode()
    }

    fn try_step(&mut self) -> Result<StepStats, fathom_dataflow::ExecError> {
        self.inner.try_step()
    }

    fn session(&self) -> &Session {
        self.inner.session()
    }

    fn session_mut(&mut self) -> &mut Session {
        self.inner.session_mut()
    }

    fn batch_spec(&self) -> Option<crate::workload::BatchSpec> {
        self.inner.batch_spec()
    }

    fn train_probes(&self) -> Option<crate::workload::TrainProbes> {
        self.inner.train_probes()
    }

    fn export_pipeline(&self) -> Vec<u8> {
        self.inner.export_pipeline()
    }

    fn import_pipeline(&mut self, blob: &[u8]) -> Result<(), String> {
        self.inner.import_pipeline(blob)
    }

    fn skip_batch(&mut self) {
        self.inner.skip_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::OpKind;

    #[test]
    fn builds_and_steps_training() {
        let mut m = Alexnet::build(&BuildConfig::training());
        let stats = m.step();
        let loss = stats.loss.expect("training reports loss");
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn inference_reports_accuracy() {
        let mut m = Alexnet::build(&BuildConfig::inference());
        let stats = m.step();
        let acc = stats.metric.expect("inference reports accuracy");
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn training_graph_contains_dropout_but_inference_does_not() {
        let train = Alexnet::build(&BuildConfig::training());
        let infer = Alexnet::build(&BuildConfig::inference());
        let has_dropout = |m: &Alexnet| {
            m.session()
                .graph()
                .iter()
                .any(|(_, n)| matches!(n.kind, OpKind::DropoutMask { .. }))
        };
        assert!(has_dropout(&train), "AlexNet training uses dropout");
        assert!(!has_dropout(&infer));
    }

    #[test]
    fn has_five_conv_layers() {
        let m = Alexnet::build(&BuildConfig::inference());
        let convs = m
            .session()
            .graph()
            .iter()
            .filter(|(_, n)| matches!(n.kind, OpKind::Conv2D(_)))
            .count();
        assert_eq!(convs, 5);
    }
}
