//! Graph construction: nodes, edges, and builder helpers.

use std::fmt;

use fathom_tensor::kernels::conv::Conv2dSpec;
use fathom_tensor::kernels::pool2d::Pool2dSpec;
use fathom_tensor::{Shape, Tensor};

use crate::op::OpKind;

/// Identifies a node within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The node's position in graph insertion order.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors produced while building a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An operation rejected its input shapes.
    Shape {
        /// Operation type name.
        op: &'static str,
        /// Explanation of the mismatch.
        msg: String,
    },
    /// An input [`NodeId`] does not belong to this graph.
    UnknownNode(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Shape { op, msg } => write!(f, "invalid shapes for {op}: {msg}"),
            GraphError::UnknownNode(id) => write!(f, "node {id} does not belong to this graph"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One operation instance in the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Operation type and attributes.
    pub kind: OpKind,
    /// Dataflow inputs, in operation-defined order.
    pub inputs: Vec<NodeId>,
    /// Statically inferred output shape.
    pub shape: Shape,
    /// Optional human-readable name (layer names, variable names).
    pub name: Option<String>,
}

/// A coarse-grained dataflow graph.
///
/// Graphs are append-only: nodes are added with [`Graph::add`] (or the
/// typed builder helpers) and never removed, so a [`NodeId`] is valid for
/// the life of the graph.
///
/// # Examples
///
/// ```
/// use fathom_dataflow::Graph;
/// use fathom_tensor::{Shape, Tensor};
///
/// let mut g = Graph::new();
/// let x = g.placeholder("x", Shape::matrix(2, 3));
/// let w = g.variable("w", Tensor::ones([3, 4]));
/// let y = g.matmul(x, w);
/// assert_eq!(g.shape(y).dims(), &[2, 4]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The inferred output shape of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    pub fn shape(&self, id: NodeId) -> &Shape {
        &self.node(id).shape
    }

    /// Iterates over `(id, node)` pairs in insertion (topological-friendly)
    /// order. Because the graph is append-only, every node's inputs precede
    /// it.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Ids of all `Variable` nodes, in insertion order.
    pub fn variables(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| matches!(n.kind, OpKind::Variable { .. }))
            .map(|(id, _)| id)
            .collect()
    }

    /// Scales the learning rate of every optimizer `Apply*` node by
    /// `factor`, returning how many nodes were rescaled. This is the
    /// guardrail's backoff lever: after a divergence the training loop
    /// can shrink the step size and replay the batch without rebuilding
    /// the graph. The hyperparameters live in the node kinds and are read
    /// fresh at dispatch, so the change takes effect on the next run.
    pub fn scale_apply_lrs(&mut self, factor: f32) -> usize {
        let mut scaled = 0;
        for node in &mut self.nodes {
            let lr = match &mut node.kind {
                OpKind::ApplyGradientDescent { lr }
                | OpKind::ApplyMomentum { lr, .. }
                | OpKind::ApplyRmsProp { lr, .. }
                | OpKind::ApplyAdam { lr, .. } => lr,
                _ => continue,
            };
            *lr *= factor;
            scaled += 1;
        }
        scaled
    }

    /// Adds a node, validating inputs and inferring the output shape.
    ///
    /// # Errors
    ///
    /// Returns an error if an input id is foreign or the shapes are
    /// invalid for the operation.
    pub fn try_add(&mut self, kind: OpKind, inputs: &[NodeId]) -> Result<NodeId, GraphError> {
        for &i in inputs {
            if i.index() >= self.nodes.len() {
                return Err(GraphError::UnknownNode(i));
            }
        }
        let shapes: Vec<&Shape> = inputs.iter().map(|&i| &self.nodes[i.index()].shape).collect();
        let shape = kind.infer_shape(&shapes)?;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, inputs: inputs.to_vec(), shape, name: None });
        Ok(id)
    }

    /// Rewrites a node in place with a new kind and input list, keeping
    /// its id, shape, and name. This is how the fusion pass collapses a
    /// group: the root becomes a [`OpKind::Fused`] node over the group's
    /// external inputs while interior nodes stay in the graph (possibly
    /// unreferenced), so every previously handed-out [`NodeId`] remains
    /// valid and fetchable.
    ///
    /// # Errors
    ///
    /// Returns an error if an input id is foreign or does not strictly
    /// precede `id` (which would break the append-order topological
    /// invariant), or if the new kind infers a different output shape.
    pub fn replace_node(
        &mut self,
        id: NodeId,
        kind: OpKind,
        inputs: &[NodeId],
    ) -> Result<(), GraphError> {
        if id.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(id));
        }
        for &i in inputs {
            if i.index() >= id.index() {
                return Err(GraphError::UnknownNode(i));
            }
        }
        let shapes: Vec<&Shape> = inputs.iter().map(|&i| &self.nodes[i.index()].shape).collect();
        let shape = kind.infer_shape(&shapes)?;
        let node = &mut self.nodes[id.index()];
        if shape != node.shape {
            return Err(GraphError::Shape {
                op: node.kind.name(),
                msg: format!("replacement infers {shape}, original was {}", node.shape),
            });
        }
        node.kind = kind;
        node.inputs = inputs.to_vec();
        Ok(())
    }

    /// Adds a node, panicking on invalid input (graph construction errors
    /// are programming errors, as in TensorFlow's Python frontend).
    ///
    /// # Panics
    ///
    /// Panics if the inputs are invalid for the operation.
    pub fn add(&mut self, kind: OpKind, inputs: &[NodeId]) -> NodeId {
        match self.try_add(kind.clone(), inputs) {
            Ok(id) => id,
            Err(e) => panic!("cannot add {kind} node: {e}"),
        }
    }

    /// Attaches a debug name to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    pub fn set_name(&mut self, id: NodeId, name: impl Into<String>) {
        self.nodes[id.index()].name = Some(name.into());
    }

    // ---- typed builder helpers ----

    /// A value fed at run time.
    pub fn placeholder(&mut self, name: impl Into<String>, shape: impl Into<Shape>) -> NodeId {
        let id = self.add(OpKind::Placeholder { shape: shape.into() }, &[]);
        self.set_name(id, name);
        id
    }

    /// Mutable state initialized to `init`.
    pub fn variable(&mut self, name: impl Into<String>, init: Tensor) -> NodeId {
        let id = self.add(OpKind::Variable { init }, &[]);
        self.set_name(id, name);
        id
    }

    /// An embedded immutable value.
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.add(OpKind::Constant(value), &[])
    }

    /// Matrix product `a * b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::MatMul { transpose_a: false, transpose_b: false }, &[a, b])
    }

    /// Matrix product with transposition flags.
    pub fn matmul_t(&mut self, a: NodeId, b: NodeId, transpose_a: bool, transpose_b: bool) -> NodeId {
        self.add(OpKind::MatMul { transpose_a, transpose_b }, &[a, b])
    }

    /// NHWC convolution of `input` by `filter`.
    pub fn conv2d(&mut self, input: NodeId, filter: NodeId, spec: Conv2dSpec) -> NodeId {
        self.add(OpKind::Conv2D(spec), &[input, filter])
    }

    /// NHWC max pooling.
    pub fn max_pool(&mut self, input: NodeId, spec: Pool2dSpec) -> NodeId {
        self.add(OpKind::MaxPool(spec), &[input])
    }

    /// NHWC average pooling.
    pub fn avg_pool(&mut self, input: NodeId, spec: Pool2dSpec) -> NodeId {
        self.add(OpKind::AvgPool(spec), &[input])
    }

    /// Broadcasting `a + b`.
    pub fn add_op(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Add, &[a, b])
    }

    /// Broadcasting `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Sub, &[a, b])
    }

    /// Broadcasting `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Mul, &[a, b])
    }

    /// Broadcasting `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Div, &[a, b])
    }

    /// Broadcasting elementwise maximum.
    pub fn maximum(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Maximum, &[a, b])
    }

    /// Broadcasting elementwise `a > b` as 0/1 values.
    pub fn greater(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Greater, &[a, b])
    }

    /// Elementwise ternary select: `cond != 0 ? a : b`.
    pub fn select(&mut self, cond: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Select, &[cond, a, b])
    }

    /// Maximum along `axis`, optionally keeping the axis.
    pub fn max_axis(&mut self, x: NodeId, axis: usize, keep_dims: bool) -> NodeId {
        self.add(OpKind::MaxReduce { axis, keep_dims }, &[x])
    }

    /// Elementwise negation.
    pub fn neg(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Neg, &[x])
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Exp, &[x])
    }

    /// Elementwise logarithm.
    pub fn log(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Log, &[x])
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Sqrt, &[x])
    }

    /// Elementwise square.
    pub fn square(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Square, &[x])
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Tanh, &[x])
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Sigmoid, &[x])
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Relu, &[x])
    }

    /// Sum of same-shaped tensors.
    pub fn add_n(&mut self, inputs: &[NodeId]) -> NodeId {
        self.add(OpKind::AddN, inputs)
    }

    /// Sum along `axis` (dropping it).
    pub fn sum_axis(&mut self, x: NodeId, axis: usize) -> NodeId {
        self.add(OpKind::Sum { axis: Some(axis), keep_dims: false }, &[x])
    }

    /// Sum along `axis`, keeping it with extent 1.
    pub fn sum_axis_keep(&mut self, x: NodeId, axis: usize) -> NodeId {
        self.add(OpKind::Sum { axis: Some(axis), keep_dims: true }, &[x])
    }

    /// Sum of all elements.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Sum { axis: None, keep_dims: false }, &[x])
    }

    /// Mean of all elements.
    pub fn mean_all(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Mean { axis: None, keep_dims: false }, &[x])
    }

    /// Mean along `axis`, optionally keeping the axis.
    pub fn mean_axis(&mut self, x: NodeId, axis: usize, keep_dims: bool) -> NodeId {
        self.add(OpKind::Mean { axis: Some(axis), keep_dims }, &[x])
    }

    /// Softmax along the last axis.
    pub fn softmax(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::Softmax, &[x])
    }

    /// Mean softmax cross-entropy of `[batch, classes]` logits against
    /// `[batch]` integer labels.
    pub fn softmax_cross_entropy(&mut self, logits: NodeId, labels: NodeId) -> NodeId {
        self.add(OpKind::SoftmaxCrossEntropy, &[logits, labels])
    }

    /// CTC loss of `[T, B, C]` logits against `[B, L]` padded labels.
    pub fn ctc_loss(&mut self, logits: NodeId, labels: NodeId, blank: usize) -> NodeId {
        self.add(OpKind::CtcLoss { blank }, &[logits, labels])
    }

    /// Tiles `x` by `reps` along each axis.
    pub fn tile(&mut self, x: NodeId, reps: Vec<usize>) -> NodeId {
        self.add(OpKind::Tile { reps }, &[x])
    }

    /// I.i.d. standard normal sample of the given shape.
    pub fn random_normal(&mut self, shape: impl Into<Shape>) -> NodeId {
        self.add(
            OpKind::StandardRandomNormal { shape: shape.into(), mean: 0.0, std: 1.0 },
            &[],
        )
    }

    /// Inverted-dropout mask shaped like `x`.
    pub fn dropout_mask(&mut self, x: NodeId, rate: f32) -> NodeId {
        self.add(OpKind::DropoutMask { rate }, &[x])
    }

    /// Reshape to an explicit shape.
    pub fn reshape(&mut self, x: NodeId, shape: impl Into<Shape>) -> NodeId {
        self.add(OpKind::Reshape(shape.into()), &[x])
    }

    /// Axis permutation.
    pub fn transpose(&mut self, x: NodeId, perm: Vec<usize>) -> NodeId {
        self.add(OpKind::Transpose { perm }, &[x])
    }

    /// Concatenation along `axis`.
    pub fn concat(&mut self, inputs: &[NodeId], axis: usize) -> NodeId {
        self.add(OpKind::Concat { axis }, inputs)
    }

    /// Contiguous slice along `axis`.
    pub fn slice(&mut self, x: NodeId, axis: usize, start: usize, len: usize) -> NodeId {
        self.add(OpKind::Slice { axis, start, len }, &[x])
    }

    /// Embedding lookup of `indices` rows in `table`.
    pub fn gather(&mut self, table: NodeId, indices: NodeId) -> NodeId {
        self.add(OpKind::Gather, &[table, indices])
    }

    /// Materializes a node's shape as data.
    pub fn shape_of(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::ShapeOf, &[x])
    }

    /// Identity with blocked gradient.
    pub fn stop_gradient(&mut self, x: NodeId) -> NodeId {
        self.add(OpKind::StopGradient, &[x])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(4, 3));
        let w = g.variable("w", Tensor::ones([3, 2]));
        let y = g.matmul(x, w);
        let z = g.relu(y);
        assert_eq!(g.len(), 4);
        assert_eq!(g.shape(z).dims(), &[4, 2]);
        assert_eq!(g.node(z).inputs, vec![y]);
        assert_eq!(g.node(x).name.as_deref(), Some("x"));
    }

    #[test]
    fn variables_enumerated_in_order() {
        let mut g = Graph::new();
        let _x = g.placeholder("x", Shape::vector(2));
        let a = g.variable("a", Tensor::zeros([2]));
        let b = g.variable("b", Tensor::zeros([2]));
        assert_eq!(g.variables(), vec![a, b]);
    }

    #[test]
    fn try_add_reports_shape_error() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(2, 3));
        let y = g.placeholder("y", Shape::matrix(4, 5));
        let err = g
            .try_add(OpKind::MatMul { transpose_a: false, transpose_b: false }, &[x, y])
            .unwrap_err();
        assert!(matches!(err, GraphError::Shape { op: "MatMul", .. }));
        assert!(err.to_string().contains("contraction mismatch"));
    }

    #[test]
    fn foreign_node_rejected() {
        let mut g1 = Graph::new();
        let mut g2 = Graph::new();
        let x = g1.placeholder("x", Shape::vector(2));
        let _ = g1.placeholder("pad", Shape::vector(2));
        let err = g2.try_add(OpKind::Neg, &[x]).unwrap_err();
        assert_eq!(err, GraphError::UnknownNode(x));
    }

    #[test]
    #[should_panic(expected = "cannot add MatMul")]
    fn add_panics_on_bad_shapes() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(2, 3));
        let y = g.placeholder("y", Shape::matrix(4, 5));
        g.matmul(x, y);
    }

    #[test]
    fn inputs_precede_outputs() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4));
        let y = g.neg(x);
        let z = g.add_op(x, y);
        for (id, node) in g.iter() {
            for &input in &node.inputs {
                assert!(input.index() < id.index());
            }
        }
        assert_eq!(g.shape(z).dims(), &[4]);
    }
}
