//! Property-based tests for serve metrics: merging per-shard latency
//! histograms must be indistinguishable from having recorded every
//! sample into one histogram — the invariant the cluster report's
//! cross-shard aggregation rests on.

use fathom_serve::{LatencyHistogram, ShedBreakdown};
use proptest::prelude::*;

/// Random latency samples (nanoseconds) plus a shard assignment.
fn samples_and_shards() -> impl Strategy<Value = (Vec<f64>, Vec<usize>)> {
    proptest::collection::vec(1.0f64..5e8, 1..200).prop_flat_map(|samples| {
        let n = samples.len();
        (Just(samples), proptest::collection::vec(0usize..4, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partition samples over up to four shards, merge the shard
    /// histograms, and compare every statistic against one combined
    /// histogram over the same samples.
    #[test]
    fn merged_shard_histograms_match_one_combined((samples, shards) in samples_and_shards()) {
        let mut combined = LatencyHistogram::new();
        let mut per_shard = vec![LatencyHistogram::new(); 4];
        for (s, shard) in samples.iter().zip(&shards) {
            combined.record(*s);
            per_shard[*shard].record(*s);
        }
        let mut merged = LatencyHistogram::new();
        for h in &per_shard {
            merged.merge(h);
        }
        prop_assert_eq!(merged.count(), combined.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), combined.quantile(q), "quantile {}", q);
        }
        // Means sum in different sample orders, so allow FP slack.
        prop_assert!((merged.mean() - combined.mean()).abs() <= 1e-9 * combined.mean().abs());
        prop_assert_eq!(merged.max(), combined.max());
    }

    /// Merge order never matters: folding shard histograms in reverse
    /// yields the same quantiles.
    #[test]
    fn merge_is_order_insensitive((samples, shards) in samples_and_shards()) {
        let mut per_shard = vec![LatencyHistogram::new(); 4];
        for (s, shard) in samples.iter().zip(&shards) {
            per_shard[*shard].record(*s);
        }
        let fold = |hs: &[LatencyHistogram]| {
            let mut m = LatencyHistogram::new();
            for h in hs {
                m.merge(h);
            }
            (m.count(), m.quantile(0.5), m.quantile(0.99), m.max())
        };
        let forward = fold(&per_shard);
        per_shard.reverse();
        prop_assert_eq!(forward, fold(&per_shard));
    }

    /// Shed-reason totals are additive under merge.
    #[test]
    fn shed_breakdown_merge_is_additive(
        a in proptest::collection::vec(0u64..1000, 4),
        b in proptest::collection::vec(0u64..1000, 4),
    ) {
        let mk = |v: &[u64]| ShedBreakdown {
            queue_full: v[0],
            deadline_infeasible: v[1],
            priority_evicted: v[2],
            replica_loss: v[3],
        };
        let (x, y) = (mk(&a), mk(&b));
        let mut merged = x;
        merged.merge(&y);
        prop_assert_eq!(merged.total(), x.total() + y.total());
        prop_assert_eq!(merged.queue_full, x.queue_full + y.queue_full);
        prop_assert_eq!(merged.any(), x.any() || y.any());
    }
}
