//! Synthetic question-answering stories standing in for the bAbI tasks.
//!
//! Generates task-1-style ("single supporting fact") stories: entities
//! move between locations; the question asks where an entity is; the
//! answer is the location from the most recent supporting sentence. This
//! is a real reasoning task — a model must learn temporal order and
//! addressing, exactly the ability end-to-end memory networks were built
//! to demonstrate.

use fathom_tensor::{Rng, Tensor};

/// Word id reserved for padding.
pub const PAD: usize = 0;

const ENTITIES: [&str; 6] = ["mary", "john", "sandra", "daniel", "bill", "fred"];
const LOCATIONS: [&str; 6] = ["kitchen", "garden", "office", "bathroom", "hallway", "bedroom"];
const VERBS: [&str; 3] = ["went", "moved", "travelled"];

/// Vocabulary and generator for bAbI-style stories.
#[derive(Debug, Clone)]
pub struct BabiTask {
    sentences: usize,
    rng: Rng,
}

/// One generated story with its question and answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Story {
    /// Sentences as `[who, verb, where]` word-id triples.
    pub sentences: Vec<[usize; 3]>,
    /// Question as `[who]` (word id of the queried entity).
    pub question: usize,
    /// Answer word id (a location).
    pub answer_word: usize,
    /// Answer as a class index in `0..LOCATIONS`.
    pub answer_class: usize,
}

impl BabiTask {
    /// Creates a generator producing stories of exactly `sentences`
    /// supporting sentences.
    ///
    /// # Panics
    ///
    /// Panics if `sentences == 0`.
    pub fn new(sentences: usize, seed: u64) -> Self {
        assert!(sentences > 0, "stories need at least one sentence");
        BabiTask { sentences, rng: Rng::seeded(seed) }
    }

    /// The stream's RNG state, for checkpointing the pipeline cursor.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores a stream captured with [`BabiTask::rng_state`];
    /// subsequent batches continue exactly where the capture left off.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = Rng::from_state(state);
    }

    /// Number of sentences per story.
    pub fn sentences(&self) -> usize {
        self.sentences
    }

    /// Total vocabulary size (pad + entities + verbs + locations).
    pub fn vocab(&self) -> usize {
        1 + ENTITIES.len() + VERBS.len() + LOCATIONS.len()
    }

    /// Number of answer classes (locations).
    pub fn classes(&self) -> usize {
        LOCATIONS.len()
    }

    /// Words per sentence in the encoded tensors.
    pub fn sentence_len(&self) -> usize {
        3
    }

    fn entity_word(i: usize) -> usize {
        1 + i
    }

    fn verb_word(i: usize) -> usize {
        1 + ENTITIES.len() + i
    }

    fn location_word(i: usize) -> usize {
        1 + ENTITIES.len() + VERBS.len() + i
    }

    /// The printable word behind an id (for demos and debugging).
    pub fn word_str(&self, id: usize) -> &'static str {
        if id == PAD {
            "<pad>"
        } else if id <= ENTITIES.len() {
            ENTITIES[id - 1]
        } else if id <= ENTITIES.len() + VERBS.len() {
            VERBS[id - 1 - ENTITIES.len()]
        } else {
            LOCATIONS[id - 1 - ENTITIES.len() - VERBS.len()]
        }
    }

    /// Generates one story.
    pub fn story(&mut self) -> Story {
        let mut last_location = [None::<usize>; ENTITIES.len()];
        let mut sentences = Vec::with_capacity(self.sentences);
        for _ in 0..self.sentences {
            let e = self.rng.below(ENTITIES.len());
            let v = self.rng.below(VERBS.len());
            let l = self.rng.below(LOCATIONS.len());
            last_location[e] = Some(l);
            sentences.push([Self::entity_word(e), Self::verb_word(v), Self::location_word(l)]);
        }
        // Ask about an entity that has moved at least once.
        let known: Vec<usize> = (0..ENTITIES.len()).filter(|&e| last_location[e].is_some()).collect();
        let e = known[self.rng.below(known.len())];
        let l = last_location[e].expect("entity chosen from known set");
        Story {
            sentences,
            question: Self::entity_word(e),
            answer_word: Self::location_word(l),
            answer_class: l,
        }
    }

    /// Generates a minibatch: `(stories, questions, answers)` where
    /// stories are `[batch, sentences, sentence_len]` word ids, questions
    /// are `[batch, sentence_len]` (entity word, padded), and answers are
    /// `[batch]` class indices.
    pub fn batch(&mut self, batch: usize) -> (Tensor, Tensor, Tensor) {
        let s = self.sentences;
        let w = self.sentence_len();
        let mut stories = Tensor::zeros([batch, s, w]);
        let mut questions = Tensor::zeros([batch, w]);
        let mut answers = Tensor::zeros([batch]);
        for b in 0..batch {
            let story = self.story();
            for (i, sent) in story.sentences.iter().enumerate() {
                for (j, &word) in sent.iter().enumerate() {
                    stories.set(&[b, i, j], word as f32);
                }
            }
            questions.set(&[b, 0], story.question as f32);
            answers.set(&[b], story.answer_class as f32);
        }
        (stories, questions, answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_tracks_most_recent_move() {
        let mut task = BabiTask::new(8, 1);
        for _ in 0..50 {
            let story = task.story();
            // Find the last sentence mentioning the queried entity; its
            // location must be the answer.
            let last = story
                .sentences
                .iter()
                .rev()
                .find(|s| s[0] == story.question)
                .expect("question references an entity from the story");
            assert_eq!(last[2], story.answer_word);
        }
    }

    #[test]
    fn vocabulary_is_consistent() {
        let task = BabiTask::new(3, 0);
        assert_eq!(task.vocab(), 16);
        assert_eq!(task.classes(), 6);
        assert_eq!(task.word_str(PAD), "<pad>");
        assert_eq!(task.word_str(1), "mary");
        assert_eq!(task.word_str(7), "went");
        assert_eq!(task.word_str(10), "kitchen");
    }

    #[test]
    fn batch_shapes() {
        let mut task = BabiTask::new(5, 2);
        let (stories, questions, answers) = task.batch(4);
        assert_eq!(stories.shape().dims(), &[4, 5, 3]);
        assert_eq!(questions.shape().dims(), &[4, 3]);
        assert_eq!(answers.shape().dims(), &[4]);
        for &a in answers.data() {
            assert!((a as usize) < task.classes());
        }
        for &w in stories.data() {
            assert!((w as usize) < task.vocab());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BabiTask::new(4, 9);
        let mut b = BabiTask::new(4, 9);
        assert_eq!(a.story(), b.story());
    }

    #[test]
    fn stories_vary() {
        let mut task = BabiTask::new(4, 3);
        let s1 = task.story();
        let s2 = task.story();
        assert_ne!(s1, s2);
    }
}
