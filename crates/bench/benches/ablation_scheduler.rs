//! `cargo bench -p fathom-bench --bench ablation_scheduler`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::scheduler::run(&effort));
}
