//! Criterion micro-benchmarks for the tensor kernels backing the suite:
//! the per-op costs that the figure-level experiments aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fathom_tensor::kernels::conv::{conv2d, Conv2dSpec};
use fathom_tensor::kernels::matmul::matmul;
use fathom_tensor::kernels::reduce::{reduce_axis, ReduceKind};
use fathom_tensor::kernels::softmax::softmax;
use fathom_tensor::{ExecPool, Rng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = Rng::seeded(1);
    for &n in &[32usize, 64, 128] {
        let a = Tensor::randn([n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([n, n], 0.0, 1.0, &mut rng);
        for &threads in &[1usize, 4] {
            let pool = ExecPool::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("{n}x{n}"), threads),
                &threads,
                |bench, _| bench.iter(|| matmul(&a, &b, false, false, &pool)),
            );
        }
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = Rng::seeded(2);
    let x = Tensor::randn([1, 32, 32, 16], 0.0, 1.0, &mut rng);
    let f = Tensor::randn([3, 3, 16, 16], 0.0, 1.0, &mut rng);
    for &threads in &[1usize, 4] {
        let pool = ExecPool::new(threads);
        group.bench_with_input(BenchmarkId::new("32x32x16_3x3", threads), &threads, |bench, _| {
            bench.iter(|| conv2d(&x, &f, Conv2dSpec::same(3), &pool))
        });
    }
    group.finish();
}

fn bench_small_ops(c: &mut Criterion) {
    // The skinny-tensor ops Figure 6c is about: these should NOT benefit
    // from threads.
    let mut group = c.benchmark_group("skinny");
    let mut rng = Rng::seeded(3);
    let x = Tensor::randn([16, 10, 32], 0.0, 1.0, &mut rng);
    for &threads in &[1usize, 4] {
        let pool = ExecPool::new(threads);
        group.bench_with_input(BenchmarkId::new("sum_axis", threads), &threads, |bench, _| {
            bench.iter(|| reduce_axis(&x, 2, ReduceKind::Sum, false, &pool))
        });
    }
    let logits = Tensor::randn([16, 10], 0.0, 1.0, &mut rng);
    let pool = ExecPool::new(1);
    group.bench_function("softmax_16x10", |bench| bench.iter(|| softmax(&logits, &pool)));
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv, bench_small_ops);
criterion_main!(benches);
