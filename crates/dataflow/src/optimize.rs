//! Application-level graph optimization.
//!
//! The paper observes that most deep learning frameworks ship "an
//! application-level, compiler-esque optimizer" (§III-C). This module is
//! that component: a rewrite pipeline over a finished graph performing
//!
//! * **dead-code elimination** — only ancestors of the kept nodes survive;
//! * **identity elimination** — `Identity`/`StopGradient` pass-throughs
//!   are spliced out (gradients are already built by that point);
//! * **constant folding** — pure ops whose inputs are all constants are
//!   evaluated once at optimization time;
//! * **common-subexpression elimination** — structurally identical pure
//!   ops are merged (the autodiff pass emits many duplicate scalars and
//!   reduction chains, so this fires often in practice).
//!
//! * **elementwise fusion** — chains/DAGs of pure, shape-compatible
//!   class-C ops collapse into a single [`OpKind::Fused`] register
//!   program evaluated in one loop-jammed pass (see [`fuse_in_place`]);
//! * **GEMM epilogue fusion** — single-consumer elementwise chains
//!   hanging off packed-engine MatMul/Conv2D nodes are absorbed into the
//!   GEMM's register writeback as an [`OpKind::GemmFused`] node (see
//!   [`fuse_gemm_epilogues`]).
//!
//! Optimization is opt-in: the profiling experiments characterize the
//! graphs as built, and the `ablation_optimizer` bench quantifies what
//! the optimizer buys. Fusion runs *after* autodiff, like CSE, so
//! gradients are always built against the unfused graph.

use std::collections::HashMap;

use fathom_tensor::kernels::epilogue::{
    Epilogue, EpilogueArg, EpilogueInstr, OperandKind, MAX_EPILOGUE_ARGS, MAX_EPILOGUE_INSTRS,
};
use fathom_tensor::kernels::fused::{FusedInstr, FusedOp, FusedProgram};
use fathom_tensor::Shape;

use crate::cost;
use crate::device::Device;
use crate::exec::Session;
use crate::graph::{Graph, NodeId};
use crate::op::{GemmOp, OpKind};

/// What the optimizer did, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Node count before optimization.
    pub original_nodes: usize,
    /// Node count after optimization.
    pub optimized_nodes: usize,
    /// Nodes dropped because nothing kept depends on them.
    pub dead_removed: usize,
    /// `Identity`/`StopGradient` nodes spliced out.
    pub identities_removed: usize,
    /// Pure ops evaluated at optimization time.
    pub constants_folded: usize,
    /// Duplicate pure ops merged.
    pub subexpressions_merged: usize,
    /// `Fused` nodes created (only set by [`optimize_with`] with fusion
    /// enabled).
    pub fused_groups: usize,
    /// Original elementwise ops absorbed into fused groups (roots
    /// included).
    pub fused_ops: usize,
}

/// An optimized graph plus the id remapping for the caller's handles.
#[derive(Debug, Clone)]
pub struct OptimizedGraph {
    /// The rewritten graph.
    pub graph: Graph,
    map: Vec<Option<NodeId>>,
    /// Rewrite statistics.
    pub stats: OptimizeStats,
}

impl OptimizedGraph {
    /// The new id of an original node (`None` if it was dead code).
    pub fn remap(&self, old: NodeId) -> Option<NodeId> {
        self.map.get(old.index()).copied().flatten()
    }
}

/// Whether CSE/folding may touch this op at all.
fn is_pure(kind: &OpKind) -> bool {
    !kind.is_stateful()
        && !matches!(kind, OpKind::Placeholder { .. } | OpKind::Variable { .. } | OpKind::Group)
}

/// A structural key for CSE. `None` when the op must not be merged.
fn cse_key(kind: &OpKind, inputs: &[NodeId]) -> Option<String> {
    if !is_pure(kind) {
        return None;
    }
    match kind {
        // Tensor's Debug truncates large buffers, so constants key on the
        // exact bits.
        OpKind::Constant(t) => {
            let mut key = format!("Const:{}:", t.shape());
            for v in t.data() {
                key.push_str(&format!("{:08x}", v.to_bits()));
            }
            Some(key)
        }
        _ => Some(format!("{kind:?}|{inputs:?}")),
    }
}

/// Evaluates a pure op whose inputs are all constants, by running it in a
/// throwaway single-op session.
fn fold(kind: &OpKind, inputs: &[&OpKind]) -> Option<fathom_tensor::Tensor> {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = inputs
        .iter()
        .map(|k| match k {
            OpKind::Constant(t) => g.constant(t.clone()),
            _ => unreachable!("fold is only called with constant inputs"),
        })
        .collect();
    let node = g.try_add(kind.clone(), &ids).ok()?;
    let mut sess = Session::new(g, Device::cpu(1));
    sess.run1(node, &[]).ok()
}

/// Optimizes `g`, preserving the behavior of every node in `keep` (and,
/// transitively, the side effects of stateful ops they depend on).
///
/// # Panics
///
/// Panics if a kept id does not belong to `g`.
pub fn optimize(g: &Graph, keep: &[NodeId]) -> OptimizedGraph {
    let mut stats = OptimizeStats { original_nodes: g.len(), ..OptimizeStats::default() };

    // Reachability from the kept set.
    let mut needed = vec![false; g.len()];
    let mut stack: Vec<NodeId> = keep.to_vec();
    while let Some(id) = stack.pop() {
        assert!(id.index() < g.len(), "kept node {id} is not in this graph");
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        stack.extend(g.node(id).inputs.iter().copied());
    }

    let mut out = Graph::new();
    let mut map: Vec<Option<NodeId>> = vec![None; g.len()];
    let mut cse: HashMap<String, NodeId> = HashMap::new();

    for (id, node) in g.iter() {
        if !needed[id.index()] {
            stats.dead_removed += 1;
            continue;
        }
        let inputs: Vec<NodeId> = node
            .inputs
            .iter()
            .map(|i| map[i.index()].expect("inputs precede outputs"))
            .collect();

        // Identity elimination.
        if matches!(node.kind, OpKind::Identity | OpKind::StopGradient) {
            stats.identities_removed += 1;
            map[id.index()] = Some(inputs[0]);
            continue;
        }

        // Constant folding.
        let mut kind = node.kind.clone();
        if is_pure(&kind)
            && !matches!(kind, OpKind::Constant(_))
            && !inputs.is_empty()
            && inputs
                .iter()
                .all(|i| matches!(out.node(*i).kind, OpKind::Constant(_)))
        {
            let input_kinds: Vec<&OpKind> = inputs.iter().map(|i| &out.node(*i).kind).collect();
            if let Some(folded) = fold(&kind, &input_kinds) {
                stats.constants_folded += 1;
                kind = OpKind::Constant(folded);
            }
        }

        // CSE (covers folded results too, so equal constants merge).
        let inputs_for_key = if matches!(kind, OpKind::Constant(_)) { Vec::new() } else { inputs.clone() };
        if let Some(key) = cse_key(&kind, &inputs_for_key) {
            if let Some(&existing) = cse.get(&key) {
                stats.subexpressions_merged += 1;
                map[id.index()] = Some(existing);
                continue;
            }
            let new_inputs = if matches!(kind, OpKind::Constant(_)) { Vec::new() } else { inputs };
            let new_id = out.add(kind, &new_inputs);
            if let Some(name) = &node.name {
                out.set_name(new_id, name.clone());
            }
            cse.insert(key, new_id);
            map[id.index()] = Some(new_id);
        } else {
            let new_id = out.add(kind, &inputs);
            if let Some(name) = &node.name {
                out.set_name(new_id, name.clone());
            }
            map[id.index()] = Some(new_id);
        }
    }

    stats.optimized_nodes = out.len();
    OptimizedGraph { graph: out, map, stats }
}

/// What the fusion passes did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// `Fused` nodes created.
    pub groups: usize,
    /// Original elementwise ops absorbed (roots included), so
    /// `ops_fused - groups` nodes disappear from the executed plan.
    pub ops_fused: usize,
    /// `GemmFused` nodes created by [`fuse_gemm_epilogues`].
    pub gemm_groups: usize,
    /// Original ops absorbed into `GemmFused` nodes (the GEMM root plus
    /// every epilogue chain member).
    pub gemm_ops: usize,
}

/// Largest member count of one fused group. Bounds the register file
/// (which lives on the stack of every evaluating worker) and keeps
/// programs trivially within the `u16` register index space.
const MAX_GROUP: usize = 64;

/// The fused instruction for a fusible op kind, or `None` when the op
/// cannot join a group (non-elementwise, stateful, or control ops).
fn fusible_op(kind: &OpKind) -> Option<FusedOp> {
    match kind {
        OpKind::Add => Some(FusedOp::Add),
        OpKind::Sub => Some(FusedOp::Sub),
        OpKind::Mul => Some(FusedOp::Mul),
        OpKind::Div => Some(FusedOp::Div),
        OpKind::Maximum => Some(FusedOp::Maximum),
        OpKind::Pow => Some(FusedOp::Pow),
        OpKind::Greater => Some(FusedOp::Greater),
        OpKind::GreaterEqual => Some(FusedOp::GreaterEqual),
        OpKind::Equal => Some(FusedOp::Equal),
        OpKind::Select => Some(FusedOp::Select),
        OpKind::Neg => Some(FusedOp::Neg),
        OpKind::Exp => Some(FusedOp::Exp),
        OpKind::Log => Some(FusedOp::Log),
        OpKind::Sqrt => Some(FusedOp::Sqrt),
        OpKind::Square => Some(FusedOp::Square),
        OpKind::Tanh => Some(FusedOp::Tanh),
        OpKind::Sigmoid => Some(FusedOp::Sigmoid),
        OpKind::Relu => Some(FusedOp::Relu),
        OpKind::ReluGrad => Some(FusedOp::ReluGrad),
        OpKind::TanhGrad => Some(FusedOp::TanhGrad),
        OpKind::SigmoidGrad => Some(FusedOp::SigmoidGrad),
        OpKind::AddN => Some(FusedOp::AddN),
        _ => None,
    }
}

/// Collapses chains/DAGs of pure elementwise ops into [`OpKind::Fused`]
/// nodes, **in place**: each group's root is rewritten to a `Fused` node
/// over the group's external inputs, while interior members stay in the
/// graph (as unreferenced dead nodes the executor's reachability walk
/// skips). Every previously handed-out [`NodeId`] therefore remains
/// valid — fetch handles, serving ports, and checkpoint variable order
/// are unaffected, and fetching a former interior node still runs the
/// original unfused chain.
///
/// Legality rules (each guarantees the fused single-flat-loop evaluation
/// is **bitwise identical** to the unfused kernels):
///
/// * members come from the fusible class-C set ([`fusible_op`]) — pure,
///   elementwise, no session state, no RNG;
/// * every member produces exactly the root's shape, and every member
///   input is either another member, a root-shaped external, or a
///   single-element (broadcast scalar) external — precisely the cases
///   where the unfused kernels take their per-element fast paths;
/// * an interior member's consumers (among nodes reachable from `keep`)
///   must all be inside the group, so no fused-away intermediate is
///   needed elsewhere;
/// * nodes in `keep` are never interior (their values stay fetchable
///   from the fused graph);
/// * groups have at least two members and at most [`MAX_GROUP`].
///
/// Growth is greedy: roots are visited in reverse insertion order
/// (consumers before producers) and each group absorbs producers to a
/// fixpoint, so a chain fuses into its deepest consumer.
///
/// # Panics
///
/// Panics if a kept id does not belong to `g`.
pub fn fuse_in_place(g: &mut Graph, keep: &[NodeId]) -> FusionStats {
    let n = g.len();

    // Reachability from the kept set: unreachable nodes are never
    // touched (and never counted as consumers — they stay behind as the
    // unfused originals either way).
    let mut reachable = vec![false; n];
    let mut stack: Vec<NodeId> = keep.to_vec();
    while let Some(id) = stack.pop() {
        assert!(id.index() < n, "kept node {id} is not in this graph");
        if reachable[id.index()] {
            continue;
        }
        reachable[id.index()] = true;
        stack.extend(g.node(id).inputs.iter().copied());
    }

    // Consumer lists among reachable nodes.
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, node) in g.iter() {
        if reachable[id.index()] {
            for i in &node.inputs {
                consumers[i.index()].push(id.0);
            }
        }
    }
    let mut kept = vec![false; n];
    for k in keep {
        kept[k.index()] = true;
    }

    let mut interior = vec![false; n]; // absorbed as a non-root member
    let mut rooted = vec![false; n]; // already the root of a group
    let mut stats = FusionStats::default();
    let mut rewrites: Vec<(NodeId, FusedProgram, Vec<NodeId>)> = Vec::new();

    for root_idx in (0..n).rev() {
        let root = NodeId(root_idx as u32);
        if !reachable[root_idx] || interior[root_idx] || rooted[root_idx] {
            continue;
        }
        if fusible_op(&g.node(root).kind).is_none() {
            continue;
        }
        let root_shape = g.shape(root).clone();
        let input_ok = |g: &Graph, i: NodeId| {
            g.shape(i) == &root_shape || g.shape(i).num_elements() == 1
        };
        if !g.node(root).inputs.iter().all(|&i| input_ok(g, i)) {
            continue;
        }

        // Grow the group to a fixpoint.
        let mut member = vec![false; n];
        member[root_idx] = true;
        let mut members = vec![root_idx];
        loop {
            let mut grew = false;
            for mi in 0..members.len() {
                if members.len() >= MAX_GROUP {
                    break;
                }
                for &cand in &g.node(NodeId(members[mi] as u32)).inputs {
                    let c = cand.index();
                    if member[c]
                        || !reachable[c]
                        || interior[c]
                        || rooted[c]
                        || kept[c]
                        || members.len() >= MAX_GROUP
                    {
                        continue;
                    }
                    if fusible_op(&g.node(cand).kind).is_none()
                        || g.shape(cand) != &root_shape
                        || !g.node(cand).inputs.iter().all(|&i| input_ok(g, i))
                        || !consumers[c].iter().all(|&u| member[u as usize])
                    {
                        continue;
                    }
                    member[c] = true;
                    members.push(c);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        if members.len() < 2 {
            continue;
        }
        members.sort_unstable();

        // Compile the group: inputs first in the register file, then one
        // register per member in ascending (graph) order; the root is the
        // maximal member, so the last register is the output.
        let mut ext_inputs: Vec<NodeId> = Vec::new();
        let mut ext_reg: HashMap<NodeId, u16> = HashMap::new();
        let mut member_reg: HashMap<usize, usize> = HashMap::new();
        let mut raw_instrs: Vec<(FusedOp, Vec<NodeId>)> = Vec::new();
        for (k, &m) in members.iter().enumerate() {
            let node = g.node(NodeId(m as u32));
            let op = fusible_op(&node.kind).expect("members are fusible");
            raw_instrs.push((op, node.inputs.clone()));
            member_reg.insert(m, k);
        }
        for (_, inputs) in &raw_instrs {
            for &i in inputs {
                if !member[i.index()] && !ext_reg.contains_key(&i) {
                    let reg = ext_inputs.len() as u16;
                    ext_inputs.push(i);
                    ext_reg.insert(i, reg);
                }
            }
        }
        // The Fused node's inferred shape must reproduce the root's
        // exactly (an all-scalar group could disagree on scalar rank).
        let inferred = ext_inputs
            .iter()
            .find(|&&i| g.shape(i).num_elements() != 1)
            .or(ext_inputs.first())
            .map(|&i| g.shape(i).clone());
        if inferred.as_ref() != Some(&root_shape) {
            continue;
        }
        let n_inputs = ext_inputs.len();
        let instrs: Vec<FusedInstr> = raw_instrs
            .iter()
            .map(|(op, inputs)| FusedInstr {
                op: *op,
                args: inputs
                    .iter()
                    .map(|i| {
                        member_reg.get(&i.index()).map_or_else(
                            || ext_reg[i],
                            |&k| (n_inputs + k) as u16,
                        )
                    })
                    .collect(),
            })
            .collect();

        rooted[root_idx] = true;
        for &m in &members {
            if m != root_idx {
                interior[m] = true;
            }
        }
        stats.groups += 1;
        stats.ops_fused += members.len();
        rewrites.push((root, FusedProgram { n_inputs, instrs }, ext_inputs));
    }

    for (root, program, ext) in rewrites {
        g.replace_node(root, OpKind::Fused(program), &ext)
            .expect("fusion rewrites are shape-preserving");
    }
    stats
}

/// Which fusion passes [`crate::exec::Session::enable_fusion_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionOptions {
    /// Also run [`fuse_gemm_epilogues`] (before elementwise fusion, so
    /// packed GEMMs claim their consumer chains first).
    pub gemm_epilogues: bool,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions { gemm_epilogues: true }
    }
}

/// Classifies a non-accumulator input of an epilogue chain member against
/// the GEMM root's shape. `None` means the operand cannot be fed to the
/// microkernel writeback and the chain must stop before this member.
///
/// The three legal classes mirror the broadcast fast paths of the unfused
/// elementwise kernels, which is what makes the fused writeback bitwise
/// identical: a single element (`Scalar`), a trailing-axis vector of
/// exactly `cols` elements such as a bias (`Col`), or a tensor of the
/// root's exact shape such as a residual (`Full`).
fn classify_operand(shape: &Shape, root_shape: &Shape, cols: usize) -> Option<OperandKind> {
    if shape.num_elements() == 1 {
        Some(OperandKind::Scalar)
    } else if shape == root_shape {
        Some(OperandKind::Full)
    } else if shape.num_elements() == cols && shape.dim(shape.rank() - 1) == cols {
        // [cols] or [1, .., 1, cols]: broadcasts along the trailing axis.
        // The chain member's output shape already equals the root's, so
        // the unfused broadcast aligned this operand with the last axis.
        Some(OperandKind::Col)
    } else {
        None
    }
}

/// Absorbs single-consumer elementwise chains hanging off packed-engine
/// `MatMul`/`Conv2D` nodes into [`OpKind::GemmFused`] nodes, **in
/// place**: the *last* chain member is rewritten (keeping its id, so
/// fetch handles stay valid) while the GEMM root and interior members
/// stay behind as unreferenced dead nodes.
///
/// This is the BLIS/cuBLAS "fused epilogue" idiom: the bias-add /
/// activation / residual that follows a GEMM is applied to the 8×16
/// accumulator tile while it is still in registers, instead of spilling
/// the product to memory and re-reading it once per elementwise op.
///
/// Legality rules (each preserves the bitwise contract):
///
/// * the root is a `MatMul` or `Conv2D` that
///   [`cost::gemm_epilogue_profitable`] accepts — every matmul (both
///   GEMM routes absorb the chain's dispatches and round trips), but
///   only im2col-lowered convs; direct convs keep their chains for
///   [`fuse_in_place`];
/// * the chain grows along *unique* reachable consumers: each tip has
///   exactly one distinct consumer, which is a [`fusible_op`] producing
///   exactly the root's shape, with every non-chain input classifiable
///   by [`classify_operand`];
/// * interior chain members (and the GEMM root) must not be in `keep`;
///   the final member may be, since its id survives the rewrite;
/// * chains stop at nodes already claimed by another group, so two GEMMs
///   feeding one `Add` resolve greedily — the first claims the chain and
///   the second stays a plain node feeding a `Full` operand;
/// * at most [`MAX_EPILOGUE_INSTRS`] members per chain.
///
/// Returns stats with only the `gemm_*` fields populated.
///
/// # Panics
///
/// Panics if a kept id does not belong to `g`.
pub fn fuse_gemm_epilogues(g: &mut Graph, keep: &[NodeId]) -> FusionStats {
    let n = g.len();

    let mut reachable = vec![false; n];
    let mut stack: Vec<NodeId> = keep.to_vec();
    while let Some(id) = stack.pop() {
        assert!(id.index() < n, "kept node {id} is not in this graph");
        if reachable[id.index()] {
            continue;
        }
        reachable[id.index()] = true;
        stack.extend(g.node(id).inputs.iter().copied());
    }

    // Consumer lists among reachable nodes (duplicates preserved: a
    // member consuming the tip twice contributes two `Acc` args).
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, node) in g.iter() {
        if reachable[id.index()] {
            for i in &node.inputs {
                consumers[i.index()].push(id.0);
            }
        }
    }
    let mut kept = vec![false; n];
    for k in keep {
        kept[k.index()] = true;
    }

    // Nodes already absorbed into some group (GEMM roots and members).
    let mut claimed = vec![false; n];
    let mut stats = FusionStats::default();
    let mut rewrites: Vec<(NodeId, OpKind, Vec<NodeId>)> = Vec::new();

    for root_idx in 0..n {
        let root = NodeId(root_idx as u32);
        if !reachable[root_idx] || claimed[root_idx] || kept[root_idx] {
            continue;
        }
        let gemm = match &g.node(root).kind {
            OpKind::MatMul { transpose_a, transpose_b } => {
                GemmOp::MatMul { transpose_a: *transpose_a, transpose_b: *transpose_b }
            }
            OpKind::Conv2D(spec) => GemmOp::Conv2D(*spec),
            _ => continue,
        };
        let input_shapes: Vec<&Shape> =
            g.node(root).inputs.iter().map(|&i| g.shape(i)).collect();
        if !cost::gemm_epilogue_profitable(&g.node(root).kind, &input_shapes) {
            continue;
        }
        let root_shape = g.shape(root).clone();
        let cols = root_shape.dim(root_shape.rank() - 1);

        // Walk the unique-consumer chain off the GEMM.
        let mut members: Vec<NodeId> = Vec::new();
        let mut instrs: Vec<EpilogueInstr> = Vec::new();
        let mut operands: Vec<NodeId> = Vec::new();
        let mut operand_reg: HashMap<NodeId, u16> = HashMap::new();
        let mut tip = root;
        loop {
            if instrs.len() >= MAX_EPILOGUE_INSTRS {
                break;
            }
            let mut cs = consumers[tip.index()].clone();
            cs.sort_unstable();
            cs.dedup();
            if cs.len() != 1 {
                break;
            }
            let next = NodeId(cs[0]);
            let c = next.index();
            if claimed[c] {
                break;
            }
            let Some(op) = fusible_op(&g.node(next).kind) else { break };
            if g.shape(next) != &root_shape
                || g.node(next).inputs.len() > MAX_EPILOGUE_ARGS
            {
                break;
            }
            let mut args: Vec<EpilogueArg> = Vec::new();
            let mut ok = true;
            for &inp in &g.node(next).inputs {
                if inp == tip {
                    args.push(EpilogueArg::Acc);
                    continue;
                }
                let Some(kind) = classify_operand(g.shape(inp), &root_shape, cols) else {
                    ok = false;
                    break;
                };
                let index = *operand_reg.entry(inp).or_insert_with(|| {
                    let reg = operands.len() as u16;
                    operands.push(inp);
                    reg
                });
                args.push(EpilogueArg::Operand { index, kind });
            }
            if !ok {
                break;
            }
            // Interior members must not be kept (their values would need
            // the unfused chain anyway); the final member may be, so add
            // the node and then stop extending past it.
            let next_kept = kept[c];
            members.push(next);
            instrs.push(EpilogueInstr { op, args });
            tip = next;
            if next_kept {
                break;
            }
        }
        if instrs.is_empty() {
            continue;
        }

        let epilogue = Epilogue { n_operands: operands.len(), instrs };
        debug_assert!(epilogue.validate().is_ok(), "built epilogue must validate");

        claimed[root_idx] = true;
        for &m in &members {
            claimed[m.index()] = true;
        }
        stats.gemm_groups += 1;
        stats.gemm_ops += members.len() + 1; // chain members plus the GEMM root
        let last = *members.last().expect("non-empty chain");
        let mut inputs = g.node(root).inputs.clone();
        inputs.extend(operands);
        rewrites.push((last, OpKind::GemmFused { gemm, epilogue }, inputs));
    }

    for (last, kind, inputs) in rewrites {
        g.replace_node(last, kind, &inputs)
            .expect("epilogue fusion rewrites are shape-preserving");
    }
    stats
}

/// Options for [`optimize_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Run the elementwise fusion pass after the base pipeline.
    pub fusion: bool,
}

/// Runs the base [`optimize`] pipeline and, when enabled, the
/// elementwise fusion pass followed by a second sweep that removes the
/// fused-away interior nodes from the rewritten graph. The returned map
/// composes all stages, so callers remap handles exactly as with
/// [`optimize`]. (Sessions that must keep their ids stable use
/// [`crate::exec::Session::enable_fusion`] instead, which fuses in place
/// and leaves interiors as unscheduled dead nodes.)
///
/// # Panics
///
/// Panics if a kept id does not belong to `g`.
pub fn optimize_with(g: &Graph, keep: &[NodeId], options: OptimizeOptions) -> OptimizedGraph {
    let mut base = optimize(g, keep);
    if !options.fusion {
        return base;
    }
    let kept: Vec<NodeId> = keep.iter().filter_map(|&k| base.remap(k)).collect();
    let fstats = fuse_in_place(&mut base.graph, &kept);
    let swept = optimize(&base.graph, &kept);
    let map = base.map.iter().map(|m| m.and_then(|id| swept.remap(id))).collect();
    OptimizedGraph {
        stats: OptimizeStats {
            original_nodes: g.len(),
            optimized_nodes: swept.stats.optimized_nodes,
            dead_removed: base.stats.dead_removed + swept.stats.dead_removed,
            identities_removed: base.stats.identities_removed + swept.stats.identities_removed,
            constants_folded: base.stats.constants_folded + swept.stats.constants_folded,
            subexpressions_merged: base.stats.subexpressions_merged
                + swept.stats.subexpressions_merged,
            fused_groups: fstats.groups,
            fused_ops: fstats.ops_fused,
        },
        graph: swept.graph,
        map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_tensor::{Shape, Tensor};

    #[test]
    fn dead_code_is_removed() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(2));
        let live = g.neg(x);
        let dead_in = g.placeholder("unused", Shape::vector(3));
        let _dead = g.exp(dead_in);
        let opt = optimize(&g, &[live]);
        assert_eq!(opt.stats.dead_removed, 2);
        assert_eq!(opt.graph.len(), 2);
        assert!(opt.remap(live).is_some());
        assert!(opt.remap(dead_in).is_none());
    }

    #[test]
    fn identities_are_spliced_out() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(2));
        let i1 = g.add(OpKind::Identity, &[x]);
        let i2 = g.stop_gradient(i1);
        let y = g.neg(i2);
        let opt = optimize(&g, &[y]);
        assert_eq!(opt.stats.identities_removed, 2);
        // Only the placeholder and the Neg remain.
        assert_eq!(opt.graph.len(), 2);
        // The Neg's input is the placeholder directly.
        let new_y = opt.remap(y).unwrap();
        let new_x = opt.remap(x).unwrap();
        assert_eq!(opt.graph.node(new_y).inputs, vec![new_x]);
    }

    #[test]
    fn constants_fold() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from(vec![1.0, 2.0]));
        let b = g.constant(Tensor::from(vec![3.0, 4.0]));
        let sum = g.add_op(a, b);
        let x = g.placeholder("x", Shape::vector(2));
        let y = g.mul(sum, x);
        let opt = optimize(&g, &[y]);
        assert_eq!(opt.stats.constants_folded, 1);
        let new_y = opt.remap(y).unwrap();
        let folded_input = opt.graph.node(new_y).inputs[0];
        match &opt.graph.node(folded_input).kind {
            OpKind::Constant(t) => assert_eq!(t.data(), &[4.0, 6.0]),
            other => panic!("expected folded constant, got {other:?}"),
        }
    }

    #[test]
    fn folding_cascades() {
        // (1 + 2) * 3 folds all the way to a single constant.
        let mut g = Graph::new();
        let one = g.constant(Tensor::scalar(1.0));
        let two = g.constant(Tensor::scalar(2.0));
        let three = g.constant(Tensor::scalar(3.0));
        let sum = g.add_op(one, two);
        let product = g.mul(sum, three);
        let opt = optimize(&g, &[product]);
        assert_eq!(opt.stats.constants_folded, 2);
        let new = opt.remap(product).unwrap();
        match &opt.graph.node(new).kind {
            OpKind::Constant(t) => assert_eq!(t.scalar_value(), 9.0),
            other => panic!("expected constant, got {other:?}"),
        }
    }

    #[test]
    fn common_subexpressions_merge() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4));
        let s1 = g.square(x);
        let s2 = g.square(x); // duplicate
        let sum = g.add_op(s1, s2);
        let opt = optimize(&g, &[sum]);
        assert_eq!(opt.stats.subexpressions_merged, 1);
        assert_eq!(opt.remap(s1), opt.remap(s2));
    }

    #[test]
    fn duplicate_constants_merge_but_different_ones_do_not() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar(2.0));
        let b = g.constant(Tensor::scalar(2.0));
        let c = g.constant(Tensor::scalar(3.0));
        let ab = g.add_op(a, b);
        let abc = g.add_op(ab, c);
        let opt = optimize(&g, &[abc]);
        // a and b merge; everything then folds into one constant.
        assert_eq!(opt.remap(a), opt.remap(b));
        assert_ne!(opt.remap(a), opt.remap(c));
    }

    #[test]
    fn random_ops_are_never_merged() {
        let mut g = Graph::new();
        let r1 = g.random_normal([4]);
        let r2 = g.random_normal([4]);
        let sum = g.add_op(r1, r2);
        let opt = optimize(&g, &[sum]);
        assert_eq!(opt.stats.subexpressions_merged, 0);
        assert_ne!(opt.remap(r1), opt.remap(r2));
    }

    #[test]
    fn variables_are_never_merged_or_folded() {
        let mut g = Graph::new();
        let v1 = g.variable("a", Tensor::scalar(1.0));
        let v2 = g.variable("b", Tensor::scalar(1.0));
        let sum = g.add_op(v1, v2);
        let opt = optimize(&g, &[sum]);
        assert_ne!(opt.remap(v1), opt.remap(v2));
        assert_eq!(opt.stats.constants_folded, 0);
        // Variable initial values survive the rewrite.
        let new_graph = opt.graph.clone();
        assert_eq!(new_graph.variables().len(), 2);
    }

    #[test]
    fn optimized_graph_computes_identical_values() {
        use crate::grad::gradients;
        use fathom_tensor::Rng;
        // A training-shaped graph with gradients: optimize and compare.
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(3, 4));
        let mut rng = Rng::seeded(5);
        let w = g.variable("w", Tensor::randn([4, 2], 0.0, 1.0, &mut rng));
        let y = g.matmul(x, w);
        let act = g.tanh(y);
        let loss = g.sum_all(act);
        let grads = gradients(&mut g, loss, &[w]);
        let opt = optimize(&g, &[loss, grads[0]]);
        assert!(opt.graph.len() < g.len(), "optimizer should shrink a grad graph");

        let x_val = Tensor::randn([3, 4], 0.0, 1.0, &mut rng);
        let mut original = Session::new(g, Device::cpu(1));
        let mut rewritten = Session::new(opt.graph.clone(), Device::cpu(1));
        let a = original.run(&[loss, grads[0]], &[(x, x_val.clone())]).unwrap();
        let b = rewritten
            .run(
                &[opt.remap(loss).unwrap(), opt.remap(grads[0]).unwrap()],
                &[(opt.remap(x).unwrap(), x_val)],
            )
            .unwrap();
        assert_eq!(a[0], b[0]);
        assert!(a[1].max_abs_diff(&b[1]) < 1e-6);
    }

    fn bitwise_eq(a: &Tensor, b: &Tensor) -> bool {
        a.shape() == b.shape()
            && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn elementwise_chain_fuses_into_root() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(3, 4));
        let t = g.tanh(x);
        let s = g.square(t);
        let y = g.neg(s);
        let unfused = g.clone();
        let stats = fuse_in_place(&mut g, &[y]);
        assert_eq!(stats, FusionStats { groups: 1, ops_fused: 3, ..FusionStats::default() });
        let OpKind::Fused(program) = &g.node(y).kind else {
            panic!("root should be fused, got {:?}", g.node(y).kind)
        };
        assert_eq!(program.n_inputs, 1);
        assert_eq!(program.instrs.len(), 3);
        assert_eq!(g.node(y).inputs, vec![x]);
        // Interiors are untouched and still fetchable.
        assert!(matches!(g.node(t).kind, OpKind::Tanh));

        let x_val = Tensor::randn([3, 4], 0.0, 1.0, &mut fathom_tensor::Rng::seeded(7));
        let mut a = Session::new(unfused, Device::cpu(1));
        let mut b = Session::new(g, Device::cpu(1));
        let want = a.run1(y, &[(x, x_val.clone())]).unwrap();
        let got = b.run1(y, &[(x, x_val.clone())]).unwrap();
        assert!(bitwise_eq(&want, &got));
        // The former interior still computes the original chain.
        let interior = b.run1(s, &[(x, x_val)]).unwrap();
        assert_eq!(interior.shape().dims(), &[3, 4]);
    }

    #[test]
    fn kept_nodes_are_never_interior() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(8));
        let t = g.tanh(x);
        let y = g.neg(t);
        let stats = fuse_in_place(&mut g, &[y, t]);
        // t is kept, so the only possible group {t, y} is blocked.
        assert_eq!(stats.groups, 0);
        assert!(matches!(g.node(y).kind, OpKind::Neg));
    }

    #[test]
    fn outside_consumer_blocks_interior() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(8));
        let t = g.tanh(x);
        let y = g.neg(t);
        let other = g.sum_all(t); // non-fusible consumer of t
        let stats = fuse_in_place(&mut g, &[y, other]);
        assert_eq!(stats.groups, 0);
    }

    #[test]
    fn scalar_broadcast_fuses_but_row_broadcast_does_not() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(4, 6));
        let s = g.placeholder("scale", Shape::scalar());
        let row = g.placeholder("row", Shape::matrix(1, 6));
        let scaled = g.mul(x, s);
        let act = g.relu(scaled);
        let keep_a = g.neg(act);
        let shifted = g.add_op(x, row); // row-broadcast: not fusible
        let keep_b = g.neg(shifted);
        let stats = fuse_in_place(&mut g, &[keep_a, keep_b]);
        assert_eq!(stats, FusionStats { groups: 1, ops_fused: 3, ..FusionStats::default() });
        assert!(matches!(g.node(keep_a).kind, OpKind::Fused(_)));
        assert!(matches!(g.node(keep_b).kind, OpKind::Neg));
        assert!(matches!(g.node(shifted).kind, OpKind::Add));
    }

    #[test]
    fn fused_dag_reuses_shared_member() {
        // d = (tanh x) * (tanh x + x): the tanh feeds two members but no
        // outside consumer, so the whole diamond fuses into one group.
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(16));
        let t = g.tanh(x);
        let sum = g.add_op(t, x);
        let d = g.mul(t, sum);
        let unfused = g.clone();
        let stats = fuse_in_place(&mut g, &[d]);
        assert_eq!(stats, FusionStats { groups: 1, ops_fused: 3, ..FusionStats::default() });
        let x_val = Tensor::randn([16], 0.0, 2.0, &mut fathom_tensor::Rng::seeded(11));
        let mut a = Session::new(unfused, Device::cpu(1));
        let mut b = Session::new(g, Device::cpu(1));
        let want = a.run1(d, &[(x, x_val.clone())]).unwrap();
        let got = b.run1(d, &[(x, x_val)]).unwrap();
        assert!(bitwise_eq(&want, &got));
    }

    #[test]
    fn optimize_with_fusion_compacts_and_remaps() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(32));
        let t = g.tanh(x);
        let s = g.square(t);
        let y = g.neg(s);
        let plain = optimize(&g, &[y]);
        let fused = optimize_with(&g, &[y], OptimizeOptions { fusion: true });
        assert_eq!(fused.stats.fused_groups, 1);
        assert_eq!(fused.stats.fused_ops, 3);
        // The second sweep removes the two interiors.
        assert_eq!(fused.graph.len(), plain.graph.len() - 2);
        let new_y = fused.remap(y).unwrap();
        assert!(matches!(fused.graph.node(new_y).kind, OpKind::Fused(_)));
        // Interiors are dead in the compacted graph.
        assert!(fused.remap(s).is_none());
        assert!(fused.remap(x).is_some());
    }

    #[test]
    fn optimize_with_fusion_off_matches_optimize() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4));
        let y = g.tanh(x);
        let plain = optimize(&g, &[y]);
        let opt = optimize_with(&g, &[y], OptimizeOptions::default());
        assert_eq!(opt.stats, plain.stats);
        assert_eq!(opt.graph.len(), plain.graph.len());
    }

    /// `[4,64] x [64,128]` routes to the packed engine
    /// (`use_packed(64, 128)`), so the bias/activation chain is an
    /// epilogue candidate.
    fn packed_matmul_graph() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        use fathom_tensor::Rng;
        let mut g = Graph::new();
        let mut rng = Rng::seeded(21);
        let x = g.placeholder("x", Shape::matrix(4, 64));
        let w = g.variable("w", Tensor::randn([64, 128], 0.0, 0.5, &mut rng));
        let b = g.variable("b", Tensor::randn([128], 0.0, 0.5, &mut rng));
        let mm = g.matmul(x, w);
        let biased = g.add_op(mm, b);
        (g, x, mm, biased, b)
    }

    #[test]
    fn gemm_bias_relu_chain_fuses_into_epilogue() {
        use fathom_tensor::kernels::epilogue::{EpilogueArg, OperandKind};
        use fathom_tensor::Rng;
        let (mut g, x, mm, biased, b) = packed_matmul_graph();
        let act = g.relu(biased);
        let unfused = g.clone();
        let stats = fuse_gemm_epilogues(&mut g, &[act]);
        assert_eq!(stats.gemm_groups, 1);
        assert_eq!(stats.gemm_ops, 3); // matmul + add + relu
        let OpKind::GemmFused { gemm, epilogue } = &g.node(act).kind else {
            panic!("last member should be rewritten, got {:?}", g.node(act).kind)
        };
        assert!(matches!(gemm, GemmOp::MatMul { transpose_a: false, transpose_b: false }));
        assert_eq!(epilogue.instrs.len(), 2);
        assert_eq!(epilogue.n_operands, 1);
        assert_eq!(
            epilogue.instrs[0].args,
            vec![EpilogueArg::Acc, EpilogueArg::Operand { index: 0, kind: OperandKind::Col }]
        );
        // Inputs are [a, b, operands...]; the GEMM root and the interior
        // Add stay behind as dead nodes.
        let w = unfused.node(mm).inputs[1];
        assert_eq!(g.node(act).inputs, vec![x, w, b]);
        assert!(matches!(g.node(mm).kind, OpKind::MatMul { .. }));
        assert!(matches!(g.node(biased).kind, OpKind::Add));

        let x_val = Tensor::randn([4, 64], 0.0, 1.0, &mut Rng::seeded(22));
        for threads in [1, 4] {
            let mut a = Session::new(unfused.clone(), Device::cpu(threads));
            let mut f = Session::new(g.clone(), Device::cpu(threads));
            let want = a.run1(act, &[(x, x_val.clone())]).unwrap();
            let got = f.run1(act, &[(x, x_val.clone())]).unwrap();
            assert!(bitwise_eq(&want, &got), "fused epilogue diverged at {threads} threads");
        }
    }

    #[test]
    fn small_gemm_fuses_through_the_fallback_path() {
        // k = 8 routes through the row-parallel kernel, where the
        // epilogue runs as one flat pass after the matmul. The chain
        // still sheds its dispatches and round trips, so the pass takes
        // it — and the result is still bitwise identical.
        use fathom_tensor::Rng;
        let mut rng = Rng::seeded(31);
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(4, 8));
        let w = g.variable("w", Tensor::randn([8, 8], 0.0, 0.5, &mut rng));
        let b = g.variable("b", Tensor::randn([8], 0.0, 0.5, &mut rng));
        let mm = g.matmul(x, w);
        let biased = g.add_op(mm, b);
        let act = g.relu(biased);
        let unfused = g.clone();
        let stats = fuse_gemm_epilogues(&mut g, &[act]);
        assert_eq!(stats.gemm_groups, 1);
        assert_eq!(stats.gemm_ops, 3);
        assert!(matches!(g.node(act).kind, OpKind::GemmFused { .. }));
        assert!(matches!(g.node(mm).kind, OpKind::MatMul { .. }));

        let x_val = Tensor::randn([4, 8], 0.0, 1.0, &mut rng);
        let mut a = Session::new(unfused, Device::cpu(1));
        let mut f = Session::new(g, Device::cpu(1));
        let want = a.run1(act, &[(x, x_val.clone())]).unwrap();
        let got = f.run1(act, &[(x, x_val)]).unwrap();
        assert!(bitwise_eq(&want, &got), "fallback-path epilogue diverged");
    }

    #[test]
    fn kept_chain_member_becomes_the_rewrite_point() {
        let (mut g, _x, mm, biased, _b) = packed_matmul_graph();
        let act = g.relu(biased);
        // `biased` is kept, so the chain stops there: the Add is the
        // final member (its id survives the rewrite) and the Relu stays
        // a plain consumer of the now-fused node.
        let stats = fuse_gemm_epilogues(&mut g, &[act, biased]);
        assert_eq!(stats.gemm_groups, 1);
        assert_eq!(stats.gemm_ops, 2); // matmul + add only
        assert!(matches!(g.node(biased).kind, OpKind::GemmFused { .. }));
        assert!(matches!(g.node(act).kind, OpKind::Relu));
        assert!(matches!(g.node(mm).kind, OpKind::MatMul { .. }));
    }

    #[test]
    fn shared_consumer_resolves_greedily_to_one_group() {
        use fathom_tensor::Rng;
        let mut g = Graph::new();
        let mut rng = Rng::seeded(23);
        let x = g.placeholder("x", Shape::matrix(4, 64));
        let w1 = g.variable("w1", Tensor::randn([64, 128], 0.0, 0.5, &mut rng));
        let w2 = g.variable("w2", Tensor::randn([64, 128], 0.0, 0.5, &mut rng));
        let mm1 = g.matmul(x, w1);
        let mm2 = g.matmul(x, w2);
        let s = g.add_op(mm1, mm2);
        let unfused = g.clone();
        let stats = fuse_gemm_epilogues(&mut g, &[s]);
        // The first matmul claims the Add; the second stays a plain node
        // feeding the epilogue as a Full operand (the speech BiRNN shape).
        assert_eq!(stats.gemm_groups, 1);
        assert_eq!(stats.gemm_ops, 2);
        assert!(matches!(g.node(s).kind, OpKind::GemmFused { .. }));
        assert_eq!(g.node(s).inputs, vec![x, w1, mm2]);
        assert!(matches!(g.node(mm2).kind, OpKind::MatMul { .. }));

        let x_val = Tensor::randn([4, 64], 0.0, 1.0, &mut Rng::seeded(24));
        let mut a = Session::new(unfused, Device::cpu(2));
        let mut f = Session::new(g, Device::cpu(2));
        let want = a.run1(s, &[(x, x_val.clone())]).unwrap();
        let got = f.run1(s, &[(x, x_val)]).unwrap();
        assert!(bitwise_eq(&want, &got));
    }

    #[test]
    fn conv_bias_chain_fuses_through_im2col() {
        use fathom_tensor::kernels::conv::Conv2dSpec;
        use fathom_tensor::Rng;
        let mut g = Graph::new();
        let mut rng = Rng::seeded(25);
        let x = g.placeholder("x", Shape::from(vec![1, 8, 8, 64]));
        let f = g.variable("f", Tensor::randn([3, 3, 64, 64], 0.0, 0.1, &mut rng));
        let b = g.variable("b", Tensor::randn([64], 0.0, 0.1, &mut rng));
        let conv = g.conv2d(x, f, Conv2dSpec::same(3));
        let biased = g.add_op(conv, b);
        let act = g.relu(biased);
        let unfused = g.clone();
        let stats = fuse_gemm_epilogues(&mut g, &[act]);
        assert_eq!(stats.gemm_groups, 1, "im2col-lowered conv should take an epilogue");
        let OpKind::GemmFused { gemm: GemmOp::Conv2D(_), .. } = &g.node(act).kind else {
            panic!("expected fused conv, got {:?}", g.node(act).kind)
        };
        let x_val = Tensor::randn([1, 8, 8, 64], 0.0, 1.0, &mut Rng::seeded(26));
        let mut a = Session::new(unfused, Device::cpu(2));
        let mut fs = Session::new(g, Device::cpu(2));
        let want = a.run1(act, &[(x, x_val.clone())]).unwrap();
        let got = fs.run1(act, &[(x, x_val)]).unwrap();
        assert!(bitwise_eq(&want, &got));
    }

    #[test]
    fn epilogue_pass_then_elementwise_pass_do_not_double_claim() {
        use fathom_tensor::Rng;
        let (mut g, x, mm, biased, _b) = packed_matmul_graph();
        let act = g.relu(biased);
        let scaled = g.tanh(act);
        let y = g.neg(scaled);
        let unfused = g.clone();
        let gstats = fuse_gemm_epilogues(&mut g, &[y]);
        assert_eq!(gstats.gemm_groups, 1);
        assert_eq!(gstats.gemm_ops, 5); // the whole chain folds into the GEMM
        let estats = fuse_in_place(&mut g, &[y]);
        // Everything was claimed by the epilogue; nothing left to fuse
        // (the dead originals are unreachable so the pass skips them).
        assert_eq!(estats.groups, 0);
        assert!(matches!(g.node(y).kind, OpKind::GemmFused { .. }));
        assert!(matches!(g.node(mm).kind, OpKind::MatMul { .. }));

        let x_val = Tensor::randn([4, 64], 0.0, 1.0, &mut Rng::seeded(27));
        let mut a = Session::new(unfused, Device::cpu(1));
        let mut f = Session::new(g, Device::cpu(1));
        let want = a.run1(y, &[(x, x_val.clone())]).unwrap();
        let got = f.run1(y, &[(x, x_val)]).unwrap();
        assert!(bitwise_eq(&want, &got));
    }

    #[test]
    fn stats_add_up() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(2));
        let i = g.add(OpKind::Identity, &[x]);
        let s1 = g.square(i);
        let s2 = g.square(i);
        let keep = g.add_op(s1, s2);
        let _dead = g.exp(x);
        let opt = optimize(&g, &[keep]);
        let s = opt.stats;
        assert_eq!(s.original_nodes, 6);
        assert_eq!(s.dead_removed, 1);
        assert_eq!(s.identities_removed, 1);
        assert_eq!(s.subexpressions_merged, 1);
        assert_eq!(s.optimized_nodes, 3); // x, square, add
    }
}
