//! A coarse-grained dataflow graph framework in the spirit of TensorFlow,
//! built for the Fathom-rs workload suite.
//!
//! The Fathom paper analyzes deep learning models at the granularity of
//! framework *operations* — "the smallest schedulable unit in the
//! TensorFlow runtime" — and this crate reproduces exactly that substrate:
//!
//! * [`Graph`] / [`OpKind`]: a typed operation vocabulary with
//!   TensorFlow-style names and the paper's A-G [`OpClass`] taxonomy;
//! * [`grad::gradients`]: symbolic reverse-mode autodiff that extends the
//!   graph with first-class backward operations;
//! * [`Optimizer`]: training-step construction through stateful `Apply*`
//!   operations;
//! * [`Session`]: topological execution with feeds/fetches, per-op
//!   [`trace::TraceEvent`] capture, and pluggable [`Device`]s (real CPU
//!   pools, modeled GPU).
//!
//! # Examples
//!
//! ```
//! use fathom_dataflow::{Device, Graph, Optimizer, Session};
//! use fathom_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fit w in y = x * w with gradient descent.
//! let mut g = Graph::new();
//! let x = g.placeholder("x", Shape::matrix(4, 1));
//! let t = g.placeholder("t", Shape::matrix(4, 1));
//! let w = g.variable("w", Tensor::zeros([1, 1]));
//! let y = g.matmul(x, w);
//! let e = g.sub(y, t);
//! let sq = g.square(e);
//! let loss = g.mean_all(sq);
//! let train = Optimizer::sgd(0.05).minimize_all(&mut g, loss);
//!
//! let mut sess = Session::new(g, Device::cpu(1));
//! let xs = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4, 1]);
//! let ts = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], [4, 1]);
//! for _ in 0..50 {
//!     sess.run(&[train], &[(x, xs.clone()), (t, ts.clone())])?;
//! }
//! let w_fit = sess.variable_value(w)?.data()[0];
//! assert!((w_fit - 2.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod cost;
mod device;
mod exec;
pub mod export;
pub mod fault;
pub mod grad;
mod graph;
mod op;
mod optim;
pub mod optimize;
pub mod sched;
pub mod trace;

pub use device::{CpuModel, Device, GpuModel};
pub use exec::{CalibrationRanges, ExecError, Guardrail, QuantPlan, Session, WidthPolicy};
pub use fathom_tensor::Precision;
pub use trace::RuntimeCounters;
pub use fault::{FaultAction, FaultPlan, FaultSite, FaultSpec};
pub use graph::{Graph, GraphError, Node, NodeId};
pub use op::{GemmOp, OpClass, OpKind};
pub use optim::{Optimizer, TrainHandles};
