//! GEMM engine scaling — the Figure 6 methodology applied to the packed,
//! register-tiled GEMM engine.
//!
//! Two views of the same question ("where does intra-op parallel matrix
//! work go?"):
//!
//! 1. **Per-op-class time vs threads** for the paper's Figure 6 subjects
//!    (`deepq`, `seq2seq`, `memnet`), aggregated into the A-G classes.
//!    Matrix operations (A) and convolution (B) ride the packed GEMM
//!    after the conv-lowering rewrite, so their absolute time should
//!    shrink with threads while the optimizer (F) and data movement (G)
//!    stay flat — the profile flattening of Figure 6.
//! 2. **Raw GEMM geometry sweeps**: `matmul_packed` against the
//!    row-parallel baseline (`matmul_rows`) at the widest thread count,
//!    over the square / skinny / transposed geometries the workloads
//!    actually emit. This isolates the kernel-level win (packing +
//!    register tiling + 2D tile grid) from graph-level effects.
//!
//! Emits machine-readable `BENCH_gemm.json` into both
//! `target/fathom-results/` and the repository root, where the PR driver
//! tracks the perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;

use fathom::{BuildConfig, ModelKind};
use fathom_dataflow::{Device, OpClass};
use fathom_profile::runner;
use fathom_tensor::kernels::gemm::matmul_packed;
use fathom_tensor::kernels::matmul::matmul_rows;
use fathom_tensor::{ExecPool, Rng, Tensor};

use crate::{write_artifact, Effort};

/// Thread counts swept, matching Figure 6's 1-8 range.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The Figure 6 workloads.
pub const SUBJECTS: [ModelKind; 3] = [ModelKind::Deepq, ModelKind::Seq2Seq, ModelKind::Memnet];

/// Raw GEMM geometries benchmarked: `(m, k, n, transpose_a, transpose_b)`.
///
/// The square triple covers all transpose layouts at the LSTM/projection
/// scale; the skinny shapes mirror batched activations against fat
/// weights (m small, k*n large) where packing matters most relative to
/// the row kernel's strided B walks.
pub const GEOMETRIES: [(usize, usize, usize, bool, bool); 5] = [
    (512, 512, 512, false, false),
    (512, 512, 512, true, false),
    (512, 512, 512, false, true),
    (64, 1024, 1024, false, false),
    (32, 512, 512, false, false),
];

/// Per-op-class absolute time (ns/step) at each thread count for one
/// workload.
#[derive(Debug, Clone)]
pub struct ClassSweep {
    /// Workload name.
    pub workload: &'static str,
    /// `times[t][c]` = ns/step of class `OpClass::ALL[c]` at `THREADS[t]`.
    pub times: Vec<[f64; 7]>,
}

/// One geometry's packed-vs-rows comparison at the widest thread count.
#[derive(Debug, Clone, Copy)]
pub struct GeometryPoint {
    /// Problem extents.
    pub m: usize,
    /// Contraction extent.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Operand layouts.
    pub transpose_a: bool,
    /// Operand layouts.
    pub transpose_b: bool,
    /// Median row-parallel baseline time, milliseconds.
    pub rows_ms: f64,
    /// Median packed-engine time, milliseconds.
    pub packed_ms: f64,
}

impl GeometryPoint {
    /// Baseline-over-packed speedup.
    pub fn speedup(&self) -> f64 {
        if self.packed_ms > 0.0 {
            self.rows_ms / self.packed_ms
        } else {
            0.0
        }
    }

    /// Compact `512x512x512 nt`-style label.
    pub fn label(&self) -> String {
        format!(
            "{}x{}x{} {}{}",
            self.m,
            self.k,
            self.n,
            if self.transpose_a { 't' } else { 'n' },
            if self.transpose_b { 't' } else { 'n' },
        )
    }
}

/// Median of a sample set (mean of the middle two for even sizes).
fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Per-class ns/step sweep for one workload over [`THREADS`].
pub fn class_sweep(kind: ModelKind, effort: &Effort) -> ClassSweep {
    let times = THREADS
        .iter()
        .map(|&t| {
            let cfg = BuildConfig::training().with_device(Device::cpu_or_model(t));
            let p = runner::profile_workload(kind, &cfg, effort.warmup, effort.steps);
            let per_step = p.total_nanos() / p.steps.max(1) as f64;
            p.class_fractions().map(|(_, frac)| frac * per_step)
        })
        .collect();
    ClassSweep { workload: kind.name(), times }
}

/// Times one kernel call, median over `reps` after one warm-up.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median(&mut samples)
}

/// Benchmarks one geometry: row-parallel baseline vs packed engine, both
/// on a pool at the widest swept thread count.
pub fn geometry_point(
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    effort: &Effort,
) -> GeometryPoint {
    let mut rng = Rng::seeded(42);
    let a = Tensor::randn(if transpose_a { [k, m] } else { [m, k] }, 0.0, 1.0, &mut rng);
    let b = Tensor::randn(if transpose_b { [n, k] } else { [k, n] }, 0.0, 1.0, &mut rng);
    let pool = ExecPool::new(THREADS[THREADS.len() - 1]);
    let reps = effort.steps.max(3);
    let rows_ms = time_ms(reps, || {
        std::hint::black_box(matmul_rows(&a, &b, transpose_a, transpose_b, &pool));
    });
    let packed_ms = time_ms(reps, || {
        std::hint::black_box(matmul_packed(&a, &b, transpose_a, transpose_b, &pool));
    });
    GeometryPoint { m, k, n, transpose_a, transpose_b, rows_ms, packed_ms }
}

/// Renders both sweeps as `BENCH_gemm.json` (hand-written; the suite
/// carries no JSON dependency).
pub fn to_json(sweeps: &[ClassSweep], points: &[GeometryPoint], host_cores: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"gemm_scaling\",\n");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"threads\": [{}],", THREADS.map(|t| t.to_string()).join(", "));
    out.push_str("  \"workloads\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        let _ = write!(out, "    {{\"name\": \"{}\", \"classes\": [", s.workload);
        for (c, class) in OpClass::ALL.iter().enumerate() {
            if c > 0 {
                out.push_str(", ");
            }
            let series: Vec<String> =
                s.times.iter().map(|row| format!("{:.1}", row[c])).collect();
            let _ = write!(
                out,
                "{{\"class\": \"{}\", \"nanos_per_step\": [{}]}}",
                class.letter(),
                series.join(", ")
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"geometries\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shape\": \"{}\", \"rows_ms\": {:.4}, \"packed_ms\": {:.4}, \"speedup\": {:.3}}}",
            p.label(),
            p.rows_ms,
            p.packed_ms,
            p.speedup()
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the full experiment: class scaling for the Figure 6 subjects plus
/// the raw geometry sweep.
pub fn run(effort: &Effort) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "GEMM SCALING: per-op-class time vs intra-op threads, plus raw\n\
         packed-vs-row-parallel geometry sweeps (host has {cores} core(s);\n\
         thread counts beyond that use the analytic SimCpu scaling model)\n"
    );
    let sweeps: Vec<ClassSweep> = SUBJECTS.iter().map(|&k| class_sweep(k, effort)).collect();
    for s in &sweeps {
        let _ = writeln!(out, "{} (us/step by class):", s.workload);
        let _ = write!(out, "  {:<28}", "class / threads");
        for t in THREADS {
            let _ = write!(out, " {:>9}", t);
        }
        let _ = writeln!(out, " {:>9}", "speedup");
        for (c, class) in OpClass::ALL.iter().enumerate() {
            let base = s.times[0][c];
            if base <= 0.0 {
                continue;
            }
            let _ = write!(out, "  [{}] {:<24}", class.letter(), class.label());
            for row in &s.times {
                let _ = write!(out, " {:>9.0}", row[c] / 1_000.0);
            }
            let best = s.times[s.times.len() - 1][c];
            let _ = writeln!(out, " {:>8.2}x", base / best.max(1.0));
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "Raw GEMM at {} threads: packed engine vs row-parallel baseline (ms, median):",
        THREADS[THREADS.len() - 1]
    );
    let _ = writeln!(
        out,
        "  {:<18} {:>10} {:>10} {:>9}",
        "geometry", "rows", "packed", "speedup"
    );
    let points: Vec<GeometryPoint> = GEOMETRIES
        .iter()
        .map(|&(m, k, n, ta, tb)| geometry_point(m, k, n, ta, tb, effort))
        .collect();
    for p in &points {
        let _ = writeln!(
            out,
            "  {:<18} {:>10.2} {:>10.2} {:>8.2}x",
            p.label(),
            p.rows_ms,
            p.packed_ms,
            p.speedup()
        );
    }
    let at_goal = points.iter().filter(|p| p.speedup() >= 2.0).count();
    let _ = writeln!(
        out,
        "\ngeometries at >=2.00x over the row-parallel baseline: {}/{}",
        at_goal,
        points.len()
    );
    let json = to_json(&sweeps, &points, cores);
    write_artifact("BENCH_gemm.json", &json);
    // Also drop it at the repository root, where the PR driver tracks it.
    let repo_root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(repo_root.join("BENCH_gemm.json"), &json)
        .expect("can write BENCH_gemm.json at the repo root");
    write_artifact("gemm_scaling.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sweep_shapes() {
        let s = class_sweep(ModelKind::Memnet, &Effort::quick());
        assert_eq!(s.times.len(), THREADS.len());
        for row in &s.times {
            let total: f64 = row.iter().sum();
            assert!(total > 0.0, "a training step spends time somewhere");
        }
    }

    #[test]
    fn geometry_point_measures_both_kernels() {
        let p = geometry_point(32, 64, 48, false, true, &Effort::quick());
        assert!(p.rows_ms > 0.0 && p.packed_ms > 0.0);
        assert!(p.speedup() > 0.0);
        assert_eq!(p.label(), "32x64x48 nt");
    }

    #[test]
    fn json_shape() {
        let sweeps = vec![ClassSweep { workload: "memnet", times: vec![[1.0; 7]; THREADS.len()] }];
        let points = vec![GeometryPoint {
            m: 512,
            k: 512,
            n: 512,
            transpose_a: false,
            transpose_b: false,
            rows_ms: 4.0,
            packed_ms: 2.0,
        }];
        let json = to_json(&sweeps, &points, 1);
        assert!(json.contains("\"experiment\": \"gemm_scaling\""));
        assert!(json.contains("\"name\": \"memnet\""));
        assert!(json.contains("\"class\": \"A\""));
        assert!(json.contains("\"shape\": \"512x512x512 nn\""));
        assert!(json.contains("\"speedup\": 2.000"));
    }
}
