//! Additive (Bahdanau-style) attention.
//!
//! The seq2seq workload "leverages an attention-based model for keeping
//! track of context in the original sentence" (paper §IV). Scoring
//! follows the original TensorFlow `attention_decoder`: encoder
//! projections are hoisted out of the decoder loop, and the score is
//! `reduce_sum(v * tanh(W_e e + W_d q))` — elementwise multiply plus
//! reduction, not a matmul. The resulting `Mul`/`Tile`/`Sum`/`ConcatV2`
//! traffic is why those op types are prominent in seq2seq's Figure 3 row
//! and Figure 6b.

use fathom_dataflow::{Graph, NodeId};

use crate::init::{Init, Params};

/// Shared parameters of an additive attention head over encoder states of
/// width `enc_dim`, queried by decoder states of width `dec_dim`.
#[derive(Debug, Clone, Copy)]
pub struct Attention {
    w_enc: NodeId,
    w_dec: NodeId,
    v: NodeId,
    enc_dim: usize,
}

impl Attention {
    /// Creates attention parameters with an internal scoring width of
    /// `attn_dim`.
    pub fn new(
        g: &mut Graph,
        p: &mut Params,
        name: &str,
        enc_dim: usize,
        dec_dim: usize,
        attn_dim: usize,
    ) -> Self {
        Attention {
            w_enc: p.variable(g, format!("{name}/w_enc"), [enc_dim, attn_dim], Init::Xavier),
            w_dec: p.variable(g, format!("{name}/w_dec"), [dec_dim, attn_dim], Init::Xavier),
            v: p.variable(g, format!("{name}/v"), [attn_dim], Init::Xavier),
            enc_dim,
        }
    }

    /// Projects encoder states once, for reuse across every decoder step
    /// (as the original implementation's "hidden features").
    pub fn precompute(&self, g: &mut Graph, encoder_states: &[NodeId]) -> Vec<NodeId> {
        encoder_states.iter().map(|&e| g.matmul(e, self.w_enc)).collect()
    }

    /// Computes the context vector `[batch, enc_dim]` for a decoder query
    /// `[batch, dec_dim]` given the raw encoder states and their
    /// [`Attention::precompute`]d projections.
    ///
    /// # Panics
    ///
    /// Panics if `encoder_states` is empty or the projection count
    /// differs.
    pub fn context(
        &self,
        g: &mut Graph,
        encoder_states: &[NodeId],
        projections: &[NodeId],
        query: NodeId,
    ) -> NodeId {
        assert!(!encoder_states.is_empty(), "attention needs encoder states");
        assert_eq!(
            encoder_states.len(),
            projections.len(),
            "projections must match encoder states"
        );
        let batch = g.shape(query).dim(0);
        let t = encoder_states.len();
        // score_t = sum(v * tanh(proj_t + W_d q))   -> [batch, 1] per step
        let dq = g.matmul(query, self.w_dec);
        let mut scores = Vec::with_capacity(t);
        for &proj in projections {
            let sum = g.add_op(proj, dq);
            let act = g.tanh(sum);
            let weighted = g.mul(act, self.v); // broadcast over [batch, attn]
            scores.push(g.sum_axis_keep(weighted, 1)); // [batch, 1]
        }
        let score_mat = g.concat(&scores, 1); // [batch, T]
        let alpha = g.softmax(score_mat); // [batch, T]

        // Stack encoder states into [batch, T, enc_dim] via reshape+concat.
        let expanded: Vec<NodeId> = encoder_states
            .iter()
            .map(|&e| g.reshape(e, [batch, 1, self.enc_dim]))
            .collect();
        let stacked = g.concat(&expanded, 1); // [batch, T, enc_dim]

        // Broadcast weights across the feature axis with an explicit Tile
        // (as TensorFlow's seq2seq attention did), multiply, and reduce.
        let alpha3 = g.reshape(alpha, [batch, t, 1]);
        let alpha_tiled = g.tile(alpha3, vec![1, 1, self.enc_dim]); // [batch, T, enc_dim]
        let weighted = g.mul(stacked, alpha_tiled);
        g.sum_axis(weighted, 1) // [batch, enc_dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::{grad::gradients, Device, OpKind, Session};
    use fathom_tensor::{Rng, Shape, Tensor};

    fn setup(t: usize) -> (Graph, Params, Vec<NodeId>, NodeId, NodeId) {
        let mut g = Graph::new();
        let mut p = Params::seeded(1);
        let attn = Attention::new(&mut g, &mut p, "attn", 4, 3, 5);
        let enc: Vec<NodeId> = (0..t)
            .map(|i| g.placeholder(format!("e{i}"), Shape::matrix(2, 4)))
            .collect();
        let q = g.placeholder("q", Shape::matrix(2, 3));
        let proj = attn.precompute(&mut g, &enc);
        let ctx = attn.context(&mut g, &enc, &proj, q);
        (g, p, enc, q, ctx)
    }

    #[test]
    fn context_shape() {
        let (g, _, _, _, ctx) = setup(6);
        assert_eq!(g.shape(ctx).dims(), &[2, 4]);
    }

    #[test]
    fn context_is_convex_combination() {
        // With identical encoder states the context equals that state,
        // regardless of the attention weights.
        let (g, _, enc, q, ctx) = setup(3);
        let mut s = Session::new(g, Device::cpu(1));
        let mut rng = Rng::seeded(7);
        let e_val = Tensor::randn([2, 4], 0.0, 1.0, &mut rng);
        let mut feeds: Vec<(NodeId, Tensor)> =
            enc.iter().map(|&e| (e, e_val.clone())).collect();
        feeds.push((q, Tensor::randn([2, 3], 0.0, 1.0, &mut rng)));
        let out = s.run1(ctx, &feeds).unwrap();
        assert!(out.max_abs_diff(&e_val) < 1e-5);
    }

    #[test]
    fn attention_emits_data_movement_not_matmul_scores() {
        let (g, _, _, _, _) = setup(4);
        let has_tile = g.iter().any(|(_, n)| matches!(n.kind, OpKind::Tile { .. }));
        let has_concat = g.iter().any(|(_, n)| matches!(n.kind, OpKind::Concat { .. }));
        let has_softmax = g.iter().any(|(_, n)| matches!(n.kind, OpKind::Softmax));
        assert!(has_tile && has_concat && has_softmax);
        // Scoring via reduce_sum(v * tanh(...)): exactly 1 matmul per
        // encoder state (the precomputed projection) plus 1 for the query.
        let matmuls = g
            .iter()
            .filter(|(_, n)| matches!(n.kind, OpKind::MatMul { .. }))
            .count();
        assert_eq!(matmuls, 4 + 1);
    }

    #[test]
    fn attention_is_differentiable() {
        let (mut g, p, enc, q, ctx) = setup(3);
        let sq = g.square(ctx);
        let loss = g.sum_all(sq);
        let grads = gradients(&mut g, loss, p.trainable());
        let mut s = Session::new(g, Device::cpu(1));
        let mut rng = Rng::seeded(9);
        let mut feeds: Vec<(NodeId, Tensor)> = enc
            .iter()
            .map(|&e| (e, Tensor::randn([2, 4], 0.0, 1.0, &mut rng)))
            .collect();
        feeds.push((q, Tensor::randn([2, 3], 0.0, 1.0, &mut rng)));
        for &grad in &grads {
            let d = s.run1(grad, &feeds).unwrap();
            assert!(d.all_finite());
        }
    }
}
