//! The Fathom reference deep learning workloads, in Rust.
//!
//! This crate is the primary contribution of the reproduction: eight
//! archetypal deep learning models — `seq2seq`, `memnet`, `speech`,
//! `autoenc`, `residual`, `vgg`, `alexnet`, and `deepq` — implemented on
//! the [`fathom_dataflow`] graph framework and wrapped in the suite's
//! standard [`Workload`] interface, so that "evaluating training,
//! inference, or simply inspecting the model's dataflow graph is
//! straightforward" (paper §VI).
//!
//! # Examples
//!
//! ```no_run
//! use fathom::{BuildConfig, ModelKind, Workload};
//!
//! // Train two steps of the variational autoencoder and inspect its op mix.
//! let mut model = ModelKind::Autoenc.build(&BuildConfig::training());
//! model.session_mut().enable_tracing();
//! model.step();
//! model.step();
//! let trace = model.session_mut().take_trace();
//! println!("{} captured {} op executions", model.name(), trace.events.len());
//! ```

#![warn(missing_docs)]

pub mod models;
mod registry;
pub mod train;
mod workload;

pub use fathom_dataflow::Precision;
pub use registry::{ModelKind, ParseModelError};
pub use train::{
    GuardrailPolicy, RetryPolicy, SnapshotPolicy, TrainError, TrainOutcome, TrainReport, Trainer,
};
pub use workload::{
    BatchSpec, BuildConfig, FusionLevel, InputPort, Mode, ModelScale, OutputPort, PortDomain,
    StepStats, TrainProbes, Workload, WorkloadMetadata,
};
