//! One module per paper artifact. See DESIGN.md's experiment index.

pub mod ablation;
pub mod fig1;
pub mod intensity;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fusion;
pub mod gemm;
pub mod memory;
pub mod overhead;
pub mod precision;
pub mod profiles;
pub mod recovery;
pub mod runtime;
pub mod scheduler;
pub mod serve;
pub mod table1;
pub mod table2;
