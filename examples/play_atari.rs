//! Train the DQN agent on the ALE-style catch game and watch its score
//! improve, then render one played frame.
//!
//! ```text
//! cargo run --release --example play_atari
//! ```

use fathom_suite::fathom::models::deepq::Deepq;
use fathom_suite::fathom::{BuildConfig, Workload};
use fathom_suite::fathom_ale::{AleEnv, FRAME_SIDE};

fn render_frame(env: &AleEnv) -> String {
    // Downsample the 84x84 frame 2x for the terminal.
    let obs = env.observation();
    let mut out = String::new();
    for r in (0..FRAME_SIDE).step_by(2) {
        for c in (0..FRAME_SIDE).step_by(2) {
            // Newest frame plane is the last of the 4-stack.
            let v = obs.data()[(r * FRAME_SIDE + c) * 4 + 3];
            out.push(if v > 0.8 {
                'O'
            } else if v > 0.3 {
                '='
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mut agent = Deepq::build(&BuildConfig::training());
    println!("training DQN on the catch game (replay + target network + RMSProp)...");
    println!("a random policy scores about -0.6; a perfect one +1.0.\n");
    for round in 0..8 {
        for _ in 0..500 {
            agent.step();
        }
        println!(
            "  after {:>4} steps: mean episode reward {:+.2}",
            (round + 1) * 500,
            agent.recent_reward()
        );
    }

    println!("\none frame of the game (O = ball, = = paddle):");
    let env = AleEnv::new(99);
    print!("{}", render_frame(&env));
}
