//! Execution devices.
//!
//! The paper measures a 4 GHz Skylake i7-6700k CPU and a GTX 960 GPU. The
//! CPU device here executes kernels for real through an [`ExecPool`] with
//! a configurable thread count (the paper's intra-op parallelism knob).
//! The GPU is **simulated**: operations still execute on the host so that
//! values are exact, but their *reported* durations come from an analytic
//! roofline model — see DESIGN.md's substitution table for why this
//! preserves the relative behavior Figure 5 depends on.

use std::sync::Arc;

use fathom_tensor::{ExecPool, Runtime};

use crate::cost::OpCost;
use crate::op::{OpClass, OpKind};

/// Analytic roofline model of an accelerator.
///
/// Per-op modeled latency is
/// `max(flops / peak_flops(class), bytes / bandwidth) + launch_overhead`.
/// Dense matrix and convolution ops reach `peak_flops`; everything else is
/// capped at `scalar_flops` (vector units without tensor-core-style reuse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Peak throughput for convolution/matmul, in flop/s.
    pub peak_flops: f64,
    /// Throughput for all other compute, in flop/s.
    pub scalar_flops: f64,
    /// Device memory bandwidth, in bytes/s.
    pub bandwidth: f64,
    /// Fixed kernel-launch overhead per operation, in seconds.
    pub launch_overhead: f64,
}

impl GpuModel {
    /// A model in the spirit of the paper's NVidia GTX 960 (Maxwell,
    /// ~2.3 TFLOP/s, 112 GB/s, PCIe-attached).
    pub fn gtx960() -> Self {
        GpuModel {
            peak_flops: 2.3e12,
            scalar_flops: 3.0e11,
            bandwidth: 1.12e11,
            // Raw CUDA launches cost ~5us, but stream pipelining overlaps
            // them with execution; 1.5us is the effective amortized cost.
            launch_overhead: 1.5e-6,
        }
    }

    /// Modeled execution time of an operation, in nanoseconds.
    pub fn model_nanos(&self, kind: &OpKind, cost: OpCost) -> f64 {
        let peak = match kind.class() {
            OpClass::MatrixOps | OpClass::Convolution => self.peak_flops,
            _ => self.scalar_flops,
        };
        let compute = cost.flops / peak;
        let memory = cost.bytes / self.bandwidth;
        (compute.max(memory) + self.launch_overhead) * 1e9
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::gtx960()
    }
}

/// Analytic model of intra-op thread scaling on a multi-core CPU.
///
/// The benchmark host may have fewer cores than the paper's quad-core
/// i7-6700k (or than the 8-thread sweep of Figure 6). [`Device::SimCpu`]
/// executes every op serially — values are exact — and scales the
/// *measured serial duration* by the same worker-count policy the real
/// [`ExecPool`] uses: ops whose total work is below one grain per extra
/// worker stay serial, the rest follow Amdahl's law with a per-dispatch
/// wake-up cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Fraction of an op's serial time that parallelizes.
    pub parallel_fraction: f64,
    /// Cross-thread dispatch cost per parallelized op, in seconds.
    pub dispatch_overhead: f64,
    /// Minimum work (elements touched) per participating worker.
    pub grain: usize,
}

impl CpuModel {
    /// Scales a measured serial duration to `threads` modeled workers.
    /// `pool_backed` says whether the op's kernel dispatches through the
    /// intra-op pool at all (see `OpKind::uses_intra_op_pool`). Modeled
    /// time never exceeds the serial time: a real pool with this policy
    /// would fall back to serial when dispatch cannot pay for itself.
    pub fn model_nanos(&self, serial_nanos: f64, cost: OpCost, threads: usize, pool_backed: bool) -> f64 {
        if !pool_backed {
            return serial_nanos;
        }
        // Elements touched is the same notion of work the pool sizes by.
        let work = (cost.bytes / 4.0).max(cost.flops) as usize;
        let workers = (work / self.grain.max(1)).clamp(1, threads.max(1));
        if workers <= 1 {
            return serial_nanos;
        }
        let p = self.parallel_fraction;
        let scaled = serial_nanos * ((1.0 - p) + p / workers as f64) + self.dispatch_overhead * 1e9;
        scaled.min(serial_nanos)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            parallel_fraction: 0.9,
            // A persistent-pool wake-up (channel send + condvar) costs a
            // couple of microseconds, not a thread spawn.
            dispatch_overhead: 2e-6,
            grain: fathom_tensor::DEFAULT_GRAIN,
        }
    }
}

/// Where (and how) a session executes operations.
#[derive(Debug, Clone)]
pub enum Device {
    /// Real execution on the host CPU. Two independent parallelism knobs,
    /// mirroring TensorFlow's thread-pool pair: `pool` bounds *intra*-op
    /// threads (workers splitting one kernel), `inter_ops` bounds how many
    /// independent operations the session scheduler may run concurrently.
    Cpu {
        /// The intra-op thread pool shared by every kernel.
        pool: ExecPool,
        /// Maximum concurrently executing operations (`1` = serial plan
        /// walk, the classic single-stream executor).
        inter_ops: usize,
    },
    /// Serial execution with durations scaled by an analytic multi-core
    /// model (for hosts with fewer cores than the experiment sweeps).
    SimCpu {
        /// Modeled worker count.
        threads: usize,
        /// Scaling model.
        model: CpuModel,
    },
    /// Real execution on the host for values, with durations replaced by
    /// the roofline model.
    SimGpu(GpuModel),
}

impl Device {
    /// CPU device with `threads` intra-op workers and a serial (one op at
    /// a time) scheduler.
    pub fn cpu(threads: usize) -> Self {
        Device::Cpu { pool: ExecPool::new(threads), inter_ops: 1 }
    }

    /// CPU device with both parallelism knobs: `intra_threads` workers
    /// per kernel and up to `inter_ops` independent operations in flight.
    /// Both knobs draw from **one** work-stealing runtime sized
    /// `max(intra, inter)` — kernel chunks and whole ready operations
    /// share the same worker set, so the thread budget is exactly that
    /// maximum regardless of how the two knobs divide it.
    pub fn cpu_inter_op(intra_threads: usize, inter_ops: usize) -> Self {
        let intra = intra_threads.max(1);
        let inter = inter_ops.max(1);
        let budget = intra.max(inter);
        if budget <= 1 {
            return Device::cpu(1);
        }
        let rt = Arc::new(Runtime::new(budget));
        Device::Cpu { pool: ExecPool::on_runtime(&rt, intra), inter_ops: inter }
    }

    /// CPU device whose kernels and scheduler run on an **existing**
    /// runtime instead of spawning threads of their own. This is how a
    /// serving fleet gives every replica full-width kernels without
    /// multiplying the process's thread count by the replica count.
    pub fn cpu_on_runtime(rt: &Arc<Runtime>, intra_threads: usize, inter_ops: usize) -> Self {
        Device::Cpu { pool: ExecPool::on_runtime(rt, intra_threads.max(1)), inter_ops: inter_ops.max(1) }
    }

    /// Modeled multi-core CPU with `threads` workers.
    pub fn sim_cpu(threads: usize) -> Self {
        Device::SimCpu { threads, model: CpuModel::default() }
    }

    /// A CPU device with `threads` intra-op workers: real when the host
    /// has that many cores, modeled otherwise.
    pub fn cpu_or_model(threads: usize) -> Self {
        let cores = Runtime::workers();
        if cores >= threads {
            Device::cpu(threads)
        } else {
            Device::sim_cpu(threads)
        }
    }

    /// Simulated GPU with the default GTX 960-class model.
    pub fn sim_gpu() -> Self {
        Device::SimGpu(GpuModel::default())
    }

    /// The pool ops should execute on. Modeled devices compute values on
    /// a serial host pool so their measured serial time is meaningful.
    pub fn pool(&self) -> ExecPool {
        match self {
            Device::Cpu { pool, .. } => pool.clone(),
            Device::SimCpu { .. } | Device::SimGpu(_) => ExecPool::serial(),
        }
    }

    /// How many operations the session may execute concurrently. Modeled
    /// devices execute serially (their op durations are scaled
    /// analytically instead), so they report 1.
    pub fn inter_ops(&self) -> usize {
        match self {
            Device::Cpu { inter_ops, .. } => (*inter_ops).max(1),
            Device::SimCpu { .. } | Device::SimGpu(_) => 1,
        }
    }

    /// Returns `true` if durations are modeled rather than measured.
    pub fn is_modeled(&self) -> bool {
        matches!(self, Device::SimCpu { .. } | Device::SimGpu(_))
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::cpu(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_matmul_is_compute_bound() {
        let m = GpuModel::gtx960();
        // 1024^3-ish matmul: 2 GFLOP over 12 MB.
        let cost = OpCost { flops: 2.15e9, bytes: 1.2e7 };
        let kind = OpKind::MatMul { transpose_a: false, transpose_b: false };
        let nanos = m.model_nanos(&kind, cost);
        let compute_ns = cost.flops / m.peak_flops * 1e9;
        assert!(nanos >= compute_ns);
        // Memory time would be ~107us; compute ~934us; so compute dominates.
        assert!(nanos < compute_ns + (m.launch_overhead * 1e9) + 1.0);
    }

    #[test]
    fn tiny_op_is_launch_bound() {
        let m = GpuModel::gtx960();
        let cost = OpCost { flops: 100.0, bytes: 400.0 };
        let nanos = m.model_nanos(&OpKind::Add, cost);
        // Essentially pure launch overhead (1.5us).
        assert!((nanos - 1_500.0).abs() < 100.0, "nanos {nanos}");
    }

    #[test]
    fn elementwise_is_bandwidth_bound() {
        let m = GpuModel::gtx960();
        // 100M-element add: 0.1 GFLOP over 1.2 GB.
        let cost = OpCost { flops: 1e8, bytes: 1.2e9 };
        let nanos = m.model_nanos(&OpKind::Add, cost);
        let memory_ns = cost.bytes / m.bandwidth * 1e9;
        assert!((nanos - memory_ns - m.launch_overhead * 1e9).abs() < 1.0);
    }

    #[test]
    fn matrix_class_uses_peak_throughput() {
        let m = GpuModel::gtx960();
        let cost = OpCost { flops: 1e9, bytes: 1000.0 };
        let mm = m.model_nanos(&OpKind::MatMul { transpose_a: false, transpose_b: false }, cost);
        let ew = m.model_nanos(&OpKind::Tanh, cost);
        assert!(ew > 5.0 * mm, "elementwise {ew} should be much slower than matmul {mm}");
    }

    #[test]
    fn cpu_model_keeps_small_ops_serial() {
        let m = CpuModel::default();
        let cost = OpCost { flops: 100.0, bytes: 400.0 };
        assert_eq!(m.model_nanos(1000.0, cost, 8, true), 1000.0);
    }

    #[test]
    fn cpu_model_scales_big_ops() {
        let m = CpuModel::default();
        // 10M flops of work, 10 ms serial.
        let cost = OpCost { flops: 1e7, bytes: 1e6 };
        let t1 = m.model_nanos(1e7, cost, 1, true);
        let t8 = m.model_nanos(1e7, cost, 8, true);
        assert_eq!(t1, 1e7);
        // Amdahl with p = 0.9 at 8 workers: ~0.2125x plus 2us dispatch.
        let expected = 1e7 * (0.1 + 0.9 / 8.0) + 2_000.0;
        assert!((t8 - expected).abs() < 1.0, "t8 {t8} vs {expected}");
        assert!(t8 < t1 / 3.0);
    }

    #[test]
    fn cpu_model_worker_count_capped_by_work() {
        let m = CpuModel::default();
        // Two grains of work: only 2 workers even with 8 threads.
        let cost = OpCost { flops: (2 * m.grain) as f64, bytes: 0.0 };
        let t8 = m.model_nanos(1e6, cost, 8, true);
        let expected = 1e6 * (0.1 + 0.9 / 2.0) + 2_000.0;
        assert!((t8 - expected).abs() < 1.0, "t8 {t8} vs {expected}");
    }

    #[test]
    fn cpu_model_never_slower_than_serial_and_skips_serial_ops() {
        let m = CpuModel::default();
        let cost = OpCost { flops: 40_000.0, bytes: 0.0 };
        // 2 workers on a 3us op: Amdahl saving < dispatch cost -> serial.
        assert_eq!(m.model_nanos(3_000.0, cost, 8, true), 3_000.0);
        // Non-pool-backed ops (Apply*, clones) never scale.
        let big = OpCost { flops: 1e8, bytes: 0.0 };
        assert_eq!(m.model_nanos(1e6, big, 8, false), 1e6);
    }

    #[test]
    fn cpu_or_model_picks_a_device() {
        // On any host this returns *something* consistent with core count.
        let d = Device::cpu_or_model(1);
        assert!(!d.is_modeled(), "1 thread is always real");
        assert!(Device::sim_cpu(8).is_modeled());
    }

    #[test]
    fn device_pool_threads() {
        assert_eq!(Device::cpu(8).pool().threads(), 8);
        assert!(Device::sim_gpu().is_modeled());
        assert!(!Device::cpu(1).is_modeled());
    }
}
