//! Integration: checkpoints, exports, and full-scale graph construction
//! across real workloads.

use fathom_suite::fathom::{BuildConfig, ModelKind, ModelScale};
use fathom_suite::fathom_dataflow::checkpoint::{CheckpointError, TrainCursor};
use fathom_suite::fathom_dataflow::{checkpoint, export};

#[test]
fn autoenc_checkpoint_round_trips_through_the_workload_interface() {
    let cfg = BuildConfig::training().with_seed(7);
    let mut trained = ModelKind::Autoenc.build(&cfg);
    for _ in 0..5 {
        trained.step();
    }
    let mut buf = Vec::new();
    checkpoint::save(trained.session(), &mut buf).expect("saves");

    // A fresh instance restored from the checkpoint must produce the same
    // next loss as the trained one (identical variables, RNG reseeded, and
    // the data stream restarted from the same seed).
    let trained_loss = {
        let mut probe = ModelKind::Autoenc.build(&cfg);
        checkpoint::load(probe.session_mut(), buf.as_slice()).expect("loads");
        probe.step().loss.expect("training loss")
    };
    let fresh_loss = ModelKind::Autoenc
        .build(&cfg)
        .step()
        .loss
        .expect("training loss");
    assert_ne!(
        trained_loss, fresh_loss,
        "restored weights should differ from initialization"
    );
    assert!(trained_loss < fresh_loss, "training progress was not restored");
}

#[test]
fn checkpoints_do_not_cross_workloads() {
    let mut alexnet = ModelKind::Alexnet.build(&BuildConfig::training());
    alexnet.step();
    let mut buf = Vec::new();
    checkpoint::save(alexnet.session(), &mut buf).expect("saves");
    let mut vgg = ModelKind::Vgg.build(&BuildConfig::training());
    assert!(
        checkpoint::load(vgg.session_mut(), buf.as_slice()).is_err(),
        "an alexnet checkpoint must not load into vgg"
    );
}

#[test]
fn truncated_and_corrupt_checkpoints_are_rejected_loudly() {
    let mut model = ModelKind::Memnet.build(&BuildConfig::training());
    model.step();
    let mut buf = Vec::new();
    checkpoint::save(model.session(), &mut buf).expect("saves");

    // Truncation anywhere — inside the header, a record header, or a
    // record's data — must surface as BadHeader ("this is not a complete
    // checkpoint"), never as a raw I/O EOF.
    for keep in [4, 13, buf.len() / 3, buf.len() - 1] {
        let mut cut = buf.clone();
        cut.truncate(keep);
        let mut fresh = ModelKind::Memnet.build(&BuildConfig::training());
        let err = checkpoint::load(fresh.session_mut(), cut.as_slice()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::BadHeader(_)),
            "truncation at {keep}/{} bytes gave {err:?}",
            buf.len()
        );
    }

    // Corrupt magic bytes are a format error too.
    let mut garbled = buf.clone();
    garbled[0] ^= 0xFF;
    let mut fresh = ModelKind::Memnet.build(&BuildConfig::training());
    let err = checkpoint::load(fresh.session_mut(), garbled.as_slice()).unwrap_err();
    assert!(matches!(err, CheckpointError::BadHeader(_)), "got {err:?}");
}

#[test]
fn fuzzed_corruption_always_yields_a_typed_error_and_never_panics() {
    use fathom_suite::fathom_dataflow::{FaultAction, FaultPlan};

    let cfg = BuildConfig::training().with_seed(11);
    let mut model = ModelKind::Autoenc.build(&cfg);
    model.step();
    let mut buf = Vec::new();
    checkpoint::save(model.session(), &mut buf).expect("saves");
    checkpoint::verify(buf.as_slice()).expect("the pristine checkpoint verifies");

    // One victim session reused across rounds: `load` stages the whole
    // payload before touching any variable, so a failed load must leave
    // the session loadable for the next round.
    let mut victim = ModelKind::Autoenc.build(&cfg);
    for round in 0..48u64 {
        let plan = FaultPlan::new(0xF0_22 + round);
        let action = if round % 3 == 0 {
            FaultAction::Truncate { keep: (round as usize * 977) % buf.len() }
        } else {
            FaultAction::BitFlips { flips: 1 + (round as usize % 7) }
        };
        let mut mangled = buf.clone();
        plan.corrupt(&mut mangled, &action);
        if mangled == buf {
            continue; // an even number of flips on one bit can cancel out
        }

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checkpoint::load(victim.session_mut(), mangled.as_slice())
        }));
        let result = outcome.unwrap_or_else(|_| {
            panic!("load panicked on corrupted bytes (round {round}, {action:?})")
        });
        let err = result.expect_err("corrupted bytes must not load");
        // A flip landing in the version or flags word reads as a file
        // from a newer writer (UnsupportedVersion); anywhere else it is
        // a format or checksum failure.
        assert!(
            matches!(
                err,
                CheckpointError::BadHeader(_)
                    | CheckpointError::Corrupt(_)
                    | CheckpointError::UnsupportedVersion(_)
            ),
            "round {round} ({action:?}) gave unexpected error {err:?}"
        );
        assert!(
            checkpoint::verify(mangled.as_slice()).is_err(),
            "verify must agree with load (round {round}, {action:?})"
        );
    }

    // The victim took no damage from any of the failed loads.
    checkpoint::load(victim.session_mut(), buf.as_slice())
        .expect("the pristine checkpoint still loads after 48 failed attempts");
}

#[test]
fn fuzzed_flag_words_are_typed_unsupported_or_rejected_and_never_panic() {
    // Exhaustively sweep the low flag byte plus a sample of high words:
    // every flags value must either load (bits we understand, and then
    // only if the sections really follow) or fail with a typed error —
    // unknown bits specifically as UnsupportedVersion, so callers can
    // tell "written by a newer build" apart from damage.
    let cfg = BuildConfig::training().with_seed(13);
    let mut model = ModelKind::Autoenc.build(&cfg);
    model.step();
    let mut buf = Vec::new();
    checkpoint::save(model.session(), &mut buf).expect("saves");
    let original = u32::from_le_bytes(buf[12..16].try_into().unwrap());

    let mut victim = ModelKind::Autoenc.build(&cfg);
    let mut flag_words: Vec<u32> = (0..=0xFFu32).collect();
    flag_words.extend([0x100, 0x8000, 0x0001_0000, 0x00FF_0000, 0x8000_0001, u32::MAX]);
    for flags in flag_words {
        let mut mangled = buf.clone();
        mangled[12..16].copy_from_slice(&flags.to_le_bytes());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checkpoint::load(victim.session_mut(), mangled.as_slice())
        }));
        let result = outcome
            .unwrap_or_else(|_| panic!("load panicked on flags word {flags:#010x}"));
        if flags == original {
            result.expect("the original flags word still loads");
            continue;
        }
        let err = result.expect_err("an altered flags word must not checksum");
        // Bits beyond VARS|RESUME|CALIB (0b111) announce sections this
        // build cannot parse: typed as UnsupportedVersion before any
        // payload is read. Known-bit combinations fail later — missing
        // variables section, unparsable phantom sections, or checksum.
        if flags & !0b111 != 0 {
            assert!(
                matches!(err, CheckpointError::UnsupportedVersion(_)),
                "flags {flags:#010x} gave {err:?}"
            );
        } else {
            assert!(
                matches!(err, CheckpointError::BadHeader(_) | CheckpointError::Corrupt(_)),
                "flags {flags:#010x} gave {err:?}"
            );
        }
    }

    checkpoint::load(victim.session_mut(), buf.as_slice())
        .expect("the pristine checkpoint still loads after the flag sweep");
}

#[test]
fn resume_checkpoints_round_trip_byte_identically() {
    // The full-fidelity property behind deterministic resume: for a
    // spread of workloads and seeds, save -> load -> save must emit the
    // exact same bytes. Any drift (a lossy pipeline codec, an unordered
    // optimizer-slot walk, an RNG word dropped) shows up here as a
    // byte-level diff before it ever becomes a subtle training fork.
    for (kind, seed) in
        [(ModelKind::Autoenc, 3u64), (ModelKind::Memnet, 9), (ModelKind::Deepq, 21)]
    {
        let cfg = BuildConfig::training().with_seed(seed);
        let mut model = kind.build(&cfg);
        for _ in 0..3 {
            model.step();
        }
        let cursor = TrainCursor { global_step: 3, epoch: 0, position: 3 };
        let mut first = Vec::new();
        checkpoint::save_resume(model.session(), cursor, &model.export_pipeline(), &mut first)
            .expect("saves");

        let mut restored = kind.build(&cfg);
        let header =
            checkpoint::load_resume(restored.session_mut(), first.as_slice()).expect("loads");
        assert_eq!(header.cursor, cursor, "{}", kind.name());
        restored.import_pipeline(&header.pipeline).expect("pipeline imports");

        let mut second = Vec::new();
        checkpoint::save_resume(
            restored.session(),
            header.cursor,
            &restored.export_pipeline(),
            &mut second,
        )
        .expect("saves again");
        assert_eq!(
            first,
            second,
            "{}: resume save->load->save must be byte-identical",
            kind.name()
        );
    }
}

#[test]
fn resume_truncation_at_every_boundary_is_typed_never_a_panic() {
    let cfg = BuildConfig::training().with_seed(5);
    let mut model = ModelKind::Memnet.build(&cfg);
    model.step();
    let cursor = TrainCursor { global_step: 1, epoch: 0, position: 1 };
    let mut buf = Vec::new();
    checkpoint::save_resume(model.session(), cursor, &model.export_pipeline(), &mut buf)
        .expect("saves");

    // Every length boundary in the structured head and tail (headers,
    // flags, digest, the resume section) plus a stride through the bulk
    // tensor bytes in between: each cut must yield a typed error, never
    // a panic. The victim session is reused across every failed load to
    // prove failed loads are side-effect free.
    let mut victim = ModelKind::Memnet.build(&cfg);
    let len = buf.len();
    let mut boundaries: Vec<usize> = (0..len.min(512)).collect();
    boundaries.extend((len.saturating_sub(512)..len).filter(|&k| k >= 512));
    boundaries.extend((512..len.saturating_sub(512)).step_by(97));
    for keep in boundaries {
        let cut = &buf[..keep];
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checkpoint::load_resume(victim.session_mut(), cut)
        }));
        let result = outcome
            .unwrap_or_else(|_| panic!("load_resume panicked at boundary {keep}/{len}"));
        let err = result.expect_err("a truncated resume checkpoint must not load");
        assert!(
            matches!(
                err,
                CheckpointError::BadHeader(_)
                    | CheckpointError::Corrupt(_)
                    | CheckpointError::UnsupportedVersion(_)
            ),
            "boundary {keep}/{len} gave unexpected error {err:?}"
        );
    }

    // Sampled bitflips across the resume format get the same guarantee.
    use fathom_suite::fathom_dataflow::{FaultAction, FaultPlan};
    for round in 0..24u64 {
        let mut mangled = buf.clone();
        FaultPlan::new(0x2E50E + round)
            .corrupt(&mut mangled, &FaultAction::BitFlips { flips: 1 + (round as usize % 5) });
        if mangled == buf {
            continue;
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checkpoint::load_resume(victim.session_mut(), mangled.as_slice())
        }));
        let result =
            outcome.unwrap_or_else(|_| panic!("load_resume panicked on bitflips (round {round})"));
        assert!(result.is_err(), "round {round}: corrupted resume bytes must not load");
    }

    checkpoint::load_resume(victim.session_mut(), buf.as_slice())
        .expect("the pristine resume checkpoint still loads after every failed attempt");
}

#[test]
fn every_workload_exports_dot_and_chrome_trace() {
    for kind in [ModelKind::Autoenc, ModelKind::Memnet, ModelKind::Deepq] {
        let mut model = kind.build(&BuildConfig::training());
        let dot = export::to_dot(model.session().graph());
        assert!(dot.starts_with("digraph fathom"));
        assert!(dot.len() > 1000, "{kind}: suspiciously small graph export");

        model.session_mut().enable_tracing();
        model.step();
        let trace = model.session_mut().take_trace();
        let json = export::to_chrome_trace(&trace);
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

#[test]
#[ignore = "allocates full-scale parameters; run with --release -- --ignored"]
fn full_scale_graphs_construct_with_paper_dimensions() {
    // Building (not stepping) the Full-scale graphs checks that the
    // paper-true dimension tables are internally consistent.
    for kind in [ModelKind::Alexnet, ModelKind::Residual, ModelKind::Deepq, ModelKind::Autoenc] {
        let cfg = BuildConfig::training().with_scale(ModelScale::Full);
        let model = kind.build(&cfg);
        let params: usize = model
            .session()
            .graph()
            .variables()
            .iter()
            .map(|&v| model.session().graph().shape(v).num_elements())
            .sum();
        // Sanity bands for the famous parameter counts.
        match kind {
            ModelKind::Alexnet => assert!((50e6..80e6).contains(&(params as f64)), "alexnet {params}"),
            ModelKind::Residual => assert!((15e6..30e6).contains(&(params as f64)), "residual {params}"),
            _ => assert!(params > 100_000, "{kind}: only {params} params"),
        }
    }
}
