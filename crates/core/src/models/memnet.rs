//! `memnet` — end-to-end memory networks (Sukhbaatar, Szlam, Weston &
//! Fergus, NIPS 2015).
//!
//! "One of two novel architectures which explore a topology beyond
//! feed-forward lattices of neurons" (paper Table II): an indirectly
//! addressable memory joined to a neural controller. Three hops of
//! content-based addressing over embedded story sentences answer bAbI
//! questions. The hop arithmetic — `Mul`, `Tile`, `Sum`, `Softmax` over
//! small, skinny tensors — is exactly the operation mix the paper's
//! Figure 6c shows refusing to parallelize.

use fathom_data::babi::BabiTask;
use fathom_dataflow::{ExecError, Graph, NodeId, Optimizer, Session, TrainHandles};
use fathom_nn::{Init, Params};

use crate::models::codec::{Dec, Enc};
use crate::workload::{
    BatchSpec, BuildConfig, InputPort, Mode, ModelScale, OutputPort, PortDomain, StepStats,
    TrainProbes, Workload, WorkloadMetadata,
};

struct Dims {
    batch: usize,
    sentences: usize,
    embed: usize,
    hops: usize,
}

fn dims(scale: ModelScale) -> Dims {
    match scale {
        ModelScale::Reference => Dims { batch: 32, sentences: 20, embed: 64, hops: 3 },
        ModelScale::Full => Dims { batch: 32, sentences: 50, embed: 64, hops: 3 },
    }
}

/// Table II metadata for `memnet`.
pub fn metadata() -> WorkloadMetadata {
    WorkloadMetadata {
        name: "memnet",
        year: 2015,
        reference: "Sukhbaatar, Szlam, Weston & Fergus, NIPS 2015",
        style: "Memory Network",
        layers: 3,
        task: "Supervised",
        dataset: "bAbI",
        purpose: "Facebook's memory-oriented neural system. One of two novel \
                  architectures which explore a topology beyond feed-forward \
                  lattices of neurons.",
    }
}

/// The `memnet` workload (end-to-end memory network, 3 hops).
pub struct Memnet {
    meta: WorkloadMetadata,
    mode: Mode,
    session: Session,
    task: BabiTask,
    stories: NodeId,
    questions: NodeId,
    answers: NodeId,
    logits: NodeId,
    loss: NodeId,
    train: Option<TrainHandles>,
    batch: usize,
}

impl Memnet {
    /// Builds the workload per the configuration.
    pub fn build(cfg: &BuildConfig) -> Self {
        let mut d = dims(cfg.scale);
        d.batch = cfg.batch_or(d.batch);
        let task = BabiTask::new(d.sentences, cfg.seed ^ 0xBAB1);
        let vocab = task.vocab();
        let classes = task.classes();
        let words = task.sentence_len();
        let (b, s, w, dim) = (d.batch, d.sentences, words, d.embed);

        let mut g = Graph::new();
        let mut p = Params::seeded(cfg.seed);
        let stories = g.placeholder("stories", [b, s, w]);
        let questions = g.placeholder("questions", [b, w]);
        let answers = g.placeholder("answers", [b]);

        // Embeddings: A (memory keys), C (memory values), B (question).
        let emb_a = p.variable(&mut g, "emb_a", [vocab, dim], Init::Normal(0.1));
        let emb_c = p.variable(&mut g, "emb_c", [vocab, dim], Init::Normal(0.1));
        let emb_b = p.variable(&mut g, "emb_b", [vocab, dim], Init::Normal(0.1));

        // Bag-of-words sentence encodings: sum embedded words, plus the
        // original's temporal encoding (a learnable per-slot offset) so
        // the model can order memories and find the *latest* fact.
        let temporal_a = p.variable(&mut g, "temporal_a", [s, dim], Init::Normal(0.1));
        let temporal_c = p.variable(&mut g, "temporal_c", [s, dim], Init::Normal(0.1));
        let story_a = g.gather(emb_a, stories); // [b, s, w, dim]
        let bow_a = g.sum_axis(story_a, 2); // [b, s, dim]
        let memory_keys = g.add_op(bow_a, temporal_a); // broadcast over batch
        let story_c = g.gather(emb_c, stories);
        let bow_c = g.sum_axis(story_c, 2); // [b, s, dim]
        let memory_values = g.add_op(bow_c, temporal_c);
        let q_emb = g.gather(emb_b, questions); // [b, w, dim]
        let mut u = g.sum_axis(q_emb, 1); // [b, dim]

        // Hop transform H (shared), as in the layer-wise weight tying of
        // the original.
        let hop_transform = p.variable(&mut g, "hop_h", [dim, dim], Init::Xavier);

        for _hop in 0..d.hops {
            // Addressing: p = softmax_s(sum_d keys * u)
            let u3 = g.reshape(u, [b, 1, dim]);
            let u_tiled = g.tile(u3, vec![1, s, 1]); // [b, s, dim]
            let scored = g.mul(memory_keys, u_tiled);
            let scores = g.sum_axis(scored, 2); // [b, s]
            let weights = g.softmax(scores);
            // Readout: o = sum_s p * values
            let w3 = g.reshape(weights, [b, s, 1]);
            let w_tiled = g.tile(w3, vec![1, 1, dim]); // [b, s, dim]
            let weighted = g.mul(memory_values, w_tiled);
            let o = g.sum_axis(weighted, 1); // [b, dim]
            // Controller update: u' = H u + o
            let hu = g.matmul(u, hop_transform);
            u = g.add_op(hu, o);
        }

        let out_w = p.variable(&mut g, "out_w", [dim, classes], Init::Xavier);
        let logits = g.matmul(u, out_w);
        let loss = g.softmax_cross_entropy(logits, answers);
        let train = match cfg.mode {
            Mode::Training => {
                Some(Optimizer::adam(5e-3).minimize_tracked(&mut g, loss, p.trainable()))
            }
            Mode::Inference => None,
        };
        let mut session = Session::with_seed(g, cfg.device.clone(), cfg.seed);
        if cfg.fusion.enabled() {
            let mut keep = vec![loss, logits];
            keep.extend(train.iter().flat_map(|h| [h.step, h.grad_norm]));
            session.enable_fusion_with(
                &keep,
                fathom_dataflow::optimize::FusionOptions {
                    gemm_epilogues: cfg.fusion.gemm_epilogues(),
                },
            );
        }
        Memnet {
            meta: metadata(),
            mode: cfg.mode,
            session,
            task,
            stories,
            questions,
            answers,
            logits,
            loss,
            train,
            batch: d.batch,
        }
    }

    /// Classification accuracy over one fresh batch (used by tests and
    /// examples).
    pub fn evaluate_accuracy(&mut self) -> f32 {
        let (stories, questions, answers) = self.task.batch(self.batch);
        let out = self
            .session
            .run(
                &[self.logits],
                &[(self.stories, stories), (self.questions, questions)],
            )
            .expect("workload graphs are well-formed");
        let pred = out[0].argmax_last_axis();
        let correct = pred
            .data()
            .iter()
            .zip(answers.data())
            .filter(|(a, b)| a == b)
            .count();
        correct as f32 / self.batch as f32
    }
}

impl Workload for Memnet {
    fn metadata(&self) -> &WorkloadMetadata {
        &self.meta
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn try_step(&mut self) -> Result<StepStats, ExecError> {
        let rng_before = self.task.rng_state();
        let (stories, questions, answers) = self.task.batch(self.batch);
        let result = match self.mode {
            Mode::Training => {
                let train = self.train.expect("training graph was built");
                self.session
                    .run(
                        &[self.loss, train.grad_norm, train.step],
                        &[
                            (self.stories, stories),
                            (self.questions, questions),
                            (self.answers, answers),
                        ],
                    )
                    .map(|out| StepStats {
                        loss: Some(out[0].scalar_value()),
                        metric: None,
                        grad_norm: Some(out[1].scalar_value()),
                    })
            }
            Mode::Inference => self
                .session
                .run(
                    &[self.logits],
                    &[(self.stories, stories), (self.questions, questions)],
                )
                .map(|out| {
                    let pred = out[0].argmax_last_axis();
                    let acc = pred
                        .data()
                        .iter()
                        .zip(answers.data())
                        .filter(|(a, b)| a == b)
                        .count() as f32
                        / self.batch as f32;
                    StepStats { loss: None, metric: Some(acc), grad_norm: None }
                }),
        };
        if result.is_err() {
            self.task.set_rng_state(rng_before);
        }
        result
    }

    fn session(&self) -> &Session {
        &self.session
    }

    fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    fn batch_spec(&self) -> Option<BatchSpec> {
        if self.mode != Mode::Inference {
            return None;
        }
        let vocab = self.task.vocab();
        Some(BatchSpec {
            inputs: vec![
                InputPort {
                    node: self.stories,
                    batch_axis: 0,
                    domain: PortDomain::Tokens { vocab },
                },
                InputPort {
                    node: self.questions,
                    batch_axis: 0,
                    domain: PortDomain::Tokens { vocab },
                },
            ],
            output: OutputPort { node: self.logits, batch_axis: 0 },
            capacity: self.batch,
        })
    }

    fn train_probes(&self) -> Option<TrainProbes> {
        self.train.map(|h| TrainProbes { loss: self.loss, grad_norm: h.grad_norm })
    }

    fn export_pipeline(&self) -> Vec<u8> {
        let mut e = Enc::new(self.meta.name);
        e.rng(self.task.rng_state());
        e.finish()
    }

    fn import_pipeline(&mut self, blob: &[u8]) -> Result<(), String> {
        let mut d = Dec::new(self.meta.name, blob)?;
        let state = d.rng()?;
        d.done()?;
        self.task.set_rng_state(state);
        Ok(())
    }

    fn skip_batch(&mut self) {
        let _ = self.task.batch(self.batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::OpKind;

    #[test]
    fn training_learns_the_babi_task() {
        let mut m = Memnet::build(&BuildConfig::training());
        let eval = |m: &mut Memnet| -> f32 {
            (0..4).map(|_| m.evaluate_accuracy()).sum::<f32>() / 4.0
        };
        let before = eval(&mut m);
        for _ in 0..300 {
            m.step();
        }
        let after = eval(&mut m);
        assert!(
            after > before + 0.2 || after > 0.8,
            "accuracy did not improve: {before} -> {after}"
        );
    }

    #[test]
    fn three_hops_emit_three_softmaxes() {
        let m = Memnet::build(&BuildConfig::inference());
        let softmaxes = m
            .session()
            .graph()
            .iter()
            .filter(|(_, n)| matches!(n.kind, OpKind::Softmax))
            .count();
        assert_eq!(softmaxes, 3, "one addressing softmax per hop");
    }

    #[test]
    fn profile_contains_skinny_tensor_ops() {
        // The memory layers "operate on small, skinny tensors" — the ops
        // the paper shows failing to parallelize: Mul, Tile, Sum.
        let mut m = Memnet::build(&BuildConfig::inference());
        m.session_mut().enable_tracing();
        m.step();
        let trace = m.session_mut().take_trace();
        for op in ["Mul", "Tile", "Sum", "Softmax", "MatMul", "Gather"] {
            assert!(
                trace.events.iter().any(|e| e.op == op),
                "expected {op} in the memnet profile"
            );
        }
    }
}
