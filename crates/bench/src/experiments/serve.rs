//! Serving latency/throughput sweep: batched inference through
//! `fathom-serve` across every workload and a range of coalescing
//! limits.
//!
//! For each workload and each batch size, a closed-loop load (clients =
//! twice the batch, zero think time) drives one `SessionWorker` built at
//! that batch extent. Service times are real wall-clock measurements of
//! the inference session; queueing, batching, and latency accounting run
//! in the engine's deterministic virtual time. The sweep reports
//! throughput and tail latency per configuration — the classic
//! batching trade: larger batches amortize per-op overhead (throughput
//! up) while requests wait longer for a slot (p99 up). Emits
//! `BENCH_serve.json` into `target/fathom-results/` and the repository
//! root.

use std::fmt::Write as _;

use fathom::{BuildConfig, ModelKind};
use fathom_serve::{
    serve, serve_cluster, synth_inputs, BatchPolicy, BatchRunner, ClusterConfig, ClusterReport,
    ClusterRunner, LoadModel, ModelSpec, ServeConfig, SessionWorker, SloClass,
};

use crate::{write_artifact, Effort};

/// Coalescing limits swept per workload.
pub const BATCH_SIZES: [usize; 3] = [1, 2, 4];

/// Shard groups per model in the cluster scenario.
pub const CLUSTER_SHARDS: usize = 2;

/// Coalescing limit in the cluster scenario.
pub const CLUSTER_MAX_BATCH: usize = 4;

/// Offered load as a multiple of measured fleet capacity.
pub const CLUSTER_OVERLOAD: f64 = 2.0;

/// One (workload, batch size) measurement.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Workload name.
    pub workload: &'static str,
    /// Batcher coalescing limit (= graph batch extent).
    pub max_batch: usize,
    /// Completed requests per second of virtual makespan.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean carried batch size across dispatches.
    pub mean_batch: f64,
    /// Requests completed (none may be shed or timed out here).
    pub completed: u64,
}

/// Measures one (workload, batch size) cell.
pub fn measure(kind: ModelKind, max_batch: usize, effort: &Effort) -> ServePoint {
    let cfg = BuildConfig::inference().with_batch(max_batch);
    let mut worker = SessionWorker::new(kind, &cfg).expect("every workload is servable");
    let shapes = worker.item_shapes();
    let domains = worker.domains();
    let serve_cfg = ServeConfig {
        // Closed loops with zero think time never outrun the queue cap;
        // a generous bound keeps shed == 0 so throughput is comparable.
        queue_cap: 64 * max_batch.max(1),
        ..ServeConfig::new(max_batch)
    };
    // Enough completions that the p99 is a real tail statistic rather
    // than the max of a handful of samples (>= 128 per point).
    let requests = (effort.steps.max(1) * 32).max(128).max(2 * max_batch);
    let load = LoadModel::Closed { clients: 2 * max_batch, requests };
    let mut runners: Vec<&mut dyn BatchRunner> = vec![&mut worker];
    let report = serve(
        &mut runners,
        &serve_cfg,
        &load,
        &mut |rng, _| synth_inputs(&shapes, &domains, rng),
        kind.name(),
    )
    .expect("serving a well-formed workload succeeds");
    ServePoint {
        workload: kind.name(),
        max_batch,
        throughput_rps: report.throughput_rps(),
        p50_ms: report.latency.quantile(0.50) / 1e6,
        p99_ms: report.latency.quantile(0.99) / 1e6,
        mean_batch: report.mean_batch_size(),
        completed: report.completed,
    }
}

/// Runs one cluster leg: each workload behind [`CLUSTER_SHARDS`] shards
/// of one replica, offered `rates[i]` requests/second open-loop under
/// the default 50/30/20 SLO mix and per-class deadlines.
pub fn run_cluster_leg(
    kinds: &[ModelKind],
    rates: &[f64],
    batching: BatchPolicy,
    duration_nanos: u64,
) -> ClusterReport {
    let cfg = BuildConfig::inference().with_batch(CLUSTER_MAX_BATCH);
    let mut fleet: Vec<Vec<Vec<SessionWorker>>> = kinds
        .iter()
        .map(|kind| {
            (0..CLUSTER_SHARDS)
                .map(|_| {
                    vec![SessionWorker::new(*kind, &cfg).expect("every workload is servable")]
                })
                .collect()
        })
        .collect();
    let mut specs: Vec<ModelSpec<'_>> = Vec::with_capacity(kinds.len());
    for ((kind, rate), shards_of) in kinds.iter().zip(rates).zip(fleet.iter_mut()) {
        let shapes = shards_of[0][0].item_shapes();
        let domains = shards_of[0][0].domains();
        specs.push(ModelSpec {
            name: kind.name().to_string(),
            shards: shards_of
                .iter_mut()
                .map(|s| s.iter_mut().map(|w| w as &mut dyn ClusterRunner).collect())
                .collect(),
            rps: *rate,
            synth: Box::new(move |rng, _id| synth_inputs(&shapes, &domains, rng)),
        });
    }
    let cluster_cfg = ClusterConfig {
        batching,
        duration_nanos,
        seed: 0xC1057E4,
        ..ClusterConfig::new(CLUSTER_MAX_BATCH)
    };
    serve_cluster(&mut specs, &cluster_cfg).expect("a well-formed cluster serves")
}

/// One cluster leg rendered as a JSON object (throughput plus per-class
/// completion and latency quantiles).
fn leg_json(report: &ClusterReport) -> String {
    let ms = |nanos: f64| nanos / 1e6;
    let classes: Vec<String> = SloClass::ALL
        .iter()
        .map(|class| {
            let c = &report.per_class[class.idx()];
            format!(
                "{{\"class\": \"{}\", \"issued\": {}, \"completed\": {}, \"shed\": {}, \
                 \"timed_out\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                class,
                c.issued,
                c.completed,
                c.shed,
                c.timed_out,
                ms(c.latency.quantile(0.50)),
                ms(c.latency.quantile(0.95)),
                ms(c.latency.quantile(0.99)),
            )
        })
        .collect();
    format!(
        "{{\"throughput_rps\": {:.3}, \"completed\": {}, \"shed\": {}, \"timed_out\": {}, \
         \"classes\": [{}]}}",
        report.throughput_rps(),
        report.completed(),
        report.shed(),
        report.timed_out(),
        classes.join(", ")
    )
}

/// Renders the sweep as `BENCH_serve.json` (written by hand; the suite
/// carries no JSON dependency). `cluster` is the pre-rendered cluster
/// scenario object, when the run produced one.
pub fn to_json(points: &[ServePoint], cluster: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"serve_latency\",\n");
    let _ = writeln!(
        out,
        "  \"batch_sizes\": [{}],",
        BATCH_SIZES.map(|b| b.to_string()).join(", ")
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"max_batch\": {}, \"throughput_rps\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_batch\": {:.2}, \"completed\": {}}}",
            p.workload, p.max_batch, p.throughput_rps, p.p50_ms, p.p99_ms, p.mean_batch, p.completed
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if let Some(cluster) = cluster {
        out.push_str(",\n  \"cluster\": ");
        out.push_str(cluster);
    }
    out.push_str("\n}\n");
    out
}

/// Runs the serving sweep over every workload and batch size.
pub fn run(effort: &Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SERVING: closed-loop batched inference (fathom-serve)\n\
         throughput (req/s of virtual time) and latency vs coalescing limit\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>12} {:>10} {:>10} {:>10}",
        "workload", "batch", "thru req/s", "p50 ms", "p99 ms", "mean sz"
    );
    let mut points = Vec::new();
    for kind in ModelKind::ALL {
        for b in BATCH_SIZES {
            let p = measure(kind, b, effort);
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12.1} {:>10.3} {:>10.3} {:>10.2}",
                p.workload, p.max_batch, p.throughput_rps, p.p50_ms, p.p99_ms, p.mean_batch
            );
            points.push(p);
        }
    }

    // Cluster scenario: every workload behind a 2-shard group at 2x its
    // measured batch-4 capacity, mixed 50/30/20 SLO traffic, run once
    // with continuous batching and once with the single-model engine's
    // fixed pack/run/split rounds — then a mixed fleet of four models.
    let duration_nanos = (effort.steps.max(1) as u64) * 100_000_000;
    let _ = writeln!(
        out,
        "\nCLUSTER: open-loop {CLUSTER_OVERLOAD}x overload, {CLUSTER_SHARDS} shards/model, \
         50/30/20 SLO mix\ncontinuous batching vs fixed rounds; interactive deadline 50 ms\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "workload", "cont req/s", "fixed req/s", "cont i-p99", "fixed i-p99", "cont wins"
    );
    let capacity = |kind: ModelKind| -> f64 {
        points
            .iter()
            .find(|p| p.workload == kind.name() && p.max_batch == CLUSTER_MAX_BATCH)
            .map(|p| p.throughput_rps)
            .unwrap_or(100.0)
    };
    let mut workload_rows = Vec::new();
    let mut wins = 0usize;
    for kind in ModelKind::ALL {
        let rps = CLUSTER_OVERLOAD * CLUSTER_SHARDS as f64 * capacity(kind);
        let cont =
            run_cluster_leg(&[kind], &[rps], BatchPolicy::Continuous, duration_nanos);
        let fixed = run_cluster_leg(
            &[kind],
            &[rps],
            BatchPolicy::FixedRound { max_delay_nanos: 2_000_000 },
            duration_nanos,
        );
        let won = cont.throughput_rps() >= fixed.throughput_rps();
        wins += won as usize;
        let i_p99 = |r: &ClusterReport| {
            r.per_class[SloClass::Interactive.idx()].latency.quantile(0.99) / 1e6
        };
        let _ = writeln!(
            out,
            "{:<12} {:>14.1} {:>14.1} {:>12.3} {:>12.3} {:>10}",
            kind.name(),
            cont.throughput_rps(),
            fixed.throughput_rps(),
            i_p99(&cont),
            i_p99(&fixed),
            won
        );
        workload_rows.push(format!(
            "      {{\"workload\": \"{}\", \"offered_rps\": {:.1}, \"continuous_wins\": {}, \
             \"continuous\": {}, \"fixed_round\": {}}}",
            kind.name(),
            rps,
            won,
            leg_json(&cont),
            leg_json(&fixed),
        ));
    }
    let _ = writeln!(
        out,
        "\ncontinuous batching won throughput on {wins}/{} workloads",
        ModelKind::ALL.len()
    );

    let mixed_kinds = [ModelKind::Memnet, ModelKind::Autoenc, ModelKind::Alexnet, ModelKind::Deepq];
    let mixed_rates: Vec<f64> = mixed_kinds
        .iter()
        .map(|k| CLUSTER_OVERLOAD * CLUSTER_SHARDS as f64 * capacity(*k))
        .collect();
    let mixed =
        run_cluster_leg(&mixed_kinds, &mixed_rates, BatchPolicy::Continuous, duration_nanos);
    let _ = writeln!(
        out,
        "\nmixed fleet ({}): issued {}  completed {}  shed {}  timed-out {}",
        mixed_kinds.map(|k| k.name()).join("+"),
        mixed.issued(),
        mixed.completed(),
        mixed.shed(),
        mixed.timed_out()
    );
    for class in SloClass::ALL {
        let c = &mixed.per_class[class.idx()];
        let _ = writeln!(
            out,
            "  {:<12} completed {:>5}  shed {:>5}  p50 {:>8.3} ms  p99 {:>8.3} ms",
            class.name(),
            c.completed,
            c.shed,
            c.latency.quantile(0.50) / 1e6,
            c.latency.quantile(0.99) / 1e6,
        );
    }

    let cluster_json = format!(
        "{{\n    \"shards\": {CLUSTER_SHARDS},\n    \"max_batch\": {CLUSTER_MAX_BATCH},\n    \
         \"overload\": {CLUSTER_OVERLOAD:.1},\n    \"slo_mix\": \"50,30,20\",\n    \
         \"interactive_deadline_ms\": 50.0,\n    \"continuous_wins\": {wins},\n    \
         \"workloads\": [\n{}\n    ],\n    \"mixed\": {{\"models\": \"{}\", \"report\": {}}}\n  }}",
        workload_rows.join(",\n"),
        mixed_kinds.map(|k| k.name()).join("+"),
        leg_json(&mixed),
    );
    let json = to_json(&points, Some(&cluster_json));
    write_artifact("BENCH_serve.json", &json);
    // Also drop it at the repository root, where the PR driver tracks it.
    let repo_root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(repo_root.join("BENCH_serve.json"), &json)
        .expect("can write BENCH_serve.json at the repo root");
    write_artifact("serve_latency.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_one_cell() {
        let p = measure(ModelKind::Memnet, 2, &Effort::quick());
        assert_eq!(p.workload, "memnet");
        assert_eq!(p.max_batch, 2);
        assert!(p.completed >= 4);
        assert!(p.throughput_rps > 0.0);
        assert!(p.p99_ms >= p.p50_ms);
    }

    #[test]
    fn json_shape() {
        let points = vec![ServePoint {
            workload: "memnet",
            max_batch: 4,
            throughput_rps: 123.4,
            p50_ms: 1.0,
            p99_ms: 2.0,
            mean_batch: 3.5,
            completed: 32,
        }];
        let json = to_json(&points, None);
        assert!(json.contains("\"experiment\": \"serve_latency\""));
        assert!(json.contains("\"workload\": \"memnet\""));
        assert!(json.contains("\"throughput_rps\": 123.400"));
        assert!(json.contains("\"p99_ms\": 2.000"));
        assert!(!json.contains("\"cluster\""));
        let json = to_json(&points, Some("{\"shards\": 2}"));
        assert!(json.contains("\"cluster\": {\"shards\": 2}"));
    }

    #[test]
    fn cluster_leg_reports_per_class_quantiles() {
        let report = run_cluster_leg(
            &[ModelKind::Memnet],
            &[300.0],
            BatchPolicy::Continuous,
            100_000_000,
        );
        assert!(report.conserved());
        assert!(report.completed() > 0);
        let json = leg_json(&report);
        for key in ["\"class\": \"interactive\"", "\"p95_ms\"", "\"throughput_rps\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
