//! `cargo bench -p fathom-bench --bench serve_latency`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::serve::run(&effort));
}
