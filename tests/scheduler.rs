//! Integration: the inter-op parallel executor is an *optimization*, not
//! a semantic change. For every workload, one training step under the
//! dependency-counting scheduler — at any worker count — produces
//! bitwise-identical losses and variable state to the serial plan walk.
//!
//! Stateful ops (variable reads/updates, RNG draws) are serialized by the
//! scheduler through plan-time ordering edges, which is what makes this
//! exact equality (not tolerance-based closeness) possible.

use fathom_suite::fathom::{BuildConfig, ModelKind};
use fathom_suite::fathom_dataflow::Device;
use fathom_suite::fathom_tensor::Tensor;

/// One seeded training step on `device`: (loss bits, every variable).
fn step_snapshot(kind: ModelKind, device: Device) -> (Option<u32>, Vec<Tensor>) {
    let cfg = BuildConfig::training().with_seed(42).with_device(device);
    let mut model = kind.build(&cfg);
    let loss = model.step().loss.map(f32::to_bits);
    let session = model.session();
    let variables = session
        .graph()
        .variables()
        .into_iter()
        .map(|id| session.variable_value(id).expect("variable is live").clone())
        .collect();
    (loss, variables)
}

#[test]
fn parallel_steps_are_bitwise_identical_to_serial() {
    for kind in ModelKind::ALL {
        let (serial_loss, serial_vars) = step_snapshot(kind, Device::cpu(1));
        for workers in [1usize, 2, 8] {
            let (loss, vars) = step_snapshot(kind, Device::cpu_inter_op(1, workers));
            assert_eq!(
                loss, serial_loss,
                "{kind}: loss diverged at {workers} inter-op workers"
            );
            assert_eq!(vars.len(), serial_vars.len(), "{kind}: variable count changed");
            for (i, (p, s)) in vars.iter().zip(&serial_vars).enumerate() {
                // Tensor equality is exact (element-wise f32 ==), and no
                // step produces NaN state, so this is a bitwise check.
                assert_eq!(
                    p, s,
                    "{kind}: variable #{i} diverged at {workers} inter-op workers"
                );
            }
        }
    }
}

#[test]
fn intra_and_inter_op_parallelism_compose_deterministically() {
    // Both pools at once: 2 intra-op threads under 2 inter-op workers.
    let kind = ModelKind::Memnet;
    let (serial_loss, serial_vars) = step_snapshot(kind, Device::cpu(1));
    let (loss, vars) = step_snapshot(kind, Device::cpu_inter_op(2, 2));
    assert_eq!(loss, serial_loss, "nested pools changed the loss");
    assert_eq!(vars, serial_vars, "nested pools changed variable state");
}
