//! Inter-operation overhead check (paper §V-A).
//!
//! "Our measurements reveal that inter-operation overhead is minimal in
//! TensorFlow: typically less than 1-2% of the total runtime is spent
//! outside of operations in our workloads." This experiment measures the
//! same quantity for this runtime: wall time of a traced step minus the
//! sum of per-op times, as a fraction.

use std::fmt::Write as _;

use fathom::{BuildConfig, ModelKind};
use fathom_profile::runner;

use crate::{write_artifact, Effort};

/// Measures the out-of-op overhead fraction per workload.
pub fn measure(effort: &Effort) -> Vec<(&'static str, f64)> {
    ModelKind::ALL
        .iter()
        .map(|&kind| {
            let mut model = kind.build(&BuildConfig::training());
            for _ in 0..effort.warmup {
                model.step();
            }
            let trace = runner::trace_steps(model.as_mut(), effort.steps);
            (kind.name(), trace.overhead_fraction())
        })
        .collect()
}

/// Regenerates the §V-A overhead claim.
pub fn run(effort: &Effort) -> String {
    let rows = measure(effort);
    let mut out = String::new();
    let _ = writeln!(out, "Inter-operation scheduling overhead (fraction of wall time outside ops)\n");
    let mut csv_rows = Vec::new();
    let mut worst: f64 = 0.0;
    for (name, frac) in &rows {
        let _ = writeln!(out, "  {:<9} {:>6.2}%", name, frac * 100.0);
        csv_rows.push((name.to_string(), vec![*frac]));
        worst = worst.max(*frac);
    }
    let _ = writeln!(
        out,
        "\nPaper's claim to reproduce: overhead typically < 1-2%.\n\
         Worst measured here: {:.2}%. seq2seq runs ~30k microsecond-scale ops\n\
         per step (7 unrolled LSTM layers x 25 timesteps, forward + backward),\n\
         so scheduling and free-list traffic weigh proportionally more there;\n\
         every other workload meets the paper's 1-2% bound.",
        worst * 100.0
    );
    write_artifact(
        "overhead_check.csv",
        &fathom_profile::report::to_csv(&["workload", "overhead_fraction"], &csv_rows),
    );
    write_artifact("overhead_check.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small_for_a_pure_graph_workload() {
        let mut model = ModelKind::Autoenc.build(&BuildConfig::training());
        model.step();
        let trace = runner::trace_steps(model.as_mut(), 3);
        assert!(
            trace.overhead_fraction() < 0.15,
            "overhead {:.3} unexpectedly high",
            trace.overhead_fraction()
        );
    }
}
