//! `cargo bench -p fathom-bench --bench ablation_batch`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::ablation::run_batch_balance(&effort));
}
