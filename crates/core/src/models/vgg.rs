//! `vgg` — the 19-layer small-filter convolutional network (Simonyan &
//! Zisserman, arXiv 2014; ILSVRC 2014 localization winner).
//!
//! VGG-19's insight is that stacks of 3x3 filters are easier to train
//! than fewer large filters. Topology (16 conv + 3 dense = 19 layers):
//!
//! ```text
//! [conv3x3 x2, pool] [conv3x3 x2, pool] [conv3x3 x4, pool]
//! [conv3x3 x4, pool] [conv3x3 x4, pool] fc -> fc -> fc(classes)
//! ```

use fathom_dataflow::{Optimizer, Session};
use fathom_nn::{conv2d, dense, flatten, max_pool, Activation};
use fathom_tensor::kernels::conv::Conv2dSpec;

use crate::models::common::ImageClassifier;
use crate::workload::{BuildConfig, Mode, ModelScale, StepStats, Workload, WorkloadMetadata};

/// Convolutions per stage in VGG-19.
const STAGE_CONVS: [usize; 5] = [2, 2, 4, 4, 4];

struct Dims {
    batch: usize,
    side: usize,
    classes: usize,
    stage_channels: [usize; 5],
    fc: usize,
}

fn dims(scale: ModelScale) -> Dims {
    match scale {
        ModelScale::Reference => Dims {
            batch: 2,
            side: 32,
            classes: 10,
            stage_channels: [16, 32, 64, 128, 128],
            fc: 128,
        },
        ModelScale::Full => Dims {
            batch: 8,
            side: 224,
            classes: 1000,
            stage_channels: [64, 128, 256, 512, 512],
            fc: 4096,
        },
    }
}

/// Table II metadata for `vgg`.
pub fn metadata() -> WorkloadMetadata {
    WorkloadMetadata {
        name: "vgg",
        year: 2014,
        reference: "Simonyan & Zisserman, arXiv:1409.1556",
        style: "Convolutional, Full",
        layers: 19,
        task: "Supervised",
        dataset: "ImageNet",
        purpose: "Image classifier demonstrating the power of small \
                  convolutional filters. ILSVRC 2014 winner.",
    }
}

/// The `vgg` workload (VGG-19).
pub struct Vgg {
    inner: ImageClassifier,
}

impl Vgg {
    /// Builds the workload per the configuration.
    pub fn build(cfg: &BuildConfig) -> Self {
        let mut d = dims(cfg.scale);
        d.batch = cfg.batch_or(d.batch);
        let inner = ImageClassifier::new(
            metadata(),
            cfg,
            d.batch,
            d.side,
            d.classes,
            Optimizer::momentum(0.01),
            |g, p, images| {
                let mut x = images;
                for (stage, (&convs, &channels)) in
                    STAGE_CONVS.iter().zip(&d.stage_channels).enumerate()
                {
                    for i in 0..convs {
                        x = conv2d(
                            g,
                            p,
                            &format!("conv{}_{}", stage + 1, i + 1),
                            x,
                            3,
                            channels,
                            Conv2dSpec::same(3),
                            Activation::Relu,
                        );
                    }
                    x = max_pool(g, x, 2, 2);
                }
                let x = flatten(g, x);
                let x = dense(g, p, "fc6", x, d.fc, Activation::Relu);
                let x = dense(g, p, "fc7", x, d.fc, Activation::Relu);
                dense(g, p, "fc8", x, d.classes, Activation::Linear)
            },
        );
        Vgg { inner }
    }
}

impl Workload for Vgg {
    fn metadata(&self) -> &WorkloadMetadata {
        self.inner.metadata()
    }

    fn mode(&self) -> Mode {
        self.inner.mode()
    }

    fn try_step(&mut self) -> Result<StepStats, fathom_dataflow::ExecError> {
        self.inner.try_step()
    }

    fn session(&self) -> &Session {
        self.inner.session()
    }

    fn session_mut(&mut self) -> &mut Session {
        self.inner.session_mut()
    }

    fn batch_spec(&self) -> Option<crate::workload::BatchSpec> {
        self.inner.batch_spec()
    }

    fn train_probes(&self) -> Option<crate::workload::TrainProbes> {
        self.inner.train_probes()
    }

    fn export_pipeline(&self) -> Vec<u8> {
        self.inner.export_pipeline()
    }

    fn import_pipeline(&mut self, blob: &[u8]) -> Result<(), String> {
        self.inner.import_pipeline(blob)
    }

    fn skip_batch(&mut self) {
        self.inner.skip_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::OpKind;

    #[test]
    fn has_sixteen_convs_and_three_dense() {
        let m = Vgg::build(&BuildConfig::inference());
        let g = m.session().graph();
        let convs = g.iter().filter(|(_, n)| matches!(n.kind, OpKind::Conv2D(_))).count();
        assert_eq!(convs, 16);
        // Three dense layers = three forward MatMuls in inference mode.
        let matmuls = g
            .iter()
            .filter(|(_, n)| matches!(n.kind, OpKind::MatMul { .. }))
            .count();
        assert_eq!(matmuls, 3);
    }

    #[test]
    fn all_filters_are_3x3() {
        let m = Vgg::build(&BuildConfig::inference());
        for (_, n) in m.session().graph().iter() {
            if matches!(n.kind, OpKind::Conv2D(_)) {
                let filter = m.session().graph().shape(n.inputs[1]);
                assert_eq!(filter.dim(0), 3);
                assert_eq!(filter.dim(1), 3);
            }
        }
    }

    #[test]
    fn training_step_produces_finite_loss() {
        let mut m = Vgg::build(&BuildConfig::training());
        let stats = m.step();
        assert!(stats.loss.unwrap().is_finite());
    }
}
