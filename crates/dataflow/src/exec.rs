//! The session: schedules and executes dataflow graphs.
//!
//! Operations are "the smallest schedulable unit" (paper §V-A); a
//! [`Session`] walks the fetched subgraph in topological order, dispatches
//! each operation to the device, and (when tracing is enabled) records one
//! [`crate::trace::TraceEvent`] per execution. Inter-op overhead is kept
//! minimal — the `overhead_check` bench verifies the paper's "<1-2%
//! outside of operations" property.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use fathom_tensor::kernels::conv as kconv;
use fathom_tensor::kernels::ctc as kctc;
use fathom_tensor::kernels::elementwise as kew;
use fathom_tensor::kernels::matmul as kmm;
use fathom_tensor::kernels::pool2d as kpool;
use fathom_tensor::kernels::reduce as kred;
use fathom_tensor::kernels::softmax as ksm;
use fathom_tensor::kernels::transform as ktf;
use fathom_tensor::{ExecPool, Rng, Tensor};

use crate::cost;
use crate::device::Device;
use crate::graph::{Graph, NodeId};
use crate::op::OpKind;
use crate::trace::{RunTrace, TraceEvent};

/// Errors produced while running a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A placeholder in the fetched subgraph was not fed.
    MissingFeed(NodeId),
    /// A fed value's shape disagrees with the placeholder's declaration.
    FeedShape {
        /// The placeholder.
        node: NodeId,
        /// Explanation of the mismatch.
        msg: String,
    },
    /// A fetch or feed id does not belong to the session's graph.
    UnknownNode(NodeId),
    /// An `Apply*` op's first input is not a `Variable` node.
    NotAVariable(NodeId),
    /// A label tensor contained an invalid entry.
    BadLabels(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingFeed(n) => write!(f, "placeholder {n} was not fed"),
            ExecError::FeedShape { node, msg } => write!(f, "bad feed for {node}: {msg}"),
            ExecError::UnknownNode(n) => write!(f, "node {n} does not belong to this session's graph"),
            ExecError::NotAVariable(n) => write!(f, "node {n} is not a variable"),
            ExecError::BadLabels(msg) => write!(f, "invalid labels: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A cached execution plan: topological order plus per-node liveness
/// (the plan position after which each value is dead and can be freed).
#[derive(Debug, Clone)]
struct Plan {
    order: Vec<NodeId>,
    /// For each graph node index, the plan position of its last consumer
    /// (`usize::MAX` for fetched nodes, which must outlive the run).
    last_use: Vec<usize>,
}

/// Executes a [`Graph`] on a [`Device`], holding variable state, optimizer
/// slots, and the random stream.
///
/// # Examples
///
/// ```
/// use fathom_dataflow::{Device, Graph, Session};
/// use fathom_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new();
/// let x = g.placeholder("x", Shape::vector(3));
/// let two = g.constant(Tensor::scalar(2.0));
/// let y = g.mul(x, two);
/// let mut sess = Session::new(g, Device::cpu(1));
/// let out = sess.run(&[y], &[(x, Tensor::from(vec![1.0, 2.0, 3.0]))])?;
/// assert_eq!(out[0].data(), &[2.0, 4.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    graph: Graph,
    device: Device,
    pool: ExecPool,
    variables: HashMap<NodeId, Tensor>,
    slots: HashMap<(NodeId, &'static str), Tensor>,
    rng: Rng,
    step: u64,
    tracing: bool,
    trace: RunTrace,
    plan_cache: HashMap<Vec<NodeId>, Plan>,
    /// Per-node static cost estimates, filled lazily on first traced run
    /// so tracing adds minimal inter-op overhead.
    cost_cache: Vec<Option<cost::OpCost>>,
}

impl Session {
    /// Creates a session, installing every variable's initial value.
    pub fn new(graph: Graph, device: Device) -> Self {
        Session::with_seed(graph, device, 0x5eed)
    }

    /// Creates a session with an explicit random seed for the sampling
    /// operations.
    pub fn with_seed(graph: Graph, device: Device, seed: u64) -> Self {
        let mut variables = HashMap::new();
        for (id, node) in graph.iter() {
            if let OpKind::Variable { init } = &node.kind {
                variables.insert(id, init.clone());
            }
        }
        let pool = device.pool();
        Session {
            graph,
            device,
            pool,
            variables,
            slots: HashMap::new(),
            rng: Rng::seeded(seed),
            step: 0,
            tracing: false,
            trace: RunTrace::new(),
            plan_cache: HashMap::new(),
            cost_cache: Vec::new(),
        }
    }

    /// The graph this session executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The session's device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Switches devices (e.g. to sweep intra-op thread counts). Variable
    /// state is preserved.
    pub fn set_device(&mut self, device: Device) {
        self.pool = device.pool();
        self.device = device;
    }

    /// Starts recording a [`TraceEvent`] per executed op.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// Stops recording and returns everything captured so far.
    pub fn take_trace(&mut self) -> RunTrace {
        self.tracing = false;
        std::mem::take(&mut self.trace)
    }

    /// Number of completed `run` calls.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Current value of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NotAVariable`] if `id` is not a variable of
    /// this graph.
    pub fn variable_value(&self, id: NodeId) -> Result<&Tensor, ExecError> {
        self.variables.get(&id).ok_or(ExecError::NotAVariable(id))
    }

    /// Overwrites a variable's value (used for target-network syncs in
    /// `deepq` and test setup).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NotAVariable`] if `id` is not a variable, or
    /// [`ExecError::FeedShape`] if the shape differs.
    pub fn assign(&mut self, id: NodeId, value: Tensor) -> Result<(), ExecError> {
        let slot = self.variables.get_mut(&id).ok_or(ExecError::NotAVariable(id))?;
        if slot.shape() != value.shape() {
            return Err(ExecError::FeedShape {
                node: id,
                msg: format!("variable is {}, assigned {}", slot.shape(), value.shape()),
            });
        }
        *slot = value;
        Ok(())
    }

    /// Executes the subgraph needed for `fetches`, feeding placeholders
    /// from `feeds`, and returns the fetched values in order.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids, missing or mis-shaped feeds,
    /// malformed labels, or `Apply*` ops whose target is not a variable.
    pub fn run(&mut self, fetches: &[NodeId], feeds: &[(NodeId, Tensor)]) -> Result<Vec<Tensor>, ExecError> {
        let started = Instant::now();
        for &f in fetches {
            if f.index() >= self.graph.len() {
                return Err(ExecError::UnknownNode(f));
            }
        }
        let mut feed_map: HashMap<NodeId, &Tensor> = HashMap::with_capacity(feeds.len());
        for (id, value) in feeds {
            if id.index() >= self.graph.len() {
                return Err(ExecError::UnknownNode(*id));
            }
            let declared = self.graph.shape(*id);
            if declared != value.shape() {
                return Err(ExecError::FeedShape {
                    node: *id,
                    msg: format!("declared {declared}, fed {}", value.shape()),
                });
            }
            feed_map.insert(*id, value);
        }

        let plan = self.plan(fetches);
        let mut values: Vec<Option<Tensor>> = vec![None; self.graph.len()];
        // Liveness-based eager release: drop intermediates after their
        // last consumer runs, tracking the peak footprint as we go.
        let mut live_bytes: usize = 0;
        let mut peak_bytes: usize = 0;
        for (pos, &id) in plan.order.iter().enumerate() {
            let value = self.execute_node(id, &feed_map, &values)?;
            live_bytes += value.len() * 4;
            peak_bytes = peak_bytes.max(live_bytes);
            values[id.index()] = Some(value);
            if plan.last_use[id.index()] <= pos {
                // No consumer (pure side-effect node): free immediately.
                if let Some(t) = values[id.index()].take() {
                    live_bytes -= t.len() * 4;
                }
            }
            for &input in &self.graph.node(id).inputs {
                if plan.last_use[input.index()] == pos {
                    if let Some(t) = values[input.index()].take() {
                        live_bytes -= t.len() * 4;
                    }
                }
            }
        }
        let out = fetches
            .iter()
            .map(|f| values[f.index()].clone().expect("fetched node kept alive"))
            .collect();
        self.step += 1;
        if self.tracing {
            self.trace.total_nanos += started.elapsed().as_nanos() as f64;
            self.trace.steps += 1;
            self.trace.peak_live_bytes = self.trace.peak_live_bytes.max(peak_bytes as u64);
        }
        Ok(out)
    }

    /// Convenience wrapper fetching a single node.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run1(&mut self, fetch: NodeId, feeds: &[(NodeId, Tensor)]) -> Result<Tensor, ExecError> {
        Ok(self.run(&[fetch], feeds)?.remove(0))
    }

    /// Topological execution plan for a fetch set (cached), with per-node
    /// last-use positions for eager memory release.
    fn plan(&mut self, fetches: &[NodeId]) -> Plan {
        let key: Vec<NodeId> = fetches.to_vec();
        if let Some(plan) = self.plan_cache.get(&key) {
            return plan.clone();
        }
        let mut needed = vec![false; self.graph.len()];
        let mut stack: Vec<NodeId> = fetches.to_vec();
        while let Some(id) = stack.pop() {
            if needed[id.index()] {
                continue;
            }
            needed[id.index()] = true;
            stack.extend(self.graph.node(id).inputs.iter().copied());
        }
        // Insertion order is a valid topological order (append-only graph).
        let order: Vec<NodeId> = self
            .graph
            .iter()
            .filter(|(id, _)| needed[id.index()])
            .map(|(id, _)| id)
            .collect();
        let mut last_use = vec![0usize; self.graph.len()];
        for (pos, &id) in order.iter().enumerate() {
            for &input in &self.graph.node(id).inputs {
                last_use[input.index()] = pos;
            }
        }
        for &f in fetches {
            last_use[f.index()] = usize::MAX;
        }
        let plan = Plan { order, last_use };
        self.plan_cache.insert(key, plan.clone());
        plan
    }

    /// Executes one node and (if tracing) records its event.
    fn execute_node(
        &mut self,
        id: NodeId,
        feeds: &HashMap<NodeId, &Tensor>,
        values: &[Option<Tensor>],
    ) -> Result<Tensor, ExecError> {
        let started = Instant::now();
        let value = self.dispatch(id, feeds, values)?;
        if self.tracing {
            if self.cost_cache.is_empty() {
                self.cost_cache = vec![None; self.graph.len()];
            }
            let op_cost = match self.cost_cache[id.index()] {
                Some(c) => c,
                None => {
                    let node = self.graph.node(id);
                    let input_shapes: Vec<_> =
                        node.inputs.iter().map(|&i| self.graph.shape(i)).collect();
                    let c = cost::estimate(node, &input_shapes);
                    self.cost_cache[id.index()] = Some(c);
                    c
                }
            };
            let node = self.graph.node(id);
            let nanos = match &self.device {
                Device::Cpu(_) => started.elapsed().as_nanos() as f64,
                Device::SimCpu { threads, model } => model.model_nanos(
                    started.elapsed().as_nanos() as f64,
                    op_cost,
                    *threads,
                    node.kind.uses_intra_op_pool(),
                ),
                Device::SimGpu(model) => model.model_nanos(&node.kind, op_cost),
            };
            self.trace.events.push(TraceEvent {
                node: id,
                op: node.kind.name(),
                class: node.kind.class(),
                step: self.step,
                nanos,
                cost: op_cost,
            });
        }
        Ok(value)
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(
        &mut self,
        id: NodeId,
        feeds: &HashMap<NodeId, &Tensor>,
        values: &[Option<Tensor>],
    ) -> Result<Tensor, ExecError> {
        // Clone the (cheap) op metadata so match arms may mutate session
        // state; large constants are handled before the clone.
        if let OpKind::Constant(t) = &self.graph.node(id).kind {
            return Ok(t.clone());
        }
        let kind = self.graph.node(id).kind.clone();
        let inputs = self.graph.node(id).inputs.clone();
        let input = |i: usize| -> &Tensor {
            values[inputs[i].index()]
                .as_ref()
                .expect("input executed before use")
        };
        let pool = self.pool.clone();
        let pool = &pool;
        let out = match &kind {
            OpKind::Placeholder { .. } => {
                (*feeds.get(&id).ok_or(ExecError::MissingFeed(id))?).clone()
            }
            OpKind::Variable { .. } => self.variables[&id].clone(),
            OpKind::Constant(t) => t.clone(),
            OpKind::Identity | OpKind::StopGradient => input(0).clone(),

            OpKind::MatMul { transpose_a, transpose_b } => {
                kmm::matmul(input(0), input(1), *transpose_a, *transpose_b, pool)
            }

            OpKind::Conv2D(spec) => kconv::conv2d(input(0), input(1), *spec, pool),
            OpKind::Conv2DBackpropInput { spec, input_shape } => {
                kconv::conv2d_backprop_input(input_shape, input(0), input(1), *spec, pool)
            }
            OpKind::Conv2DBackpropFilter { spec, filter_shape } => {
                kconv::conv2d_backprop_filter(input(0), filter_shape, input(1), *spec, pool)
            }
            OpKind::MaxPool(spec) => kpool::max_pool(input(0), *spec, pool),
            OpKind::MaxPoolGrad(spec) => kpool::max_pool_grad(input(0), input(1), *spec, pool),
            OpKind::AvgPool(spec) => kpool::avg_pool(input(0), *spec, pool),
            OpKind::AvgPoolGrad { spec, input_shape } => {
                kpool::avg_pool_grad(input_shape, input(0), *spec, pool)
            }

            OpKind::Add => kew::add(input(0), input(1), pool),
            OpKind::Sub => kew::sub(input(0), input(1), pool),
            OpKind::Mul => kew::mul(input(0), input(1), pool),
            OpKind::Div => kew::div(input(0), input(1), pool),
            OpKind::Maximum => kew::maximum(input(0), input(1), pool),
            OpKind::Pow => kew::pow(input(0), input(1), pool),
            OpKind::Greater => kew::binary(input(0), input(1), pool, |a, b| f32::from(a > b)),
            OpKind::GreaterEqual => kew::binary(input(0), input(1), pool, |a, b| f32::from(a >= b)),
            OpKind::Equal => kew::binary(input(0), input(1), pool, |a, b| f32::from(a == b)),
            OpKind::Select => {
                // cond ? a : b with two broadcasting passes.
                let masked_a = kew::binary(input(0), input(1), pool, |c, a| if c != 0.0 { a } else { 0.0 });
                let masked = kew::binary(input(0), input(2), pool, |c, b| if c != 0.0 { 0.0 } else { b });
                kew::add(&masked_a, &masked, pool)
            }
            OpKind::Neg => kew::neg(input(0), pool),
            OpKind::Exp => kew::exp(input(0), pool),
            OpKind::Log => kew::log(input(0), pool),
            OpKind::Sqrt => kew::sqrt(input(0), pool),
            OpKind::Square => kew::square(input(0), pool),
            OpKind::Tanh => kew::tanh(input(0), pool),
            OpKind::Sigmoid => kew::sigmoid(input(0), pool),
            OpKind::Relu => kew::relu(input(0), pool),
            OpKind::ReluGrad => {
                kew::binary(input(0), input(1), pool, |x, g| if x > 0.0 { g } else { 0.0 })
            }
            OpKind::TanhGrad => kew::binary(input(0), input(1), pool, |y, g| g * (1.0 - y * y)),
            OpKind::SigmoidGrad => kew::binary(input(0), input(1), pool, |y, g| g * y * (1.0 - y)),
            OpKind::AddN => {
                let tensors: Vec<&Tensor> = (0..inputs.len()).map(input).collect();
                kew::add_n(&tensors, pool)
            }

            OpKind::Sum { axis, keep_dims } => match axis {
                Some(a) => kred::reduce_axis(input(0), *a, kred::ReduceKind::Sum, *keep_dims, pool),
                None => kred::reduce_all_sum(input(0), pool),
            },
            OpKind::Mean { axis, keep_dims } => match axis {
                Some(a) => kred::reduce_axis(input(0), *a, kred::ReduceKind::Mean, *keep_dims, pool),
                None => kred::reduce_all_mean(input(0), pool),
            },
            OpKind::MaxReduce { axis, keep_dims } => {
                kred::reduce_axis(input(0), *axis, kred::ReduceKind::Max, *keep_dims, pool)
            }
            OpKind::Softmax => ksm::softmax(input(0), pool),
            OpKind::LogSoftmax => ksm::log_softmax(input(0), pool),
            OpKind::SoftmaxGrad => ksm::softmax_grad(input(0), input(1), pool),
            OpKind::SoftmaxCrossEntropy => ksm::softmax_cross_entropy(input(0), input(1), pool).0,
            OpKind::SoftmaxCrossEntropyGrad => {
                ksm::softmax_cross_entropy(input(0), input(1), pool).1
            }
            OpKind::CtcLoss { blank } => {
                let labels = decode_padded_labels(input(1), self.graph.shape(id).rank(), *blank)?;
                Tensor::scalar(kctc::ctc_loss(input(0), &labels, *blank, pool).0)
            }
            OpKind::CtcLossGrad { blank } => {
                let labels = decode_padded_labels(input(1), 0, *blank)?;
                kctc::ctc_loss(input(0), &labels, *blank, pool).1
            }
            OpKind::Tile { reps } => ktf::tile(input(0), reps, pool),

            OpKind::StandardRandomNormal { shape, mean, std } => {
                Tensor::randn(shape.clone(), *mean, *std, &mut self.rng)
            }
            OpKind::RandomUniform { shape, lo, hi } => {
                Tensor::rand_uniform(shape.clone(), *lo, *hi, &mut self.rng)
            }
            OpKind::DropoutMask { rate } => {
                let keep = 1.0 / (1.0 - rate);
                let mut mask = Tensor::zeros(input(0).shape().clone());
                let rate = *rate;
                for v in mask.data_mut() {
                    *v = if self.rng.uniform() < rate { 0.0 } else { keep };
                }
                mask
            }

            OpKind::ApplyGradientDescent { lr } => {
                let var_id = self.variable_target(id)?;
                let grad = input(1).clone();
                let lr = *lr;
                let var = self.variables.get_mut(&var_id).expect("checked above");
                for (v, g) in var.data_mut().iter_mut().zip(grad.data()) {
                    *v -= lr * g;
                }
                var.clone()
            }
            OpKind::ApplyMomentum { lr, momentum } => {
                let var_id = self.variable_target(id)?;
                let grad = input(1).clone();
                let (lr, momentum) = (*lr, *momentum);
                let accum = self
                    .slots
                    .entry((id, "momentum"))
                    .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
                for (m, g) in accum.data_mut().iter_mut().zip(grad.data()) {
                    *m = momentum * *m + g;
                }
                let accum = accum.clone();
                let var = self.variables.get_mut(&var_id).expect("checked above");
                for (v, m) in var.data_mut().iter_mut().zip(accum.data()) {
                    *v -= lr * m;
                }
                var.clone()
            }
            OpKind::ApplyRmsProp { lr, decay, momentum, epsilon } => {
                let var_id = self.variable_target(id)?;
                let grad = input(1).clone();
                let (lr, decay, momentum, epsilon) = (*lr, *decay, *momentum, *epsilon);
                let ms = self
                    .slots
                    .entry((id, "ms"))
                    .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
                for (m, g) in ms.data_mut().iter_mut().zip(grad.data()) {
                    *m = decay * *m + (1.0 - decay) * g * g;
                }
                let ms = ms.clone();
                let mom = self
                    .slots
                    .entry((id, "mom"))
                    .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
                for ((mo, g), m) in mom.data_mut().iter_mut().zip(grad.data()).zip(ms.data()) {
                    *mo = momentum * *mo + lr * g / (m.sqrt() + epsilon);
                }
                let mom = mom.clone();
                let var = self.variables.get_mut(&var_id).expect("checked above");
                for (v, mo) in var.data_mut().iter_mut().zip(mom.data()) {
                    *v -= mo;
                }
                var.clone()
            }
            OpKind::ApplyAdam { lr, beta1, beta2, epsilon } => {
                let var_id = self.variable_target(id)?;
                let grad = input(1).clone();
                let (lr, beta1, beta2, epsilon) = (*lr, *beta1, *beta2, *epsilon);
                let t_slot = self.slots.entry((id, "t")).or_insert_with(|| Tensor::scalar(0.0));
                let t = t_slot.scalar_value() + 1.0;
                *t_slot = Tensor::scalar(t);
                let m = self
                    .slots
                    .entry((id, "m"))
                    .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
                for (mv, g) in m.data_mut().iter_mut().zip(grad.data()) {
                    *mv = beta1 * *mv + (1.0 - beta1) * g;
                }
                let m = m.clone();
                let v2 = self
                    .slots
                    .entry((id, "v"))
                    .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
                for (vv, g) in v2.data_mut().iter_mut().zip(grad.data()) {
                    *vv = beta2 * *vv + (1.0 - beta2) * g * g;
                }
                let v2 = v2.clone();
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                let var = self.variables.get_mut(&var_id).expect("checked above");
                for ((v, mv), vv) in var.data_mut().iter_mut().zip(m.data()).zip(v2.data()) {
                    let m_hat = mv / bc1;
                    let v_hat = vv / bc2;
                    *v -= lr * m_hat / (v_hat.sqrt() + epsilon);
                }
                var.clone()
            }
            OpKind::Group => Tensor::scalar(0.0),

            OpKind::Reshape(shape) => input(0).clone().reshaped(shape.clone()),
            OpKind::Transpose { perm } => ktf::transpose(input(0), perm, pool),
            OpKind::Concat { axis } => {
                let tensors: Vec<&Tensor> = (0..inputs.len()).map(input).collect();
                ktf::concat(&tensors, *axis, pool)
            }
            OpKind::Slice { axis, start, len } => ktf::slice_axis(input(0), *axis, *start, *len, pool),
            OpKind::Gather => ktf::gather_rows(input(0), input(1), pool),
            OpKind::ScatterAddRows { vocab, dim } => {
                ktf::scatter_add_rows(*vocab, *dim, input(0), input(1))
            }
            OpKind::ShapeOf => {
                let dims: Vec<f32> = input(0).shape().dims().iter().map(|&d| d as f32).collect();
                Tensor::from(dims)
            }
        };
        Ok(out)
    }

    /// Resolves the variable an `Apply*` node updates.
    fn variable_target(&self, apply: NodeId) -> Result<NodeId, ExecError> {
        let var_id = self.graph.node(apply).inputs[0];
        if self.variables.contains_key(&var_id) {
            Ok(var_id)
        } else {
            Err(ExecError::NotAVariable(var_id))
        }
    }
}

/// Decodes a `[batch, max_len]` label tensor padded with `-1` into per-item
/// label sequences.
fn decode_padded_labels(labels: &Tensor, _rank_hint: usize, blank: usize) -> Result<Vec<Vec<usize>>, ExecError> {
    let batch = labels.shape().dim(0);
    let max_len = labels.shape().dim(1);
    let mut out = Vec::with_capacity(batch);
    for b in 0..batch {
        let mut seq = Vec::new();
        for l in 0..max_len {
            let v = labels.at(&[b, l]);
            if v < 0.0 {
                break;
            }
            let v = v as usize;
            if v == blank {
                return Err(ExecError::BadLabels(format!(
                    "label {v} equals the blank symbol at [{b}, {l}]"
                )));
            }
            seq.push(v);
        }
        out.push(seq);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_tensor::Shape;

    #[test]
    fn feed_and_fetch() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(3));
        let y = g.neg(x);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s.run1(y, &[(x, Tensor::from(vec![1.0, -2.0, 3.0]))]).unwrap();
        assert_eq!(out.data(), &[-1.0, 2.0, -3.0]);
    }

    #[test]
    fn missing_feed_is_an_error() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(3));
        let y = g.neg(x);
        let mut s = Session::new(g, Device::cpu(1));
        assert_eq!(s.run(&[y], &[]), Err(ExecError::MissingFeed(x)));
    }

    #[test]
    fn feed_shape_is_validated() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(3));
        let mut s = Session::new(g, Device::cpu(1));
        let err = s.run(&[x], &[(x, Tensor::zeros([2]))]).unwrap_err();
        assert!(matches!(err, ExecError::FeedShape { .. }));
    }

    #[test]
    fn constants_and_variables() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::from(vec![1.0, 2.0]));
        let v = g.variable("v", Tensor::from(vec![10.0, 20.0]));
        let sum = g.add_op(c, v);
        let mut s = Session::new(g, Device::cpu(1));
        assert_eq!(s.run1(sum, &[]).unwrap().data(), &[11.0, 22.0]);
        s.assign(v, Tensor::from(vec![0.0, 0.0])).unwrap();
        assert_eq!(s.run1(sum, &[]).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn sgd_apply_updates_variable() {
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![1.0, 1.0]));
        let grad = g.constant(Tensor::from(vec![0.5, -0.5]));
        let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.1 }, &[v, grad]);
        let mut s = Session::new(g, Device::cpu(1));
        s.run(&[apply], &[]).unwrap();
        let v_now = s.variable_value(v).unwrap();
        assert!((v_now.data()[0] - 0.95).abs() < 1e-6);
        assert!((v_now.data()[1] - 1.05).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![0.0]));
        let grad = g.constant(Tensor::from(vec![1.0]));
        let apply = g.add(OpKind::ApplyMomentum { lr: 1.0, momentum: 0.5 }, &[v, grad]);
        let mut s = Session::new(g, Device::cpu(1));
        s.run(&[apply], &[]).unwrap(); // velocity 1.0, v = -1.0
        s.run(&[apply], &[]).unwrap(); // velocity 1.5, v = -2.5
        assert!((s.variable_value(v).unwrap().data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn rmsprop_normalizes_step_size() {
        // With a constant gradient, RMSProp steps approach lr/sqrt(g^2)*g
        // = lr * sign(g) as ms converges; verify the variable decreases.
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![5.0]));
        let grad = g.constant(Tensor::from(vec![2.0]));
        let apply = g.add(
            OpKind::ApplyRmsProp { lr: 0.1, decay: 0.9, momentum: 0.0, epsilon: 1e-8 },
            &[v, grad],
        );
        let mut s = Session::new(g, Device::cpu(1));
        let mut prev = 5.0;
        for _ in 0..10 {
            s.run(&[apply], &[]).unwrap();
            let now = s.variable_value(v).unwrap().data()[0];
            assert!(now < prev);
            prev = now;
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize (v - 3)^2 with Adam using graph-built gradient 2(v-3).
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![0.0]));
        let target = g.constant(Tensor::from(vec![3.0]));
        let diff = g.sub(v, target);
        let two = g.constant(Tensor::scalar(2.0));
        let grad = g.mul(diff, two);
        let apply = g.add(
            OpKind::ApplyAdam { lr: 0.1, beta1: 0.9, beta2: 0.999, epsilon: 1e-8 },
            &[v, grad],
        );
        let mut s = Session::new(g, Device::cpu(1));
        for _ in 0..200 {
            s.run(&[apply], &[]).unwrap();
        }
        let now = s.variable_value(v).unwrap().data()[0];
        assert!((now - 3.0).abs() < 0.05, "v = {now}");
    }

    #[test]
    fn tracing_captures_events() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(4, 4));
        let y = g.matmul(x, x);
        let z = g.relu(y);
        let mut s = Session::new(g, Device::cpu(1));
        s.enable_tracing();
        s.run(&[z], &[(x, Tensor::ones([4, 4]))]).unwrap();
        let trace = s.take_trace();
        assert_eq!(trace.steps, 1);
        let ops: Vec<&str> = trace.events.iter().map(|e| e.op).collect();
        assert_eq!(ops, vec!["Placeholder", "MatMul", "Relu"]);
        assert!(trace.events[1].cost.flops > 0.0);
    }

    #[test]
    fn sim_gpu_produces_identical_values_with_modeled_times() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(8, 8));
        let y = g.matmul(x, x);
        let feeds = Tensor::filled([8, 8], 0.5);
        let mut cpu = Session::new(g.clone(), Device::cpu(1));
        let mut gpu = Session::new(g, Device::sim_gpu());
        gpu.enable_tracing();
        let a = cpu.run1(y, &[(x, feeds.clone())]).unwrap();
        let b = gpu.run1(y, &[(x, feeds)]).unwrap();
        assert_eq!(a, b);
        let trace = gpu.take_trace();
        // Modeled durations must include the launch overhead.
        assert!(trace.events.iter().all(|e| e.nanos >= 1_500.0));
    }

    #[test]
    fn random_ops_are_deterministic_per_seed() {
        let mut g = Graph::new();
        let r = g.random_normal([16]);
        let mut s1 = Session::with_seed(g.clone(), Device::cpu(1), 99);
        let mut s2 = Session::with_seed(g, Device::cpu(1), 99);
        assert_eq!(s1.run1(r, &[]).unwrap(), s2.run1(r, &[]).unwrap());
    }

    #[test]
    fn dropout_mask_statistics() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(10_000));
        let mask = g.dropout_mask(x, 0.25);
        let mut s = Session::new(g, Device::cpu(1));
        let m = s.run1(mask, &[(x, Tensor::zeros([10_000]))]).unwrap();
        let zeros = m.data().iter().filter(|&&v| v == 0.0).count();
        let kept = m.data().iter().find(|&&v| v != 0.0).copied().unwrap();
        assert!((zeros as f32 / 10_000.0 - 0.25).abs() < 0.03);
        assert!((kept - 1.0 / 0.75).abs() < 1e-6);
    }

    #[test]
    fn plan_executes_only_needed_nodes() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(2));
        let used = g.neg(x);
        let unused = g.placeholder("unused", Shape::vector(9));
        let _dead = g.exp(unused);
        let mut s = Session::new(g, Device::cpu(1));
        s.enable_tracing();
        // Running `used` must not require feeding `unused`.
        s.run1(used, &[(x, Tensor::zeros([2]))]).unwrap();
        let trace = s.take_trace();
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn eager_release_keeps_peak_memory_below_sum_of_intermediates() {
        // A long chain of equally-sized intermediates: with eager release
        // the peak is a small multiple of one tensor, not chain_len of them.
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(10_000));
        let mut node = x;
        for _ in 0..50 {
            node = g.tanh(node);
        }
        let mut s = Session::new(g, Device::cpu(1));
        s.enable_tracing();
        s.run1(node, &[(x, Tensor::zeros([10_000]))]).unwrap();
        let trace = s.take_trace();
        let one_tensor = 10_000 * 4;
        assert!(trace.peak_live_bytes > 0);
        assert!(
            (trace.peak_live_bytes as usize) <= 4 * one_tensor,
            "peak {} should be a few tensors, not the whole chain ({})",
            trace.peak_live_bytes,
            51 * one_tensor
        );
    }

    #[test]
    fn fetched_and_reused_values_survive_release() {
        // x is consumed early but also fetched; y reuses an early value.
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4));
        let a = g.neg(x);
        let b = g.exp(a);
        let c = g.add_op(b, a); // `a` is consumed again after `b`
        let out = {
            let mut s = Session::new(g, Device::cpu(1));
            s.run(&[c, a, x], &[(x, Tensor::from(vec![1.0, 2.0, 3.0, 4.0]))]).unwrap()
        };
        assert_eq!(out[1].data(), &[-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(out[2].data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!((out[0].data()[0] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn ctc_loss_through_graph() {
        let mut g = Graph::new();
        let logits = g.placeholder("logits", Shape::new(vec![4, 1, 3]));
        let labels = g.placeholder("labels", Shape::matrix(1, 2));
        let loss = g.ctc_loss(logits, labels, 0);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s
            .run1(
                loss,
                &[
                    (logits, Tensor::zeros([4, 1, 3])),
                    (labels, Tensor::from_vec(vec![1.0, 2.0], [1, 2])),
                ],
            )
            .unwrap();
        assert!(out.scalar_value() > 0.0);
        assert!(out.scalar_value().is_finite());
    }

    #[test]
    fn shape_of_materializes_dims() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::new(vec![2, 5, 3]));
        let sh = g.shape_of(x);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s.run1(sh, &[(x, Tensor::zeros([2, 5, 3]))]).unwrap();
        assert_eq!(out.data(), &[2.0, 5.0, 3.0]);
    }
}
