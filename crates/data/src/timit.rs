//! Synthetic spectrogram utterances standing in for the TIMIT corpus.
//!
//! Each phoneme class has a characteristic filterbank energy profile; an
//! utterance is a phoneme sequence rendered as a series of noisy frames
//! (several frames per phoneme, with random duration). This gives CTC
//! training the same shape of problem as real speech: unsegmented frame
//! sequences paired with shorter label sequences.

use fathom_tensor::{Rng, Tensor};

/// Synthetic speech corpus: phoneme-conditioned filterbank frames.
#[derive(Debug, Clone)]
pub struct SpeechCorpus {
    phonemes: usize,
    features: usize,
    profiles: Vec<Vec<f32>>,
    rng: Rng,
}

/// One utterance: frames and their (unaligned) phoneme labels.
#[derive(Debug, Clone)]
pub struct Utterance {
    /// Frame features, `frames[t][f]`.
    pub frames: Vec<Vec<f32>>,
    /// Phoneme label sequence (shorter than the frame sequence).
    pub labels: Vec<usize>,
}

impl SpeechCorpus {
    /// Creates a corpus with `phonemes` classes over `features`-bin
    /// filterbank frames. Class 0 is reserved for the CTC blank and never
    /// appears in labels.
    ///
    /// # Panics
    ///
    /// Panics if `phonemes < 2` or `features == 0`.
    pub fn new(phonemes: usize, features: usize, seed: u64) -> Self {
        assert!(phonemes >= 2, "need at least one phoneme plus the blank");
        assert!(features > 0, "features must be positive");
        let mut rng = Rng::seeded(seed ^ 0xA5A5_A5A5);
        // A fixed random energy profile per phoneme.
        let profiles = (0..phonemes)
            .map(|_| (0..features).map(|_| rng.normal()).collect())
            .collect();
        SpeechCorpus { phonemes, features, profiles, rng: Rng::seeded(seed) }
    }

    /// The stream's RNG state, for checkpointing the pipeline cursor.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores a stream captured with [`SpeechCorpus::rng_state`];
    /// subsequent batches continue exactly where the capture left off.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = Rng::from_state(state);
    }

    /// Number of phoneme classes, including the blank at index 0.
    pub fn phonemes(&self) -> usize {
        self.phonemes
    }

    /// Filterbank bins per frame.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Generates an utterance of `label_len` phonemes, each lasting 1–3
    /// frames.
    pub fn utterance(&mut self, label_len: usize) -> Utterance {
        let mut frames = Vec::new();
        let mut labels = Vec::with_capacity(label_len);
        for _ in 0..label_len {
            let p = 1 + self.rng.below(self.phonemes - 1); // skip blank
            labels.push(p);
            let duration = 1 + self.rng.below(3);
            for _ in 0..duration {
                let frame: Vec<f32> = self.profiles[p]
                    .iter()
                    .map(|&v| v + 0.3 * self.rng.normal())
                    .collect();
                frames.push(frame);
            }
        }
        Utterance { frames, labels }
    }

    /// Generates a CTC-ready minibatch:
    /// `(frames [time, batch, features], labels [batch, max_label])` with
    /// labels padded by `-1`. All items share `label_len` phonemes; frame
    /// counts vary per item and short items are padded with silence
    /// (zeros) at the end.
    pub fn batch(&mut self, batch: usize, label_len: usize) -> (Tensor, Tensor) {
        let utterances: Vec<Utterance> = (0..batch).map(|_| self.utterance(label_len)).collect();
        let t_max = utterances.iter().map(|u| u.frames.len()).max().unwrap_or(1);
        let mut frames = Tensor::zeros([t_max, batch, self.features]);
        let mut labels = Tensor::filled([batch, label_len], -1.0);
        for (b, u) in utterances.iter().enumerate() {
            for (t, frame) in u.frames.iter().enumerate() {
                for (f, &v) in frame.iter().enumerate() {
                    frames.set(&[t, b, f], v);
                }
            }
            for (l, &p) in u.labels.iter().enumerate() {
                labels.set(&[b, l], p as f32);
            }
        }
        (frames, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utterance_has_more_frames_than_labels() {
        let mut c = SpeechCorpus::new(10, 13, 1);
        let u = c.utterance(5);
        assert_eq!(u.labels.len(), 5);
        assert!(u.frames.len() >= 5, "each phoneme emits at least one frame");
        assert!(u.frames.len() <= 15);
    }

    #[test]
    fn labels_never_use_blank() {
        let mut c = SpeechCorpus::new(8, 4, 2);
        for _ in 0..20 {
            let u = c.utterance(6);
            assert!(u.labels.iter().all(|&l| l != 0 && l < 8));
        }
    }

    #[test]
    fn frames_carry_phoneme_signal() {
        // Frames of the same phoneme must be closer to its profile than to
        // other profiles, on average.
        let mut c = SpeechCorpus::new(6, 16, 3);
        let profiles = c.profiles.clone();
        let u = c.utterance(1);
        let p = u.labels[0];
        let dist = |frame: &[f32], profile: &[f32]| -> f32 {
            frame.iter().zip(profile).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let own: f32 = u.frames.iter().map(|f| dist(f, &profiles[p])).sum();
        for (q, prof) in profiles.iter().enumerate() {
            if q != p && q != 0 {
                let other: f32 = u.frames.iter().map(|f| dist(f, prof)).sum();
                assert!(own < other, "frames closer to phoneme {q} than own {p}");
            }
        }
    }

    #[test]
    fn batch_shapes_and_padding() {
        let mut c = SpeechCorpus::new(10, 13, 4);
        let (frames, labels) = c.batch(3, 4);
        assert_eq!(frames.shape().dim(1), 3);
        assert_eq!(frames.shape().dim(2), 13);
        assert_eq!(labels.shape().dims(), &[3, 4]);
        for &l in labels.data() {
            assert!(l == -1.0 || (1.0..10.0).contains(&l));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SpeechCorpus::new(10, 8, 7);
        let mut b = SpeechCorpus::new(10, 8, 7);
        let (fa, la) = a.batch(2, 3);
        let (fb, lb) = b.batch(2, 3);
        assert_eq!(fa, fb);
        assert_eq!(la, lb);
    }
}
