//! Mixed-precision ablation: bf16 storage / f32 accumulate through the
//! packed GEMM engine, and per-channel int8 quantized inference, across
//! all eight workloads.
//!
//! Three questions per workload, all in inference mode:
//!
//! 1. **bf16 GEMM speedup** — the flop-dominant MatMul of the
//!    workload's *full-scale* (paper dimension) graph is timed
//!    standalone through the packed engine in f32 and in bf16. bf16
//!    panels halve the bytes the microkernel streams and, on hosts with
//!    AVX-512 BF16, each `vdpbf16ps` retires two multiply-accumulates
//!    per lane — so real model geometries speed up, while tiny GEMMs
//!    below the packing threshold fall back to f32 and report ~1.0x.
//! 2. **bf16 accuracy** — mean inference metric deviation from the f32
//!    reference over the measured steps.
//! 3. **int8 accuracy** — calibrate activation ranges over the first
//!    half of the reference's batch stream, quantize, and compare the
//!    served metric against the reference's second half.
//!
//! Besides the human-readable table, the experiment emits
//! `BENCH_precision.json` into `target/fathom-results/` and the
//! repository root so the accuracy/perf trajectory is tracked across
//! PRs. `fathom precision-check` gates the same properties pass/fail in
//! scripts/tier1.sh; this ablation records the magnitudes.

use std::fmt::Write as _;
use std::time::Instant;

use fathom::{BuildConfig, Mode, ModelKind, ModelScale, Precision, Workload};
use fathom_dataflow::OpKind;
use fathom_tensor::kernels::gemm::{matmul_packed, matmul_packed_bf16};
use fathom_tensor::{ExecPool, Rng, Tensor};

use crate::{write_artifact, Effort};

/// Accuracy gate applied to both reduced-precision paths: mean-metric
/// deviation beyond this fails the workload (mirrors the
/// `fathom precision-check` default).
pub const TOLERANCE: f64 = 0.05;

const SEED: u64 = 0xFA7408;

/// One workload's mixed-precision comparison.
#[derive(Debug, Clone)]
pub struct PrecisionRow {
    /// Workload name.
    pub workload: &'static str,
    /// Flop-dominant GEMM geometry `[m, k, n]` of the full-scale model
    /// graph (all zeros when the graph holds no rank-2 MatMul).
    pub gemm: [usize; 3],
    /// Dominant-GEMM wall time (ms), f32 packed engine.
    pub gemm_ms_f32: f64,
    /// Dominant-GEMM wall time (ms), bf16 packed engine.
    pub gemm_ms_bf16: f64,
    /// Median inference-step wall time (ms), f32.
    pub step_ms_f32: f64,
    /// Median inference-step wall time (ms), bf16.
    pub step_ms_bf16: f64,
    /// Mean-metric deviation of the bf16 leg from the f32 reference.
    pub bf16_dev: f64,
    /// Mean-metric deviation of the int8 leg from the f32 reference.
    pub int8_dev: f64,
    /// GEMM nodes the calibration pass quantized.
    pub int8_gemms: usize,
}

impl PrecisionRow {
    /// f32-to-bf16 ratio on the dominant GEMM (>1 means bf16 is faster).
    pub fn gemm_speedup(&self) -> f64 {
        if self.gemm_ms_bf16 > 0.0 { self.gemm_ms_f32 / self.gemm_ms_bf16 } else { 0.0 }
    }

    /// f32-to-bf16 ratio on the whole inference step.
    pub fn step_speedup(&self) -> f64 {
        if self.step_ms_bf16 > 0.0 { self.step_ms_f32 / self.step_ms_bf16 } else { 0.0 }
    }

    /// True when both reduced-precision paths hold the accuracy gate.
    pub fn within_tolerance(&self) -> bool {
        self.bf16_dev <= TOLERANCE && self.int8_dev <= TOLERANCE
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 { samples[n / 2] } else { (samples[n / 2 - 1] + samples[n / 2]) / 2.0 }
}

/// Deviation of a mean metric from its reference: relative above 1,
/// absolute below (accuracies and confidences live in `[0, 1]`).
fn deviation(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs().max(1.0)
}

fn build(kind: ModelKind, precision: Precision) -> Box<dyn Workload> {
    kind.build(
        &BuildConfig { mode: Mode::Inference, seed: SEED, ..BuildConfig::training() }
            .with_precision(precision),
    )
}

fn mean_metric(metrics: &[f64]) -> f64 {
    metrics.iter().sum::<f64>() / metrics.len().max(1) as f64
}

/// The flop-dominant MatMul of the workload's *full-scale* (paper
/// dimension) inference graph, as `[m, k, n]`. The accuracy legs run at
/// `ModelScale::Reference` — shrunk models whose GEMMs mostly sit below
/// the packing threshold — but the perf question is about the
/// geometries the paper's models actually spend their time in, so the
/// full graph is built (never executed; only its shapes are read) and
/// the largest `m * k * n` GEMM timed standalone. Conv2D lowers to
/// im2col GEMM as its own op class, so this isolates the explicit dense
/// GEMMs the bf16 pack path targets.
fn dominant_gemm(kind: ModelKind) -> Option<[usize; 3]> {
    let model = kind.build(
        &BuildConfig { mode: Mode::Inference, seed: SEED, ..BuildConfig::training() }
            .with_scale(ModelScale::Full),
    );
    let graph = model.session().graph();
    let mut best: Option<([usize; 3], usize)> = None;
    for (_, node) in graph.iter() {
        let (ta, tb) = match &node.kind {
            OpKind::MatMul { transpose_a, transpose_b } => (*transpose_a, *transpose_b),
            OpKind::GemmFused {
                gemm: fathom_dataflow::GemmOp::MatMul { transpose_a, transpose_b },
                ..
            } => (*transpose_a, *transpose_b),
            _ => continue,
        };
        let (sa, sb) = (graph.shape(node.inputs[0]), graph.shape(node.inputs[1]));
        if sa.rank() != 2 || sb.rank() != 2 {
            continue;
        }
        let (m, k) = if ta { (sa.dim(1), sa.dim(0)) } else { (sa.dim(0), sa.dim(1)) };
        let n = if tb { sb.dim(0) } else { sb.dim(1) };
        let flops = m * k * n;
        if best.as_ref().is_none_or(|(_, b)| flops > *b) {
            best = Some(([m, k, n], flops));
        }
    }
    best.map(|(dims, _)| dims)
}

/// Times the packed engine on one geometry, f32 vs bf16 packing, best
/// median across `effort.repeats` interleaved rounds.
fn time_gemm(dims: [usize; 3], effort: &Effort, pool: &ExecPool) -> (f64, f64) {
    let [m, k, n] = dims;
    let mut rng = Rng::seeded(SEED);
    let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
    let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
    let leg = |bf16: bool| -> f64 {
        let mut samples: Vec<f64> = (0..effort.steps.max(1))
            .map(|_| {
                let t0 = Instant::now();
                let c = if bf16 {
                    matmul_packed_bf16(&a, &b, false, false, pool)
                } else {
                    matmul_packed(&a, &b, false, false, pool)
                };
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(&c);
                ms
            })
            .collect();
        median(&mut samples)
    };
    // Warm the pack-shape code paths once per leg, then interleave.
    let (mut f32_ms, mut bf16_ms) = (leg(false), leg(true));
    for _ in 1..effort.repeats.max(1) {
        f32_ms = f32_ms.min(leg(false));
        bf16_ms = bf16_ms.min(leg(true));
    }
    (f32_ms, bf16_ms)
}

/// Runs `2 * steps` inference steps and returns (median step ms over the
/// tail, per-step metrics). The doubled horizon matches the int8 leg's
/// calibrate-then-serve split so every leg sees the same batch stream.
fn run_steps(model: &mut Box<dyn Workload>, steps: usize) -> (f64, Vec<f64>) {
    let mut metrics = Vec::with_capacity(2 * steps);
    let mut samples = Vec::with_capacity(2 * steps);
    for _ in 0..2 * steps {
        let t0 = Instant::now();
        let stats = model.step();
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
        metrics.push(f64::from(stats.metric.expect("inference reports a metric")));
    }
    (median(&mut samples), metrics)
}

/// Measures one workload across the three precision legs.
pub fn compare(kind: ModelKind, effort: &Effort, pool: &ExecPool) -> PrecisionRow {
    let steps = effort.steps.max(1);

    let mut reference = build(kind, Precision::F32);
    for _ in 0..effort.warmup {
        reference.step();
    }
    let mut warm_bf16 = build(kind, Precision::Bf16);
    for _ in 0..effort.warmup {
        warm_bf16.step();
    }
    // Warm-up advanced the reference's data stream; rebuild both so the
    // bf16/int8 legs compare metrics over identical batches.
    let mut reference = build(kind, Precision::F32);
    let (step_ms_f32, ref_metrics) = run_steps(&mut reference, steps);
    let mut bf16 = build(kind, Precision::Bf16);
    let (step_ms_bf16, bf16_metrics) = run_steps(&mut bf16, steps);
    let bf16_dev = deviation(mean_metric(&bf16_metrics), mean_metric(&ref_metrics));

    // int8: calibrate over the first half of the stream, quantize, and
    // serve the second half against the reference's tail.
    let mut quant = build(kind, Precision::F32);
    quant.session_mut().begin_calibration();
    for _ in 0..steps {
        quant.step();
    }
    quant.session_mut().finish_calibration();
    let (int8_gemms, int8_dev) = match quant.session_mut().quantize_from_calibration() {
        Ok(gemms) => {
            let metrics: Vec<f64> = (0..steps)
                .map(|_| f64::from(quant.step().metric.expect("inference reports a metric")))
                .collect();
            (gemms, deviation(mean_metric(&metrics), mean_metric(&ref_metrics[steps..])))
        }
        Err(_) => (0, f64::INFINITY),
    };

    let gemm = dominant_gemm(kind).unwrap_or([0; 3]);
    let (gemm_ms_f32, gemm_ms_bf16) =
        if gemm == [0; 3] { (0.0, 0.0) } else { time_gemm(gemm, effort, pool) };

    PrecisionRow {
        workload: kind.name(),
        gemm,
        gemm_ms_f32,
        gemm_ms_bf16,
        step_ms_f32,
        step_ms_bf16,
        bf16_dev,
        int8_dev,
        int8_gemms,
    }
}

/// Renders the rows as `BENCH_precision.json` (written by hand; the
/// suite carries no JSON dependency).
pub fn to_json(rows: &[PrecisionRow]) -> String {
    let fast = rows.iter().filter(|r| r.gemm_speedup() >= 1.2).count();
    let within = rows.iter().filter(|r| r.within_tolerance()).count();
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"ablation_precision\",\n");
    let _ = write!(
        out,
        "  \"tolerance\": {TOLERANCE},\n  \"bf16_gemm_speedups_over_1_2x\": {fast},\n  \
         \"workloads_within_tolerance\": {within},\n"
    );
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let json_dev = |d: f64| if d.is_finite() { format!("{d:.5}") } else { "null".into() };
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"gemm\": [{}, {}, {}], \
             \"gemm_ms\": {{\"f32\": {:.4}, \"bf16\": {:.4}}}, \"gemm_speedup\": {:.3}, \
             \"step_ms\": {{\"f32\": {:.4}, \"bf16\": {:.4}}}, \"step_speedup\": {:.3}, \
             \"bf16_metric_dev\": {}, \"int8_metric_dev\": {}, \"int8_gemms\": {}, \
             \"within_tolerance\": {}}}",
            r.workload,
            r.gemm[0],
            r.gemm[1],
            r.gemm[2],
            r.gemm_ms_f32,
            r.gemm_ms_bf16,
            r.gemm_speedup(),
            r.step_ms_f32,
            r.step_ms_bf16,
            r.step_speedup(),
            json_dev(r.bf16_dev),
            json_dev(r.int8_dev),
            r.int8_gemms,
            r.within_tolerance(),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the mixed-precision ablation over every workload.
pub fn run(effort: &Effort) -> String {
    let pool = ExecPool::new(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ABLATION: mixed precision (inference) -- bf16 packed GEMM + per-channel int8\n\
         (gemm = flop-dominant MatMul of the full-scale model, timed standalone through\n\
         the packed engine; accuracy legs run the reference-scale model end to end;\n\
         dev = mean-metric deviation from the f32 reference, gate {TOLERANCE};\n\
         pass/fail on the same properties: `fathom precision-check`)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>9} {:>9} {:>7} {:>9} {:>9} {:>7} {:>9} {:>9} {:>5} {:>6}",
        "workload", "gemm m*k*n", "f32 ms", "bf16 ms", "gemm-x", "step f32", "step b16",
        "step-x", "bf16 dev", "int8 dev", "gemms", "within"
    );
    let rows: Vec<PrecisionRow> =
        ModelKind::ALL.iter().map(|&k| compare(k, effort, &pool)).collect();
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<12} {:>16} {:>9.3} {:>9.3} {:>6.2}x {:>9.3} {:>9.3} {:>6.2}x {:>9.5} {:>9.5} \
             {:>5} {:>6}",
            r.workload,
            format!("{}x{}x{}", r.gemm[0], r.gemm[1], r.gemm[2]),
            r.gemm_ms_f32,
            r.gemm_ms_bf16,
            r.gemm_speedup(),
            r.step_ms_f32,
            r.step_ms_bf16,
            r.step_speedup(),
            r.bf16_dev,
            r.int8_dev,
            r.int8_gemms,
            r.within_tolerance(),
        );
    }
    let fast = rows.iter().filter(|r| r.gemm_speedup() >= 1.2).count();
    let within = rows.iter().filter(|r| r.within_tolerance()).count();
    let _ = writeln!(
        out,
        "\nbf16 gemm speedup >= 1.2x on {fast}/{} workloads; \
         both precisions within tolerance on {within}/{}",
        rows.len(),
        rows.len(),
    );
    let json = to_json(&rows);
    write_artifact("BENCH_precision.json", &json);
    // Also drop it at the repository root, where the PR driver tracks it.
    let repo_root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(repo_root.join("BENCH_precision.json"), &json)
        .expect("can write BENCH_precision.json at the repo root");
    write_artifact("ablation_precision.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_measures_all_three_legs() {
        let pool = ExecPool::new(2);
        let r = compare(ModelKind::Memnet, &Effort::quick(), &pool);
        assert_eq!(r.workload, "memnet");
        assert!(r.step_ms_f32 > 0.0 && r.step_ms_bf16 > 0.0);
        assert_ne!(r.gemm, [0; 3], "memnet's graph must hold a MatMul");
        assert!(r.gemm_ms_f32 > 0.0 && r.gemm_ms_bf16 > 0.0);
        assert!(r.int8_gemms >= 1, "memnet has quantizable GEMMs");
        assert!(r.bf16_dev.is_finite() && r.int8_dev.is_finite());
    }

    #[test]
    fn json_shape() {
        let rows = vec![PrecisionRow {
            workload: "memnet",
            gemm: [64, 128, 256],
            gemm_ms_f32: 2.0,
            gemm_ms_bf16: 1.0,
            step_ms_f32: 10.0,
            step_ms_bf16: 8.0,
            bf16_dev: 0.001,
            int8_dev: f64::INFINITY,
            int8_gemms: 0,
        }];
        let json = to_json(&rows);
        assert!(json.contains("\"experiment\": \"ablation_precision\""));
        assert!(json.contains("\"gemm\": [64, 128, 256]"));
        assert!(json.contains("\"gemm_speedup\": 2.000"));
        assert!(json.contains("\"step_speedup\": 1.250"));
        assert!(json.contains("\"bf16_metric_dev\": 0.00100"));
        assert!(json.contains("\"int8_metric_dev\": null"), "non-finite dev must emit null");
        assert!(json.contains("\"within_tolerance\": false"));
        assert!(!json.contains("inf") && !json.contains("NaN"));
    }

    #[test]
    fn deviation_is_relative_above_one_absolute_below() {
        assert!((deviation(1.05, 1.0) - 0.05).abs() < 1e-12);
        assert!((deviation(0.5, 0.45) - 0.05).abs() < 1e-12);
        assert!((deviation(210.0, 200.0) - 0.05).abs() < 1e-12);
    }
}
