//! Analytic inter-op scheduling model.
//!
//! [`modeled_makespan`] replays one traced training step through a greedy
//! list scheduler: ops are considered in plan (trace) order, each starts
//! as soon as its dataflow dependencies have finished and a worker is
//! free, and ops that [`crate::OpKind::needs_serial`] are pinned to
//! worker 0 in plan order — exactly the discipline the real parallel
//! executor enforces. The result is the modeled wall-clock of the step at
//! a given inter-op worker count, which lets the `ablation_scheduler`
//! bench sweep worker counts past the host's physical core count (the
//! same "model what you cannot measure" approach as [`crate::Device::sim_cpu`]).

use std::collections::HashMap;

use crate::graph::Graph;
use crate::trace::TraceEvent;

/// Moldable-task width decision: how many intra-op threads one op should
/// use when `peers` ops are runnable at the same time on a machine with
/// `workers` threads, given the op's estimated `work` (in elements, see
/// [`crate::cost::OpCost::work_elements`]) and the pool's dispatch
/// `grain`.
///
/// The rule composes two caps:
///
/// * **work cap** — an op never gets more threads than its work can feed
///   (one per `grain` elements, matching the pool's own sizing policy),
/// * **fair share** — when `peers` independent ops are runnable, each is
///   molded down to `ceil(workers / peers)` so they co-schedule instead
///   of queueing behind one wide op.
///
/// The result is always in `1..=workers` and is monotone non-decreasing
/// in `workers` (more machine never shrinks an op's width) — properties
/// pinned by the `sched_properties` proptests.
pub fn chosen_width(work: usize, peers: usize, workers: usize, grain: usize) -> usize {
    let workers = workers.max(1);
    let by_work = (work / grain.max(1)).max(1);
    let share = workers.div_ceil(peers.max(1));
    by_work.min(share).max(1)
}

/// Modeled wall-clock nanoseconds for executing one traced step on
/// `workers` inter-op workers.
///
/// `events` must be the trace of a single step, in execution (plan)
/// order, produced against the same `graph`; per-op durations are taken
/// from [`TraceEvent::nanos`]. With `workers == 1` the result is exactly
/// the sum of the op durations. Inter-op dispatch overhead is not
/// modeled, so the value is a lower bound on real wall-clock.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn modeled_makespan(graph: &Graph, events: &[TraceEvent], workers: usize) -> f64 {
    assert!(workers > 0, "makespan model needs at least one worker");
    // Map traced nodes to their event index so graph edges outside the
    // traced (planned) subgraph are ignored.
    let mut event_of: HashMap<usize, usize> = HashMap::with_capacity(events.len());
    for (idx, e) in events.iter().enumerate() {
        event_of.insert(e.node.index(), idx);
    }
    let mut finish = vec![0.0f64; events.len()];
    let mut worker_free = vec![0.0f64; workers];
    let mut prev_serial: Option<usize> = None;
    let mut makespan = 0.0f64;
    for (idx, e) in events.iter().enumerate() {
        let node = graph.node(e.node);
        let mut ready = 0.0f64;
        for input in &node.inputs {
            if let Some(&dep) = event_of.get(&input.index()) {
                ready = ready.max(finish[dep]);
            }
        }
        let serial = node.kind.needs_serial();
        if serial {
            // The serialization chain adds an edge from the previous
            // stateful/RNG op, and the op itself runs on the coordinator.
            if let Some(prev) = prev_serial {
                ready = ready.max(finish[prev]);
            }
            prev_serial = Some(idx);
        }
        let worker = if serial {
            0
        } else {
            // Greedy: the worker that frees up first.
            let mut best = 0;
            for (w, &free) in worker_free.iter().enumerate() {
                if free < worker_free[best] {
                    best = w;
                }
            }
            best
        };
        let start = ready.max(worker_free[worker]);
        let end = start + e.nanos;
        finish[idx] = end;
        worker_free[worker] = end;
        makespan = makespan.max(end);
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::exec::Session;
    use crate::graph::Graph;
    use fathom_tensor::{Shape, Tensor};

    /// Traces one run of a small two-branch graph and returns it with
    /// the events.
    fn traced_diamond() -> (Graph, Vec<TraceEvent>) {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(24, 24));
        let a = g.matmul(x, x);
        let b = g.tanh(x);
        let c = g.add_op(a, b);
        let mut s = Session::new(g.clone(), Device::cpu(1));
        s.enable_tracing();
        s.run(&[c], &[(x, Tensor::ones([24, 24]))]).unwrap();
        (g, s.take_trace().events)
    }

    #[test]
    fn one_worker_is_the_serial_sum() {
        let (g, events) = traced_diamond();
        let total: f64 = events.iter().map(|e| e.nanos).sum();
        let makespan = modeled_makespan(&g, &events, 1);
        assert!((makespan - total).abs() < 1e-6, "{makespan} vs {total}");
    }

    #[test]
    fn makespan_is_monotone_in_workers() {
        let (g, events) = traced_diamond();
        let mut prev = f64::INFINITY;
        for w in 1..=8 {
            let m = modeled_makespan(&g, &events, w);
            assert!(m <= prev + 1e-9, "makespan increased at {w} workers");
            prev = m;
        }
    }

    #[test]
    fn makespan_never_beats_the_critical_path() {
        let (g, events) = traced_diamond();
        // With unbounded workers the makespan is the critical path.
        let critical = modeled_makespan(&g, &events, events.len().max(1));
        let m8 = modeled_makespan(&g, &events, 8);
        assert!(m8 + 1e-9 >= critical);
        // The diamond's critical path includes the longest branch.
        let longest = events.iter().map(|e| e.nanos).fold(0.0, f64::max);
        assert!(critical + 1e-9 >= longest);
    }

    #[test]
    fn independent_branches_overlap_at_two_workers() {
        // Two equal-cost independent chains from one placeholder: with
        // two workers, the chains (but not the shared input or the final
        // add) should overlap.
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(64));
        let a = g.tanh(x);
        let b = g.exp(x);
        let c = g.add_op(a, b);
        let mut s = Session::new(g.clone(), Device::cpu(1));
        s.enable_tracing();
        s.run(&[c], &[(x, Tensor::ones([64]))]).unwrap();
        let events = s.take_trace().events;
        let serial = modeled_makespan(&g, &events, 1);
        let dual = modeled_makespan(&g, &events, 2);
        assert!(dual <= serial);
    }

    #[test]
    fn serial_ops_are_pinned_to_one_worker() {
        // A graph that is pure RNG draws: no matter the worker count,
        // the makespan must stay the serial sum (RNG ops are chained).
        let mut g = Graph::new();
        let r1 = g.random_normal([32]);
        let r2 = g.random_normal([32]);
        let r3 = g.random_normal([32]);
        let a = g.add_op(r1, r2);
        let b = g.add_op(a, r3);
        let mut s = Session::new(g.clone(), Device::cpu(1));
        s.enable_tracing();
        s.run(&[b], &[]).unwrap();
        let events = s.take_trace().events;
        let rng_sum: f64 = events
            .iter()
            .filter(|e| g.node(e.node).kind.needs_serial())
            .map(|e| e.nanos)
            .sum();
        let m8 = modeled_makespan(&g, &events, 8);
        assert!(m8 + 1e-9 >= rng_sum, "chained RNG ops cannot overlap");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let (g, events) = traced_diamond();
        modeled_makespan(&g, &events, 0);
    }

    /// Pins the moldable-width decisions for the five `BENCH_gemm`
    /// geometries: every bench GEMM is big enough to saturate the work
    /// cap, so its width is exactly the fair share of the machine.
    #[test]
    fn width_decisions_for_the_bench_gemm_geometries() {
        use crate::cost::OpCost;
        use fathom_tensor::DEFAULT_GRAIN;
        // (m, k, n) for the five BENCH_gemm geometries; the transpose
        // variants share the first geometry's work.
        const GEOMETRIES: [(usize, usize, usize); 5] = [
            (512, 512, 512),
            (512, 512, 512),
            (512, 512, 512),
            (64, 1024, 1024),
            (32, 512, 512),
        ];
        for &(m, k, n) in &GEOMETRIES {
            let cost = OpCost {
                flops: (2 * m * k * n) as f64,
                bytes: (4 * (m * k + k * n + m * n)) as f64,
            };
            let work = cost.work_elements();
            assert_eq!(chosen_width(work, 1, 8, DEFAULT_GRAIN), 8, "{m}x{k}x{n} alone runs wide");
            assert_eq!(chosen_width(work, 2, 8, DEFAULT_GRAIN), 4);
            assert_eq!(chosen_width(work, 4, 8, DEFAULT_GRAIN), 2);
            assert_eq!(chosen_width(work, 8, 8, DEFAULT_GRAIN), 1);
        }
        // A tiny op is molded to one thread even with the machine to
        // itself: its work cannot feed a second worker.
        assert_eq!(chosen_width(64, 1, 8, DEFAULT_GRAIN), 1);
    }
}
