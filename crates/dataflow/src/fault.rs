//! Deterministic fault injection: a seeded [`FaultPlan`] that fires
//! failures at named points in the stack.
//!
//! Production DL clusters are defined by partial failure — op kernels
//! that die mid-step, checkpoints cut short by a crashed writer, serving
//! replicas that stall or disappear. Every recovery path in this repo
//! (session rollback, crash-consistent checkpoints, the serve
//! supervisor) is driven by this module in tests, so each path is
//! *reachable on demand and reproducibly*: the same plan and seed always
//! fire the same faults at the same points, which is what lets
//! `tests/serving.rs` assert bitwise-identical reports for runs that
//! include a replica crash.
//!
//! A plan is a list of armed faults. Each fault names a [`FaultSite`]
//! (where), a hit index (the N-th time execution passes that site), and
//! a [`FaultAction`] (what happens). Instrumented code calls
//! [`FaultPlan::check`] at each site; the call is a no-op returning
//! `None` unless an armed fault's turn has come. Sites are cheap to
//! probe and plans are `Sync`, so one plan can drive the executor,
//! checkpoint IO, and several serve replicas at once.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use fathom_tensor::Rng;

/// A named point where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// One op execution inside `Session::run` (serial or parallel).
    ExecOp,
    /// One optimizer step of a training loop (`Trainer` in fathom-core):
    /// `Crash` simulates the process dying between steps, `PoisonNan`
    /// injects a non-finite loss to provoke the divergence guardrail.
    TrainStep,
    /// Checkpoint bytes on their way to storage.
    CheckpointWrite,
    /// Checkpoint bytes on their way back from storage.
    CheckpointRead,
    /// One batch dispatch on a serve replica.
    ServeBatch {
        /// Replica index within the serving engine's runner set.
        replica: usize,
    },
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::ExecOp => write!(f, "op"),
            FaultSite::TrainStep => write!(f, "train"),
            FaultSite::CheckpointWrite => write!(f, "ckpt-write"),
            FaultSite::CheckpointRead => write!(f, "ckpt-read"),
            FaultSite::ServeBatch { replica } => write!(f, "replica{replica}"),
        }
    }
}

/// What happens when an armed fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with an "injected fault" message (exec sites).
    Panic,
    /// Overwrite the op's output with NaNs — silent numerical corruption
    /// (exec sites).
    PoisonNan,
    /// Keep only the first `keep` bytes — a writer that died mid-stream
    /// (checkpoint sites).
    Truncate {
        /// Bytes to keep; everything past this offset is dropped.
        keep: usize,
    },
    /// Flip `flips` seeded bits anywhere in the byte stream — storage
    /// or transport corruption (checkpoint sites).
    BitFlips {
        /// Number of single-bit flips to apply.
        flips: usize,
    },
    /// Fail the batch as if the replica process died (serve sites).
    Crash,
    /// Inflate the batch's service time by `nanos` — a straggler
    /// replica (serve sites).
    Stall {
        /// Extra virtual nanoseconds added to the batch's service time.
        nanos: u64,
    },
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::PoisonNan => write!(f, "nan"),
            FaultAction::Truncate { keep } => write!(f, "truncate:{keep}"),
            FaultAction::BitFlips { flips } => write!(f, "bitflip:{flips}"),
            FaultAction::Crash => write!(f, "crash"),
            FaultAction::Stall { nanos } => write!(f, "stall:{nanos}"),
        }
    }
}

/// One armed fault: fires on the `at_hit`-th (0-based) pass of `site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where the fault fires.
    pub site: FaultSite,
    /// Which pass of the site triggers it (0 = the first).
    pub at_hit: u64,
    /// What happens when it fires.
    pub action: FaultAction,
}

#[derive(Debug)]
struct PlanState {
    faults: Vec<(FaultSpec, bool)>,
    hits: HashMap<FaultSite, u64>,
    fired: Vec<String>,
}

/// A seeded, shareable schedule of injected failures.
///
/// Interior-mutable (`check` takes `&self`) so one plan can be shared
/// across the executor's worker threads and several serve replicas via
/// `Arc`. Probing an unarmed site costs one mutex lock and a hash
/// lookup; code paths that hold no plan at all skip even that.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// An empty plan (no faults armed) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            state: Mutex::new(PlanState { faults: Vec::new(), hits: HashMap::new(), fired: Vec::new() }),
        }
    }

    /// Arms one fault; builder-style.
    #[must_use]
    pub fn with(self, site: FaultSite, at_hit: u64, action: FaultAction) -> Self {
        self.state
            .lock()
            .expect("fault plan lock")
            .faults
            .push((FaultSpec { site, at_hit, action }, false));
        self
    }

    /// The seed that parameterizes seeded actions (bit-flip offsets).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Records one pass of `site` and returns the action of any armed
    /// fault whose turn this is. Each armed fault fires at most once.
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        let mut st = self.state.lock().expect("fault plan lock");
        let hit = {
            let h = st.hits.entry(site).or_insert(0);
            let now = *h;
            *h += 1;
            now
        };
        for (spec, fired) in &mut st.faults {
            if !*fired && spec.site == site && spec.at_hit == hit {
                *fired = true;
                let line = format!("{}@{}={}", spec.site, spec.at_hit, spec.action);
                let action = spec.action.clone();
                st.fired.push(line);
                return Some(action);
            }
        }
        None
    }

    /// Faults that have fired so far, as `site@hit=action` lines.
    pub fn fired(&self) -> Vec<String> {
        self.state.lock().expect("fault plan lock").fired.clone()
    }

    /// Number of faults that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.state.lock().expect("fault plan lock").fired.len()
    }

    /// Applies a byte-corrupting `action` to `bytes` deterministically:
    /// the same plan seed, action, and input length always mutate the
    /// same offsets. Non-byte actions leave `bytes` untouched.
    pub fn corrupt(&self, bytes: &mut Vec<u8>, action: &FaultAction) {
        match action {
            FaultAction::Truncate { keep } => bytes.truncate(*keep.min(&bytes.len())),
            FaultAction::BitFlips { flips } => {
                if bytes.is_empty() {
                    return;
                }
                let mut rng = Rng::seeded(self.seed ^ 0xB17F_11B5);
                for _ in 0..*flips {
                    let at = rng.below(bytes.len());
                    let bit = rng.below(8) as u8;
                    bytes[at] ^= 1 << bit;
                }
            }
            _ => {}
        }
    }

    /// Parses a plan from its textual form:
    ///
    /// ```text
    /// [seed=N;]site@hit=action[;site@hit=action...]
    /// ```
    ///
    /// Sites: `op`, `train`, `ckpt-write`, `ckpt-read`, `replica<R>`.
    /// Actions: `panic`, `nan`, `crash`, `stall:<nanos>`,
    /// `truncate:<keep>`, `bitflip:<n>`. Example:
    /// `seed=7;replica0@2=crash;op@40=nan`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed entry: which
    /// semicolon-separated entry it is, the offending token, and the
    /// valid alternatives for that position.
    pub fn parse(spec: &str, default_seed: u64) -> Result<FaultPlan, String> {
        const SITES: &str = "op, train, ckpt-write, ckpt-read, replica<R>";
        const ACTIONS: &str =
            "panic, nan, crash, stall:<nanos>, truncate:<keep>, bitflip:<n>";
        let mut seed = default_seed;
        let mut faults = Vec::new();
        let entries = spec.split(';').map(str::trim).filter(|p| !p.is_empty());
        for (pos, part) in entries.enumerate() {
            let nth = pos + 1;
            let at = |msg: String| format!("fault entry {nth} ('{part}'): {msg}");
            if let Some(s) = part.strip_prefix("seed=") {
                seed = s
                    .parse()
                    .map_err(|_| at(format!("seed '{s}' is not an unsigned integer")))?;
                continue;
            }
            let (site_hit, action) = part.split_once('=').ok_or_else(|| {
                at(format!("expected site@hit=action (actions: {ACTIONS})"))
            })?;
            let (site_str, hit_str) = site_hit.split_once('@').ok_or_else(|| {
                at(format!("site '{site_hit}' is missing '@<hit>' (sites: {SITES})"))
            })?;
            let site = match site_str {
                "op" => FaultSite::ExecOp,
                "train" => FaultSite::TrainStep,
                "ckpt-write" => FaultSite::CheckpointWrite,
                "ckpt-read" => FaultSite::CheckpointRead,
                other => match other.strip_prefix("replica") {
                    Some(idx) => FaultSite::ServeBatch {
                        replica: idx.parse().map_err(|_| {
                            at(format!(
                                "replica index '{idx}' is not an unsigned integer"
                            ))
                        })?,
                    },
                    None => {
                        return Err(at(format!(
                            "unknown fault site '{other}' (sites: {SITES})"
                        )));
                    }
                },
            };
            let at_hit: u64 = hit_str.parse().map_err(|_| {
                at(format!("hit index '{hit_str}' is not an unsigned integer"))
            })?;
            let action = match action.split_once(':') {
                None => match action {
                    "panic" => FaultAction::Panic,
                    "nan" => FaultAction::PoisonNan,
                    "crash" => FaultAction::Crash,
                    other => {
                        return Err(at(format!(
                            "unknown fault action '{other}' (actions: {ACTIONS})"
                        )));
                    }
                },
                Some((name, arg)) => {
                    let n: u64 = arg.parse().map_err(|_| {
                        at(format!(
                            "argument '{arg}' for '{name}' is not an unsigned integer"
                        ))
                    })?;
                    match name {
                        "stall" => FaultAction::Stall { nanos: n },
                        "truncate" => FaultAction::Truncate { keep: n as usize },
                        "bitflip" => FaultAction::BitFlips { flips: n as usize },
                        other => {
                            return Err(at(format!(
                                "unknown fault action '{other}:' (actions: {ACTIONS})"
                            )));
                        }
                    }
                }
            };
            faults.push((FaultSpec { site, at_hit, action }, false));
        }
        if faults.is_empty() {
            return Err(format!(
                "fault plan '{spec}' arms no faults (format: [seed=N;]site@hit=action; sites: {SITES}; actions: {ACTIONS})"
            ));
        }
        Ok(FaultPlan {
            seed,
            state: Mutex::new(PlanState { faults, hits: HashMap::new(), fired: Vec::new() }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_the_exact_hit_and_only_once() {
        let plan = FaultPlan::new(1).with(FaultSite::ExecOp, 2, FaultAction::Panic);
        assert_eq!(plan.check(FaultSite::ExecOp), None);
        assert_eq!(plan.check(FaultSite::ExecOp), None);
        assert_eq!(plan.check(FaultSite::ExecOp), Some(FaultAction::Panic));
        assert_eq!(plan.check(FaultSite::ExecOp), None);
        assert_eq!(plan.fired(), vec!["op@2=panic".to_string()]);
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::new(1)
            .with(FaultSite::ServeBatch { replica: 0 }, 1, FaultAction::Crash)
            .with(FaultSite::ServeBatch { replica: 1 }, 0, FaultAction::Crash);
        assert_eq!(plan.check(FaultSite::ServeBatch { replica: 1 }), Some(FaultAction::Crash));
        assert_eq!(plan.check(FaultSite::ServeBatch { replica: 0 }), None);
        assert_eq!(plan.check(FaultSite::ServeBatch { replica: 0 }), Some(FaultAction::Crash));
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let base: Vec<u8> = (0..=255).collect();
        let flip = FaultAction::BitFlips { flips: 4 };
        let mut a = base.clone();
        let mut b = base.clone();
        FaultPlan::new(9).corrupt(&mut a, &flip);
        FaultPlan::new(9).corrupt(&mut b, &flip);
        assert_eq!(a, b);
        assert_ne!(a, base);
        let mut c = base.clone();
        FaultPlan::new(10).corrupt(&mut c, &flip);
        assert_ne!(a, c, "different seeds flip different bits");
        let mut t = base.clone();
        FaultPlan::new(9).corrupt(&mut t, &FaultAction::Truncate { keep: 10 });
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn parse_round_trips_the_documented_format() {
        let plan =
            FaultPlan::parse("seed=7; replica0@2=crash; op@40=nan; ckpt-read@0=bitflip:3", 0)
                .expect("parses");
        assert_eq!(plan.seed(), 7);
        for _ in 0..2 {
            assert_eq!(plan.check(FaultSite::ServeBatch { replica: 0 }), None);
        }
        assert_eq!(plan.check(FaultSite::ServeBatch { replica: 0 }), Some(FaultAction::Crash));
        assert_eq!(
            plan.check(FaultSite::CheckpointRead),
            Some(FaultAction::BitFlips { flips: 3 })
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("", 0).is_err());
        assert!(FaultPlan::parse("op@1", 0).is_err());
        assert!(FaultPlan::parse("op=panic", 0).is_err());
        assert!(FaultPlan::parse("gpu@1=panic", 0).is_err());
        assert!(FaultPlan::parse("op@1=explode", 0).is_err());
        assert!(FaultPlan::parse("replicaX@1=crash", 0).is_err());
        assert!(FaultPlan::parse("op@1=stall:xyz", 0).is_err());
    }

    #[test]
    fn parse_errors_name_the_bad_token_and_alternatives() {
        // Unknown site: the message carries the token, the entry
        // position, and the full list of valid sites.
        let err = FaultPlan::parse("op@0=nan; gpu@1=panic", 0).unwrap_err();
        assert!(err.contains("entry 2"), "got: {err}");
        assert!(err.contains("'gpu@1=panic'"), "got: {err}");
        assert!(err.contains("unknown fault site 'gpu'"), "got: {err}");
        assert!(err.contains("op, train, ckpt-write, ckpt-read, replica<R>"), "got: {err}");

        // Unknown action: ditto, with the action list.
        let err = FaultPlan::parse("op@1=explode", 0).unwrap_err();
        assert!(err.contains("entry 1"), "got: {err}");
        assert!(err.contains("unknown fault action 'explode'"), "got: {err}");
        assert!(err.contains("stall:<nanos>"), "got: {err}");

        // Structural problems name what is missing.
        let err = FaultPlan::parse("op@1", 0).unwrap_err();
        assert!(err.contains("expected site@hit=action"), "got: {err}");
        let err = FaultPlan::parse("op=panic", 0).unwrap_err();
        assert!(err.contains("missing '@<hit>'"), "got: {err}");

        // Numeric fields say which token failed to parse.
        let err = FaultPlan::parse("op@x=panic", 0).unwrap_err();
        assert!(err.contains("hit index 'x'"), "got: {err}");
        let err = FaultPlan::parse("seed=abc;op@0=nan", 0).unwrap_err();
        assert!(err.contains("seed 'abc'"), "got: {err}");
        let err = FaultPlan::parse("replicaX@1=crash", 0).unwrap_err();
        assert!(err.contains("replica index 'X'"), "got: {err}");
        let err = FaultPlan::parse("op@1=stall:xyz", 0).unwrap_err();
        assert!(err.contains("argument 'xyz' for 'stall'"), "got: {err}");

        // An empty plan explains the expected format.
        let err = FaultPlan::parse("  ", 0).unwrap_err();
        assert!(err.contains("arms no faults"), "got: {err}");
        assert!(err.contains("site@hit=action"), "got: {err}");
    }

    #[test]
    fn train_site_parses_and_fires() {
        let plan = FaultPlan::parse("train@3=crash;train@1=nan", 5).expect("parses");
        assert_eq!(plan.check(FaultSite::TrainStep), None);
        assert_eq!(plan.check(FaultSite::TrainStep), Some(FaultAction::PoisonNan));
        assert_eq!(plan.check(FaultSite::TrainStep), None);
        assert_eq!(plan.check(FaultSite::TrainStep), Some(FaultAction::Crash));
        assert_eq!(plan.fired(), vec!["train@1=nan".to_string(), "train@3=crash".to_string()]);
    }

    #[test]
    fn stall_and_truncate_parse_arguments() {
        let plan = FaultPlan::parse("replica1@0=stall:5000000;ckpt-write@0=truncate:16", 3).unwrap();
        assert_eq!(
            plan.check(FaultSite::ServeBatch { replica: 1 }),
            Some(FaultAction::Stall { nanos: 5_000_000 })
        );
        assert_eq!(
            plan.check(FaultSite::CheckpointWrite),
            Some(FaultAction::Truncate { keep: 16 })
        );
    }
}
