//! Serving latency/throughput sweep: batched inference through
//! `fathom-serve` across every workload and a range of coalescing
//! limits.
//!
//! For each workload and each batch size, a closed-loop load (clients =
//! twice the batch, zero think time) drives one `SessionWorker` built at
//! that batch extent. Service times are real wall-clock measurements of
//! the inference session; queueing, batching, and latency accounting run
//! in the engine's deterministic virtual time. The sweep reports
//! throughput and tail latency per configuration — the classic
//! batching trade: larger batches amortize per-op overhead (throughput
//! up) while requests wait longer for a slot (p99 up). Emits
//! `BENCH_serve.json` into `target/fathom-results/` and the repository
//! root.

use std::fmt::Write as _;

use fathom::{BuildConfig, ModelKind};
use fathom_serve::{serve, synth_inputs, BatchRunner, LoadModel, ServeConfig, SessionWorker};

use crate::{write_artifact, Effort};

/// Coalescing limits swept per workload.
pub const BATCH_SIZES: [usize; 3] = [1, 2, 4];

/// One (workload, batch size) measurement.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Workload name.
    pub workload: &'static str,
    /// Batcher coalescing limit (= graph batch extent).
    pub max_batch: usize,
    /// Completed requests per second of virtual makespan.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean carried batch size across dispatches.
    pub mean_batch: f64,
    /// Requests completed (none may be shed or timed out here).
    pub completed: u64,
}

/// Measures one (workload, batch size) cell.
pub fn measure(kind: ModelKind, max_batch: usize, effort: &Effort) -> ServePoint {
    let cfg = BuildConfig::inference().with_batch(max_batch);
    let mut worker = SessionWorker::new(kind, &cfg).expect("every workload is servable");
    let shapes = worker.item_shapes();
    let domains = worker.domains();
    let serve_cfg = ServeConfig {
        // Closed loops with zero think time never outrun the queue cap;
        // a generous bound keeps shed == 0 so throughput is comparable.
        queue_cap: 64 * max_batch.max(1),
        ..ServeConfig::new(max_batch)
    };
    let requests = (effort.steps.max(1) * 8).max(2 * max_batch);
    let load = LoadModel::Closed { clients: 2 * max_batch, requests };
    let mut runners: Vec<&mut dyn BatchRunner> = vec![&mut worker];
    let report = serve(
        &mut runners,
        &serve_cfg,
        &load,
        &mut |rng, _| synth_inputs(&shapes, &domains, rng),
        kind.name(),
    )
    .expect("serving a well-formed workload succeeds");
    ServePoint {
        workload: kind.name(),
        max_batch,
        throughput_rps: report.throughput_rps(),
        p50_ms: report.latency.quantile(0.50) / 1e6,
        p99_ms: report.latency.quantile(0.99) / 1e6,
        mean_batch: report.mean_batch_size(),
        completed: report.completed,
    }
}

/// Renders the sweep as `BENCH_serve.json` (written by hand; the suite
/// carries no JSON dependency).
pub fn to_json(points: &[ServePoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"serve_latency\",\n");
    let _ = writeln!(
        out,
        "  \"batch_sizes\": [{}],",
        BATCH_SIZES.map(|b| b.to_string()).join(", ")
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"max_batch\": {}, \"throughput_rps\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_batch\": {:.2}, \"completed\": {}}}",
            p.workload, p.max_batch, p.throughput_rps, p.p50_ms, p.p99_ms, p.mean_batch, p.completed
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the serving sweep over every workload and batch size.
pub fn run(effort: &Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SERVING: closed-loop batched inference (fathom-serve)\n\
         throughput (req/s of virtual time) and latency vs coalescing limit\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>12} {:>10} {:>10} {:>10}",
        "workload", "batch", "thru req/s", "p50 ms", "p99 ms", "mean sz"
    );
    let mut points = Vec::new();
    for kind in ModelKind::ALL {
        for b in BATCH_SIZES {
            let p = measure(kind, b, effort);
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12.1} {:>10.3} {:>10.3} {:>10.2}",
                p.workload, p.max_batch, p.throughput_rps, p.p50_ms, p.p99_ms, p.mean_batch
            );
            points.push(p);
        }
    }
    let json = to_json(&points);
    write_artifact("BENCH_serve.json", &json);
    // Also drop it at the repository root, where the PR driver tracks it.
    let repo_root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(repo_root.join("BENCH_serve.json"), &json)
        .expect("can write BENCH_serve.json at the repo root");
    write_artifact("serve_latency.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_one_cell() {
        let p = measure(ModelKind::Memnet, 2, &Effort::quick());
        assert_eq!(p.workload, "memnet");
        assert_eq!(p.max_batch, 2);
        assert!(p.completed >= 4);
        assert!(p.throughput_rps > 0.0);
        assert!(p.p99_ms >= p.p50_ms);
    }

    #[test]
    fn json_shape() {
        let points = vec![ServePoint {
            workload: "memnet",
            max_batch: 4,
            throughput_rps: 123.4,
            p50_ms: 1.0,
            p99_ms: 2.0,
            mean_batch: 3.5,
            completed: 32,
        }];
        let json = to_json(&points);
        assert!(json.contains("\"experiment\": \"serve_latency\""));
        assert!(json.contains("\"workload\": \"memnet\""));
        assert!(json.contains("\"throughput_rps\": 123.400"));
        assert!(json.contains("\"p99_ms\": 2.000"));
    }
}
