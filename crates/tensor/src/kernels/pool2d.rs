//! Spatial pooling kernels (grouped with convolution in the paper's op
//! taxonomy, since cuDNN/Eigen implement them in the same family).

use crate::pool::ExecPool;
use crate::shape::Shape;
use crate::tensor::Tensor;

use super::conv::Conv2dSpec;

/// Pooling window geometry: square window with a stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool2dSpec {
    /// Window edge length, in pixels.
    pub window: usize,
    /// Step between adjacent windows.
    pub stride: usize,
}

impl Pool2dSpec {
    /// The common non-overlapping `k x k` pooling.
    pub fn square(window: usize) -> Self {
        Pool2dSpec { window, stride: window }
    }

    /// Output shape `[n, oh, ow, c]` for an NHWC input.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4 or the window does not fit.
    pub fn out_shape(&self, input: &Shape) -> Shape {
        assert_eq!(input.rank(), 4, "pool2d input must be NHWC, got {input}");
        let spec = Conv2dSpec { stride: self.stride, pad: 0 };
        Shape::new(vec![
            input.dim(0),
            spec.out_extent(input.dim(1), self.window),
            spec.out_extent(input.dim(2), self.window),
            input.dim(3),
        ])
    }
}

/// Max pooling over NHWC input.
pub fn max_pool(input: &Tensor, spec: Pool2dSpec, pool: &ExecPool) -> Tensor {
    pool_forward(input, spec, pool, true)
}

/// Average pooling over NHWC input.
pub fn avg_pool(input: &Tensor, spec: Pool2dSpec, pool: &ExecPool) -> Tensor {
    pool_forward(input, spec, pool, false)
}

fn pool_forward(input: &Tensor, spec: Pool2dSpec, pool: &ExecPool, is_max: bool) -> Tensor {
    let out_shape = spec.out_shape(input.shape());
    let (_, h, w, c) = nhwc(input.shape());
    let (oh, ow) = (out_shape.dim(1), out_shape.dim(2));
    let mut out = Tensor::zeros(out_shape);
    if out.is_empty() {
        return out;
    }
    let x = input.data();
    let span = ow * c;
    let work = spec.window * spec.window * ow * c;
    let win_area = (spec.window * spec.window) as f32;
    pool.for_spans(out.data_mut(), span, work, |row, dst| {
        let b = row / oh;
        let oy = row % oh;
        if is_max {
            dst.fill(f32::NEG_INFINITY);
        }
        for ky in 0..spec.window {
            let y = oy * spec.stride + ky;
            for ox in 0..ow {
                let dst_px = &mut dst[ox * c..(ox + 1) * c];
                for kx in 0..spec.window {
                    let xx = ox * spec.stride + kx;
                    let src = &x[((b * h + y) * w + xx) * c..((b * h + y) * w + xx) * c + c];
                    if is_max {
                        for (d, &v) in dst_px.iter_mut().zip(src) {
                            if v > *d {
                                *d = v;
                            }
                        }
                    } else {
                        for (d, &v) in dst_px.iter_mut().zip(src) {
                            *d += v / win_area;
                        }
                    }
                }
            }
        }
    });
    out
}

/// Gradient of max pooling: routes each output gradient to the input
/// position that attained the window maximum (first occurrence wins).
///
/// # Panics
///
/// Panics if `grad`'s shape is not the pooled shape of `input`.
pub fn max_pool_grad(input: &Tensor, grad: &Tensor, spec: Pool2dSpec, pool: &ExecPool) -> Tensor {
    let out_shape = spec.out_shape(input.shape());
    assert_eq!(grad.shape(), &out_shape, "grad shape {} != pooled {}", grad.shape(), out_shape);
    let (n, h, w, c) = nhwc(input.shape());
    let (oh, ow) = (out_shape.dim(1), out_shape.dim(2));
    let mut out = Tensor::zeros(input.shape().clone());
    if out.is_empty() {
        return out;
    }
    let x = input.data();
    let g = grad.data();
    // Parallelize over batch items: windows within one item may overlap
    // rows when stride < window, so a full image is the safe disjoint unit.
    let span = h * w * c;
    let work = oh * ow * spec.window * spec.window * c;
    pool.for_spans(out.data_mut(), span, work, |b, dst| {
        for oy in 0..oh {
            for ox in 0..ow {
                for ch in 0..c {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = 0;
                    for ky in 0..spec.window {
                        for kx in 0..spec.window {
                            let y = oy * spec.stride + ky;
                            let xx = ox * spec.stride + kx;
                            let off = (y * w + xx) * c + ch;
                            let v = x[b * span + off];
                            if v > best {
                                best = v;
                                best_off = off;
                            }
                        }
                    }
                    dst[best_off] += g[((b * oh + oy) * ow + ox) * c + ch];
                }
            }
        }
    });
    let _ = n;
    out
}

/// Gradient of average pooling: spreads each output gradient uniformly
/// across its window.
///
/// # Panics
///
/// Panics if `grad`'s shape is not the pooled shape of `input_shape`.
pub fn avg_pool_grad(input_shape: &Shape, grad: &Tensor, spec: Pool2dSpec, pool: &ExecPool) -> Tensor {
    let out_shape = spec.out_shape(input_shape);
    assert_eq!(grad.shape(), &out_shape, "grad shape {} != pooled {}", grad.shape(), out_shape);
    let (_, h, w, c) = nhwc(input_shape);
    let (oh, ow) = (out_shape.dim(1), out_shape.dim(2));
    let mut out = Tensor::zeros(input_shape.clone());
    if out.is_empty() {
        return out;
    }
    let g = grad.data();
    let span = h * w * c;
    let work = oh * ow * spec.window * spec.window * c;
    let inv_area = 1.0 / (spec.window * spec.window) as f32;
    pool.for_spans(out.data_mut(), span, work, |b, dst| {
        for oy in 0..oh {
            for ox in 0..ow {
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        let y = oy * spec.stride + ky;
                        let xx = ox * spec.stride + kx;
                        for ch in 0..c {
                            dst[(y * w + xx) * c + ch] +=
                                g[((b * oh + oy) * ow + ox) * c + ch] * inv_area;
                        }
                    }
                }
            }
        }
    });
    out
}

fn nhwc(s: &Shape) -> (usize, usize, usize, usize) {
    assert_eq!(s.rank(), 4, "expected NHWC shape, got {s}");
    (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn pool() -> ExecPool {
        ExecPool::new(4).with_grain(1)
    }

    #[test]
    fn max_pool_2x2() {
        // 4x4 single-channel image, 2x2 non-overlapping windows.
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            [1, 4, 4, 1],
        );
        let y = max_pool(&x, Pool2dSpec::square(2), &pool());
        assert_eq!(y.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            [1, 4, 4, 1],
        );
        let y = avg_pool(&x, Pool2dSpec::square(2), &pool());
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn overlapping_windows() {
        // AlexNet-style 3x3 stride-2 overlapping max pooling.
        let mut rng = Rng::seeded(8);
        let x = Tensor::randn([1, 7, 7, 2], 0.0, 1.0, &mut rng);
        let spec = Pool2dSpec { window: 3, stride: 2 };
        let y = max_pool(&x, spec, &pool());
        assert_eq!(y.shape().dims(), &[1, 3, 3, 2]);
        // Every output must be >= the center of its window.
        for oy in 0..3 {
            for ox in 0..3 {
                for c in 0..2 {
                    assert!(y.at(&[0, oy, ox, c]) >= x.at(&[0, oy * 2 + 1, ox * 2 + 1, c]));
                }
            }
        }
    }

    #[test]
    fn max_grad_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 4.0, 3.0], [1, 2, 2, 1]);
        let g = Tensor::from_vec(vec![5.0], [1, 1, 1, 1]);
        let dx = max_pool_grad(&x, &g, Pool2dSpec::square(2), &pool());
        assert_eq!(dx.data(), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn avg_grad_spreads_uniformly() {
        let shape = Shape::new(vec![1, 2, 2, 1]);
        let g = Tensor::from_vec(vec![8.0], [1, 1, 1, 1]);
        let dx = avg_pool_grad(&shape, &g, Pool2dSpec::square(2), &pool());
        assert_eq!(dx.data(), &[2.0; 4]);
    }

    #[test]
    fn max_grad_matches_finite_difference() {
        let mut rng = Rng::seeded(9);
        let x = Tensor::randn([1, 4, 4, 2], 0.0, 1.0, &mut rng);
        let spec = Pool2dSpec::square(2);
        let out = max_pool(&x, spec, &pool());
        let ones = Tensor::ones(out.shape().clone());
        let dx = max_pool_grad(&x, &ones, spec, &pool());
        let eps = 1e-3;
        for idx in [0usize, 5, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num =
                (max_pool(&xp, spec, &pool()).sum() - max_pool(&xm, spec, &pool()).sum()) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 1e-2,
                "dx[{idx}]: numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = Rng::seeded(10);
        let x = Tensor::randn([4, 16, 16, 8], 0.0, 1.0, &mut rng);
        let spec = Pool2dSpec { window: 3, stride: 2 };
        let a = max_pool(&x, spec, &ExecPool::serial());
        let b = max_pool(&x, spec, &ExecPool::new(8).with_grain(1));
        assert_eq!(a, b);
    }
}
