//! `cargo bench -p fathom-bench --bench intensity_report`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::intensity::run(&effort));
}
