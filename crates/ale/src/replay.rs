//! Experience replay, the "innovative strategy" that made DQN trainable
//! on decoupled feedback (paper §IV).

use fathom_tensor::{Rng, Shape, Tensor};

/// One stored transition `(s, a, r, s', done)`.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation before the action.
    pub state: Tensor,
    /// Discrete action taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Observation after the action.
    pub next_state: Tensor,
    /// Whether the episode ended at this transition.
    pub done: bool,
}

/// A sampled minibatch, batched into training-ready tensors.
#[derive(Debug, Clone)]
pub struct ReplayBatch {
    /// States `[batch, ...obs]`.
    pub states: Tensor,
    /// Actions `[batch]` as `f32` indices.
    pub actions: Tensor,
    /// Rewards `[batch]`.
    pub rewards: Tensor,
    /// Next states `[batch, ...obs]`.
    pub next_states: Tensor,
    /// Episode-termination flags `[batch]` (1.0 when done).
    pub dones: Tensor,
}

/// Undo record for a bounded number of pushes; see
/// [`ReplayBuffer::mark`].
#[derive(Debug, Clone)]
pub struct ReplayMark {
    len: usize,
    cursor: usize,
    saved: Vec<(usize, Transition)>,
}

/// A bounded uniform-sampling replay buffer.
///
/// # Examples
///
/// ```
/// use fathom_ale::{ReplayBuffer, Transition};
/// use fathom_tensor::{Rng, Tensor};
///
/// let mut buffer = ReplayBuffer::new(100);
/// buffer.push(Transition {
///     state: Tensor::zeros([1, 2]),
///     action: 1,
///     reward: 0.5,
///     next_state: Tensor::ones([1, 2]),
///     done: false,
/// });
/// let mut rng = Rng::seeded(0);
/// let batch = buffer.sample(4, &mut rng);
/// assert_eq!(batch.states.shape().dims(), &[4, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    cursor: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer { capacity, items: Vec::new(), cursor: 0 }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` while the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The eviction cursor (next overwrite position once full).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The stored transitions in internal (ring) order, for checkpointing.
    pub fn items(&self) -> &[Transition] {
        &self.items
    }

    /// Rebuilds a buffer from checkpointed parts; paired with
    /// [`ReplayBuffer::items`] and [`ReplayBuffer::cursor`] this restores
    /// the ring bitwise, eviction order included.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `items.len() > capacity`, or the cursor
    /// is out of range.
    pub fn restore(capacity: usize, items: Vec<Transition>, cursor: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(items.len() <= capacity, "more items than capacity");
        assert!(cursor == 0 || cursor < capacity, "cursor out of range");
        ReplayBuffer { capacity, items, cursor }
    }

    /// Records enough state to undo the next `max_pushes` pushes.
    ///
    /// A training step that fails mid-flight (guardrail trip, injected
    /// fault) must leave the buffer exactly as it found it, or a
    /// replayed step trains on duplicated experience and determinism is
    /// lost. The mark clones at most `max_pushes` transitions — only
    /// the ring slots an overwrite would destroy — never the whole
    /// buffer.
    pub fn mark(&self, max_pushes: usize) -> ReplayMark {
        let mut saved = Vec::new();
        // Pushes append until the ring fills; the remainder overwrite
        // slots starting at the cursor. Slots created by this step's own
        // appends need no saving — rollback truncates them away.
        let appends = self.capacity - self.items.len();
        if max_pushes > appends {
            let overwrites = (max_pushes - appends).min(self.capacity);
            for i in 0..overwrites {
                let idx = (self.cursor + i) % self.capacity;
                if idx < self.items.len() {
                    saved.push((idx, self.items[idx].clone()));
                }
            }
        }
        ReplayMark { len: self.items.len(), cursor: self.cursor, saved }
    }

    /// Undoes every push since `mark` was taken (at most the
    /// `max_pushes` the mark was sized for).
    pub fn rollback(&mut self, mark: ReplayMark) {
        self.items.truncate(mark.len);
        self.cursor = mark.cursor;
        for (idx, t) in mark.saved {
            if idx < self.items.len() {
                self.items[idx] = t;
            }
        }
    }

    /// Inserts a transition, evicting the oldest once at capacity.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.cursor] = t;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    /// Samples `batch` transitions uniformly with replacement and batches
    /// them. State tensors of shape `[1, ...]` are stacked along the
    /// leading axis.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample(&self, batch: usize, rng: &mut Rng) -> ReplayBatch {
        assert!(!self.items.is_empty(), "cannot sample an empty replay buffer");
        let obs_dims: Vec<usize> = self.items[0].state.shape().dims()[1..].to_vec();
        let obs_len: usize = obs_dims.iter().product();
        let mut states = Vec::with_capacity(batch * obs_len);
        let mut next_states = Vec::with_capacity(batch * obs_len);
        let mut actions = Vec::with_capacity(batch);
        let mut rewards = Vec::with_capacity(batch);
        let mut dones = Vec::with_capacity(batch);
        for _ in 0..batch {
            let t = &self.items[rng.below(self.items.len())];
            states.extend_from_slice(t.state.data());
            next_states.extend_from_slice(t.next_state.data());
            actions.push(t.action as f32);
            rewards.push(t.reward);
            dones.push(if t.done { 1.0 } else { 0.0 });
        }
        let mut batched_dims = vec![batch];
        batched_dims.extend(&obs_dims);
        let shape = Shape::new(batched_dims);
        ReplayBatch {
            states: Tensor::from_vec(states, shape.clone()),
            actions: Tensor::from_vec(actions, [batch]),
            rewards: Tensor::from_vec(rewards, [batch]),
            next_states: Tensor::from_vec(next_states, shape),
            dones: Tensor::from_vec(dones, [batch]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(marker: f32) -> Transition {
        Transition {
            state: Tensor::filled([1, 3], marker),
            action: marker as usize % 3,
            reward: marker,
            next_state: Tensor::filled([1, 3], marker + 0.5),
            done: (marker as usize).is_multiple_of(2),
        }
    }

    #[test]
    fn eviction_keeps_capacity() {
        let mut b = ReplayBuffer::new(5);
        for i in 0..12 {
            b.push(transition(i as f32));
        }
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn eviction_replaces_oldest() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..4 {
            b.push(transition(i as f32));
        }
        // Items now: {3, 1, 2} (0 evicted).
        let rewards: Vec<f32> = b.items.iter().map(|t| t.reward).collect();
        assert!(rewards.contains(&3.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sample_batches_shapes() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(transition(i as f32));
        }
        let mut rng = Rng::seeded(1);
        let batch = b.sample(6, &mut rng);
        assert_eq!(batch.states.shape().dims(), &[6, 3]);
        assert_eq!(batch.next_states.shape().dims(), &[6, 3]);
        assert_eq!(batch.actions.len(), 6);
        assert_eq!(batch.rewards.len(), 6);
        assert_eq!(batch.dones.len(), 6);
        // next_state marker is state marker + 0.5 throughout.
        for i in 0..6 {
            assert_eq!(batch.next_states.data()[i * 3] - batch.states.data()[i * 3], 0.5);
        }
    }

    #[test]
    fn sampling_covers_the_buffer() {
        let mut b = ReplayBuffer::new(4);
        for i in 0..4 {
            b.push(transition(i as f32));
        }
        let mut rng = Rng::seeded(2);
        let batch = b.sample(200, &mut rng);
        let mut seen = [false; 4];
        for i in 0..200 {
            seen[batch.rewards.data()[i] as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampling missed an item");
    }

    #[test]
    #[should_panic(expected = "empty replay buffer")]
    fn sampling_empty_panics() {
        ReplayBuffer::new(3).sample(1, &mut Rng::seeded(0));
    }

    #[test]
    fn mark_and_rollback_undo_pushes_bitwise() {
        let t = |v: f32| Transition {
            state: Tensor::from_vec(vec![v; 4], [1, 4]),
            action: 0,
            reward: v,
            next_state: Tensor::from_vec(vec![v + 0.5; 4], [1, 4]),
            done: false,
        };
        let snapshot = |b: &ReplayBuffer| {
            let rewards: Vec<u32> = b.items().iter().map(|x| x.reward.to_bits()).collect();
            (b.len(), b.cursor(), rewards)
        };
        // Appends only, appends crossing the full boundary, and pure
        // ring overwrites (including cursor wrap-around).
        for prefill in [0usize, 3, 4, 6] {
            let mut b = ReplayBuffer::new(6);
            for i in 0..prefill {
                b.push(t(i as f32));
            }
            let before = snapshot(&b);
            let mark = b.mark(4);
            for i in 0..4 {
                b.push(t(100.0 + i as f32));
            }
            b.rollback(mark);
            assert_eq!(snapshot(&b), before, "prefill {prefill}");
        }
    }
}
