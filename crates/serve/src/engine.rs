//! The serving engine: admission control, dynamic batching, and a
//! virtual-time event loop.
//!
//! Time is *virtual*: arrivals come from a seeded stochastic process and
//! each batch advances the clock by its measured (or, in tests,
//! injected) service time. Real graph execution happens inside
//! [`BatchRunner::run_batch`], but the queueing dynamics — coalescing,
//! shedding, deadlines, drain — are a deterministic discrete-event
//! simulation, so the same seed and runner behavior always produce the
//! identical [`ServeReport`]. That is what lets `tests/serving.rs` make
//! exact assertions about counts and batch shapes without ever sleeping.
//!
//! Dispatch rule: an idle replica takes up to `max_batch` queued
//! requests as soon as the queue is full enough, the oldest request has
//! waited `max_delay`, or no further arrivals are scheduled (drain).
//! Admission rule: a request arriving to a queue at `queue_cap` is shed;
//! a queued request whose deadline passes before dispatch is timed out
//! (work already in flight always completes).

use std::collections::{BinaryHeap, HashMap, VecDeque};

use fathom_dataflow::RuntimeCounters;
use fathom_tensor::{Rng, Tensor};

use crate::metrics::{BatchRecord, RecoveryCounters, ServeReport};
use crate::worker::{BatchRunner, Request, ServeError};

/// Supervisor policy: what happens to a replica that fails a batch and
/// to the requests that were riding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Times one request may be re-queued after riding a failed batch
    /// before it is dropped (dropped requests count as shed).
    pub max_retries: u32,
    /// Quarantine length after a replica's first failure, in virtual
    /// nanoseconds; doubles with each subsequent restart of the same
    /// replica (exponential backoff).
    pub backoff_nanos: u64,
    /// Rebuilds attempted before a replica is retired for good.
    pub max_restarts: u32,
}

impl Default for RecoveryPolicy {
    /// Two retries per request, 5 ms initial backoff, two restarts per
    /// replica.
    fn default() -> Self {
        RecoveryPolicy { max_retries: 2, backoff_nanos: 5_000_000, max_restarts: 2 }
    }
}

/// Batching and admission parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Most requests coalesced into one session run.
    pub max_batch: usize,
    /// Longest a request may head the queue before a partial batch is
    /// dispatched anyway, in virtual nanoseconds.
    pub max_delay_nanos: u64,
    /// Admission bound: arrivals beyond this queue depth are shed.
    pub queue_cap: usize,
    /// When set, queued requests older than this are dropped (timed out)
    /// instead of dispatched.
    pub deadline_nanos: Option<u64>,
    /// Seed for the arrival process and request synthesis.
    pub seed: u64,
    /// Supervisor behavior for failed replicas and their batches.
    pub recovery: RecoveryPolicy,
}

impl ServeConfig {
    /// Sensible defaults around a coalescing limit: 2 ms max delay, a
    /// queue of `8 * max_batch`, no deadline, default recovery policy.
    pub fn new(max_batch: usize) -> Self {
        ServeConfig {
            max_batch,
            max_delay_nanos: 2_000_000,
            queue_cap: 8 * max_batch,
            deadline_nanos: None,
            seed: 0xFA7408,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// How load is offered to the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModel {
    /// Open loop: a Poisson process at `rps` requests/second for
    /// `duration_nanos` of virtual time. Arrivals do not wait for
    /// responses, so overload sheds.
    Open {
        /// Offered rate, requests per second.
        rps: f64,
        /// Length of the arrival window, virtual nanoseconds.
        duration_nanos: u64,
    },
    /// Closed loop: `clients` concurrent callers, each issuing its next
    /// request the moment the previous one resolves, until `requests`
    /// total have been issued.
    Closed {
        /// Concurrent callers.
        clients: usize,
        /// Total requests across all callers.
        requests: usize,
    },
}

/// One replica's occupancy: the virtual time it frees up and how many
/// requests its in-flight batch carries (for closed-loop re-issue).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    free_at: u64,
    carried: usize,
}

/// Supervisor view of one replica.
#[derive(Debug, Clone, Copy)]
enum Replica {
    /// Ready to take a batch.
    Idle,
    /// Executing a batch until `InFlight::free_at`.
    Busy(InFlight),
    /// Failed; rebuilt (via [`BatchRunner::recover`]) at `until`.
    Quarantined {
        /// Virtual time the backoff expires and recovery is attempted.
        until: u64,
    },
    /// Retired after exhausting its restart budget.
    Dead,
}

/// What the supervisor decides about a replica that just failed.
/// Shared with the cluster layer (`cluster.rs`), whose replica state
/// machine has extra states but the identical failure policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FailureVerdict {
    /// Back off until the given virtual time, then attempt recovery.
    Quarantine {
        /// Virtual time the backoff expires.
        until: u64,
    },
    /// Restart budget exhausted: retire the replica for good.
    Retire,
}

/// Applies the recovery policy to one more failure of a replica:
/// exponential backoff while the restart budget lasts, retirement after.
/// Updates `restarts` and the report counters as a side effect.
pub(crate) fn failure_verdict(
    restarts: &mut u32,
    policy: &RecoveryPolicy,
    now: u64,
    counters: &mut RecoveryCounters,
) -> FailureVerdict {
    if *restarts >= policy.max_restarts {
        counters.dead_replicas += 1;
        FailureVerdict::Retire
    } else {
        let backoff = policy.backoff_nanos.saturating_mul(1u64 << (*restarts).min(32));
        *restarts += 1;
        counters.quarantines += 1;
        FailureVerdict::Quarantine { until: now.saturating_add(backoff.max(1)) }
    }
}

/// Moves a failed replica into quarantine with exponential backoff, or
/// retires it when its restart budget is spent.
fn quarantine_or_retire(
    slot: &mut Replica,
    restarts: &mut u32,
    policy: &RecoveryPolicy,
    now: u64,
    counters: &mut RecoveryCounters,
) {
    match failure_verdict(restarts, policy, now, counters) {
        FailureVerdict::Retire => *slot = Replica::Dead,
        FailureVerdict::Quarantine { until } => *slot = Replica::Quarantined { until },
    }
}

/// Runs one serving experiment: offers `load` to `runners` under `cfg`,
/// synthesizing each admitted request's payload with `synth`.
///
/// `runners` is one [`BatchRunner`] per replica; each owns independent
/// session state. The virtual clock starts at 0 and the function returns
/// once every admitted request has resolved (completed, shed, or timed
/// out) — graceful drain, never mid-flight abandonment.
///
/// A runner failure does *not* abort the run: the supervisor
/// quarantines the replica (exponential backoff, then
/// [`BatchRunner::recover`]), re-queues the failed batch's requests at
/// the front of the queue for a healthy replica (each request at most
/// [`RecoveryPolicy::max_retries`] times, then it is dropped and counted
/// as shed), and retires replicas that keep failing. When every replica
/// is dead, remaining work is shed and the run still terminates with an
/// honest report. Conservation always holds:
/// `issued == completed + shed + timed_out`.
///
/// # Errors
///
/// Returns [`ServeError::Unservable`] when `runners` is empty or the
/// effective batch limit is zero, and [`ServeError::Fault`] if the event
/// loop ever stalls (an engine bug, not a replica failure).
pub fn serve(
    runners: &mut [&mut dyn BatchRunner],
    cfg: &ServeConfig,
    load: &LoadModel,
    synth: &mut dyn FnMut(&mut Rng, u64) -> Vec<Tensor>,
    workload: &str,
) -> Result<ServeReport, ServeError> {
    if runners.is_empty() {
        return Err(ServeError::Unservable("serve needs at least one replica".into()));
    }
    let cap_floor = runners.iter().map(|r| r.capacity()).min().unwrap_or(0);
    let max_batch = cfg.max_batch.min(cap_floor);
    if max_batch == 0 {
        return Err(ServeError::Unservable(
            "max_batch and every replica capacity must be at least 1".into(),
        ));
    }

    let mut rng = Rng::seeded(cfg.seed);
    let mut report = ServeReport::new(workload, max_batch, runners.len());
    // Session counters are cumulative, so the report carries the delta
    // over this run, folded across replicas at the end.
    let runtime_base: Vec<RuntimeCounters> =
        runners.iter().map(|r| r.runtime_counters()).collect();

    // Scheduled arrival times (min-heap). Open loop precomputes the whole
    // Poisson trace; closed loop seeds `clients` arrivals at t=0 and adds
    // one per resolution while `remaining_closed > 0`.
    let mut arrivals: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    let mut remaining_closed = 0usize;
    match load {
        LoadModel::Open { rps, duration_nanos } => {
            if rps.is_nan() || *rps <= 0.0 {
                return Err(ServeError::Unservable("open-loop load needs a positive rate".into()));
            }
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival; 1 - uniform() keeps ln() off 0.
                t += -(1.0 - rng.uniform() as f64).ln() / rps * 1e9;
                if t >= *duration_nanos as f64 {
                    break;
                }
                arrivals.push(std::cmp::Reverse(t as u64));
            }
        }
        LoadModel::Closed { clients, requests } => {
            let first = (*clients).min(*requests);
            for _ in 0..first {
                arrivals.push(std::cmp::Reverse(0));
            }
            remaining_closed = requests - first;
        }
    }

    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut replicas: Vec<Replica> = vec![Replica::Idle; runners.len()];
    let mut restarts: Vec<u32> = vec![0; runners.len()];
    // Failed-batch retry counts, by request id. Engine-side so the
    // public `Request` stays a plain payload.
    let mut retries: HashMap<u64, u32> = HashMap::new();
    let mut now = 0u64;
    let mut next_id = 0u64;

    loop {
        // 1. Completions free busy replicas (each resolved request lets a
        // closed-loop client issue its next one); expired quarantines
        // attempt a supervised rebuild.
        for (i, runner) in runners.iter_mut().enumerate() {
            match replicas[i] {
                Replica::Busy(f) if f.free_at <= now => {
                    replicas[i] = Replica::Idle;
                    for _ in 0..f.carried {
                        if remaining_closed > 0 {
                            arrivals.push(std::cmp::Reverse(now));
                            remaining_closed -= 1;
                        }
                    }
                }
                Replica::Quarantined { until } if until <= now => match runner.recover() {
                    Ok(()) => {
                        report.recovery.recoveries += 1;
                        replicas[i] = Replica::Idle;
                    }
                    Err(_) => quarantine_or_retire(
                        &mut replicas[i],
                        &mut restarts[i],
                        &cfg.recovery,
                        now,
                        &mut report.recovery,
                    ),
                },
                _ => {}
            }
        }
        let all_dead = replicas.iter().all(|r| matches!(r, Replica::Dead));

        // 2. Arrivals due now: admit or shed. With every replica retired
        // nothing can ever serve, so arrivals are shed outright.
        while arrivals.peek().is_some_and(|t| t.0 <= now) {
            let at = match arrivals.pop() {
                Some(std::cmp::Reverse(t)) => t,
                // Invariant: peek above just returned Some.
                None => break,
            };
            let id = next_id;
            next_id += 1;
            report.issued += 1;
            if all_dead || queue.len() >= cfg.queue_cap {
                report.shed += 1;
                if all_dead {
                    report.shed_reasons.replica_loss += 1;
                } else {
                    report.shed_reasons.queue_full += 1;
                }
                // A shed closed-loop client immediately tries again.
                if remaining_closed > 0 {
                    arrivals.push(std::cmp::Reverse(at));
                    remaining_closed -= 1;
                }
                continue;
            }
            let inputs = synth(&mut rng, id);
            queue.push_back(Request { id, arrival: at, inputs });
            report.queue_depths.push(queue.len());
        }

        // 3. Deadline expiry of queued (never in-flight) requests.
        if let Some(deadline) = cfg.deadline_nanos {
            let before = queue.len();
            queue.retain(|r| r.arrival + deadline > now);
            let expired = (before - queue.len()) as u64;
            report.timed_out += expired;
            for _ in 0..expired {
                if remaining_closed > 0 {
                    arrivals.push(std::cmp::Reverse(now));
                    remaining_closed -= 1;
                }
            }
        }

        // 3b. Every replica retired: queued work can never be served —
        // shed it so the run degrades gracefully instead of hanging.
        if all_dead && !queue.is_empty() {
            let stranded = queue.len() as u64;
            report.shed += stranded;
            report.shed_reasons.replica_loss += stranded;
            queue.clear();
            for _ in 0..stranded {
                if remaining_closed > 0 {
                    arrivals.push(std::cmp::Reverse(now));
                    remaining_closed -= 1;
                }
            }
        }

        // 4. Dispatch to idle replicas while the batching rule fires. A
        // failed dispatch quarantines the replica and re-queues its
        // batch (front of the queue, original order) for a healthy one.
        for (i, runner) in runners.iter_mut().enumerate() {
            if !matches!(replicas[i], Replica::Idle) {
                continue;
            }
            let Some(front) = queue.front() else { break };
            let oldest_wait = now - front.arrival;
            let draining = arrivals.is_empty();
            if queue.len() < max_batch && oldest_wait < cfg.max_delay_nanos && !draining {
                continue;
            }
            let take = queue.len().min(max_batch);
            let batch: Vec<Request> = queue.drain(..take).collect();
            let refs: Vec<&Request> = batch.iter().collect();
            let result = match runner.run_batch(&refs) {
                Ok(result) => result,
                Err(_) => {
                    report.recovery.crashes += 1;
                    quarantine_or_retire(
                        &mut replicas[i],
                        &mut restarts[i],
                        &cfg.recovery,
                        now,
                        &mut report.recovery,
                    );
                    for r in batch.into_iter().rev() {
                        let attempts = retries.entry(r.id).or_insert(0);
                        if *attempts >= cfg.recovery.max_retries {
                            report.recovery.dropped += 1;
                            report.shed += 1;
                            report.shed_reasons.replica_loss += 1;
                            if remaining_closed > 0 {
                                arrivals.push(std::cmp::Reverse(now));
                                remaining_closed -= 1;
                            }
                        } else {
                            *attempts += 1;
                            report.recovery.retried += 1;
                            queue.push_front(r);
                        }
                    }
                    continue;
                }
            };
            let service = (result.service_nanos as u64).max(1);
            let done = now + service;
            replicas[i] = Replica::Busy(InFlight { free_at: done, carried: batch.len() });
            for r in &batch {
                report.latency.record((done - r.arrival) as f64);
            }
            report.completed += batch.len() as u64;
            report.makespan_nanos = report.makespan_nanos.max(done);
            report.batches.push(BatchRecord {
                size: batch.len(),
                service_nanos: result.service_nanos,
                class_nanos: result.class_nanos,
            });
        }

        // 5. Terminate when fully drained. Quarantined and dead replicas
        // do not block termination: with no work left there is nothing
        // to recover *for*.
        let any_busy = replicas.iter().any(|r| matches!(r, Replica::Busy(_)));
        if arrivals.is_empty() && remaining_closed == 0 && queue.is_empty() && !any_busy {
            break;
        }

        // 6. Advance the clock to the next event: an arrival, a batch
        // completion, a quarantine expiry, the oldest waiter hitting
        // max_delay, or a deadline.
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            let t = t.max(now + 1);
            next = Some(next.map_or(t, |n: u64| n.min(t)));
        };
        if let Some(t) = arrivals.peek() {
            consider(t.0);
        }
        for r in &replicas {
            match r {
                Replica::Busy(f) => consider(f.free_at),
                Replica::Quarantined { until } => consider(*until),
                Replica::Idle | Replica::Dead => {}
            }
        }
        if let Some(front) = queue.front() {
            if replicas.iter().any(|r| matches!(r, Replica::Idle)) {
                consider(front.arrival + cfg.max_delay_nanos);
            }
            if let Some(deadline) = cfg.deadline_nanos {
                consider(front.arrival + deadline);
            }
        }
        match next {
            Some(t) => now = t,
            // Unreachable by construction: work remaining implies a
            // scheduled arrival, a busy/quarantined replica, an
            // all-dead purge, or a queue-front timer. Surface an engine
            // bug as a typed error rather than a hang or panic.
            None => {
                return Err(ServeError::Fault(
                    "engine stalled: work remains but no future event is scheduled".into(),
                ))
            }
        }
    }

    for (runner, base) in runners.iter().zip(&runtime_base) {
        report.runtime.merge(&runner.runtime_counters().delta_since(base));
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::BatchResult;

    /// Deterministic runner: fixed service time per batch, no tensors.
    struct FakeRunner {
        capacity: usize,
        service_nanos: f64,
        batches: Vec<usize>,
    }

    impl FakeRunner {
        fn new(capacity: usize, service_nanos: f64) -> Self {
            FakeRunner { capacity, service_nanos, batches: Vec::new() }
        }
    }

    impl BatchRunner for FakeRunner {
        fn capacity(&self) -> usize {
            self.capacity
        }

        fn run_batch(&mut self, reqs: &[&Request]) -> Result<BatchResult, ServeError> {
            self.batches.push(reqs.len());
            Ok(BatchResult {
                outputs: reqs.iter().map(|_| Tensor::zeros([1])).collect(),
                service_nanos: self.service_nanos,
                class_nanos: [0.0; 7],
            })
        }
    }

    fn no_inputs(_rng: &mut Rng, _id: u64) -> Vec<Tensor> {
        Vec::new()
    }

    #[test]
    fn open_loop_conserves_requests() {
        let mut runner = FakeRunner::new(4, 1_000_000.0);
        let cfg = ServeConfig::new(4);
        let load = LoadModel::Open { rps: 200.0, duration_nanos: 1_000_000_000 };
        let r = serve(&mut [&mut runner], &cfg, &load, &mut no_inputs, "fake").unwrap();
        assert!(r.issued > 100, "Poisson(200 rps, 1 s) should issue ~200, got {}", r.issued);
        assert_eq!(r.issued, r.completed + r.shed + r.timed_out);
        assert_eq!(r.completed, runner.batches.iter().sum::<usize>() as u64);
        assert!(r.throughput_rps() > 0.0);
    }

    #[test]
    fn heavy_load_fills_batches() {
        // Service is slow relative to arrivals, so the queue backs up and
        // dispatches run at the coalescing limit.
        let mut runner = FakeRunner::new(4, 50_000_000.0);
        let cfg = ServeConfig { queue_cap: 64, ..ServeConfig::new(4) };
        let load = LoadModel::Open { rps: 1000.0, duration_nanos: 200_000_000 };
        let r = serve(&mut [&mut runner], &cfg, &load, &mut no_inputs, "fake").unwrap();
        let full = r.batches_of_size(4);
        assert!(full * 2 > r.batches.len(), "expected mostly full batches, sizes {:?}", runner.batches);
        assert!(r.max_queue_depth() > 4);
    }

    #[test]
    fn closed_loop_issues_exactly_the_request_budget() {
        let mut runner = FakeRunner::new(8, 3_000_000.0);
        let cfg = ServeConfig::new(4);
        let load = LoadModel::Closed { clients: 6, requests: 40 };
        let r = serve(&mut [&mut runner], &cfg, &load, &mut no_inputs, "fake").unwrap();
        assert_eq!(r.issued, 40);
        assert_eq!(r.completed, 40);
        assert_eq!(r.shed, 0);
        // 6 clients with zero think time never batch above the client count.
        assert!(runner.batches.iter().all(|&s| s <= 6));
    }

    #[test]
    fn tiny_queue_sheds_under_overload() {
        let mut runner = FakeRunner::new(2, 100_000_000.0);
        let cfg = ServeConfig { queue_cap: 2, ..ServeConfig::new(2) };
        let load = LoadModel::Open { rps: 500.0, duration_nanos: 500_000_000 };
        let r = serve(&mut [&mut runner], &cfg, &load, &mut no_inputs, "fake").unwrap();
        assert!(r.shed > 0, "queue_cap=2 under 500 rps must shed");
        assert_eq!(r.issued, r.completed + r.shed + r.timed_out);
        assert_eq!(r.shed_reasons.total(), r.shed, "every shed carries a reason");
        assert_eq!(r.shed_reasons.queue_full, r.shed, "admission sheds are queue-full");
    }

    #[test]
    fn deadlines_time_out_queued_work() {
        // One slow replica; requests queued behind a 100 ms batch blow a
        // 10 ms deadline before they can be dispatched.
        let mut runner = FakeRunner::new(1, 100_000_000.0);
        let cfg = ServeConfig {
            deadline_nanos: Some(10_000_000),
            queue_cap: 64,
            ..ServeConfig::new(1)
        };
        let load = LoadModel::Open { rps: 100.0, duration_nanos: 1_000_000_000 };
        let r = serve(&mut [&mut runner], &cfg, &load, &mut no_inputs, "fake").unwrap();
        assert!(r.timed_out > 0, "expected deadline expirations");
        assert_eq!(r.issued, r.completed + r.shed + r.timed_out);
        // In-flight work is never cancelled: every dispatched batch completes.
        assert_eq!(r.completed, runner.batches.iter().sum::<usize>() as u64);
    }

    #[test]
    fn two_replicas_share_the_queue() {
        let mut a = FakeRunner::new(4, 20_000_000.0);
        let mut b = FakeRunner::new(4, 20_000_000.0);
        let cfg = ServeConfig { queue_cap: 64, ..ServeConfig::new(4) };
        let load = LoadModel::Open { rps: 400.0, duration_nanos: 300_000_000 };
        let r = serve(&mut [&mut a, &mut b], &cfg, &load, &mut no_inputs, "fake").unwrap();
        assert_eq!(r.replicas, 2);
        assert!(!a.batches.is_empty() && !b.batches.is_empty(), "both replicas must serve");
        assert_eq!(
            r.completed,
            (a.batches.iter().sum::<usize>() + b.batches.iter().sum::<usize>()) as u64
        );
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let run = || {
            let mut runner = FakeRunner::new(4, 5_000_000.0);
            let cfg = ServeConfig::new(4);
            let load = LoadModel::Open { rps: 300.0, duration_nanos: 400_000_000 };
            serve(&mut [&mut runner], &cfg, &load, &mut no_inputs, "fake").unwrap().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crashed_batch_retries_on_a_healthy_replica() {
        use crate::chaos::FaultyRunner;
        use fathom_dataflow::{FaultAction, FaultPlan, FaultSite};
        use std::sync::Arc;

        let plan = Arc::new(
            FaultPlan::new(7).with(FaultSite::ServeBatch { replica: 0 }, 0, FaultAction::Crash),
        );
        let mut a = FaultyRunner::new(FakeRunner::new(4, 5_000_000.0), plan.clone(), 0);
        let mut b = FakeRunner::new(4, 5_000_000.0);
        let cfg = ServeConfig::new(4);
        let load = LoadModel::Closed { clients: 4, requests: 24 };
        let r = serve(&mut [&mut a, &mut b], &cfg, &load, &mut no_inputs, "fake").unwrap();
        // One crash, every rider retried within budget: nothing is lost.
        assert_eq!(r.issued, 24);
        assert_eq!(r.completed, 24, "retried requests must complete: {:?}", r.recovery);
        assert_eq!(r.issued, r.completed + r.shed + r.timed_out);
        assert_eq!(r.recovery.crashes, 1);
        assert!(r.recovery.retried >= 1);
        assert_eq!(r.recovery.quarantines, 1);
        assert_eq!(r.recovery.recoveries, 1, "quarantine must expire into recovery");
        assert_eq!(r.recovery.dropped, 0);
        assert_eq!(plan.fired_count(), 1, "the injected crash must have fired");
    }

    #[test]
    fn all_replicas_dead_sheds_everything_and_terminates() {
        use crate::chaos::FaultyRunner;
        use fathom_dataflow::{FaultAction, FaultPlan, FaultSite};
        use std::sync::Arc;

        // Crash every dispatch: initial failure plus both restart
        // attempts (max_restarts = 2) retire the only replica.
        let mut plan = FaultPlan::new(3);
        for hit in 0..8 {
            plan = plan.with(FaultSite::ServeBatch { replica: 0 }, hit, FaultAction::Crash);
        }
        let mut only = FaultyRunner::new(FakeRunner::new(4, 5_000_000.0), Arc::new(plan), 0);
        let cfg = ServeConfig::new(4);
        let load = LoadModel::Closed { clients: 4, requests: 16 };
        let r = serve(&mut [&mut only], &cfg, &load, &mut no_inputs, "fake").unwrap();
        assert_eq!(r.completed, 0, "a dead fleet completes nothing");
        assert_eq!(r.issued, r.completed + r.shed + r.timed_out, "conservation holds");
        assert_eq!(r.recovery.dead_replicas, 1);
        assert!(r.recovery.dropped > 0, "retry-exhausted requests are dropped");
        assert_eq!(r.shed, r.issued, "every issued request is reported shed");
        assert_eq!(r.shed_reasons.total(), r.shed);
        assert_eq!(
            r.shed_reasons.replica_loss, r.shed,
            "dead-fleet sheds are all attributed to replica loss"
        );
    }

    #[test]
    fn stalled_replica_inflates_service_time_deterministically() {
        use crate::chaos::FaultyRunner;
        use fathom_dataflow::{FaultAction, FaultPlan, FaultSite};
        use std::sync::Arc;

        let plan = Arc::new(FaultPlan::new(1).with(
            FaultSite::ServeBatch { replica: 0 },
            0,
            FaultAction::Stall { nanos: 40_000_000 },
        ));
        let mut runner = FaultyRunner::new(FakeRunner::new(4, 5_000_000.0), plan, 0);
        let cfg = ServeConfig::new(4);
        let load = LoadModel::Closed { clients: 2, requests: 2 };
        let r = serve(&mut [&mut runner], &cfg, &load, &mut no_inputs, "fake").unwrap();
        assert_eq!(r.completed, 2);
        assert_eq!(r.batches[0].service_nanos, 45_000_000.0, "stall adds to service time");
    }

    #[test]
    fn same_fault_plan_seed_reproduces_the_identical_report() {
        use crate::chaos::FaultyRunner;
        use fathom_dataflow::FaultPlan;
        use std::sync::Arc;

        let run = || {
            let plan = Arc::new(
                FaultPlan::parse("replica0@2=crash;replica1@5=stall:30000000", 9).unwrap(),
            );
            let mut a = FaultyRunner::new(FakeRunner::new(4, 5_000_000.0), plan.clone(), 0);
            let mut b = FaultyRunner::new(FakeRunner::new(4, 5_000_000.0), plan, 1);
            let cfg = ServeConfig { queue_cap: 64, ..ServeConfig::new(4) };
            let load = LoadModel::Open { rps: 400.0, duration_nanos: 300_000_000 };
            serve(&mut [&mut a, &mut b], &cfg, &load, &mut no_inputs, "fake").unwrap().to_json()
        };
        let first = run();
        assert!(first.contains("\"recovery\""), "faulted run must report recovery counters");
        assert_eq!(first, run());
    }

    #[test]
    fn empty_replica_set_is_unservable_not_a_panic() {
        let cfg = ServeConfig::new(4);
        let load = LoadModel::Closed { clients: 1, requests: 1 };
        let err = serve(&mut [], &cfg, &load, &mut no_inputs, "fake").unwrap_err();
        assert!(matches!(err, ServeError::Unservable(_)), "got {err}");
    }

    #[test]
    fn drain_flushes_partial_batches() {
        // 3 requests, max_batch 4, huge max_delay: once arrivals are
        // exhausted the engine must not wait out the delay timer.
        let mut runner = FakeRunner::new(4, 1_000_000.0);
        let cfg = ServeConfig { max_delay_nanos: u64::MAX / 2, ..ServeConfig::new(4) };
        let load = LoadModel::Closed { clients: 3, requests: 3 };
        let r = serve(&mut [&mut runner], &cfg, &load, &mut no_inputs, "fake").unwrap();
        assert_eq!(r.completed, 3);
        assert_eq!(runner.batches, vec![3]);
    }
}
