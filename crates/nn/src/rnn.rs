//! Recurrent layers: LSTM stacks and bidirectional RNNs.
//!
//! Recurrence is realized by *unrolling*: one set of shared weights, one
//! subgraph per timestep — the standard static-graph formulation used by
//! TensorFlow-era models. The elementwise gate arithmetic this produces is
//! what dominates the `seq2seq` profile ("the elementwise multiplications
//! in seq2seq are a result of the LSTM neurons", paper §V-C).

use fathom_dataflow::{Graph, NodeId};

use crate::init::{Init, Params};
use crate::layers::Activation;

/// Shared weights of one LSTM layer.
#[derive(Debug, Clone, Copy)]
pub struct LstmCell {
    /// Combined input+recurrent kernel, `[(input_dim + hidden), 4*hidden]`.
    pub kernel: NodeId,
    /// Gate bias, `[4*hidden]`.
    pub bias: NodeId,
    hidden: usize,
}

impl LstmCell {
    /// Creates the shared parameters for a cell mapping `input_dim`
    /// features to `hidden` units.
    pub fn new(g: &mut Graph, p: &mut Params, name: &str, input_dim: usize, hidden: usize) -> Self {
        let kernel = p.variable(
            g,
            format!("{name}/kernel"),
            [input_dim + hidden, 4 * hidden],
            Init::Xavier,
        );
        // Forget-gate bias of 1.0 (standard trick for gradient flow).
        let mut bias_init = fathom_tensor::Tensor::zeros([4 * hidden]);
        for i in hidden..2 * hidden {
            bias_init.data_mut()[i] = 1.0;
        }
        let bias = g.variable(format!("{name}/bias"), bias_init);
        // Register the bias as trainable through Params' bookkeeping.
        // (Params::variable would re-initialize, so push manually via a
        // zero-cost trick: create and immediately record.)
        p.record(bias);
        LstmCell { kernel, bias, hidden }
    }

    /// Hidden width of the cell.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Applies one step: `(h, c) -> (h', c')` for input `x` of shape
    /// `[batch, input_dim]`.
    pub fn step(&self, g: &mut Graph, x: NodeId, h: NodeId, c: NodeId) -> (NodeId, NodeId) {
        let n = self.hidden;
        let xh = g.concat(&[x, h], 1);
        let z0 = g.matmul(xh, self.kernel);
        let z = g.add_op(z0, self.bias);
        let i_gate = g.slice(z, 1, 0, n);
        let f_gate = g.slice(z, 1, n, n);
        let o_gate = g.slice(z, 1, 2 * n, n);
        let c_cand = g.slice(z, 1, 3 * n, n);
        let i = g.sigmoid(i_gate);
        let f = g.sigmoid(f_gate);
        let o = g.sigmoid(o_gate);
        let cand = g.tanh(c_cand);
        let fc = g.mul(f, c);
        let ic = g.mul(i, cand);
        let c_new = g.add_op(fc, ic);
        let c_act = g.tanh(c_new);
        let h_new = g.mul(o, c_act);
        (h_new, c_new)
    }
}

/// Unrolls a multi-layer LSTM over a sequence of `[batch, dim]` inputs,
/// returning the top layer's output at every timestep.
///
/// # Panics
///
/// Panics if `inputs` is empty or `layers == 0`.
pub fn lstm_stack(
    g: &mut Graph,
    p: &mut Params,
    name: &str,
    inputs: &[NodeId],
    hidden: usize,
    layers: usize,
) -> Vec<NodeId> {
    assert!(!inputs.is_empty(), "lstm_stack needs at least one timestep");
    assert!(layers > 0, "lstm_stack needs at least one layer");
    let batch = g.shape(inputs[0]).dim(0);
    let mut sequence: Vec<NodeId> = inputs.to_vec();
    for layer in 0..layers {
        let input_dim = g.shape(sequence[0]).dim(1);
        let cell = LstmCell::new(g, p, &format!("{name}/layer{layer}"), input_dim, hidden);
        let mut h = g.constant(fathom_tensor::Tensor::zeros([batch, hidden]));
        let mut c = g.constant(fathom_tensor::Tensor::zeros([batch, hidden]));
        let mut outputs = Vec::with_capacity(sequence.len());
        for &x in &sequence {
            let (h2, c2) = cell.step(g, x, h, c);
            h = h2;
            c = c2;
            outputs.push(h);
        }
        sequence = outputs;
    }
    sequence
}

/// A simple (non-gated) recurrent layer run in both directions with
/// summed outputs — the recurrent layer of Deep Speech, which pointedly
/// avoids LSTM circuits ("we do not use Long-Short-Term-Memory circuits").
///
/// Inputs and outputs are per-timestep `[batch, dim]` nodes.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn bidirectional_rnn(
    g: &mut Graph,
    p: &mut Params,
    name: &str,
    inputs: &[NodeId],
    hidden: usize,
) -> Vec<NodeId> {
    assert!(!inputs.is_empty(), "bidirectional_rnn needs at least one timestep");
    let batch = g.shape(inputs[0]).dim(0);
    let input_dim = g.shape(inputs[0]).dim(1);
    let run = |g: &mut Graph, p: &mut Params, dir: &str, seq: Vec<NodeId>| -> Vec<NodeId> {
        let wx = p.variable(g, format!("{name}/{dir}/wx"), [input_dim, hidden], Init::Xavier);
        let wh = p.variable(g, format!("{name}/{dir}/wh"), [hidden, hidden], Init::Xavier);
        let b = p.variable(g, format!("{name}/{dir}/b"), [hidden], Init::Zeros);
        let mut h = g.constant(fathom_tensor::Tensor::zeros([batch, hidden]));
        let mut out = Vec::with_capacity(seq.len());
        for &x in &seq {
            let xw = g.matmul(x, wx);
            let hw = g.matmul(h, wh);
            let s0 = g.add_op(xw, hw);
            let s = g.add_op(s0, b);
            h = Activation::Relu.apply(g, s);
            out.push(h);
        }
        out
    };
    let forward = run(g, p, "fw", inputs.to_vec());
    let mut reversed: Vec<NodeId> = inputs.to_vec();
    reversed.reverse();
    let mut backward = run(g, p, "bw", reversed);
    backward.reverse();
    forward
        .into_iter()
        .zip(backward)
        .map(|(f, b)| g.add_op(f, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::{grad::gradients, Device, Session};
    use fathom_tensor::{Rng, Shape, Tensor};

    #[test]
    fn lstm_step_shapes() {
        let mut g = Graph::new();
        let mut p = Params::seeded(1);
        let cell = LstmCell::new(&mut g, &mut p, "cell", 6, 4);
        let x = g.placeholder("x", Shape::matrix(3, 6));
        let h0 = g.constant(Tensor::zeros([3, 4]));
        let c0 = g.constant(Tensor::zeros([3, 4]));
        let (h1, c1) = cell.step(&mut g, x, h0, c0);
        assert_eq!(g.shape(h1).dims(), &[3, 4]);
        assert_eq!(g.shape(c1).dims(), &[3, 4]);
        assert_eq!(cell.hidden(), 4);
    }

    #[test]
    fn lstm_outputs_bounded_by_tanh() {
        let mut g = Graph::new();
        let mut p = Params::seeded(2);
        let x = g.placeholder("x", Shape::matrix(2, 3));
        let outs = lstm_stack(&mut g, &mut p, "lstm", &[x, x, x], 5, 2);
        assert_eq!(outs.len(), 3);
        let mut s = Session::new(g, Device::cpu(1));
        let mut rng = Rng::seeded(2);
        let val = Tensor::randn([2, 3], 0.0, 2.0, &mut rng);
        let out = s.run1(outs[2], &[(x, val)]).unwrap();
        assert!(out.max() <= 1.0 && out.min() >= -1.0);
    }

    #[test]
    fn lstm_state_carries_information() {
        // Feeding different first inputs must change the last output.
        let mut g = Graph::new();
        let mut p = Params::seeded(3);
        let x0 = g.placeholder("x0", Shape::matrix(1, 2));
        let x1 = g.placeholder("x1", Shape::matrix(1, 2));
        let outs = lstm_stack(&mut g, &mut p, "lstm", &[x0, x1], 4, 1);
        let mut s = Session::new(g, Device::cpu(1));
        let fixed = Tensor::ones([1, 2]);
        let a = s
            .run1(outs[1], &[(x0, Tensor::zeros([1, 2])), (x1, fixed.clone())])
            .unwrap();
        let b = s
            .run1(outs[1], &[(x0, Tensor::filled([1, 2], 5.0)), (x1, fixed)])
            .unwrap();
        assert!(a.max_abs_diff(&b) > 1e-4, "state was ignored");
    }

    #[test]
    fn lstm_gradients_flow_to_all_parameters() {
        let mut g = Graph::new();
        let mut p = Params::seeded(4);
        let x = g.placeholder("x", Shape::matrix(2, 3));
        let outs = lstm_stack(&mut g, &mut p, "lstm", &[x, x], 4, 2);
        let last = *outs.last().unwrap();
        let sq = g.square(last);
        let loss = g.sum_all(sq);
        let grads = gradients(&mut g, loss, p.trainable());
        let mut s = Session::new(g, Device::cpu(1));
        let mut rng = Rng::seeded(4);
        let val = Tensor::randn([2, 3], 0.0, 1.0, &mut rng);
        for (i, &grad) in grads.iter().enumerate() {
            let d = s.run1(grad, &[(x, val.clone())]).unwrap();
            assert!(d.all_finite(), "grad {i} not finite");
            assert!(d.data().iter().any(|&v| v != 0.0), "grad {i} is all zero");
        }
    }

    #[test]
    fn bidirectional_rnn_sees_the_future() {
        // The output at t=0 must depend on the input at t=1 (through the
        // backward pass) — that's the "bidirectional" in Deep Speech.
        let mut g = Graph::new();
        let mut p = Params::seeded(5);
        let x0 = g.placeholder("x0", Shape::matrix(1, 2));
        let x1 = g.placeholder("x1", Shape::matrix(1, 2));
        let outs = bidirectional_rnn(&mut g, &mut p, "birnn", &[x0, x1], 4);
        let mut s = Session::new(g, Device::cpu(1));
        let fixed = Tensor::ones([1, 2]);
        let a = s
            .run1(outs[0], &[(x0, fixed.clone()), (x1, Tensor::zeros([1, 2]))])
            .unwrap();
        let b = s
            .run1(outs[0], &[(x0, fixed), (x1, Tensor::filled([1, 2], 3.0))])
            .unwrap();
        assert!(a.max_abs_diff(&b) > 1e-5, "future input was ignored");
    }

    #[test]
    fn stack_reuses_weights_across_time() {
        let mut g = Graph::new();
        let mut p = Params::seeded(6);
        let x = g.placeholder("x", Shape::matrix(1, 3));
        let before = p.trainable().len();
        let _ = lstm_stack(&mut g, &mut p, "lstm", &[x, x, x, x], 4, 1);
        // One layer = kernel + bias, regardless of sequence length.
        assert_eq!(p.trainable().len() - before, 2);
    }
}
