//! Service-level-objective classes for cluster serving.
//!
//! Every request entering the cluster front door carries an [`SloClass`]
//! that decides two things: its *deadline* (how stale a response may be
//! before it is worthless) and its *priority* (who is shed first when
//! the fleet cannot keep up). The policy is strict: under overload the
//! admission controller sheds `Batch` before `Standard` before
//! `Interactive`, so paying the overload cost falls on the traffic that
//! can tolerate it — the regime the Alibaba-PAI characterization
//! describes for multi-tenant inference fleets.

use fathom_tensor::Rng;

/// A request's service class, in descending urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// User-facing traffic: tight deadline, never shed while anything
    /// lower-priority can be shed instead.
    Interactive,
    /// Default traffic: looser deadline, sheds before `Interactive`.
    Standard,
    /// Offline/bulk traffic: typically no deadline, first to shed.
    Batch,
}

impl SloClass {
    /// Every class, most urgent first (also the report ordering).
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Standard, SloClass::Batch];

    /// Number of classes.
    pub const COUNT: usize = 3;

    /// Display name, lowercase.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }

    /// Dense index into per-class arrays (`ALL[idx] == self`).
    pub fn idx(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// Scheduling priority: larger serves (and survives) first.
    pub fn priority(self) -> u8 {
        match self {
            SloClass::Interactive => 2,
            SloClass::Standard => 1,
            SloClass::Batch => 0,
        }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class deadlines, indexed by [`SloClass::idx`]. `None` means the
/// class never times out (the usual choice for `Batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// Deadline per class in virtual nanoseconds, `ALL` order.
    pub deadline_nanos: [Option<u64>; SloClass::COUNT],
}

impl SloPolicy {
    /// 50 ms interactive, 250 ms standard, no batch deadline.
    pub fn default_serving() -> Self {
        SloPolicy { deadline_nanos: [Some(50_000_000), Some(250_000_000), None] }
    }

    /// The deadline for one class.
    pub fn deadline(&self, class: SloClass) -> Option<u64> {
        self.deadline_nanos[class.idx()]
    }
}

/// A traffic mix over the three classes, as relative weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloMix {
    /// Relative weight per class, `ALL` order. Must sum to a positive
    /// value; they need not be normalized.
    pub weights: [f64; SloClass::COUNT],
}

impl SloMix {
    /// Half interactive, 30% standard, 20% batch — the headline mixed
    /// scenario in `BENCH_serve.json`.
    pub fn default_mix() -> Self {
        SloMix { weights: [0.5, 0.3, 0.2] }
    }

    /// A single-class mix (weight 1 on `class`).
    pub fn pure(class: SloClass) -> Self {
        let mut weights = [0.0; SloClass::COUNT];
        weights[class.idx()] = 1.0;
        SloMix { weights }
    }

    /// Parses `"50,30,20"` (interactive,standard,batch weights).
    ///
    /// # Errors
    ///
    /// Returns a message when the spec is not three non-negative numbers
    /// with a positive sum.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() != SloClass::COUNT {
            return Err(format!(
                "SLO mix needs {} comma-separated weights (interactive,standard,batch), got '{spec}'",
                SloClass::COUNT
            ));
        }
        let mut weights = [0.0; SloClass::COUNT];
        for (w, part) in weights.iter_mut().zip(&parts) {
            *w = part
                .trim()
                .parse::<f64>()
                .map_err(|_| format!("SLO mix weight '{part}' is not a number"))?;
            if !w.is_finite() || *w < 0.0 {
                return Err(format!("SLO mix weight '{part}' must be finite and non-negative"));
            }
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err("SLO mix weights must sum to a positive value".into());
        }
        Ok(SloMix { weights })
    }

    /// Draws one class from the mix using the shared request RNG, so a
    /// seeded run reproduces the identical class sequence.
    pub fn draw(&self, rng: &mut Rng) -> SloClass {
        let total: f64 = self.weights.iter().sum();
        let mut u = rng.uniform() as f64 * total;
        for class in SloClass::ALL {
            u -= self.weights[class.idx()];
            if u < 0.0 {
                return class;
            }
        }
        // Rounding at the top edge lands on the last class.
        SloClass::Batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_order_by_priority() {
        assert!(SloClass::Interactive.priority() > SloClass::Standard.priority());
        assert!(SloClass::Standard.priority() > SloClass::Batch.priority());
        for (i, class) in SloClass::ALL.iter().enumerate() {
            assert_eq!(class.idx(), i);
        }
    }

    #[test]
    fn mix_parses_and_rejects() {
        let m = SloMix::parse("50,30,20").expect("parses");
        assert_eq!(m.weights, [50.0, 30.0, 20.0]);
        assert!(SloMix::parse("1,2").is_err());
        assert!(SloMix::parse("a,b,c").is_err());
        assert!(SloMix::parse("-1,2,3").is_err());
        assert!(SloMix::parse("0,0,0").is_err());
    }

    #[test]
    fn draw_is_seed_deterministic_and_respects_weights() {
        let mix = SloMix::parse("80,20,0").expect("parses");
        let draw_n = |seed: u64| {
            let mut rng = Rng::seeded(seed);
            let mut counts = [0u32; 3];
            for _ in 0..1000 {
                counts[mix.draw(&mut rng).idx()] += 1;
            }
            counts
        };
        let a = draw_n(7);
        assert_eq!(a, draw_n(7), "same seed, same class sequence");
        assert_eq!(a[2], 0, "zero-weight class never drawn");
        assert!(a[0] > a[1], "80/20 mix favors interactive: {a:?}");
    }

    #[test]
    fn pure_mix_draws_only_its_class() {
        let mix = SloMix::pure(SloClass::Batch);
        let mut rng = Rng::seeded(3);
        for _ in 0..100 {
            assert_eq!(mix.draw(&mut rng), SloClass::Batch);
        }
    }

    #[test]
    fn default_policy_deadlines() {
        let p = SloPolicy::default_serving();
        assert_eq!(p.deadline(SloClass::Interactive), Some(50_000_000));
        assert_eq!(p.deadline(SloClass::Batch), None);
    }
}
