//! Size-bucketed recycling of tensor backing buffers.
//!
//! A training step allocates and frees the same set of intermediate
//! shapes every iteration, so the allocator sees a perfectly periodic
//! churn of large short-lived `Vec<f32>`s. A [`BufferPool`] breaks that
//! cycle: the executor returns freed intermediates with [`BufferPool::give`]
//! and subsequent [`Tensor::zeros`]/[`Tensor::filled`]-style allocations
//! draw from the pool instead of the system allocator.
//!
//! The pool is *installed* per thread ([`BufferPool::install`]); while a
//! guard is alive, every constant-fill tensor constructor on that thread
//! transparently draws from the pool. Recycled buffers are re-filled with
//! the requested value before use, so recycling never changes computed
//! results — only where the bytes live.
//!
//! Buckets are keyed by exact element count. Workloads execute a fixed
//! graph, so sizes repeat exactly; near-miss reuse (handing a 1000-element
//! request a 1024-element buffer) would silently change `capacity` and
//! complicate accounting for no measured benefit.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::tensor::Tensor;

/// Maximum buffers retained per size bucket; beyond this, `give` lets the
/// buffer drop. Bounds worst-case retention on graphs with many
/// same-shaped intermediates that are live simultaneously.
const BUCKET_CAP: usize = 16;

/// Buffers below this element count are not worth pooling: a small `Vec`
/// costs less to allocate than a `HashMap` probe under a lock.
const MIN_POOLED_LEN: usize = 256;

/// Counters describing how a [`BufferPool`] has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecycleStats {
    /// Allocations served from the pool.
    pub hits: u64,
    /// Pool-eligible allocations that fell through to the allocator.
    pub misses: u64,
    /// Buffers returned with [`BufferPool::give`] (whether or not they
    /// were retained).
    pub returned: u64,
}

impl RecycleStats {
    /// Fraction of pool-eligible allocations served from the pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe free list of tensor backing buffers, bucketed by exact
/// element count.
#[derive(Debug, Default)]
pub struct BufferPool {
    buckets: Mutex<HashMap<usize, Vec<Vec<f32>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    returned: AtomicU64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Takes a buffer of exactly `len` elements, if one is pooled.
    /// Contents are unspecified; callers must overwrite them.
    pub fn take(&self, len: usize) -> Option<Vec<f32>> {
        if len < MIN_POOLED_LEN {
            return None;
        }
        let taken = self.buckets.lock().expect("buffer pool lock").get_mut(&len)?.pop();
        match taken {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(buf)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns a dead tensor's buffer to the pool (or drops it if the
    /// bucket is full or the buffer is too small to pool).
    pub fn give(&self, tensor: Tensor) {
        self.give_vec(tensor.into_vec());
    }

    /// Returns a raw buffer to the pool (or drops it if the bucket is
    /// full or the buffer is too small to pool).
    pub fn give_vec(&self, buf: Vec<f32>) {
        if buf.len() < MIN_POOLED_LEN {
            return;
        }
        self.returned.fetch_add(1, Ordering::Relaxed);
        let mut buckets = self.buckets.lock().expect("buffer pool lock");
        let bucket = buckets.entry(buf.len()).or_default();
        if bucket.len() < BUCKET_CAP {
            bucket.push(buf);
        }
    }

    /// Number of buffers currently held, across all buckets.
    pub fn buffers_held(&self) -> usize {
        self.buckets.lock().expect("buffer pool lock").values().map(Vec::len).sum()
    }

    /// Bytes currently held, across all buckets.
    pub fn bytes_held(&self) -> usize {
        self.buckets
            .lock()
            .expect("buffer pool lock")
            .values()
            .flat_map(|bucket| bucket.iter().map(|buf| buf.len() * 4))
            .sum()
    }

    /// Usage counters since the pool was created.
    pub fn stats(&self) -> RecycleStats {
        RecycleStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
        }
    }

    /// Drops every held buffer (counters are kept).
    pub fn clear(&self) {
        self.buckets.lock().expect("buffer pool lock").clear();
    }

    /// Installs `pool` as the calling thread's allocation source for
    /// constant-fill tensor constructors. The previous installation (if
    /// any) is restored when the returned guard drops, so installs nest.
    pub fn install(pool: &Arc<BufferPool>) -> InstallGuard {
        let previous = ACTIVE.with(|active| active.replace(Some(Arc::clone(pool))));
        InstallGuard { previous }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<BufferPool>>> = const { RefCell::new(None) };
}

/// Restores the thread's previous pool installation on drop.
#[derive(Debug)]
pub struct InstallGuard {
    previous: Option<Arc<BufferPool>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ACTIVE.with(|active| {
            *active.borrow_mut() = self.previous.take();
        });
    }
}

/// Allocates a buffer of `len` copies of `value`, drawing from the
/// thread's installed pool when possible. Used by `Tensor::zeros`,
/// `Tensor::filled`, and `Tensor::ones`.
pub(crate) fn alloc_filled(len: usize, value: f32) -> Vec<f32> {
    let pooled = ACTIVE.with(|active| {
        active.borrow().as_ref().and_then(|pool| pool.take(len))
    });
    match pooled {
        Some(mut buf) => {
            buf.fill(value);
            buf
        }
        None => vec![value; len],
    }
}

/// Takes a kernel-scratch buffer of exactly `len` elements, drawing from
/// the thread's installed pool when possible. **Contents are
/// unspecified** — pooled buffers carry stale data; callers must
/// overwrite every element before reading. Fresh allocations are zeroed.
///
/// Pair with [`give_buffer`] so steady-state kernel scratch (GEMM packing
/// panels, im2col patch matrices) costs no allocation.
pub fn take_buffer(len: usize) -> Vec<f32> {
    let pooled = ACTIVE.with(|active| active.borrow().as_ref().and_then(|pool| pool.take(len)));
    pooled.unwrap_or_else(|| vec![0.0; len])
}

/// Returns a scratch buffer to the thread's installed pool. Drops it when
/// no pool is installed.
pub fn give_buffer(buf: Vec<f32>) {
    ACTIVE.with(|active| {
        if let Some(pool) = active.borrow().as_ref() {
            pool.give_vec(buf);
        }
    });
}

/// Recycles a dead intermediate tensor's backing buffer into the thread's
/// installed pool (drops it when none is installed). Kernels use this for
/// scratch tensors that never escape the call.
pub fn reclaim(tensor: Tensor) {
    give_buffer(tensor.into_vec());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(n: usize) -> Tensor {
        Tensor::filled([n], 7.0)
    }

    #[test]
    fn take_returns_given_buffer() {
        let pool = BufferPool::new();
        pool.give(big(1000));
        assert_eq!(pool.buffers_held(), 1);
        let buf = pool.take(1000).expect("bucket has a buffer");
        assert_eq!(buf.len(), 1000);
        assert_eq!(pool.buffers_held(), 0);
        assert!(pool.take(1000).is_none(), "bucket drained");
        let s = pool.stats();
        assert_eq!((s.hits, s.returned), (1, 1));
        assert!(s.misses >= 1);
    }

    #[test]
    fn exact_size_match_only() {
        let pool = BufferPool::new();
        pool.give(big(1024));
        assert!(pool.take(1000).is_none());
        assert!(pool.take(1024).is_some());
    }

    #[test]
    fn small_buffers_bypass_the_pool() {
        let pool = BufferPool::new();
        pool.give(big(MIN_POOLED_LEN - 1));
        assert_eq!(pool.buffers_held(), 0);
        assert_eq!(pool.stats().returned, 0);
        assert!(pool.take(MIN_POOLED_LEN - 1).is_none());
        assert_eq!(pool.stats().misses, 0, "small takes are not counted as misses");
    }

    #[test]
    fn bucket_is_capped() {
        let pool = BufferPool::new();
        for _ in 0..BUCKET_CAP + 5 {
            pool.give(big(512));
        }
        assert_eq!(pool.buffers_held(), BUCKET_CAP);
        assert_eq!(pool.stats().returned, (BUCKET_CAP + 5) as u64);
    }

    #[test]
    fn installed_pool_feeds_zeros_and_restores_on_drop() {
        let pool = Arc::new(BufferPool::new());
        pool.give(big(4096));
        {
            let _guard = BufferPool::install(&pool);
            let t = Tensor::zeros([4096]);
            assert!(t.data().iter().all(|&v| v == 0.0), "recycled buffer must be re-filled");
            assert_eq!(pool.stats().hits, 1);
        }
        // Guard dropped: allocations no longer touch the pool.
        let _t = Tensor::zeros([4096]);
        assert_eq!(pool.stats().hits + pool.stats().misses, 1);
    }

    #[test]
    fn installs_nest() {
        let outer = Arc::new(BufferPool::new());
        let inner = Arc::new(BufferPool::new());
        outer.give(big(2048));
        inner.give(big(2048));
        let _outer_guard = BufferPool::install(&outer);
        {
            let _inner_guard = BufferPool::install(&inner);
            let _t = Tensor::ones([2048]);
            assert_eq!(inner.stats().hits, 1, "inner pool shadows outer");
            assert_eq!(outer.stats().hits, 0);
        }
        let _t = Tensor::ones([2048]);
        assert_eq!(outer.stats().hits, 1, "outer pool restored");
    }

    #[test]
    fn hit_rate_is_sane() {
        let pool = BufferPool::new();
        assert_eq!(pool.stats().hit_rate(), 0.0);
        pool.give(big(512));
        let _ = pool.take(512);
        let _ = pool.take(512);
        let s = pool.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
