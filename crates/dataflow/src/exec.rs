//! The session: schedules and executes dataflow graphs.
//!
//! Operations are "the smallest schedulable unit" (paper §V-A). A
//! [`Session`] plans the fetched subgraph once (topological order,
//! per-node liveness, dependency counts, per-op widths, and a static
//! arena plan) and then executes it with one of two executors:
//!
//! * a **serial** walk in plan order, used when the device has a single
//!   inter-op worker or is a modeled (`SimCpu`/`SimGpu`) device, and
//! * a **work-stealing parallel** executor, used when the device
//!   advertises more than one inter-op worker
//!   ([`Device::cpu_inter_op`]): each op whose inputs become available
//!   is spawned as one task on the device's shared
//!   [`Runtime`](fathom_tensor::Runtime) — the *same* pool that executes
//!   intra-op kernel chunks, so there is no static split between
//!   inter-op and intra-op workers. Stateful ops (`Variable` reads,
//!   `Apply*` writes, RNG sampling) are chained in plan order and run
//!   only on the coordinating thread, so results are bitwise identical
//!   to the serial executor regardless of worker timing.
//!
//! At plan time the cost model decides, per op, whether to run **wide**
//! (the full intra-op width) or **co-scheduled** against independent
//! peers ([`crate::sched::chosen_width`]); both executors honor the same
//! per-op widths, which keeps them bitwise interchangeable. The plan
//! also compiles a **static arena**: per-size peak liveness over the
//! plan order prewarms the session's [`BufferPool`], so steady-state
//! steps perform zero heap allocations for planned tensors (the
//! [`Session::runtime_counters`] `allocations` field asserts this).
//! Both executors release intermediates eagerly at their last use; freed
//! buffers flow back to the arena via [`Tensor`]'s drop hook. When
//! tracing is enabled the session records one
//! [`crate::trace::TraceEvent`] per execution; inter-op overhead is kept
//! minimal — the `overhead_check` bench verifies the paper's "<1-2%
//! outside of operations" property.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel;
use fathom_tensor::kernels::conv as kconv;
use fathom_tensor::kernels::ctc as kctc;
use fathom_tensor::kernels::elementwise as kew;
use fathom_tensor::kernels::gemm as kgemm;
use fathom_tensor::kernels::im2col as kim2col;
use fathom_tensor::kernels::matmul as kmm;
use fathom_tensor::kernels::pool2d as kpool;
use fathom_tensor::kernels::quant::QuantizedGemm;
use fathom_tensor::kernels::reduce as kred;
use fathom_tensor::kernels::softmax as ksm;
use fathom_tensor::kernels::transform as ktf;
use fathom_tensor::{
    BufferPool, ExecPool, Latch, Precision, RecycleStats, Rng, Runtime, Tensor, DEFAULT_GRAIN,
};

use crate::cost;
use crate::device::Device;
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::graph::{Graph, Node, NodeId};
use crate::op::{GemmOp, OpKind};
use crate::optimize;
use crate::sched;
use crate::trace::{RunTrace, RuntimeCounters, TraceEvent};

/// Errors produced while running a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A placeholder in the fetched subgraph was not fed.
    MissingFeed(NodeId),
    /// A fed value's shape disagrees with the placeholder's declaration.
    FeedShape {
        /// The placeholder.
        node: NodeId,
        /// Explanation of the mismatch.
        msg: String,
    },
    /// A fetch or feed id does not belong to the session's graph.
    UnknownNode(NodeId),
    /// An `Apply*` op's first input is not a `Variable` node.
    NotAVariable(NodeId),
    /// A label tensor contained an invalid entry.
    BadLabels(String),
    /// A numeric guardrail tripped after the step executed; the step was
    /// rolled back (see [`Session::set_guardrail`]).
    GuardTripped(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingFeed(n) => write!(f, "placeholder {n} was not fed"),
            ExecError::FeedShape { node, msg } => write!(f, "bad feed for {node}: {msg}"),
            ExecError::UnknownNode(n) => write!(f, "node {n} does not belong to this session's graph"),
            ExecError::NotAVariable(n) => write!(f, "node {n} is not a variable"),
            ExecError::BadLabels(msg) => write!(f, "invalid labels: {msg}"),
            ExecError::GuardTripped(msg) => {
                write!(f, "guardrail tripped ({msg}); the step was rolled back")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A numeric watchdog inspected after every [`Session::run`], before the
/// step commits (see [`Session::set_guardrail`]).
///
/// Divergence in long training runs shows up as NaN/Inf losses or
/// exploding gradients; by the time a human notices, hours of compute are
/// gone. An armed guardrail turns that into a typed, recoverable error:
/// the offending step is rolled back via the undo journal (variables,
/// optimizer slots, RNG, and the run counter all rewind), so the caller
/// can retry, skip the batch, or back off the learning rate.
#[derive(Debug, Clone, Default)]
pub struct Guardrail {
    /// Per-node magnitude limits: trip when any element of the fetched
    /// value for the node exceeds the bound in absolute value.
    pub limits: Vec<(NodeId, f32)>,
    /// Trip when any fetched value contains a non-finite element.
    pub fetches_finite: bool,
    /// Trip when any variable mutated this run ends up non-finite.
    pub updates_finite: bool,
}

impl Guardrail {
    /// A guardrail that demands finite fetches and finite variable
    /// updates, with no magnitude limits.
    pub fn finite() -> Self {
        Guardrail { limits: Vec::new(), fetches_finite: true, updates_finite: true }
    }

    /// Adds a magnitude limit on a fetched node (e.g. the loss or a
    /// gradient norm).
    #[must_use]
    pub fn with_limit(mut self, node: NodeId, limit: f32) -> Self {
        self.limits.push((node, limit));
        self
    }
}

/// A cached execution plan: topological order, per-node liveness, and the
/// dependency structure the parallel executor counts down at run time.
///
/// `indegree`, `consumers`, `use_count`, and `serial` are indexed by plan
/// position; `last_use` and `pos_of` by graph node index.
#[derive(Debug)]
struct Plan {
    order: Vec<NodeId>,
    /// For each graph node index, the plan position of its last consumer
    /// (its own position if nothing consumes it; `usize::MAX` for fetched
    /// nodes, which must outlive the run).
    last_use: Vec<usize>,
    /// Graph node index -> plan position (`usize::MAX` if unplanned).
    pos_of: Vec<usize>,
    /// Unmet-dependency count per position: one per input occurrence plus
    /// one per serialization-chain edge.
    indegree: Vec<u32>,
    /// Positions to notify when the op at a position completes (dataflow
    /// edges plus serialization-chain edges; duplicates are fine because
    /// increments and decrements are symmetric).
    consumers: Vec<Vec<u32>>,
    /// Times each position's value is consumed: input occurrences plus
    /// fetch occurrences. Zero means the value dies at its own position.
    use_count: Vec<u32>,
    /// Whether the op at a position must run on the coordinating thread,
    /// in plan order (see [`OpKind::needs_serial`]).
    serial: Vec<bool>,
    /// Intra-op width per position, decided at plan time by the cost
    /// model ([`sched::chosen_width`]). Both executors dispatch each
    /// op's kernels at exactly this width, so serial and parallel runs
    /// stay bitwise interchangeable.
    widths: Vec<usize>,
    /// Ops whose width equals the device's full intra-op width.
    wide_ops: u64,
    /// Ops molded narrower so independent peers co-schedule.
    cosched_ops: u64,
}

/// Per-node activation ranges recorded by a calibration pass: graph node
/// index → per-k-channel max-abs of the GEMM's activation operand,
/// max-merged over every calibrated batch. A `BTreeMap` so iteration —
/// and therefore the checkpoint serialization of the ranges — is
/// deterministic.
pub type CalibrationRanges = std::collections::BTreeMap<u32, Vec<f32>>;

/// An inference-only int8 execution plan: one quantized GEMM per
/// eligible MatMul node, built by
/// [`Session::quantize_from_calibration`] from the graph's weights and
/// the calibrated activation ranges. Dispatch consults it before the
/// precision knob: a planned node runs `i8×i8→i32` with f32 dequant in
/// the writeback, everything else takes the session's usual path.
#[derive(Debug, Clone, Default)]
pub struct QuantPlan {
    /// Graph node index → quantized weights and scales.
    pub per_node: HashMap<u32, QuantizedGemm>,
}

/// Immutable per-run compute context threaded to every op dispatch: the
/// session's precision knob plus the quantized-inference plan, if any.
#[derive(Clone, Copy)]
struct ExecCtx<'a> {
    precision: Precision,
    quant: Option<&'a QuantPlan>,
}

/// How the planner assigns intra-op widths when the device co-schedules
/// ops ([`Device::cpu_inter_op`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WidthPolicy {
    /// Every op gets the device's full intra-op width — the legacy
    /// statically-partitioned behavior, kept as the `ablation_runtime`
    /// baseline.
    Static,
    /// The cost model molds each op's width to its work and to how many
    /// independent peers could run beside it (see
    /// [`sched::chosen_width`]).
    #[default]
    Moldable,
}

/// The mutable state touched by stateful ops: variables, optimizer slots,
/// and the random stream. Split out of [`Session`] so the executors can
/// borrow it independently of the graph and pools.
///
/// The undo journal makes a failed run recoverable: before an `Apply*`
/// op first mutates a variable or optimizer slot within a run, the prior
/// value is recorded; if the run errors (or an op panics), [`Session::run`]
/// replays the journal so the session lands back in exactly the state it
/// had when the failed run began.
#[derive(Debug)]
struct SessionState {
    variables: HashMap<NodeId, Tensor>,
    slots: HashMap<(NodeId, &'static str), Tensor>,
    rng: Rng,
    /// Pre-mutation variable values for the in-flight run.
    journal_vars: HashMap<NodeId, Tensor>,
    /// Pre-mutation optimizer-slot values for the in-flight run
    /// (`None` = the slot did not exist yet).
    journal_slots: HashMap<(NodeId, &'static str), Option<Tensor>>,
}

impl SessionState {
    /// Records a variable's value before its first mutation this run.
    fn journal_variable(&mut self, id: NodeId) {
        if !self.journal_vars.contains_key(&id) {
            if let Some(v) = self.variables.get(&id) {
                let v = v.clone();
                self.journal_vars.insert(id, v);
            }
        }
    }

    /// Records an optimizer slot's value before its first mutation this run.
    fn journal_slot(&mut self, key: (NodeId, &'static str)) {
        if !self.journal_slots.contains_key(&key) {
            let prior = self.slots.get(&key).cloned();
            self.journal_slots.insert(key, prior);
        }
    }

    /// Discards the journal after a successful run.
    fn commit(&mut self) {
        self.journal_vars.clear();
        self.journal_slots.clear();
    }

    /// Replays the journal after a failed run, restoring every mutated
    /// variable and slot to its pre-run value and the RNG to `rng`.
    fn rollback(&mut self, rng: Rng) {
        for (id, value) in self.journal_vars.drain() {
            self.variables.insert(id, value);
        }
        for (key, prior) in self.journal_slots.drain() {
            match prior {
                Some(value) => {
                    self.slots.insert(key, value);
                }
                None => {
                    self.slots.remove(&key);
                }
            }
        }
        self.rng = rng;
    }
}

/// Executes a [`Graph`] on a [`Device`], holding variable state, optimizer
/// slots, and the random stream.
///
/// # Examples
///
/// ```
/// use fathom_dataflow::{Device, Graph, Session};
/// use fathom_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new();
/// let x = g.placeholder("x", Shape::vector(3));
/// let two = g.constant(Tensor::scalar(2.0));
/// let y = g.mul(x, two);
/// let mut sess = Session::new(g, Device::cpu(1));
/// let out = sess.run(&[y], &[(x, Tensor::from(vec![1.0, 2.0, 3.0]))])?;
/// assert_eq!(out[0].data(), &[2.0, 4.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    graph: Graph,
    device: Device,
    pool: ExecPool,
    state: SessionState,
    /// Free list fed by the executors' eager releases and drained by
    /// constant-fill tensor constructors while a run is in flight.
    recycler: Arc<BufferPool>,
    step: u64,
    tracing: bool,
    /// Armed fault schedule; probed once per executed op when present.
    fault: Option<Arc<FaultPlan>>,
    /// Armed numeric watchdog; inspected after every run, pre-commit.
    guardrail: Option<Guardrail>,
    /// Runs aborted (and rolled back) by the guardrail.
    guard_trips: u64,
    /// One-shot NaN poison: the next run fetching this node has that
    /// fetch overwritten with NaNs (chaos-soak divergence injection).
    poison: Option<NodeId>,
    trace: RunTrace,
    plan_cache: HashMap<Vec<NodeId>, Arc<Plan>>,
    /// Per-node static cost estimates, filled lazily on first traced run
    /// so tracing adds minimal inter-op overhead.
    cost_cache: Vec<Option<cost::OpCost>>,
    /// Width-assignment policy for co-scheduling devices.
    width_policy: WidthPolicy,
    /// GEMM operand-panel precision for eligible ops (DESIGN.md §18).
    precision: Precision,
    /// Armed int8 inference plan; consulted before the precision knob.
    quant: Option<Arc<QuantPlan>>,
    /// Activation ranges accumulated by calibration runs (and restored
    /// from checkpoints), keyed by graph node index.
    calib: Option<CalibrationRanges>,
    /// While set, runs record activation ranges and force the serial
    /// executor (recording needs exclusive session state per op).
    calibrating: bool,
    /// Cumulative unified-runtime counters over committed runs.
    counters: RuntimeCounters,
    /// Recycler miss count at the last counter sample (delta base).
    last_misses: u64,
    /// Runtime steal count at the last counter sample (delta base).
    last_steals: u64,
}

impl Session {
    /// Creates a session, installing every variable's initial value.
    pub fn new(graph: Graph, device: Device) -> Self {
        Session::with_seed(graph, device, 0x5eed)
    }

    /// Creates a session with an explicit random seed for the sampling
    /// operations.
    pub fn with_seed(graph: Graph, device: Device, seed: u64) -> Self {
        let mut variables = HashMap::new();
        for (id, node) in graph.iter() {
            if let OpKind::Variable { init } = &node.kind {
                variables.insert(id, init.clone());
            }
        }
        let pool = device.pool();
        let last_steals = pool.runtime().map_or(0, |rt| rt.steal_count());
        Session {
            graph,
            device,
            pool,
            state: SessionState {
                variables,
                slots: HashMap::new(),
                rng: Rng::seeded(seed),
                journal_vars: HashMap::new(),
                journal_slots: HashMap::new(),
            },
            recycler: Arc::new(BufferPool::new()),
            step: 0,
            tracing: false,
            fault: None,
            guardrail: None,
            guard_trips: 0,
            poison: None,
            trace: RunTrace::new(),
            plan_cache: HashMap::new(),
            cost_cache: Vec::new(),
            width_policy: WidthPolicy::default(),
            precision: Precision::default(),
            quant: None,
            calib: None,
            calibrating: false,
            counters: RuntimeCounters::default(),
            last_misses: 0,
            last_steals,
        }
    }

    /// The graph this session executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The session's device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Switches devices (e.g. to sweep intra-op thread counts or inter-op
    /// worker counts). Variable state is preserved; cached plans are
    /// dropped because they bake in per-op widths for the old device.
    pub fn set_device(&mut self, device: Device) {
        self.pool = device.pool();
        self.last_steals = self.pool.runtime().map_or(0, |rt| rt.steal_count());
        self.device = device;
        self.plan_cache.clear();
    }

    /// Selects how the planner assigns per-op intra-op widths on
    /// co-scheduling devices (the `ablation_runtime` A/B lever). Cached
    /// plans are dropped because they bake in the old policy's widths.
    pub fn set_width_policy(&mut self, policy: WidthPolicy) {
        if self.width_policy != policy {
            self.width_policy = policy;
            self.plan_cache.clear();
        }
    }

    /// Cumulative unified-runtime counters (arena misses, steals, and
    /// wide/co-scheduled op decisions) over this session's committed
    /// runs.
    pub fn runtime_counters(&self) -> RuntimeCounters {
        self.counters
    }

    /// Selects the GEMM operand-panel precision. Under
    /// [`Precision::Bf16`], MatMul-family ops whose geometry the cost
    /// model deems flop/byte-bound ([`cost::bf16_gemm_eligible`]) pack
    /// their panels as bf16 and accumulate in f32; everything else is
    /// untouched. Cached plans are dropped because convolution lowering
    /// decisions are precision-sensitive.
    pub fn set_precision(&mut self, precision: Precision) {
        if self.precision != precision {
            self.precision = precision;
            self.plan_cache.clear();
        }
    }

    /// The session's GEMM panel precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Starts a calibration pass: until [`Session::finish_calibration`],
    /// every run records per-k-channel max-abs ranges of each eligible
    /// MatMul's activation operand (merged with any ranges already held,
    /// including checkpoint-restored ones). Calibration runs execute on
    /// the serial executor regardless of the device's inter-op width —
    /// recording mutates session state per op.
    pub fn begin_calibration(&mut self) {
        self.calibrating = true;
        if self.calib.is_none() {
            self.calib = Some(CalibrationRanges::new());
        }
    }

    /// Stops recording activation ranges and returns how many GEMM nodes
    /// have ranges (from this pass or restored earlier).
    pub fn finish_calibration(&mut self) -> usize {
        self.calibrating = false;
        self.calib.as_ref().map_or(0, |c| c.len())
    }

    /// The recorded (or restored) calibration ranges, if any.
    pub fn calibration_ranges(&self) -> Option<&CalibrationRanges> {
        self.calib.as_ref()
    }

    /// Installs calibration ranges captured elsewhere (checkpoint
    /// restore). Replaces any ranges currently held.
    pub fn set_calibration_ranges(&mut self, ranges: CalibrationRanges) {
        self.calib = Some(ranges);
    }

    /// Builds and arms the int8 inference plan from the graph's weights
    /// and the calibrated activation ranges: per-output-channel
    /// symmetric weight scales, one per-tensor activation scale (the max
    /// over the recorded channel ranges — a per-channel activation scale
    /// cannot be factored out of the i32 accumulation). Only MatMuls
    /// whose weight operand is a `Variable` or `Constant` quantize; a
    /// computed weight (attention-style) has no static tensor to
    /// quantize and keeps its float path. Returns the number of GEMMs
    /// quantized.
    ///
    /// # Errors
    ///
    /// Returns a description when no calibration ranges are held or no
    /// recorded node could be quantized.
    pub fn quantize_from_calibration(&mut self) -> Result<usize, String> {
        let ranges = self.calib.as_ref().ok_or("no calibration ranges recorded")?;
        let mut per_node = HashMap::new();
        for (&node_index, channel_max) in ranges {
            let id = NodeId(node_index);
            if id.index() >= self.graph.len() {
                continue;
            }
            let node = self.graph.node(id);
            let (transpose_b, weight_id) = match &node.kind {
                OpKind::MatMul { transpose_a: false, transpose_b } => {
                    (*transpose_b, node.inputs[1])
                }
                OpKind::GemmFused {
                    gemm: GemmOp::MatMul { transpose_a: false, transpose_b },
                    ..
                } => (*transpose_b, node.inputs[1]),
                _ => continue,
            };
            let weight = match &self.graph.node(weight_id).kind {
                // Quantize the *current* value, not the initializer.
                OpKind::Variable { .. } => match self.state.variables.get(&weight_id) {
                    Some(w) => w,
                    None => continue,
                },
                OpKind::Constant(w) => w,
                _ => continue,
            };
            if weight.shape().rank() != 2 {
                continue;
            }
            let (k, n) = if transpose_b {
                (weight.shape().dim(1), weight.shape().dim(0))
            } else {
                (weight.shape().dim(0), weight.shape().dim(1))
            };
            if channel_max.len() != k {
                continue;
            }
            let act_max = channel_max.iter().fold(0.0f32, |acc, &v| acc.max(v));
            per_node.insert(
                node_index,
                QuantizedGemm::from_weights(weight.data(), k, n, transpose_b, act_max),
            );
        }
        if per_node.is_empty() {
            return Err("calibration ranges matched no quantizable GEMM".to_string());
        }
        let count = per_node.len();
        self.quant = Some(Arc::new(QuantPlan { per_node }));
        Ok(count)
    }

    /// Drops the armed int8 plan; subsequent runs take the float paths.
    pub fn clear_quantization(&mut self) {
        self.quant = None;
    }

    /// Drops held calibration ranges along with any armed int8 plan —
    /// used before restoring a checkpoint so a stream without a
    /// calibration section yields an unquantized session rather than
    /// one quantized from stale ranges.
    pub fn clear_calibration(&mut self) {
        self.calib = None;
        self.quant = None;
    }

    /// The armed int8 inference plan, if any.
    pub fn quant_plan(&self) -> Option<&QuantPlan> {
        self.quant.as_deref()
    }

    /// Records the activation operand of an eligible GEMM node during a
    /// calibration run: per-k-channel max-abs, merged into the held
    /// ranges.
    fn record_calibration(&mut self, id: NodeId, values: &[Option<Tensor>]) {
        let node = self.graph.node(id);
        let act_id = match &node.kind {
            OpKind::MatMul { transpose_a: false, .. }
            | OpKind::GemmFused { gemm: GemmOp::MatMul { transpose_a: false, .. }, .. } => {
                node.inputs[0]
            }
            _ => return,
        };
        let Some(a) = values[act_id.index()].as_ref() else { return };
        if a.shape().rank() != 2 {
            return;
        }
        let k = a.shape().dim(1);
        if k == 0 {
            return;
        }
        let ranges = self.calib.get_or_insert_with(CalibrationRanges::new);
        let entry = ranges.entry(id.index() as u32).or_insert_with(|| vec![0.0; k]);
        if entry.len() != k {
            return;
        }
        for row in a.data().chunks_exact(k) {
            for (m, &v) in entry.iter_mut().zip(row) {
                *m = m.max(v.abs());
            }
        }
    }

    /// Starts recording a [`TraceEvent`] per executed op.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// Arms (or clears) a fault-injection plan. When set, every executed
    /// op probes [`FaultSite::ExecOp`]; a firing `Panic` aborts the run
    /// with an "injected fault" panic and a firing `PoisonNan` replaces
    /// the op's output with NaNs. Both paths exercise the same recovery
    /// machinery real kernel failures do.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault = plan;
    }

    /// Arms (or clears) a numeric [`Guardrail`]. While armed, every
    /// `run` is inspected after execution but *before* commit; a
    /// violation rolls the whole step back (variables, optimizer slots,
    /// RNG stream, and run counter) and returns
    /// [`ExecError::GuardTripped`], so a diverged step never taints the
    /// session.
    pub fn set_guardrail(&mut self, guardrail: Option<Guardrail>) {
        self.guardrail = guardrail;
    }

    /// The armed guardrail, if any.
    pub fn guardrail(&self) -> Option<&Guardrail> {
        self.guardrail.as_ref()
    }

    /// Number of runs aborted and rolled back by the guardrail.
    pub fn guard_trips(&self) -> u64 {
        self.guard_trips
    }

    /// Arms a one-shot divergence injection: the next `run` that fetches
    /// `node` has that fetched value overwritten with NaNs (state the run
    /// committed is untouched). The poison persists until a run actually
    /// fetches the node, then clears. Used by the chaos soak to provoke
    /// guardrail trips on demand.
    pub fn poison_next_fetch(&mut self, node: NodeId) {
        self.poison = Some(node);
    }

    /// First guardrail violation in this run's outputs, if any.
    fn guard_violation(&self, fetches: &[NodeId], out: &[Tensor]) -> Option<String> {
        let guard = self.guardrail.as_ref()?;
        for (&id, value) in fetches.iter().zip(out) {
            if guard.fetches_finite && value.data().iter().any(|v| !v.is_finite()) {
                return Some(format!("fetch {id} is non-finite"));
            }
            for &(watched, limit) in &guard.limits {
                if watched == id {
                    if let Some(&v) = value.data().iter().find(|v| v.abs() > limit) {
                        return Some(format!("fetch {id} value {v} exceeds limit {limit}"));
                    }
                }
            }
        }
        if guard.updates_finite {
            // The journal names exactly the variables this run mutated;
            // their post-update values are still staged (pre-commit).
            for id in self.state.journal_vars.keys() {
                if let Some(var) = self.state.variables.get(id) {
                    if var.data().iter().any(|v| !v.is_finite()) {
                        return Some(format!("variable {id} went non-finite"));
                    }
                }
            }
        }
        None
    }

    /// The raw state of the session's random stream, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.state.rng.state()
    }

    /// Restores a random stream captured with [`Session::rng_state`].
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.state.rng = Rng::from_state(state);
    }

    /// Overwrites the completed-`run` counter (checkpoint restore only —
    /// traced events and RNG-free reruns key off this value).
    pub fn set_run_counter(&mut self, step: u64) {
        self.step = step;
    }

    /// Every optimizer slot as `(apply node, slot name, value)`, sorted
    /// by `(node index, name)` so the iteration order — and therefore any
    /// serialization of it — is deterministic.
    pub fn optimizer_slots(&self) -> Vec<(NodeId, &'static str, &Tensor)> {
        let mut slots: Vec<(NodeId, &'static str, &Tensor)> =
            self.state.slots.iter().map(|(&(id, name), value)| (id, name, value)).collect();
        slots.sort_by(|a, b| (a.0.index(), a.1).cmp(&(b.0.index(), b.1)));
        slots
    }

    /// Drops every optimizer slot (checkpoint restore starts clean, then
    /// replays the checkpoint's slots one by one).
    pub fn clear_optimizer_slots(&mut self) {
        self.state.slots.clear();
    }

    /// Restores one optimizer slot captured by
    /// [`Session::optimizer_slots`]. The name must be one the executors
    /// use (`"momentum"`, `"ms"`, `"mom"`, `"t"`, `"m"`, `"v"`); the keys
    /// are interned so lookups during execution stay allocation-free.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when the node is out of range
    /// or the slot name is unknown.
    pub fn restore_optimizer_slot(
        &mut self,
        id: NodeId,
        name: &str,
        value: Tensor,
    ) -> Result<(), String> {
        if id.index() >= self.graph.len() {
            return Err(format!("slot node {id} does not belong to this graph"));
        }
        let interned: &'static str = match name {
            "momentum" => "momentum",
            "ms" => "ms",
            "mom" => "mom",
            "t" => "t",
            "m" => "m",
            "v" => "v",
            other => return Err(format!("unknown optimizer slot name {other:?}")),
        };
        self.state.slots.insert((id, interned), value);
        Ok(())
    }

    /// Scales the learning rate of every `Apply*` node by `factor` (the
    /// guardrail's LR-backoff lever) and drops the cached plans, whose
    /// fused programs may bake in optimizer hyperparameters. Returns the
    /// number of nodes rescaled.
    pub fn scale_learning_rates(&mut self, factor: f32) -> usize {
        let scaled = self.graph.scale_apply_lrs(factor);
        if scaled > 0 {
            self.plan_cache.clear();
            self.cost_cache.clear();
        }
        scaled
    }

    /// Stops recording and returns everything captured so far.
    pub fn take_trace(&mut self) -> RunTrace {
        self.tracing = false;
        std::mem::take(&mut self.trace)
    }

    /// Number of completed `run` calls.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Usage counters of the session's buffer recycler.
    pub fn recycle_stats(&self) -> RecycleStats {
        self.recycler.stats()
    }

    /// Current value of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NotAVariable`] if `id` is not a variable of
    /// this graph.
    pub fn variable_value(&self, id: NodeId) -> Result<&Tensor, ExecError> {
        self.state.variables.get(&id).ok_or(ExecError::NotAVariable(id))
    }

    /// Overwrites a variable's value (used for target-network syncs in
    /// `deepq` and test setup).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NotAVariable`] if `id` is not a variable, or
    /// [`ExecError::FeedShape`] if the shape differs.
    pub fn assign(&mut self, id: NodeId, value: Tensor) -> Result<(), ExecError> {
        let slot = self.state.variables.get_mut(&id).ok_or(ExecError::NotAVariable(id))?;
        if slot.shape() != value.shape() {
            return Err(ExecError::FeedShape {
                node: id,
                msg: format!("variable is {}, assigned {}", slot.shape(), value.shape()),
            });
        }
        *slot = value;
        Ok(())
    }

    /// Executes the subgraph needed for `fetches`, feeding placeholders
    /// from `feeds`, and returns the fetched values in order.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids, missing or mis-shaped feeds,
    /// malformed labels, or `Apply*` ops whose target is not a variable.
    ///
    /// Feed and fetch validation (`UnknownNode`, `FeedShape`,
    /// `MissingFeed`) happens before any op executes and never mutates
    /// session state. A *runtime* failure mid-step (e.g. `BadLabels`, an
    /// injected fault, or a kernel panic) rolls the session back before
    /// the error (or panic) reaches the caller: every variable and
    /// optimizer slot mutated by the failed run is restored from the undo
    /// journal and the RNG stream is rewound, so the session is exactly
    /// as it was when the failed `run` began. A failed step is therefore
    /// a no-op — retry it, skip it, or checkpoint afterwards; the session
    /// is never tainted. This holds for both executors: under the
    /// parallel scheduler, `Apply*` updates that committed before the
    /// abort was observed are undone by the same journal.
    pub fn run(&mut self, fetches: &[NodeId], feeds: &[(NodeId, Tensor)]) -> Result<Vec<Tensor>, ExecError> {
        let started = Instant::now();
        for &f in fetches {
            if f.index() >= self.graph.len() {
                return Err(ExecError::UnknownNode(f));
            }
        }
        let mut feed_map: HashMap<NodeId, &Tensor> = HashMap::with_capacity(feeds.len());
        for (id, value) in feeds {
            if id.index() >= self.graph.len() {
                return Err(ExecError::UnknownNode(*id));
            }
            let declared = self.graph.shape(*id);
            if declared != value.shape() {
                return Err(ExecError::FeedShape {
                    node: *id,
                    msg: format!("declared {declared}, fed {}", value.shape()),
                });
            }
            feed_map.insert(*id, value);
        }
        let plan = self.plan(fetches);
        // Every planned placeholder must be fed before any op runs, so a
        // bad feed set can never leave variables partially updated and
        // both executors report the same (first-in-plan-order) error.
        for &id in &plan.order {
            if matches!(self.graph.node(id).kind, OpKind::Placeholder { .. })
                && !feed_map.contains_key(&id)
            {
                return Err(ExecError::MissingFeed(id));
            }
        }
        // Recovery point: the RNG snapshot plus the state journal filled
        // by `Apply*` ops lets a failed run (typed error *or* op panic)
        // be undone completely before it surfaces to the caller.
        let rng_snapshot = self.state.rng.clone();
        let step_snapshot = self.step;
        // The arena is live for the whole run — including commit and
        // rollback, whose journal tensors must return to it — so a
        // steady-state step touches the heap for no planned tensor.
        let recycler = Arc::clone(&self.recycler);
        let _arena = BufferPool::install(&recycler);
        let parallel = self.device.inter_ops() > 1
            && !self.device.is_modeled()
            && self.pool.runtime().is_some()
            && !self.calibrating;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if parallel {
                self.run_parallel(fetches, &feed_map, &plan, started)
            } else {
                self.run_serial(fetches, &feed_map, &plan, started)
            }
        }));
        match outcome {
            Ok(Ok(mut out)) => {
                if let Some(node) = self.poison {
                    if let Some(pos) = fetches.iter().position(|&f| f == node) {
                        let shape = out[pos].shape().clone();
                        // Built unpooled (like every fetch) so the
                        // caller's eventual drop never debits the arena.
                        let nans = vec![f32::NAN; shape.num_elements()];
                        out[pos] = Tensor::from_vec(nans, shape);
                        self.poison = None;
                    }
                }
                if let Some(reason) = self.guard_violation(fetches, &out) {
                    // A tripped step must be a complete no-op, exactly
                    // like a failed one: rewind state, RNG, and the run
                    // counter, then surface a typed error.
                    self.state.rollback(rng_snapshot);
                    self.step = step_snapshot;
                    self.guard_trips += 1;
                    if self.tracing {
                        self.trace.events.push(TraceEvent {
                            node: fetches.first().copied().unwrap_or(NodeId(u32::MAX)),
                            op: "GuardrailTrip",
                            class: crate::op::OpClass::Optimization,
                            step: step_snapshot,
                            nanos: 0.0,
                            cost: cost::OpCost { flops: 0.0, bytes: 0.0 },
                        });
                    }
                    return Err(ExecError::GuardTripped(reason));
                }
                self.state.commit();
                self.sample_counters(parallel.then_some(&*plan));
                Ok(out)
            }
            Ok(Err(err)) => {
                self.state.rollback(rng_snapshot);
                Err(err)
            }
            Err(payload) => {
                self.state.rollback(rng_snapshot);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Convenience wrapper fetching a single node.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run1(&mut self, fetch: NodeId, feeds: &[(NodeId, Tensor)]) -> Result<Tensor, ExecError> {
        Ok(self.run(&[fetch], feeds)?.remove(0))
    }

    /// Folds one committed run's runtime-counter deltas into the session
    /// totals (and the live trace when recording). On a runtime shared
    /// between sessions (serve replicas) the steal delta attributes any
    /// steal in this run's window, so fleet-wide steals are approximate.
    fn sample_counters(&mut self, parallel_plan: Option<&Plan>) {
        let misses = self.recycler.planned_misses();
        let allocations = misses.saturating_sub(self.last_misses);
        self.last_misses = misses;
        let steals = self.pool.runtime().map_or(0, |rt| rt.steal_count());
        let steal_count = steals.saturating_sub(self.last_steals);
        self.last_steals = steals;
        let (wide_ops, coscheduled_ops) =
            parallel_plan.map_or((0, 0), |p| (p.wide_ops, p.cosched_ops));
        let sample = RuntimeCounters {
            allocations,
            arena_bytes: self.recycler.arena_bytes(),
            steal_count,
            wide_ops,
            coscheduled_ops,
        };
        self.counters.merge(&sample);
        if self.tracing {
            self.trace.runtime.merge(&sample);
        }
    }

    /// Executes a plan one op at a time in plan order.
    fn run_serial(
        &mut self,
        fetches: &[NodeId],
        feed_map: &HashMap<NodeId, &Tensor>,
        plan: &Plan,
        started: Instant,
    ) -> Result<Vec<Tensor>, ExecError> {
        let recycler = Arc::clone(&self.recycler);
        let _guard = BufferPool::install(&recycler);
        let mut values: Vec<Option<Tensor>> = vec![None; self.graph.len()];
        // Liveness-based eager release: drop intermediates after their
        // last consumer runs, tracking the peak footprint as we go. The
        // drops return buffers to the installed arena — no explicit
        // recycler call on the hot path.
        let mut live_bytes: usize = 0;
        let mut peak_bytes: usize = 0;
        for (pos, &id) in plan.order.iter().enumerate() {
            let width_pool = self.pool.with_width(plan.widths[pos]);
            let mut value = self.execute_node(id, feed_map, &values, &width_pool)?;
            if let Some(action) = self.fault.as_ref().and_then(|f| f.check(FaultSite::ExecOp)) {
                apply_exec_fault(&action, id, &mut value);
            }
            live_bytes += value.len() * 4;
            peak_bytes = peak_bytes.max(live_bytes);
            values[id.index()] = Some(value);
            if plan.last_use[id.index()] == pos {
                // No consumer (pure side-effect node): free immediately.
                if let Some(dead) = values[id.index()].take() {
                    live_bytes -= dead.len() * 4;
                    drop(dead);
                }
            }
            for &input in &self.graph.node(id).inputs {
                if plan.last_use[input.index()] == pos {
                    if let Some(dead) = values[input.index()].take() {
                        live_bytes -= dead.len() * 4;
                        drop(dead);
                    }
                }
            }
        }
        let out = extract_fetches(fetches, &mut values);
        self.step += 1;
        if self.tracing {
            self.trace.total_nanos += started.elapsed().as_nanos() as f64;
            self.trace.steps += 1;
            self.trace.peak_live_bytes = self.trace.peak_live_bytes.max(peak_bytes as u64);
        }
        Ok(out)
    }

    /// Executes a plan on the device's shared work-stealing runtime.
    ///
    /// Each op's unmet-dependency count starts at [`Plan::indegree`];
    /// when a producer finishes it publishes its value, decrements its
    /// consumers' counts, and *spawns* any pure op that reaches zero as
    /// one task on the [`Runtime`] — the same pool that executes
    /// intra-op kernel chunks, so an op molded wider than one thread
    /// fans its chunks out to whichever workers are idle (moldable
    /// tasks; there is no static inter-op/intra-op worker split).
    /// Serial ops go to a queue only the coordinating thread drains; the
    /// serialization chain built at plan time guarantees at most one is
    /// ready at any moment, and in plan order, so variable reads/writes
    /// and RNG draws happen in exactly the order the serial executor
    /// would perform them. While waiting, the coordinator helps the
    /// runtime instead of spinning.
    fn run_parallel(
        &mut self,
        fetches: &[NodeId],
        feed_map: &HashMap<NodeId, &Tensor>,
        plan: &Plan,
        started: Instant,
    ) -> Result<Vec<Tensor>, ExecError> {
        let tracing = self.tracing;
        if tracing {
            self.fill_cost_cache(plan);
        }
        let total = plan.order.len();
        let rt =
            Arc::clone(self.pool.runtime().expect("parallel executor needs a runtime-backed pool"));
        let state = &mut self.state;

        let (serial_tx, serial_rx) = channel::unbounded::<usize>();
        let frame = TaskFrame {
            rt: &rt,
            latch: Arc::new(Latch::new(0)),
            plan,
            graph: &self.graph,
            pool: &self.pool,
            feed_map,
            fault: self.fault.clone(),
            precision: self.precision,
            quant: self.quant.as_deref(),
            recycler: Arc::clone(&self.recycler),
            tracing,
            slots: SlotTable::new(self.graph.len()),
            indegree: plan.indegree.iter().map(|&d| AtomicU32::new(d)).collect(),
            remaining: plan.use_count.iter().map(|&u| AtomicU32::new(u)).collect(),
            completed: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
            panic_slot: Mutex::new(None),
            live_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            op_nanos: (0..if tracing { total } else { 0 }).map(|_| AtomicU64::new(0)).collect(),
            serial_tx,
            coordinator: std::thread::current(),
        };
        // In-flight tasks address the frame (and its latch) by raw
        // pointer, so it must stay pinned in this stack slot until every
        // task retires: `Runtime::wait` below proves that on the normal
        // path, the guard on the unwinding path.
        let guard = FrameGuard { frame: &frame };
        for (pos, (&deg, &serial)) in plan.indegree.iter().zip(&plan.serial).enumerate() {
            if deg == 0 {
                if serial {
                    frame.serial_tx.send(pos).expect("serial queue open");
                } else {
                    frame.spawn_pure(pos);
                }
            }
        }
        // The coordinator owns the session state: it alone drains the
        // serial queue, and otherwise helps the runtime with queued
        // tasks — op tasks and kernel chunks alike, its own or (on a
        // shared runtime) a sibling session's. With nothing runnable it
        // parks briefly; `finish`, `fail`, and `trap` unpark it after
        // every state change, so no wakeup is lost (an unpark that lands
        // before the park leaves a token that makes the park return
        // immediately).
        while frame.completed.load(Ordering::SeqCst) < total
            && !frame.abort.load(Ordering::Acquire)
        {
            if let Ok(pos) = serial_rx.try_recv() {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    frame.run_serial_op(pos, &mut *state);
                }));
                frame.trap(outcome);
            } else if !rt.help_one() {
                std::thread::park_timeout(std::time::Duration::from_micros(50));
            }
        }
        // Aborted or not, every spawned task must retire before the
        // frame's borrows expire (aborted tasks exit early but still
        // count down their latch).
        rt.wait(&frame.latch);
        std::mem::forget(guard);

        let TaskFrame { slots, failure, panic_slot, peak_bytes, op_nanos, .. } = frame;
        if let Some(payload) = panic_slot.into_inner().expect("panic slot") {
            std::panic::resume_unwind(payload);
        }
        if let Some(err) = failure.into_inner().expect("failure mutex") {
            return Err(err);
        }
        let mut values = slots.into_values();
        let out = extract_fetches(fetches, &mut values);
        if tracing {
            for (pos, &id) in plan.order.iter().enumerate() {
                let node = self.graph.node(id);
                push_trace_events(
                    &mut self.trace.events,
                    id,
                    node,
                    self.step,
                    f64::from_bits(op_nanos[pos].load(Ordering::Relaxed)),
                    self.cost_cache[id.index()].expect("cost cache pre-filled"),
                );
            }
        }
        self.step += 1;
        if tracing {
            self.trace.total_nanos += started.elapsed().as_nanos() as f64;
            self.trace.steps += 1;
            self.trace.peak_live_bytes =
                self.trace.peak_live_bytes.max(peak_bytes.load(Ordering::Relaxed) as u64);
        }
        Ok(out)
    }

    /// Topological execution plan for a fetch set (cached): liveness and
    /// dependency counts for the two executors, per-op intra-op widths
    /// from the cost model, and the static arena census the session's
    /// recycler is prewarmed with.
    fn plan(&mut self, fetches: &[NodeId]) -> Arc<Plan> {
        if let Some(plan) = self.plan_cache.get(fetches) {
            return Arc::clone(plan);
        }
        let graph = &self.graph;
        let mut needed = vec![false; graph.len()];
        let mut stack: Vec<NodeId> = fetches.to_vec();
        while let Some(id) = stack.pop() {
            if needed[id.index()] {
                continue;
            }
            needed[id.index()] = true;
            stack.extend(graph.node(id).inputs.iter().copied());
        }
        // Insertion order is a valid topological order (append-only graph).
        let order: Vec<NodeId> = graph
            .iter()
            .filter(|(id, _)| needed[id.index()])
            .map(|(id, _)| id)
            .collect();
        let total = order.len();
        let mut pos_of = vec![usize::MAX; graph.len()];
        for (pos, &id) in order.iter().enumerate() {
            pos_of[id.index()] = pos;
        }
        let mut last_use = vec![0usize; graph.len()];
        let mut indegree = vec![0u32; total];
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut use_count = vec![0u32; total];
        let mut serial = vec![false; total];
        for (pos, &id) in order.iter().enumerate() {
            // A node with no consumers dies at its own position; later
            // consumers (always at higher positions) overwrite this.
            last_use[id.index()] = pos;
            serial[pos] = graph.node(id).kind.needs_serial();
            for &input in &graph.node(id).inputs {
                let ipos = pos_of[input.index()];
                indegree[pos] += 1;
                consumers[ipos].push(pos as u32);
                use_count[ipos] += 1;
                last_use[input.index()] = pos;
            }
        }
        // Chain stateful/RNG ops to each other in plan order so at most
        // one is ever ready: this pins the variable read/write and RNG
        // draw order to the serial executor's, making parallel runs
        // bitwise deterministic.
        let mut prev: Option<usize> = None;
        for (pos, &is_serial) in serial.iter().enumerate() {
            if is_serial {
                if let Some(p) = prev {
                    indegree[pos] += 1;
                    consumers[p].push(pos as u32);
                }
                prev = Some(pos);
            }
        }
        for &f in fetches {
            use_count[pos_of[f.index()]] += 1;
            last_use[f.index()] = usize::MAX;
        }
        // Longest-path depth per position over dataflow plus
        // serialization-chain edges (`consumers` holds both): positions
        // sharing a depth are co-runnable peers, which is what the
        // moldable width rule divides the machine between.
        let mut level = vec![0u32; total];
        for pos in 0..total {
            for &c in &consumers[pos] {
                let c = c as usize;
                level[c] = level[c].max(level[pos] + 1);
            }
        }
        let mut peers = vec![0usize; total + 1];
        for &l in &level {
            peers[l as usize] += 1;
        }
        // Per-op widths: on a co-scheduling device the cost model molds
        // each op to its work and its peer count; everywhere else every
        // op gets the full intra-op width (the legacy behavior, and the
        // `WidthPolicy::Static` ablation baseline). Both executors
        // dispatch at exactly these widths, so serial and parallel runs
        // of the same plan stay bitwise interchangeable.
        let full = self.pool.threads();
        let parallel_exec = self.device.inter_ops() > 1
            && !self.device.is_modeled()
            && self.pool.runtime().is_some();
        let molding = parallel_exec && full > 1 && self.width_policy == WidthPolicy::Moldable;
        let widths: Vec<usize> = if molding {
            order
                .iter()
                .enumerate()
                .map(|(pos, &id)| {
                    let node = graph.node(id);
                    let input_shapes: Vec<_> =
                        node.inputs.iter().map(|&i| graph.shape(i)).collect();
                    let work = cost::estimate(node, &input_shapes).work_elements();
                    sched::chosen_width(work, peers[level[pos] as usize], full, DEFAULT_GRAIN)
                })
                .collect()
        } else {
            vec![full; total]
        };
        let wide_ops = widths.iter().filter(|&&w| w == full).count() as u64;
        let cosched_ops = total as u64 - wide_ops;
        // Static arena census: per exact buffer size, how many tensors
        // must be provisioned so one step of this plan allocates
        // nothing. On the serial executor the walk mirrors plan-order
        // eager release (a value dies when its last consumer runs;
        // fetched values live to the end), giving the exact plan-order
        // peak. The parallel executor runs ops in whatever order the
        // pool's workers reach them, so *any* two same-sized tensors of
        // the step may overlap in time — the only schedule-independent
        // bound is the total number created per step, and that is what
        // the census counts there (skipping the release walk).
        // Kernel-internal temporaries the census cannot see ride on the
        // plan slack, the miss-driven cap growth, and the dynamic
        // fallback.
        let mut live: HashMap<usize, usize> = HashMap::new();
        let mut peak: HashMap<usize, usize> = HashMap::new();
        let mut freed = vec![false; graph.len()];
        for (pos, &id) in order.iter().enumerate() {
            let len = graph.shape(id).num_elements();
            if len > 0 {
                let l = live.entry(len).or_insert(0);
                *l += 1;
                let p = peak.entry(len).or_insert(0);
                *p = (*p).max(*l);
            }
            if parallel_exec {
                continue;
            }
            if last_use[id.index()] == pos && len > 0 && !freed[id.index()] {
                freed[id.index()] = true;
                *live.get_mut(&len).expect("made live above") -= 1;
            }
            for &input in &graph.node(id).inputs {
                if last_use[input.index()] == pos && !freed[input.index()] {
                    freed[input.index()] = true;
                    let ilen = graph.shape(input).num_elements();
                    if ilen > 0 {
                        *live.get_mut(&ilen).expect("produced before use") -= 1;
                    }
                }
            }
        }
        let mut census: Vec<(usize, usize)> = peak.into_iter().collect();
        census.sort_unstable();
        self.recycler.apply_plan(&census);
        let plan = Arc::new(Plan {
            order,
            last_use,
            pos_of,
            indegree,
            consumers,
            use_count,
            serial,
            widths,
            wide_ops,
            cosched_ops,
        });
        self.plan_cache.insert(fetches.to_vec(), Arc::clone(&plan));
        plan
    }

    /// Fills the static cost cache for every planned node, so traced
    /// parallel runs never touch the cache concurrently.
    fn fill_cost_cache(&mut self, plan: &Plan) {
        if self.cost_cache.is_empty() {
            self.cost_cache = vec![None; self.graph.len()];
        }
        for &id in &plan.order {
            if self.cost_cache[id.index()].is_none() {
                let node = self.graph.node(id);
                let input_shapes: Vec<_> = node.inputs.iter().map(|&i| self.graph.shape(i)).collect();
                self.cost_cache[id.index()] = Some(cost::estimate(node, &input_shapes));
            }
        }
    }

    /// Executes one node serially and (if tracing) records its event.
    fn execute_node(
        &mut self,
        id: NodeId,
        feeds: &HashMap<NodeId, &Tensor>,
        values: &[Option<Tensor>],
        pool: &ExecPool,
    ) -> Result<Tensor, ExecError> {
        let started = Instant::now();
        if self.calibrating {
            self.record_calibration(id, values);
        }
        let ctx = ExecCtx { precision: self.precision, quant: self.quant.as_deref() };
        let value = dispatch_op(
            &self.graph,
            pool,
            id,
            feeds,
            |n| values[n.index()].as_ref().expect("input executed before use"),
            Some(&mut self.state),
            ctx,
        )?;
        if self.tracing {
            if self.cost_cache.is_empty() {
                self.cost_cache = vec![None; self.graph.len()];
            }
            let op_cost = match self.cost_cache[id.index()] {
                Some(c) => c,
                None => {
                    let node = self.graph.node(id);
                    let input_shapes: Vec<_> =
                        node.inputs.iter().map(|&i| self.graph.shape(i)).collect();
                    let c = cost::estimate(node, &input_shapes);
                    self.cost_cache[id.index()] = Some(c);
                    c
                }
            };
            let node = self.graph.node(id);
            let nanos = match &self.device {
                Device::Cpu { .. } => started.elapsed().as_nanos() as f64,
                Device::SimCpu { threads, model } => model.model_nanos(
                    started.elapsed().as_nanos() as f64,
                    op_cost,
                    *threads,
                    node.kind.uses_intra_op_pool(),
                ),
                Device::SimGpu(model) => model.model_nanos(&node.kind, op_cost),
            };
            push_trace_events(&mut self.trace.events, id, node, self.step, nanos, op_cost);
        }
        Ok(value)
    }

    /// Collapses chains of pure elementwise ops into fused register
    /// programs, in place (see [`optimize::fuse_in_place`]). Every
    /// existing [`NodeId`] stays valid: fused-away interiors remain in
    /// the graph as unscheduled dead nodes, variables and their
    /// checkpoint order are untouched, and fused execution is bitwise
    /// identical to unfused. `keep` must cover every node the caller
    /// will still fetch *through a fused value* — typically the model's
    /// fetch handles — so their values stay materialized.
    ///
    /// # Panics
    ///
    /// Panics if a kept id does not belong to this session's graph.
    pub fn enable_fusion(&mut self, keep: &[NodeId]) -> optimize::FusionStats {
        self.enable_fusion_with(keep, optimize::FusionOptions::default())
    }

    /// [`Session::enable_fusion`] with explicit pass selection. GEMM
    /// epilogue fusion runs *first* so packed MatMul/Conv2D nodes claim
    /// their consumer chains; elementwise fusion then groups whatever
    /// remains (the claimed originals are unreachable dead nodes by
    /// then, so the passes never double-claim an op).
    ///
    /// # Panics
    ///
    /// Panics if a kept id does not belong to this session's graph.
    pub fn enable_fusion_with(
        &mut self,
        keep: &[NodeId],
        options: optimize::FusionOptions,
    ) -> optimize::FusionStats {
        let gemm_stats = if options.gemm_epilogues {
            optimize::fuse_gemm_epilogues(&mut self.graph, keep)
        } else {
            optimize::FusionStats::default()
        };
        let mut stats = optimize::fuse_in_place(&mut self.graph, keep);
        stats.gemm_groups = gemm_stats.gemm_groups;
        stats.gemm_ops = gemm_stats.gemm_ops;
        // Plans and cost estimates were computed against the unfused
        // node kinds.
        self.plan_cache.clear();
        self.cost_cache.clear();
        stats
    }
}

/// Appends the trace event(s) for one executed op.
///
/// A [`OpKind::Fused`] node expands into one event per constituent
/// instruction — each carrying the original elementwise op's name and
/// class C, with the measured duration and cost apportioned by the
/// instructions' static flop weights (remainder on the last event, so
/// per-step sums are exact). An [`OpKind::GemmFused`] node likewise
/// expands into one event for the GEMM root (its original `MatMul` /
/// `Conv2D` name and class) plus one class-C event per epilogue
/// instruction. Profiles over fused runs therefore keep reporting
/// constituent op types, and the paper's class breakdown remains
/// comparable before/after fusion.
fn push_trace_events(
    events: &mut Vec<TraceEvent>,
    id: NodeId,
    node: &Node,
    step: u64,
    nanos: f64,
    op_cost: cost::OpCost,
) {
    use crate::op::OpClass;
    match &node.kind {
        OpKind::Fused(program) => {
            let parts: Vec<(&'static str, OpClass, f64)> = program
                .instrs
                .iter()
                .map(|instr| {
                    (
                        instr.op.name(),
                        OpClass::ElementwiseArithmetic,
                        cost::fused_instr_flops_per_elem(instr),
                    )
                })
                .collect();
            push_apportioned(events, id, step, nanos, op_cost, &parts);
        }
        OpKind::GemmFused { gemm, epilogue } => {
            let elems = node.shape.num_elements() as f64;
            let (root_op, root_class) = match gemm {
                GemmOp::MatMul { .. } => ("MatMul", OpClass::MatrixOps),
                GemmOp::Conv2D(_) => ("Conv2D", OpClass::Convolution),
            };
            let mut parts = Vec::with_capacity(epilogue.instrs.len() + 1);
            let ep_flops: f64 = epilogue
                .instrs
                .iter()
                .map(|i| cost::epilogue_instr_flops_per_elem(i) * elems)
                .sum();
            // The root's weight is whatever the cost model attributed to
            // the GEMM itself (total minus the epilogue's share).
            parts.push((root_op, root_class, (op_cost.flops - ep_flops).max(0.0)));
            for instr in &epilogue.instrs {
                parts.push((
                    instr.op.name(),
                    OpClass::ElementwiseArithmetic,
                    cost::epilogue_instr_flops_per_elem(instr) * elems,
                ));
            }
            push_apportioned(events, id, step, nanos, op_cost, &parts);
        }
        _ => events.push(TraceEvent {
            node: id,
            op: node.kind.name(),
            class: node.kind.class(),
            step,
            nanos,
            cost: op_cost,
        }),
    }
}

/// Splits one measured op across `parts` by static flop weight, with the
/// remainder on the last event so per-step sums stay exact.
fn push_apportioned(
    events: &mut Vec<TraceEvent>,
    id: NodeId,
    step: u64,
    nanos: f64,
    op_cost: cost::OpCost,
    parts: &[(&'static str, crate::op::OpClass, f64)],
) {
    let total: f64 = parts.iter().map(|p| p.2).sum();
    let count = parts.len();
    let (mut nanos_left, mut flops_left, mut bytes_left) = (nanos, op_cost.flops, op_cost.bytes);
    for (k, &(op, class, weight)) in parts.iter().enumerate() {
        let (n, f, b) = if k + 1 == count {
            (nanos_left, flops_left, bytes_left)
        } else {
            let frac = if total > 0.0 { weight / total } else { 1.0 / count as f64 };
            (nanos * frac, op_cost.flops * frac, op_cost.bytes * frac)
        };
        nanos_left -= n;
        flops_left -= f;
        bytes_left -= b;
        events.push(TraceEvent {
            node: id,
            op,
            class,
            step,
            nanos: n,
            cost: cost::OpCost { flops: f, bytes: b },
        });
    }
}

/// Shared state of one in-flight parallel step. Spawned op tasks address
/// the frame by raw pointer (see [`TaskFrame::spawn_pure`]), so
/// `run_parallel` pins it in one stack slot until the latch confirms
/// every task has retired.
struct TaskFrame<'a> {
    /// The device's work-stealing runtime; op tasks and their kernel
    /// chunks share its workers.
    rt: &'a Arc<Runtime>,
    /// Counts in-flight op tasks; closed means no task can still hold a
    /// pointer into the frame.
    latch: Arc<Latch>,
    plan: &'a Plan,
    graph: &'a Graph,
    /// Full-width view; each op re-views it at its planned width.
    pool: &'a ExecPool,
    feed_map: &'a HashMap<NodeId, &'a Tensor>,
    fault: Option<Arc<FaultPlan>>,
    /// The session's precision knob, forwarded to every dispatch.
    precision: Precision,
    /// The session's armed int8 plan, forwarded to every dispatch.
    quant: Option<&'a QuantPlan>,
    /// The session arena, installed on whichever worker runs each task
    /// so eager releases recycle no matter where an op lands.
    recycler: Arc<BufferPool>,
    tracing: bool,
    slots: SlotTable,
    /// Unmet-dependency count per plan position (counted down at run
    /// time; an op spawns when its count hits zero).
    indegree: Vec<AtomicU32>,
    /// Remaining uses per plan position (eager release when exhausted).
    remaining: Vec<AtomicU32>,
    completed: AtomicUsize,
    abort: AtomicBool,
    failure: Mutex<Option<ExecError>>,
    /// A panic raised by an op is caught on the executing thread and
    /// re-raised on the coordinator after the latch closes: letting it
    /// unwind through a worker would tear down the shared runtime.
    panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    live_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    /// Per-position op durations (f64 bits), filled only when tracing.
    op_nanos: Vec<AtomicU64>,
    /// Ready serial ops; only the coordinator receives. The plan's
    /// serialization chain guarantees at most one is in flight.
    serial_tx: channel::Sender<usize>,
    /// The coordinating thread, unparked after every state change so a
    /// parked coordinator never misses a wakeup.
    coordinator: std::thread::Thread,
}

impl TaskFrame<'_> {
    /// Spawns the pure op at `pos` as one task on the shared runtime.
    fn spawn_pure(&self, pos: usize) {
        // The latch must cover the task before it is queued (the runtime
        // counts it down, not up).
        self.latch.add(1);
        // SAFETY: the frame outlives every spawned task — the coordinator
        // blocks on the latch before the frame leaves its stack slot
        // (`Runtime::wait` on the normal path, `FrameGuard` when
        // unwinding) — so smuggling the pointer through `usize` to
        // satisfy the `'static` bound never dangles.
        let frame = self as *const TaskFrame<'_> as usize;
        self.rt.spawn_counted(&self.latch, move || {
            let frame = unsafe { &*(frame as *const TaskFrame<'_>) };
            let _arena = BufferPool::install(&frame.recycler);
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| frame.run_pure(pos)));
            frame.trap(outcome);
        });
    }

    /// Executes the pure op at `pos` at its planned width.
    fn run_pure(&self, pos: usize) {
        if self.abort.load(Ordering::Acquire) {
            return;
        }
        let id = self.plan.order[pos];
        let t0 = Instant::now();
        let width_pool = self.pool.with_width(self.plan.widths[pos]);
        // SAFETY (the `slots.get`): every input slot was published by its
        // producer before the dependency count that spawned this op
        // reached zero, and stays alive until this op completes.
        let ctx = ExecCtx { precision: self.precision, quant: self.quant };
        match dispatch_op(self.graph, &width_pool, id, self.feed_map, |n| unsafe {
            self.slots.get(n.index())
        }, None, ctx)
        {
            Ok(mut value) => {
                if let Some(action) = self.fault.as_ref().and_then(|f| f.check(FaultSite::ExecOp)) {
                    apply_exec_fault(&action, id, &mut value);
                }
                if self.tracing {
                    let nanos = t0.elapsed().as_nanos() as f64;
                    self.op_nanos[pos].store(nanos.to_bits(), Ordering::Relaxed);
                }
                self.finish(pos, id, value);
            }
            Err(err) => self.fail(err),
        }
    }

    /// Executes the serial op at `pos` on the coordinator, with exclusive
    /// access to the session state.
    fn run_serial_op(&self, pos: usize, st: &mut SessionState) {
        if self.abort.load(Ordering::Acquire) {
            return;
        }
        let id = self.plan.order[pos];
        let t0 = Instant::now();
        let width_pool = self.pool.with_width(self.plan.widths[pos]);
        // SAFETY: as in `run_pure`.
        let ctx = ExecCtx { precision: self.precision, quant: self.quant };
        match dispatch_op(self.graph, &width_pool, id, self.feed_map, |n| unsafe {
            self.slots.get(n.index())
        }, Some(st), ctx)
        {
            Ok(mut value) => {
                if let Some(action) = self.fault.as_ref().and_then(|f| f.check(FaultSite::ExecOp)) {
                    apply_exec_fault(&action, id, &mut value);
                }
                if self.tracing {
                    let nanos = t0.elapsed().as_nanos() as f64;
                    self.op_nanos[pos].store(nanos.to_bits(), Ordering::Relaxed);
                }
                self.finish(pos, id, value);
            }
            Err(err) => self.fail(err),
        }
    }

    /// Runs on whichever thread produced `value` for position `pos`:
    /// publishes the value, releases inputs whose uses are exhausted, and
    /// spawns (or queues, for serial ops) consumers whose dependency
    /// count reaches zero.
    fn finish(&self, pos: usize, id: NodeId, value: Tensor) {
        let plan = self.plan;
        let bytes = value.len() * 4;
        let now_live = self.live_bytes.fetch_add(bytes, Ordering::AcqRel) + bytes;
        let mut peak = self.peak_bytes.load(Ordering::Relaxed);
        while now_live > peak {
            match self.peak_bytes.compare_exchange_weak(
                peak,
                now_live,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
        if plan.use_count[pos] == 0 {
            // Nothing consumes or fetches this value: dead on arrival.
            // The drop recycles it through the installed arena.
            self.live_bytes.fetch_sub(bytes, Ordering::AcqRel);
            drop(value);
        } else {
            // SAFETY: this thread is the slot's only producer and no
            // consumer reads it before the fan-out below releases them.
            unsafe { self.slots.set(id.index(), value) };
        }
        for &input in &self.graph.node(id).inputs {
            let ipos = plan.pos_of[input.index()];
            if self.remaining[ipos].fetch_sub(1, Ordering::AcqRel) == 1 {
                // SAFETY: the last consumer has completed, so no
                // reference into this slot can still be alive, and the
                // AcqRel counter chain orders all of their reads before
                // this take.
                if let Some(dead) = unsafe { self.slots.take(input.index()) } {
                    self.live_bytes.fetch_sub(dead.len() * 4, Ordering::AcqRel);
                    drop(dead);
                }
            }
        }
        for &c in &plan.consumers[pos] {
            let c = c as usize;
            if self.indegree[c].fetch_sub(1, Ordering::AcqRel) == 1 {
                if plan.serial[c] {
                    self.serial_tx.send(c).expect("serial queue open");
                } else {
                    self.spawn_pure(c);
                }
            }
        }
        self.completed.fetch_add(1, Ordering::SeqCst);
        self.coordinator.unpark();
    }

    /// Records the first typed error and aborts the step.
    fn fail(&self, err: ExecError) {
        let mut slot = self.failure.lock().expect("failure mutex");
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.abort.store(true, Ordering::Release);
        self.coordinator.unpark();
    }

    /// Routes an op panic through the abort path (see `panic_slot`).
    fn trap(&self, result: std::thread::Result<()>) {
        if let Err(payload) = result {
            let mut slot = self.panic_slot.lock().expect("panic slot");
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            self.abort.store(true, Ordering::Release);
            self.coordinator.unpark();
        }
    }
}

/// Unwind insurance for [`TaskFrame`]: if the coordinator unwinds while
/// tasks are in flight, aborts the step and spins until the latch closes
/// so no task outlives the frame it points into. Forgotten on the normal
/// path, after `Runtime::wait` has proven the same thing.
struct FrameGuard<'a, 'b> {
    frame: &'a TaskFrame<'b>,
}

impl Drop for FrameGuard<'_, '_> {
    fn drop(&mut self) {
        self.frame.abort.store(true, Ordering::Release);
        while self.frame.latch.is_open() {
            std::thread::park_timeout(std::time::Duration::from_micros(50));
        }
    }
}

/// Node-value table shared between scheduler threads. Soundness rests on
/// the dependency counts: a slot is written exactly once (by its
/// producer, before any consumer is queued), read only while its
/// remaining-use count is positive, and taken only after the count hits
/// zero — so no two threads ever touch a cell concurrently.
struct SlotTable {
    cells: Vec<UnsafeCell<Option<Tensor>>>,
}

unsafe impl Sync for SlotTable {}

impl SlotTable {
    fn new(len: usize) -> Self {
        SlotTable { cells: (0..len).map(|_| UnsafeCell::new(None)).collect() }
    }

    /// # Safety
    ///
    /// Caller must be the cell's unique producer, before consumers run.
    unsafe fn set(&self, idx: usize, value: Tensor) {
        *self.cells[idx].get() = Some(value);
    }

    /// # Safety
    ///
    /// Caller must hold an outstanding use (remaining-use count > 0).
    unsafe fn get(&self, idx: usize) -> &Tensor {
        (*self.cells[idx].get()).as_ref().expect("input executed before use")
    }

    /// # Safety
    ///
    /// Caller must have observed the remaining-use count reach zero.
    unsafe fn take(&self, idx: usize) -> Option<Tensor> {
        (*self.cells[idx].get()).take()
    }

    fn into_values(self) -> Vec<Option<Tensor>> {
        self.cells.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

/// Copies fetched values out of the value table as *unpooled* tensors
/// and recycles the originals. Callers hold fetches arbitrarily long
/// (and may drop them on threads with no arena installed), so handing
/// out a pooled buffer would drain the session's static arena by one
/// buffer per fetch per step; the copy keeps steady-state steps
/// allocation-free for planned tensors.
fn extract_fetches(fetches: &[NodeId], values: &mut [Option<Tensor>]) -> Vec<Tensor> {
    let out = fetches
        .iter()
        .map(|&f| {
            let v = values[f.index()].as_ref().expect("fetched node kept alive");
            Tensor::from_vec(v.data().to_vec(), v.shape().clone())
        })
        .collect();
    for &f in fetches {
        // Dropping under the installed arena recycles the original.
        values[f.index()] = None;
    }
    out
}

/// Applies a fired [`FaultSite::ExecOp`] fault to a freshly computed op
/// value: `Panic` aborts the run (the caller's recovery machinery rolls
/// the session back), `PoisonNan` overwrites the value with NaNs to
/// model silent numerical corruption. Byte- and serve-level actions are
/// inert at exec sites.
fn apply_exec_fault(action: &FaultAction, id: NodeId, value: &mut Tensor) {
    match action {
        FaultAction::Panic => panic!("injected fault: op panic at node {id}"),
        FaultAction::PoisonNan => {
            for v in value.data_mut() {
                *v = f32::NAN;
            }
        }
        _ => {}
    }
}

/// Resolves the variable an `Apply*` node updates.
fn variable_target(graph: &Graph, state: &SessionState, apply: NodeId) -> Result<NodeId, ExecError> {
    let var_id = graph.node(apply).inputs[0];
    if state.variables.contains_key(&var_id) {
        Ok(var_id)
    } else {
        Err(ExecError::NotAVariable(var_id))
    }
}

/// Whether a MatMul's runtime operand shapes qualify for the bf16
/// packed path under [`Precision::Bf16`] (see
/// [`cost::bf16_gemm_eligible`]).
fn bf16_matmul_eligible(a: &Tensor, b: &Tensor, transpose_a: bool, transpose_b: bool) -> bool {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return false;
    }
    let k = if transpose_a { a.shape().dim(0) } else { a.shape().dim(1) };
    let n = if transpose_b { b.shape().dim(0) } else { b.shape().dim(1) };
    cost::bf16_gemm_eligible(k, n)
}

/// Computes one node's value. `resolve` maps an input id to its computed
/// tensor; `state` must be `Some` for ops where [`OpKind::needs_serial`]
/// is true (the schedulers guarantee those run with exclusive access to
/// the session state, on one thread, in plan order). `ctx` carries the
/// session's precision knob and int8 plan; MatMul-family dispatch
/// consults the plan first, then the knob, then takes the f32 path.
#[allow(clippy::too_many_lines)]
fn dispatch_op<'v, F>(
    graph: &Graph,
    pool: &ExecPool,
    id: NodeId,
    feeds: &HashMap<NodeId, &Tensor>,
    resolve: F,
    mut state: Option<&mut SessionState>,
    ctx: ExecCtx<'_>,
) -> Result<Tensor, ExecError>
where
    F: Fn(NodeId) -> &'v Tensor,
{
    let node = graph.node(id);
    let inputs = &node.inputs;
    let input = |i: usize| -> &'v Tensor { resolve(inputs[i]) };
    fn take_state<'a>(state: &mut Option<&'a mut SessionState>) -> &'a mut SessionState {
        state.take().expect("stateful op scheduled with session state")
    }
    let mut serial_state = || take_state(&mut state);
    let out = match &node.kind {
        OpKind::Placeholder { .. } => {
            (*feeds.get(&id).ok_or(ExecError::MissingFeed(id))?).clone()
        }
        OpKind::Variable { .. } => serial_state().variables[&id].clone(),
        OpKind::Constant(t) => t.clone(),
        OpKind::Identity | OpKind::StopGradient => input(0).clone(),

        OpKind::MatMul { transpose_a, transpose_b } => {
            let (a, b) = (input(0), input(1));
            let quantized = (!*transpose_a)
                .then(|| ctx.quant.and_then(|q| q.per_node.get(&(id.index() as u32))))
                .flatten();
            if let Some(qg) = quantized {
                qg.matmul(a, pool)
            } else if ctx.precision == Precision::Bf16
                && bf16_matmul_eligible(a, b, *transpose_a, *transpose_b)
            {
                kgemm::matmul_packed_bf16(a, b, *transpose_a, *transpose_b, pool)
            } else {
                kmm::matmul(a, b, *transpose_a, *transpose_b, pool)
            }
        }

        // Convolutions pick their lowering from the cost model's
        // flop/byte estimate of the (batch-independent) geometry: big
        // GEMM-shaped geometries go through im2col + the packed engine,
        // small or thin ones stay on the direct loops. The decision is
        // precision-aware — bf16 halves the packed-panel bytes, so
        // marginal geometries lower differently (the GEMM itself still
        // runs f32; only the *choice* shifts).
        OpKind::Conv2D(spec) => {
            match cost::conv2d_lowering_with(input(0).shape(), input(1).shape(), *spec, ctx.precision) {
                cost::ConvLowering::Im2colGemm => {
                    kim2col::conv2d_im2col(input(0), input(1), *spec, pool)
                }
                cost::ConvLowering::Direct => kconv::conv2d(input(0), input(1), *spec, pool),
            }
        }
        OpKind::Conv2DBackpropInput { spec, input_shape } => {
            match cost::conv2d_lowering_with(input_shape, input(0).shape(), *spec, ctx.precision) {
                cost::ConvLowering::Im2colGemm => {
                    kconv::conv2d_backprop_input_im2col(input_shape, input(0), input(1), *spec, pool)
                }
                cost::ConvLowering::Direct => {
                    kconv::conv2d_backprop_input(input_shape, input(0), input(1), *spec, pool)
                }
            }
        }
        OpKind::Conv2DBackpropFilter { spec, filter_shape } => {
            match cost::conv2d_lowering_with(input(0).shape(), filter_shape, *spec, ctx.precision) {
                cost::ConvLowering::Im2colGemm => {
                    kconv::conv2d_backprop_filter_im2col(input(0), filter_shape, input(1), *spec, pool)
                }
                cost::ConvLowering::Direct => {
                    kconv::conv2d_backprop_filter(input(0), filter_shape, input(1), *spec, pool)
                }
            }
        }
        OpKind::MaxPool(spec) => kpool::max_pool(input(0), *spec, pool),
        OpKind::MaxPoolGrad(spec) => kpool::max_pool_grad(input(0), input(1), *spec, pool),
        OpKind::AvgPool(spec) => kpool::avg_pool(input(0), *spec, pool),
        OpKind::AvgPoolGrad { spec, input_shape } => {
            kpool::avg_pool_grad(input_shape, input(0), *spec, pool)
        }

        OpKind::Add => kew::add(input(0), input(1), pool),
        OpKind::Sub => kew::sub(input(0), input(1), pool),
        OpKind::Mul => kew::mul(input(0), input(1), pool),
        OpKind::Div => kew::div(input(0), input(1), pool),
        OpKind::Maximum => kew::maximum(input(0), input(1), pool),
        OpKind::Pow => kew::pow(input(0), input(1), pool),
        OpKind::Greater => kew::binary(input(0), input(1), pool, |a, b| f32::from(a > b)),
        OpKind::GreaterEqual => kew::binary(input(0), input(1), pool, |a, b| f32::from(a >= b)),
        OpKind::Equal => kew::binary(input(0), input(1), pool, |a, b| f32::from(a == b)),
        OpKind::Select => {
            // cond ? a : b with two broadcasting passes.
            let masked_a = kew::binary(input(0), input(1), pool, |c, a| if c != 0.0 { a } else { 0.0 });
            let masked = kew::binary(input(0), input(2), pool, |c, b| if c != 0.0 { 0.0 } else { b });
            kew::add(&masked_a, &masked, pool)
        }
        OpKind::Neg => kew::neg(input(0), pool),
        OpKind::Exp => kew::exp(input(0), pool),
        OpKind::Log => kew::log(input(0), pool),
        OpKind::Sqrt => kew::sqrt(input(0), pool),
        OpKind::Square => kew::square(input(0), pool),
        OpKind::Tanh => kew::tanh(input(0), pool),
        OpKind::Sigmoid => kew::sigmoid(input(0), pool),
        OpKind::Relu => kew::relu(input(0), pool),
        OpKind::ReluGrad => {
            kew::binary(input(0), input(1), pool, |x, g| if x > 0.0 { g } else { 0.0 })
        }
        OpKind::TanhGrad => kew::binary(input(0), input(1), pool, |y, g| g * (1.0 - y * y)),
        OpKind::SigmoidGrad => kew::binary(input(0), input(1), pool, |y, g| g * y * (1.0 - y)),
        OpKind::AddN => {
            let tensors: Vec<&Tensor> = (0..inputs.len()).map(input).collect();
            kew::add_n(&tensors, pool)
        }
        OpKind::Fused(program) => {
            let tensors: Vec<&Tensor> = (0..inputs.len()).map(input).collect();
            program.eval(&tensors, pool)
        }
        // GEMM with the epilogue applied in the microkernel writeback.
        // Inputs are [a, b, operands...]; the optimizer only builds these
        // over geometries the cost model routes to the packed engine, but
        // both kernel entry points fall back (naive matmul + flat
        // epilogue, direct conv + flat epilogue) bitwise-identically if a
        // runtime shape disagrees.
        OpKind::GemmFused { gemm, epilogue } => {
            let operand_tensors: Vec<&Tensor> = (2..inputs.len()).map(input).collect();
            match gemm {
                GemmOp::MatMul { transpose_a, transpose_b } => {
                    let (a, b) = (input(0), input(1));
                    let quantized = (!*transpose_a)
                        .then(|| ctx.quant.and_then(|q| q.per_node.get(&(id.index() as u32))))
                        .flatten();
                    if let Some(qg) = quantized {
                        // f32 dequant lands in the writeback; the fused
                        // epilogue then applies to the dequantized
                        // output, exactly as on the float paths.
                        let operands: Vec<&[f32]> =
                            operand_tensors.iter().map(|t| t.data()).collect();
                        qg.matmul_fused(a, Some(epilogue), &operands, pool)
                    } else if ctx.precision == Precision::Bf16
                        && bf16_matmul_eligible(a, b, *transpose_a, *transpose_b)
                    {
                        kgemm::matmul_fused_bf16(
                            a,
                            b,
                            *transpose_a,
                            *transpose_b,
                            epilogue,
                            &operand_tensors,
                            pool,
                        )
                    } else {
                        kgemm::matmul_fused(
                            a,
                            b,
                            *transpose_a,
                            *transpose_b,
                            epilogue,
                            &operand_tensors,
                            pool,
                        )
                    }
                }
                GemmOp::Conv2D(spec) => {
                    let operands: Vec<&[f32]> =
                        operand_tensors.iter().map(|t| t.data()).collect();
                    match cost::conv2d_lowering_with(input(0).shape(), input(1).shape(), *spec, ctx.precision) {
                        cost::ConvLowering::Im2colGemm => kim2col::conv2d_im2col_fused(
                            input(0),
                            input(1),
                            *spec,
                            Some(epilogue),
                            &operands,
                            pool,
                        ),
                        cost::ConvLowering::Direct => {
                            let mut out = kconv::conv2d(input(0), input(1), *spec, pool);
                            let n = out.shape().dim(out.shape().rank() - 1);
                            let m = out.shape().num_elements() / n.max(1);
                            epilogue.apply_flat(out.data_mut(), m, n, &operands, pool);
                            out
                        }
                    }
                }
            }
        }

        OpKind::Sum { axis, keep_dims } => match axis {
            Some(a) => kred::reduce_axis(input(0), *a, kred::ReduceKind::Sum, *keep_dims, pool),
            None => kred::reduce_all_sum(input(0), pool),
        },
        OpKind::Mean { axis, keep_dims } => match axis {
            Some(a) => kred::reduce_axis(input(0), *a, kred::ReduceKind::Mean, *keep_dims, pool),
            None => kred::reduce_all_mean(input(0), pool),
        },
        OpKind::MaxReduce { axis, keep_dims } => {
            kred::reduce_axis(input(0), *axis, kred::ReduceKind::Max, *keep_dims, pool)
        }
        OpKind::Softmax => ksm::softmax(input(0), pool),
        OpKind::LogSoftmax => ksm::log_softmax(input(0), pool),
        OpKind::SoftmaxGrad => ksm::softmax_grad(input(0), input(1), pool),
        OpKind::SoftmaxCrossEntropy => ksm::softmax_cross_entropy(input(0), input(1), pool).0,
        OpKind::SoftmaxCrossEntropyGrad => {
            ksm::softmax_cross_entropy(input(0), input(1), pool).1
        }
        OpKind::CtcLoss { blank } => {
            let labels = decode_padded_labels(input(1), graph.shape(id).rank(), *blank)?;
            Tensor::scalar(kctc::ctc_loss(input(0), &labels, *blank, pool).0)
        }
        OpKind::CtcLossGrad { blank } => {
            let labels = decode_padded_labels(input(1), 0, *blank)?;
            kctc::ctc_loss(input(0), &labels, *blank, pool).1
        }
        OpKind::Tile { reps } => ktf::tile(input(0), reps, pool),

        OpKind::StandardRandomNormal { shape, mean, std } => {
            Tensor::randn(shape.clone(), *mean, *std, &mut serial_state().rng)
        }
        OpKind::RandomUniform { shape, lo, hi } => {
            Tensor::rand_uniform(shape.clone(), *lo, *hi, &mut serial_state().rng)
        }
        OpKind::DropoutMask { rate } => {
            let st = serial_state();
            let keep = 1.0 / (1.0 - rate);
            let mut mask = Tensor::zeros(input(0).shape().clone());
            let rate = *rate;
            for v in mask.data_mut() {
                *v = if st.rng.uniform() < rate { 0.0 } else { keep };
            }
            mask
        }

        OpKind::ApplyGradientDescent { lr } => {
            let st = serial_state();
            let var_id = variable_target(graph, st, id)?;
            st.journal_variable(var_id);
            let grad = input(1);
            let lr = *lr;
            let var = st.variables.get_mut(&var_id).expect("checked above");
            for (v, g) in var.data_mut().iter_mut().zip(grad.data()) {
                *v -= lr * g;
            }
            var.clone()
        }
        OpKind::ApplyMomentum { lr, momentum } => {
            let st = serial_state();
            let var_id = variable_target(graph, st, id)?;
            st.journal_variable(var_id);
            st.journal_slot((id, "momentum"));
            let grad = input(1);
            let (lr, momentum) = (*lr, *momentum);
            let accum = st
                .slots
                .entry((id, "momentum"))
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            for (m, g) in accum.data_mut().iter_mut().zip(grad.data()) {
                *m = momentum * *m + g;
            }
            let var = st.variables.get_mut(&var_id).expect("checked above");
            for (v, m) in var.data_mut().iter_mut().zip(accum.data()) {
                *v -= lr * m;
            }
            var.clone()
        }
        OpKind::ApplyRmsProp { lr, decay, momentum, epsilon } => {
            let st = serial_state();
            let var_id = variable_target(graph, st, id)?;
            st.journal_variable(var_id);
            st.journal_slot((id, "ms"));
            st.journal_slot((id, "mom"));
            let grad = input(1);
            let (lr, decay, momentum, epsilon) = (*lr, *decay, *momentum, *epsilon);
            let ms = st
                .slots
                .entry((id, "ms"))
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            for (m, g) in ms.data_mut().iter_mut().zip(grad.data()) {
                *m = decay * *m + (1.0 - decay) * g * g;
            }
            let ms = ms.clone();
            let mom = st
                .slots
                .entry((id, "mom"))
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            for ((mo, g), m) in mom.data_mut().iter_mut().zip(grad.data()).zip(ms.data()) {
                *mo = momentum * *mo + lr * g / (m.sqrt() + epsilon);
            }
            let var = st.variables.get_mut(&var_id).expect("checked above");
            for (v, mo) in var.data_mut().iter_mut().zip(mom.data()) {
                *v -= mo;
            }
            var.clone()
        }
        OpKind::ApplyAdam { lr, beta1, beta2, epsilon } => {
            let st = serial_state();
            let var_id = variable_target(graph, st, id)?;
            st.journal_variable(var_id);
            st.journal_slot((id, "t"));
            st.journal_slot((id, "m"));
            st.journal_slot((id, "v"));
            let grad = input(1);
            let (lr, beta1, beta2, epsilon) = (*lr, *beta1, *beta2, *epsilon);
            let t_slot = st.slots.entry((id, "t")).or_insert_with(|| Tensor::scalar(0.0));
            let t = t_slot.scalar_value() + 1.0;
            *t_slot = Tensor::scalar(t);
            let m = st
                .slots
                .entry((id, "m"))
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            for (mv, g) in m.data_mut().iter_mut().zip(grad.data()) {
                *mv = beta1 * *mv + (1.0 - beta1) * g;
            }
            let m = m.clone();
            let v2 = st
                .slots
                .entry((id, "v"))
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            for (vv, g) in v2.data_mut().iter_mut().zip(grad.data()) {
                *vv = beta2 * *vv + (1.0 - beta2) * g * g;
            }
            let bc1 = 1.0 - beta1.powf(t);
            let bc2 = 1.0 - beta2.powf(t);
            let var = st.variables.get_mut(&var_id).expect("checked above");
            for ((v, mv), vv) in var.data_mut().iter_mut().zip(m.data()).zip(v2.data()) {
                let m_hat = mv / bc1;
                let v_hat = vv / bc2;
                *v -= lr * m_hat / (v_hat.sqrt() + epsilon);
            }
            var.clone()
        }
        OpKind::Group => Tensor::scalar(0.0),

        OpKind::Reshape(shape) => input(0).clone().reshaped(shape.clone()),
        OpKind::Transpose { perm } => ktf::transpose(input(0), perm, pool),
        OpKind::Concat { axis } => {
            let tensors: Vec<&Tensor> = (0..inputs.len()).map(input).collect();
            ktf::concat(&tensors, *axis, pool)
        }
        OpKind::Slice { axis, start, len } => ktf::slice_axis(input(0), *axis, *start, *len, pool),
        OpKind::Gather => ktf::gather_rows(input(0), input(1), pool),
        OpKind::ScatterAddRows { vocab, dim } => {
            ktf::scatter_add_rows(*vocab, *dim, input(0), input(1))
        }
        OpKind::ShapeOf => {
            let dims: Vec<f32> = input(0).shape().dims().iter().map(|&d| d as f32).collect();
            Tensor::from(dims)
        }
    };
    Ok(out)
}

/// Decodes a `[batch, max_len]` label tensor padded with `-1` into per-item
/// label sequences.
fn decode_padded_labels(labels: &Tensor, _rank_hint: usize, blank: usize) -> Result<Vec<Vec<usize>>, ExecError> {
    let batch = labels.shape().dim(0);
    let max_len = labels.shape().dim(1);
    let mut out = Vec::with_capacity(batch);
    for b in 0..batch {
        let mut seq = Vec::new();
        for l in 0..max_len {
            let v = labels.at(&[b, l]);
            if v < 0.0 {
                break;
            }
            let v = v as usize;
            if v == blank {
                return Err(ExecError::BadLabels(format!(
                    "label {v} equals the blank symbol at [{b}, {l}]"
                )));
            }
            seq.push(v);
        }
        out.push(seq);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_tensor::Shape;

    #[test]
    fn feed_and_fetch() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(3));
        let y = g.neg(x);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s.run1(y, &[(x, Tensor::from(vec![1.0, -2.0, 3.0]))]).unwrap();
        assert_eq!(out.data(), &[-1.0, 2.0, -3.0]);
    }

    #[test]
    fn missing_feed_is_an_error() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(3));
        let y = g.neg(x);
        let mut s = Session::new(g, Device::cpu(1));
        assert_eq!(s.run(&[y], &[]), Err(ExecError::MissingFeed(x)));
    }

    #[test]
    fn feed_shape_is_validated() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(3));
        let mut s = Session::new(g, Device::cpu(1));
        let err = s.run(&[x], &[(x, Tensor::zeros([2]))]).unwrap_err();
        assert!(matches!(err, ExecError::FeedShape { .. }));
    }

    #[test]
    fn constants_and_variables() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::from(vec![1.0, 2.0]));
        let v = g.variable("v", Tensor::from(vec![10.0, 20.0]));
        let sum = g.add_op(c, v);
        let mut s = Session::new(g, Device::cpu(1));
        assert_eq!(s.run1(sum, &[]).unwrap().data(), &[11.0, 22.0]);
        s.assign(v, Tensor::from(vec![0.0, 0.0])).unwrap();
        assert_eq!(s.run1(sum, &[]).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn sgd_apply_updates_variable() {
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![1.0, 1.0]));
        let grad = g.constant(Tensor::from(vec![0.5, -0.5]));
        let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.1 }, &[v, grad]);
        let mut s = Session::new(g, Device::cpu(1));
        s.run(&[apply], &[]).unwrap();
        let v_now = s.variable_value(v).unwrap();
        assert!((v_now.data()[0] - 0.95).abs() < 1e-6);
        assert!((v_now.data()[1] - 1.05).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![0.0]));
        let grad = g.constant(Tensor::from(vec![1.0]));
        let apply = g.add(OpKind::ApplyMomentum { lr: 1.0, momentum: 0.5 }, &[v, grad]);
        let mut s = Session::new(g, Device::cpu(1));
        s.run(&[apply], &[]).unwrap(); // velocity 1.0, v = -1.0
        s.run(&[apply], &[]).unwrap(); // velocity 1.5, v = -2.5
        assert!((s.variable_value(v).unwrap().data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn rmsprop_normalizes_step_size() {
        // With a constant gradient, RMSProp steps approach lr/sqrt(g^2)*g
        // = lr * sign(g) as ms converges; verify the variable decreases.
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![5.0]));
        let grad = g.constant(Tensor::from(vec![2.0]));
        let apply = g.add(
            OpKind::ApplyRmsProp { lr: 0.1, decay: 0.9, momentum: 0.0, epsilon: 1e-8 },
            &[v, grad],
        );
        let mut s = Session::new(g, Device::cpu(1));
        let mut prev = 5.0;
        for _ in 0..10 {
            s.run(&[apply], &[]).unwrap();
            let now = s.variable_value(v).unwrap().data()[0];
            assert!(now < prev);
            prev = now;
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize (v - 3)^2 with Adam using graph-built gradient 2(v-3).
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![0.0]));
        let target = g.constant(Tensor::from(vec![3.0]));
        let diff = g.sub(v, target);
        let two = g.constant(Tensor::scalar(2.0));
        let grad = g.mul(diff, two);
        let apply = g.add(
            OpKind::ApplyAdam { lr: 0.1, beta1: 0.9, beta2: 0.999, epsilon: 1e-8 },
            &[v, grad],
        );
        let mut s = Session::new(g, Device::cpu(1));
        for _ in 0..200 {
            s.run(&[apply], &[]).unwrap();
        }
        let now = s.variable_value(v).unwrap().data()[0];
        assert!((now - 3.0).abs() < 0.05, "v = {now}");
    }

    #[test]
    fn tracing_captures_events() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(4, 4));
        let y = g.matmul(x, x);
        let z = g.relu(y);
        let mut s = Session::new(g, Device::cpu(1));
        s.enable_tracing();
        s.run(&[z], &[(x, Tensor::ones([4, 4]))]).unwrap();
        let trace = s.take_trace();
        assert_eq!(trace.steps, 1);
        let ops: Vec<&str> = trace.events.iter().map(|e| e.op).collect();
        assert_eq!(ops, vec!["Placeholder", "MatMul", "Relu"]);
        assert!(trace.events[1].cost.flops > 0.0);
    }

    #[test]
    fn sim_gpu_produces_identical_values_with_modeled_times() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(8, 8));
        let y = g.matmul(x, x);
        let feeds = Tensor::filled([8, 8], 0.5);
        let mut cpu = Session::new(g.clone(), Device::cpu(1));
        let mut gpu = Session::new(g, Device::sim_gpu());
        gpu.enable_tracing();
        let a = cpu.run1(y, &[(x, feeds.clone())]).unwrap();
        let b = gpu.run1(y, &[(x, feeds)]).unwrap();
        assert_eq!(a, b);
        let trace = gpu.take_trace();
        // Modeled durations must include the launch overhead.
        assert!(trace.events.iter().all(|e| e.nanos >= 1_500.0));
    }

    #[test]
    fn random_ops_are_deterministic_per_seed() {
        let mut g = Graph::new();
        let r = g.random_normal([16]);
        let mut s1 = Session::with_seed(g.clone(), Device::cpu(1), 99);
        let mut s2 = Session::with_seed(g, Device::cpu(1), 99);
        assert_eq!(s1.run1(r, &[]).unwrap(), s2.run1(r, &[]).unwrap());
    }

    #[test]
    fn dropout_mask_statistics() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(10_000));
        let mask = g.dropout_mask(x, 0.25);
        let mut s = Session::new(g, Device::cpu(1));
        let m = s.run1(mask, &[(x, Tensor::zeros([10_000]))]).unwrap();
        let zeros = m.data().iter().filter(|&&v| v == 0.0).count();
        let kept = m.data().iter().find(|&&v| v != 0.0).copied().unwrap();
        assert!((zeros as f32 / 10_000.0 - 0.25).abs() < 0.03);
        assert!((kept - 1.0 / 0.75).abs() < 1e-6);
    }

    #[test]
    fn plan_executes_only_needed_nodes() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(2));
        let used = g.neg(x);
        let unused = g.placeholder("unused", Shape::vector(9));
        let _dead = g.exp(unused);
        let mut s = Session::new(g, Device::cpu(1));
        s.enable_tracing();
        // Running `used` must not require feeding `unused`.
        s.run1(used, &[(x, Tensor::zeros([2]))]).unwrap();
        let trace = s.take_trace();
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn eager_release_keeps_peak_memory_below_sum_of_intermediates() {
        // A long chain of equally-sized intermediates: with eager release
        // the peak is a small multiple of one tensor, not chain_len of them.
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(10_000));
        let mut node = x;
        for _ in 0..50 {
            node = g.tanh(node);
        }
        let mut s = Session::new(g, Device::cpu(1));
        s.enable_tracing();
        s.run1(node, &[(x, Tensor::zeros([10_000]))]).unwrap();
        let trace = s.take_trace();
        let one_tensor = 10_000 * 4;
        assert!(trace.peak_live_bytes > 0);
        assert!(
            (trace.peak_live_bytes as usize) <= 4 * one_tensor,
            "peak {} should be a few tensors, not the whole chain ({})",
            trace.peak_live_bytes,
            51 * one_tensor
        );
    }

    #[test]
    fn fetched_and_reused_values_survive_release() {
        // x is consumed early but also fetched; y reuses an early value.
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4));
        let a = g.neg(x);
        let b = g.exp(a);
        let c = g.add_op(b, a); // `a` is consumed again after `b`
        let out = {
            let mut s = Session::new(g, Device::cpu(1));
            s.run(&[c, a, x], &[(x, Tensor::from(vec![1.0, 2.0, 3.0, 4.0]))]).unwrap()
        };
        assert_eq!(out[1].data(), &[-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(out[2].data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!((out[0].data()[0] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn duplicate_fetches_clone_only_the_extras() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(3));
        let y = g.neg(x);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s.run(&[y, y], &[(x, Tensor::from(vec![1.0, 2.0, 3.0]))]).unwrap();
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0].data(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn recycler_reuses_buffers_across_runs() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4096));
        let mut node = x;
        for _ in 0..4 {
            node = g.tanh(node);
        }
        let mut s = Session::new(g, Device::cpu(1));
        let feed = Tensor::filled([4096], 0.5);
        s.run1(node, &[(x, feed.clone())]).unwrap();
        let first = s.recycle_stats();
        assert!(first.returned > 0, "freed intermediates must reach the pool");
        s.run1(node, &[(x, feed)]).unwrap();
        let second = s.recycle_stats();
        assert!(second.hits > first.hits, "second run must draw from the pool");
    }

    #[test]
    fn parallel_executor_matches_serial_results() {
        // A graph with parallel branches, RNG, and an optimizer update:
        // every worker count must produce bitwise-identical results.
        fn build() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
            let mut g = Graph::new();
            let x = g.placeholder("x", Shape::matrix(16, 16));
            let v = g.variable("v", Tensor::filled([16, 16], 0.1));
            let noise = g.random_normal([16, 16]);
            let a = g.matmul(x, v);
            let b = g.tanh(x);
            let c = g.add_op(a, b);
            let d = g.add_op(c, noise);
            let loss = g.mean_all(d);
            let grads = crate::grad::gradients(&mut g, loss, &[v]);
            let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.05 }, &[v, grads[0]]);
            (g, x, v, loss, apply)
        }
        let feed = Tensor::filled([16, 16], 0.25);
        let mut reference: Option<(Tensor, Tensor)> = None;
        for inter_ops in [1usize, 2, 4, 8] {
            let (g, x, v, loss, apply) = build();
            let device = if inter_ops == 1 {
                Device::cpu(1)
            } else {
                Device::cpu_inter_op(1, inter_ops)
            };
            let mut s = Session::with_seed(g, device, 7);
            let mut last_loss = Tensor::scalar(0.0);
            for _ in 0..3 {
                let out = s.run(&[loss, apply], &[(x, feed.clone())]).unwrap();
                last_loss = out.into_iter().next().unwrap();
            }
            let var = s.variable_value(v).unwrap().clone();
            match &reference {
                None => reference = Some((last_loss, var)),
                Some((ref_loss, ref_var)) => {
                    assert_eq!(&last_loss, ref_loss, "loss diverged at {inter_ops} workers");
                    assert_eq!(&var, ref_var, "variables diverged at {inter_ops} workers");
                }
            }
        }
    }

    #[test]
    fn steady_state_steps_allocate_nothing_for_planned_tensors() {
        // The plan's census prewarms the arena and planned misses grow
        // the retention caps, so the per-step miss delta converges to
        // zero on both executors. Warm-up length is interleaving-
        // dependent (kernel temporaries can set late concurrency
        // records), so the assertion is existential: within the step
        // budget the session must reach four consecutive steps that
        // allocate nothing for planned tensors.
        for device in [Device::cpu(1), Device::cpu_inter_op(1, 2)] {
            let mut g = Graph::new();
            let x = g.placeholder("x", Shape::matrix(16, 16));
            let v = g.variable("v", Tensor::filled([16, 16], 0.1));
            let noise = g.random_normal([16, 16]);
            let a = g.matmul(x, v);
            let b = g.add_op(a, noise);
            let loss = g.mean_all(b);
            let grads = crate::grad::gradients(&mut g, loss, &[v]);
            let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.05 }, &[v, grads[0]]);
            let mut s = Session::with_seed(g, device.clone(), 7);
            let feed = Tensor::filled([16, 16], 0.25);
            let (mut quiet, mut last, mut spent) = (0u32, 0u64, 0usize);
            while spent < 40 && quiet < 4 {
                s.run(&[loss, apply], &[(x, feed.clone())]).unwrap();
                spent += 1;
                let now = s.runtime_counters().allocations;
                quiet = if now == last { quiet + 1 } else { 0 };
                last = now;
            }
            let counters = s.runtime_counters();
            assert!(counters.arena_bytes > 0, "the plan must pin an arena ({device:?})");
            assert!(
                quiet >= 4,
                "no allocation-free steady state within {spent} step(s) ({device:?})"
            );
        }
    }

    #[test]
    fn width_policies_agree_bitwise_and_report_their_decisions() {
        // Moldable vs Static widths change only where kernel chunks run,
        // never what they compute: same seed, same device, bitwise-equal
        // training — with the decision counters telling the two apart.
        fn train(policy: WidthPolicy) -> (Tensor, Tensor, RuntimeCounters) {
            let mut g = Graph::new();
            let x = g.placeholder("x", Shape::matrix(16, 16));
            let v = g.variable("v", Tensor::filled([16, 16], 0.1));
            let a = g.matmul(x, v);
            let b = g.tanh(x);
            let c = g.add_op(a, b);
            let loss = g.mean_all(c);
            let grads = crate::grad::gradients(&mut g, loss, &[v]);
            let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.05 }, &[v, grads[0]]);
            let mut s = Session::with_seed(g, Device::cpu_inter_op(2, 2), 7);
            s.set_width_policy(policy);
            let feed = Tensor::filled([16, 16], 0.25);
            let mut last = Tensor::scalar(0.0);
            for _ in 0..3 {
                let out = s.run(&[loss, apply], &[(x, feed.clone())]).unwrap();
                last = out.into_iter().next().unwrap();
            }
            let var = s.variable_value(v).unwrap().clone();
            (last, var, s.runtime_counters())
        }
        let (loss_m, var_m, counters_m) = train(WidthPolicy::Moldable);
        let (loss_s, var_s, counters_s) = train(WidthPolicy::Static);
        assert_eq!(loss_m, loss_s, "width policy must not change the loss bits");
        assert_eq!(var_m, var_s, "width policy must not change the variable bits");
        assert_eq!(counters_s.coscheduled_ops, 0, "static widths are never molded");
        assert!(counters_s.wide_ops > 0);
        assert!(
            counters_m.coscheduled_ops > 0,
            "tiny co-runnable ops must be molded narrow under Moldable"
        );
    }

    #[test]
    fn parallel_executor_reports_missing_feed() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(3));
        let y = g.neg(x);
        let mut s = Session::new(g, Device::cpu_inter_op(1, 4));
        assert_eq!(s.run(&[y], &[]), Err(ExecError::MissingFeed(x)));
    }

    #[test]
    fn parallel_executor_traces_in_plan_order() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(4, 4));
        let y = g.matmul(x, x);
        let z = g.relu(y);
        let mut s = Session::new(g, Device::cpu_inter_op(1, 4));
        s.enable_tracing();
        s.run(&[z], &[(x, Tensor::ones([4, 4]))]).unwrap();
        let trace = s.take_trace();
        let ops: Vec<&str> = trace.events.iter().map(|e| e.op).collect();
        assert_eq!(ops, vec!["Placeholder", "MatMul", "Relu"]);
        assert!(trace.events.iter().all(|e| e.nanos >= 0.0));
    }

    #[test]
    fn parallel_executor_propagates_op_errors() {
        let mut g = Graph::new();
        let logits = g.placeholder("logits", Shape::new(vec![4, 1, 3]));
        let labels = g.placeholder("labels", Shape::matrix(1, 2));
        let loss = g.ctc_loss(logits, labels, 0);
        let mut s = Session::new(g, Device::cpu_inter_op(1, 4));
        // Label 0 collides with the blank symbol: BadLabels.
        let err = s
            .run(
                &[loss],
                &[
                    (logits, Tensor::zeros([4, 1, 3])),
                    (labels, Tensor::from_vec(vec![0.0, 1.0], [1, 2])),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::BadLabels(_)));
    }

    #[test]
    fn parallel_executor_propagates_op_panics() {
        // A gather with an out-of-range index asserts inside the kernel
        // at run time. The parallel executor must re-raise that panic on
        // the calling thread — not hang the coordinator (the panicking
        // op never reports completion) and not poison the worker set.
        let mut g = Graph::new();
        let table = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let idx = g.placeholder("idx", Shape::vector(2));
        let rows = g.gather(table, idx);
        let mut s = Session::new(g, Device::cpu_inter_op(1, 4));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.run(&[rows], &[(idx, Tensor::from(vec![0.0, 9.0]))]);
        }));
        assert!(result.is_err(), "kernel panic must propagate, not hang");
        // The session (and its inter-op pool) must remain usable.
        let out = s.run1(rows, &[(idx, Tensor::from(vec![1.0, 0.0]))]).unwrap();
        assert_eq!(out.data(), &[3.0, 4.0, 1.0, 2.0]);
    }

    /// A graph whose plan runs an SGD update *before* a CTC loss that can
    /// be made to fail via bad labels: the classic "state committed, then
    /// the step died" shape. Returns (graph, label placeholder, logits
    /// placeholder, variable, apply node, loss node).
    fn apply_then_failable_loss() -> (Graph, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![1.0, 2.0]));
        let grad = g.random_normal([2]);
        let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.1 }, &[v, grad]);
        let logits = g.placeholder("logits", Shape::new(vec![4, 1, 3]));
        let labels = g.placeholder("labels", Shape::matrix(1, 2));
        let loss = g.ctc_loss(logits, labels, 0);
        (g, labels, logits, v, apply, loss)
    }

    fn rollback_after_mid_run_error(device: Device) {
        let (g, labels, logits, v, apply, loss) = apply_then_failable_loss();
        let mut s = Session::with_seed(g, device, 42);
        let before = s.variable_value(v).unwrap().clone();
        // Label 0 collides with the blank symbol: the run fails after the
        // apply op already committed its variable update in plan order.
        let err = s
            .run(
                &[apply, loss],
                &[
                    (logits, Tensor::zeros([4, 1, 3])),
                    (labels, Tensor::from_vec(vec![0.0, 1.0], [1, 2])),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::BadLabels(_)));
        assert_eq!(
            s.variable_value(v).unwrap(),
            &before,
            "failed run must roll the committed SGD update back"
        );
        // The RNG must be rewound too: the post-failure run draws the
        // same gradient a never-failed session would.
        let good = [
            (logits, Tensor::zeros([4, 1, 3])),
            (labels, Tensor::from_vec(vec![1.0, 2.0], [1, 2])),
        ];
        s.run(&[apply, loss], &good).expect("session recovered");
        let recovered = s.variable_value(v).unwrap().clone();
        let (g2, labels2, logits2, v2, apply2, loss2) = apply_then_failable_loss();
        let mut fresh = Session::with_seed(g2, Device::cpu(1), 42);
        fresh
            .run(
                &[apply2, loss2],
                &[
                    (logits2, Tensor::zeros([4, 1, 3])),
                    (labels2, Tensor::from_vec(vec![1.0, 2.0], [1, 2])),
                ],
            )
            .expect("runs");
        assert_eq!(
            recovered,
            fresh.variable_value(v2).unwrap().clone(),
            "a rolled-back failure must leave no trace on later steps"
        );
    }

    #[test]
    fn serial_executor_rolls_back_failed_runs() {
        rollback_after_mid_run_error(Device::cpu(1));
    }

    #[test]
    fn parallel_executor_rolls_back_failed_runs() {
        rollback_after_mid_run_error(Device::cpu_inter_op(1, 4));
    }

    #[test]
    fn injected_op_panic_rolls_back_and_session_stays_usable() {
        use crate::fault::{FaultAction, FaultPlan, FaultSite};
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![1.0, 1.0]));
        let grad = g.constant(Tensor::from(vec![0.5, -0.5]));
        let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.1 }, &[v, grad]);
        let mut s = Session::new(g, Device::cpu(1));
        // Fire after the apply committed (plan: variable, constant, apply).
        s.set_fault_plan(Some(Arc::new(
            FaultPlan::new(0).with(FaultSite::ExecOp, 2, FaultAction::Panic),
        )));
        let before = s.variable_value(v).unwrap().clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.run(&[apply], &[]);
        }));
        assert!(result.is_err(), "injected panic must surface");
        assert_eq!(s.variable_value(v).unwrap(), &before, "panic must roll state back");
        s.set_fault_plan(None);
        s.run(&[apply], &[]).expect("session recovered after injected panic");
        assert!((s.variable_value(v).unwrap().data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn injected_nan_poisoning_is_visible_in_the_output() {
        use crate::fault::{FaultAction, FaultPlan, FaultSite};
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4));
        let y = g.neg(x);
        let mut s = Session::new(g, Device::cpu(1));
        // Plan order: placeholder (hit 0), neg (hit 1).
        s.set_fault_plan(Some(Arc::new(
            FaultPlan::new(0).with(FaultSite::ExecOp, 1, FaultAction::PoisonNan),
        )));
        let out = s.run1(y, &[(x, Tensor::from(vec![1.0, 2.0, 3.0, 4.0]))]).unwrap();
        assert!(out.data().iter().all(|v| v.is_nan()), "poisoned op must emit NaNs");
        s.set_fault_plan(None);
        let clean = s.run1(y, &[(x, Tensor::from(vec![1.0, 2.0, 3.0, 4.0]))]).unwrap();
        assert_eq!(clean.data(), &[-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn ctc_loss_through_graph() {
        let mut g = Graph::new();
        let logits = g.placeholder("logits", Shape::new(vec![4, 1, 3]));
        let labels = g.placeholder("labels", Shape::matrix(1, 2));
        let loss = g.ctc_loss(logits, labels, 0);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s
            .run1(
                loss,
                &[
                    (logits, Tensor::zeros([4, 1, 3])),
                    (labels, Tensor::from_vec(vec![1.0, 2.0], [1, 2])),
                ],
            )
            .unwrap();
        assert!(out.scalar_value() > 0.0);
        assert!(out.scalar_value().is_finite());
    }

    #[test]
    fn shape_of_materializes_dims() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::new(vec![2, 5, 3]));
        let sh = g.shape_of(x);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s.run1(sh, &[(x, Tensor::zeros([2, 5, 3]))]).unwrap();
        assert_eq!(out.data(), &[2.0, 5.0, 3.0]);
    }

    /// A tiny SGD step graph: returns (session, loss-ish fetch, apply).
    fn guarded_sgd() -> (Session, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![1.0, 1.0]));
        let grad = g.placeholder("grad", Shape::vector(2));
        let loss = g.sum_all(v);
        let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.1 }, &[v, grad]);
        (Session::new(g, Device::cpu(1)), v, loss, apply)
    }

    #[test]
    fn guardrail_rolls_back_nonfinite_fetch() {
        let (mut s, v, loss, apply) = guarded_sgd();
        let grad = s.graph().iter().find(|(_, n)| n.name.as_deref() == Some("grad")).unwrap().0;
        s.set_guardrail(Some(Guardrail::finite()));
        let before = s.variable_value(v).unwrap().clone();
        let step_before = s.step();
        let err = s
            .run(&[loss, apply], &[(grad, Tensor::from(vec![f32::NAN, 0.0]))])
            .unwrap_err();
        assert!(matches!(err, ExecError::GuardTripped(_)), "got {err:?}");
        assert_eq!(s.variable_value(v).unwrap(), &before, "trip must roll variables back");
        assert_eq!(s.step(), step_before, "trip must rewind the run counter");
        assert_eq!(s.guard_trips(), 1);
        // Clean retry succeeds and commits.
        s.run(&[loss, apply], &[(grad, Tensor::from(vec![0.5, 0.5]))]).unwrap();
        assert_eq!(s.step(), step_before + 1);
        assert!((s.variable_value(v).unwrap().data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn guardrail_limit_trips_on_magnitude() {
        let (mut s, _v, loss, apply) = guarded_sgd();
        let grad = s.graph().iter().find(|(_, n)| n.name.as_deref() == Some("grad")).unwrap().0;
        s.set_guardrail(Some(Guardrail::finite().with_limit(loss, 1.0)));
        // Loss (sum of v) is 2.0 > 1.0: tripped even though everything is
        // finite.
        let err = s.run(&[loss, apply], &[(grad, Tensor::from(vec![0.0, 0.0]))]).unwrap_err();
        assert!(matches!(err, ExecError::GuardTripped(_)));
        // Raise the limit: passes.
        s.set_guardrail(Some(Guardrail::finite().with_limit(loss, 10.0)));
        s.run(&[loss, apply], &[(grad, Tensor::from(vec![0.0, 0.0]))]).unwrap();
    }

    #[test]
    fn guardrail_rng_rewinds_on_trip() {
        let mut g = Graph::new();
        let sample = g.random_normal(Shape::vector(4));
        let v = g.variable("v", Tensor::from(vec![1.0]));
        let grad = g.placeholder("grad", Shape::vector(1));
        let apply = g.add(OpKind::ApplyGradientDescent { lr: 0.1 }, &[v, grad]);
        let mut s = Session::new(g, Device::cpu(1));
        s.set_guardrail(Some(Guardrail::finite()));
        let rng_before = s.rng_state();
        let err = s.run(&[sample, apply], &[(grad, Tensor::from(vec![f32::NAN]))]).unwrap_err();
        assert!(matches!(err, ExecError::GuardTripped(_)));
        assert_eq!(s.rng_state(), rng_before, "trip must rewind the RNG stream");
        // Replaying with a clean gradient draws the same sample bits.
        let out = s.run(&[sample, apply], &[(grad, Tensor::from(vec![0.0]))]).unwrap();
        s.set_rng_state(rng_before);
        let replay = s.run(&[sample], &[]).unwrap();
        assert_eq!(out[0], replay[0]);
    }

    #[test]
    fn poison_waits_for_the_poisoned_fetch() {
        let (mut s, v, loss, apply) = guarded_sgd();
        let grad = s.graph().iter().find(|(_, n)| n.name.as_deref() == Some("grad")).unwrap().0;
        s.poison_next_fetch(loss);
        // A run that does not fetch the poisoned node is unaffected.
        s.run(&[apply], &[(grad, Tensor::from(vec![0.0, 0.0]))]).unwrap();
        // The next run fetching it sees NaN; committed state is untouched.
        let out = s.run(&[loss], &[]).unwrap();
        assert!(out[0].data().iter().all(|x| x.is_nan()));
        assert!(s.variable_value(v).unwrap().data().iter().all(|x| x.is_finite()));
        // One-shot: the poison cleared.
        let clean = s.run(&[loss], &[]).unwrap();
        assert!(clean[0].data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn optimizer_slots_round_trip() {
        let mut g = Graph::new();
        let v = g.variable("v", Tensor::from(vec![0.0]));
        let grad = g.constant(Tensor::from(vec![1.0]));
        let apply = g.add(OpKind::ApplyAdam { lr: 0.1, beta1: 0.9, beta2: 0.999, epsilon: 1e-8 }, &[v, grad]);
        let mut s = Session::new(g, Device::cpu(1));
        s.run(&[apply], &[]).unwrap();
        s.run(&[apply], &[]).unwrap();
        let snapshot: Vec<(NodeId, &'static str, Tensor)> =
            s.optimizer_slots().into_iter().map(|(id, n, t)| (id, n, t.clone())).collect();
        assert_eq!(snapshot.len(), 3, "Adam keeps t/m/v slots");
        let var_snapshot = s.variable_value(v).unwrap().clone();
        let mut fresh = Session::new(s.graph().clone(), Device::cpu(1));
        fresh.assign(v, var_snapshot).unwrap();
        fresh.clear_optimizer_slots();
        for (id, name, value) in snapshot {
            fresh.restore_optimizer_slot(id, name, value).unwrap();
        }
        s.run(&[apply], &[]).unwrap();
        fresh.run(&[apply], &[]).unwrap();
        assert_eq!(
            s.variable_value(v).unwrap().data(),
            fresh.variable_value(v).unwrap().data(),
            "restored slots must continue the trajectory bitwise"
        );
        assert!(fresh.restore_optimizer_slot(v, "bogus", Tensor::scalar(0.0)).is_err());
    }

    #[test]
    fn scale_learning_rates_shrinks_the_step() {
        let (mut s, v, _loss, apply) = guarded_sgd();
        let grad = s.graph().iter().find(|(_, n)| n.name.as_deref() == Some("grad")).unwrap().0;
        assert_eq!(s.scale_learning_rates(0.5), 1);
        s.run(&[apply], &[(grad, Tensor::from(vec![1.0, 1.0]))]).unwrap();
        // lr was 0.1, now 0.05: v goes 1.0 -> 0.95.
        assert!((s.variable_value(v).unwrap().data()[0] - 0.95).abs() < 1e-6);
    }

    /// Graph with one bf16-eligible GEMM: x:[4,128] @ w:[128,64]
    /// (k = 128 ≥ 64, n = 64 ≥ 16, k·n = 8192 — clears
    /// [`cost::bf16_gemm_eligible`]).
    fn gemm_session(device: Device) -> (Session, NodeId, Tensor, Tensor) {
        let mut rng = Rng::seeded(0x18);
        let xv = Tensor::randn([4, 128], 0.0, 1.0, &mut rng);
        let wv = Tensor::randn([128, 64], 0.0, 0.5, &mut rng);
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(4, 128));
        let w = g.variable("w", wv.clone());
        let y = g.matmul(x, w);
        (Session::new(g, device), y, xv, wv)
    }

    #[test]
    fn bf16_precision_switches_the_gemm_kernel() {
        let (mut s, y, xv, wv) = gemm_session(Device::cpu(2));
        let x = s.graph().iter().find(|(_, n)| n.name.as_deref() == Some("x")).unwrap().0;
        let f32_out = s.run1(y, &[(x, xv.clone())]).unwrap();

        assert_eq!(s.precision(), Precision::F32);
        s.set_precision(Precision::Bf16);
        assert_eq!(s.precision(), Precision::Bf16);
        let bf16_out = s.run1(y, &[(x, xv.clone())]).unwrap();

        // The bf16 session output is bitwise the packed bf16 kernel's.
        let expect = kgemm::matmul_packed_bf16(&xv, &wv, false, false, &ExecPool::new(2));
        assert_eq!(bf16_out.data(), expect.data(), "session must use the bf16 engine");
        // And it genuinely lost mantissa bits relative to f32.
        assert!(bf16_out.max_abs_diff(&f32_out) > 0.0, "bf16 path was a no-op");

        // Switching back restores the f32 result bitwise.
        s.set_precision(Precision::F32);
        assert_eq!(s.run1(y, &[(x, xv)]).unwrap().data(), f32_out.data());
    }

    #[test]
    fn bf16_session_is_bitwise_identical_serial_vs_parallel() {
        let (mut serial, y, xv, _) = gemm_session(Device::cpu(1));
        let (mut par, yp, _, _) = gemm_session(Device::cpu_inter_op(2, 4));
        let x = serial.graph().iter().find(|(_, n)| n.name.as_deref() == Some("x")).unwrap().0;
        let xq = par.graph().iter().find(|(_, n)| n.name.as_deref() == Some("x")).unwrap().0;
        serial.set_precision(Precision::Bf16);
        par.set_precision(Precision::Bf16);
        let a = serial.run1(y, &[(x, xv.clone())]).unwrap();
        let b = par.run1(yp, &[(xq, xv)]).unwrap();
        assert_eq!(a.data(), b.data(), "bf16 must stay executor-independent");
    }

    #[test]
    fn calibrate_quantize_run_pipeline() {
        let (mut s, y, xv, wv) = gemm_session(Device::cpu(2));
        let x = s.graph().iter().find(|(_, n)| n.name.as_deref() == Some("x")).unwrap().0;
        let f32_out = s.run1(y, &[(x, xv.clone())]).unwrap();

        // Quantizing without calibration is a typed error, not a panic.
        assert!(s.quantize_from_calibration().is_err());

        // Calibrate over two batches; ranges merge via per-channel max.
        let mut rng = Rng::seeded(0x19);
        let batch2 = Tensor::randn([4, 128], 0.0, 2.0, &mut rng);
        s.begin_calibration();
        s.run1(y, &[(x, xv.clone())]).unwrap();
        s.run1(y, &[(x, batch2.clone())]).unwrap();
        assert_eq!(s.finish_calibration(), 1, "one GEMM input observed");

        let ranges = s.calibration_ranges().expect("ranges recorded").clone();
        let (_, chans) = ranges.iter().next().unwrap();
        assert_eq!(chans.len(), 128, "one range per k-channel");
        for (c, &chan) in chans.iter().enumerate() {
            let expect = (0..4)
                .map(|r| xv.data()[r * 128 + c].abs().max(batch2.data()[r * 128 + c].abs()))
                .fold(0.0f32, f32::max);
            assert!((chan - expect).abs() < 1e-6, "channel {c} range is the running max");
        }

        assert_eq!(s.quantize_from_calibration(), Ok(1));
        let q_out = s.run1(y, &[(x, xv.clone())]).unwrap();

        // The session output is bitwise the standalone quantized kernel's.
        let act_max = chans.iter().fold(0.0f32, |m, &v| m.max(v));
        let qg = QuantizedGemm::from_weights(wv.data(), 128, 64, false, act_max);
        let expect = qg.matmul(&xv, &ExecPool::new(2));
        assert_eq!(q_out.data(), expect.data(), "session must use the int8 engine");
        // int8 tracks f32 within the quantization grid error bound.
        let w_max = wv.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let tol = 128.0 * act_max * w_max / 127.0;
        assert!(q_out.max_abs_diff(&f32_out) <= tol, "int8 drifted past the grid bound");
        assert!(q_out.max_abs_diff(&f32_out) > 0.0, "int8 path was a no-op");

        // Dropping the plan restores the f32 result bitwise.
        s.clear_quantization();
        assert!(s.quant_plan().is_none());
        assert_eq!(s.run1(y, &[(x, xv)]).unwrap().data(), f32_out.data());
    }

    #[test]
    fn calibration_ranges_round_trip_through_setter() {
        let (mut s, y, xv, _) = gemm_session(Device::cpu(1));
        let x = s.graph().iter().find(|(_, n)| n.name.as_deref() == Some("x")).unwrap().0;
        s.begin_calibration();
        s.run1(y, &[(x, xv.clone())]).unwrap();
        s.finish_calibration();
        let saved = s.calibration_ranges().expect("recorded").clone();

        // A fresh session (as after checkpoint restore) accepts the saved
        // ranges and produces the same quantization plan.
        s.quantize_from_calibration().unwrap();
        let direct = s.run1(y, &[(x, xv.clone())]).unwrap();

        let (mut fresh, yf, _, _) = gemm_session(Device::cpu(1));
        let xf = fresh.graph().iter().find(|(_, n)| n.name.as_deref() == Some("x")).unwrap().0;
        fresh.set_calibration_ranges(saved.clone());
        assert_eq!(fresh.calibration_ranges(), Some(&saved));
        fresh.quantize_from_calibration().unwrap();
        assert_eq!(fresh.run1(yf, &[(xf, xv)]).unwrap().data(), direct.data());
    }
}
