//! Reduction and expansion kernels (op class D in the paper's taxonomy).

use crate::pool::ExecPool;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Which statistic an axis reduction computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// Sum of elements along the axis.
    Sum,
    /// Arithmetic mean along the axis.
    Mean,
    /// Maximum along the axis.
    Max,
}

/// Reduces `x` along `axis`. When `keep_dims` is true the reduced axis is
/// retained with extent 1, which keeps the result broadcast-compatible with
/// the input (the common case in attention and softmax plumbing).
///
/// # Panics
///
/// Panics if `axis >= x.rank()`, or for [`ReduceKind::Max`] when the axis
/// has extent 0.
pub fn reduce_axis(x: &Tensor, axis: usize, kind: ReduceKind, keep_dims: bool, pool: &ExecPool) -> Tensor {
    let rank = x.shape().rank();
    assert!(axis < rank, "axis {axis} out of range for rank {rank}");
    let extent = x.shape().dim(axis);
    if matches!(kind, ReduceKind::Max) {
        assert!(extent > 0, "max reduction along empty axis");
    }
    let outer: usize = x.shape().dims()[..axis].iter().product();
    let inner: usize = x.shape().dims()[axis + 1..].iter().product();
    let out_shape = if keep_dims { x.shape().with_axis_one(axis) } else { x.shape().without_axis(axis) };
    let mut out = Tensor::zeros(out_shape);
    if out.is_empty() {
        return out;
    }
    let src = x.data();
    let span = inner.max(1);
    pool.for_spans(out.data_mut(), span, extent * inner, |o, dst| {
        match kind {
            ReduceKind::Max => dst.fill(f32::NEG_INFINITY),
            _ => dst.fill(0.0),
        }
        let base = o * extent * inner;
        for a in 0..extent {
            let row = &src[base + a * inner..base + a * inner + inner];
            match kind {
                ReduceKind::Max => {
                    for (d, &v) in dst.iter_mut().zip(row) {
                        if v > *d {
                            *d = v;
                        }
                    }
                }
                _ => {
                    for (d, &v) in dst.iter_mut().zip(row) {
                        *d += v;
                    }
                }
            }
        }
        if matches!(kind, ReduceKind::Mean) && extent > 0 {
            let inv = 1.0 / extent as f32;
            for d in dst.iter_mut() {
                *d *= inv;
            }
        }
    });
    let _ = outer;
    out
}

/// Sum of all elements as a scalar tensor (`Sum` with no axis argument).
pub fn reduce_all_sum(x: &Tensor, pool: &ExecPool) -> Tensor {
    let total = pool.map_reduce(
        x.len(),
        1,
        0.0f64,
        |r| x.data()[r].iter().map(|&v| v as f64).sum::<f64>(),
        |a, b| a + b,
    );
    Tensor::scalar(total as f32)
}

/// Mean of all elements as a scalar tensor.
pub fn reduce_all_mean(x: &Tensor, pool: &ExecPool) -> Tensor {
    if x.is_empty() {
        return Tensor::scalar(0.0);
    }
    let s = reduce_all_sum(x, pool).scalar_value();
    Tensor::scalar(s / x.len() as f32)
}

/// Sums `x` down to `target`, inverting a broadcast: axes where `target`
/// has extent 1 (or is missing leading axes) are summed away. This is the
/// gradient of broadcasting and the workhorse of `BiasAdd`-style backward
/// passes.
///
/// # Panics
///
/// Panics if `target` does not broadcast to `x.shape()`.
pub fn reduce_to_shape(x: &Tensor, target: &Shape, pool: &ExecPool) -> Tensor {
    assert!(
        target.broadcasts_to(x.shape()),
        "{} does not broadcast to {}",
        target,
        x.shape()
    );
    if x.shape() == target {
        return x.clone();
    }
    let mut current = x.clone();
    // Sum away extra leading axes.
    while current.shape().rank() > target.rank() {
        current = reduce_axis(&current, 0, ReduceKind::Sum, false, pool);
    }
    // Sum (keeping dims) along axes where target is 1 but current is not.
    for axis in 0..target.rank() {
        if target.dim(axis) == 1 && current.shape().dim(axis) != 1 {
            current = reduce_axis(&current, axis, ReduceKind::Sum, true, pool);
        }
    }
    debug_assert_eq!(current.shape(), target);
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ExecPool {
        ExecPool::new(4).with_grain(1)
    }

    #[test]
    fn sum_along_each_axis() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let rows = reduce_axis(&x, 1, ReduceKind::Sum, false, &pool());
        assert_eq!(rows.shape().dims(), &[2]);
        assert_eq!(rows.data(), &[6.0, 15.0]);
        let cols = reduce_axis(&x, 0, ReduceKind::Sum, false, &pool());
        assert_eq!(cols.shape().dims(), &[3]);
        assert_eq!(cols.data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn keep_dims_shape() {
        let x = Tensor::ones([2, 3, 4]);
        let r = reduce_axis(&x, 1, ReduceKind::Sum, true, &pool());
        assert_eq!(r.shape().dims(), &[2, 1, 4]);
        assert_eq!(r.data(), &[3.0; 8]);
    }

    #[test]
    fn mean_and_max() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, -1.0, 0.0, 2.0], [2, 3]);
        let mean = reduce_axis(&x, 1, ReduceKind::Mean, false, &pool());
        assert_eq!(mean.data(), &[3.0, 1.0 / 3.0]);
        let max = reduce_axis(&x, 1, ReduceKind::Max, false, &pool());
        assert_eq!(max.data(), &[5.0, 2.0]);
    }

    #[test]
    fn middle_axis_reduction() {
        let x = Tensor::from_vec((0..24).map(|i| i as f32).collect(), [2, 3, 4]);
        let r = reduce_axis(&x, 1, ReduceKind::Sum, false, &pool());
        assert_eq!(r.shape().dims(), &[2, 4]);
        // r[0, 0] = x[0,0,0] + x[0,1,0] + x[0,2,0] = 0 + 4 + 8
        assert_eq!(r.at(&[0, 0]), 12.0);
        assert_eq!(r.at(&[1, 3]), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn full_reductions() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(reduce_all_sum(&x, &pool()).scalar_value(), 10.0);
        assert_eq!(reduce_all_mean(&x, &pool()).scalar_value(), 2.5);
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        // Gradient of [3] broadcast to [2,3] sums over rows.
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let r = reduce_to_shape(&g, &Shape::vector(3), &pool());
        assert_eq!(r.data(), &[5.0, 7.0, 9.0]);
        // Gradient of [2,1] broadcast to [2,3] sums over columns, keeps dim.
        let r = reduce_to_shape(&g, &Shape::new(vec![2, 1]), &pool());
        assert_eq!(r.data(), &[6.0, 15.0]);
        // Scalar target sums everything.
        let r = reduce_to_shape(&g, &Shape::scalar(), &pool());
        assert_eq!(r.scalar_value(), 21.0);
        // Identity when shapes match.
        let r = reduce_to_shape(&g, g.shape(), &pool());
        assert_eq!(r, g);
    }

    #[test]
    #[should_panic(expected = "does not broadcast")]
    fn reduce_to_incompatible_shape_panics() {
        reduce_to_shape(&Tensor::zeros([2, 3]), &Shape::vector(4), &pool());
    }

    #[test]
    fn parallel_matches_serial() {
        let x = Tensor::from_vec((0..60_000).map(|i| (i % 17) as f32).collect(), [100, 600]);
        let a = reduce_axis(&x, 1, ReduceKind::Sum, false, &ExecPool::serial());
        let b = reduce_axis(&x, 1, ReduceKind::Sum, false, &ExecPool::new(8).with_grain(1));
        assert!(a.max_abs_diff(&b) < 1e-3);
    }
}
