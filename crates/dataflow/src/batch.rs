//! Packing single-request tensors into a minibatch and splitting the
//! batched fetch back per request.
//!
//! The serving layer coalesces independent requests into one `Session`
//! run (the graph's batch extent is fixed at build time), so it needs a
//! pair of inverse layout transforms: [`pack`] interleaves extent-1 item
//! slices along an arbitrary batch axis, zero-padding unused capacity,
//! and [`split`] slices the fetched result back into per-request tensors.
//! Both are plain row-major index arithmetic — no executor pool is
//! involved, so they are cheap enough to run on the serving thread.

use fathom_tensor::{Shape, Tensor};

/// The batch-extent-1 shape an item must have to occupy one slot of a
/// batched tensor shaped `batched` along `axis`.
pub fn item_shape(batched: &Shape, axis: usize) -> Shape {
    batched.with_axis_one(axis)
}

/// Packs `items` (each with extent 1 along `axis`, identical shapes
/// otherwise) into one tensor whose `axis` extent is `capacity`. Slots
/// beyond `items.len()` are zero — padding rows are computed by the graph
/// and discarded by [`split`].
///
/// # Panics
///
/// Panics when `items` is empty, exceeds `capacity`, or the shapes
/// disagree with the slot layout.
pub fn pack(items: &[&Tensor], axis: usize, capacity: usize) -> Tensor {
    assert!(!items.is_empty(), "cannot pack an empty batch");
    assert!(
        items.len() <= capacity,
        "{} items exceed the batch capacity {capacity}",
        items.len()
    );
    let slot = items[0].shape().clone();
    assert!(axis < slot.rank(), "batch axis {axis} out of range for {slot}");
    assert_eq!(slot.dim(axis), 1, "items must have extent 1 along the batch axis");
    let mut dims = slot.dims().to_vec();
    dims[axis] = capacity;
    let out_shape = Shape::new(dims);

    // Row-major layout: positions split into `outer` leading blocks, each
    // holding `capacity` slots of `inner` contiguous elements.
    let outer: usize = slot.dims()[..axis].iter().product();
    let inner: usize = slot.dims()[axis + 1..].iter().product();
    let mut data = vec![0.0f32; out_shape.num_elements()];
    for (i, item) in items.iter().enumerate() {
        assert_eq!(
            item.shape(),
            &slot,
            "item {i} shape {} disagrees with slot shape {slot}",
            item.shape()
        );
        let src = item.data();
        for o in 0..outer {
            let dst_at = (o * capacity + i) * inner;
            data[dst_at..dst_at + inner].copy_from_slice(&src[o * inner..(o + 1) * inner]);
        }
    }
    Tensor::from_vec(data, out_shape)
}

/// Splits the first `count` extent-1 slices of `batched` along `axis`
/// back into per-request tensors — the inverse of [`pack`], dropping any
/// padding slots.
///
/// # Panics
///
/// Panics when `axis` is out of range or `count` exceeds the axis extent.
pub fn split(batched: &Tensor, axis: usize, count: usize) -> Vec<Tensor> {
    let shape = batched.shape();
    assert!(axis < shape.rank(), "batch axis {axis} out of range for {shape}");
    let extent = shape.dim(axis);
    assert!(count <= extent, "cannot split {count} items out of extent {extent}");
    let slot = shape.with_axis_one(axis);
    let outer: usize = shape.dims()[..axis].iter().product();
    let inner: usize = shape.dims()[axis + 1..].iter().product();
    let src = batched.data();
    (0..count)
        .map(|i| {
            let mut data = vec![0.0f32; slot.num_elements()];
            for o in 0..outer {
                let src_at = (o * extent + i) * inner;
                data[o * inner..(o + 1) * inner].copy_from_slice(&src[src_at..src_at + inner]);
            }
            Tensor::from_vec(data, slot.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(vals: &[f32], shape: impl Into<Shape>) -> Tensor {
        Tensor::from_vec(vals.to_vec(), shape)
    }

    #[test]
    fn pack_and_split_axis0_round_trip() {
        let a = item(&[1.0, 2.0, 3.0], [1, 3]);
        let b = item(&[4.0, 5.0, 6.0], [1, 3]);
        let batched = pack(&[&a, &b], 0, 4);
        assert_eq!(batched.shape().dims(), &[4, 3]);
        assert_eq!(
            batched.data(),
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        );
        let back = split(&batched, 0, 2);
        assert_eq!(back[0].data(), a.data());
        assert_eq!(back[1].data(), b.data());
        assert_eq!(back[1].shape().dims(), &[1, 3]);
    }

    #[test]
    fn pack_and_split_interior_axis() {
        // Time-major layout [time=2, batch, feat=2], as `speech` uses.
        let a = item(&[1.0, 2.0, 3.0, 4.0], [2, 1, 2]);
        let b = item(&[5.0, 6.0, 7.0, 8.0], [2, 1, 2]);
        let batched = pack(&[&a, &b], 1, 3);
        assert_eq!(batched.shape().dims(), &[2, 3, 2]);
        // Each time block interleaves the two items, then a zero pad slot.
        assert_eq!(
            batched.data(),
            &[1.0, 2.0, 5.0, 6.0, 0.0, 0.0, 3.0, 4.0, 7.0, 8.0, 0.0, 0.0]
        );
        let back = split(&batched, 1, 2);
        assert_eq!(back[0].data(), a.data());
        assert_eq!(back[1].data(), b.data());
    }

    #[test]
    fn item_shape_zeroes_in_on_the_axis() {
        let batched = Shape::new(vec![6, 4, 2]);
        assert_eq!(item_shape(&batched, 1).dims(), &[6, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "exceed the batch capacity")]
    fn pack_rejects_overfull_batches() {
        let a = item(&[1.0], [1, 1]);
        let _ = pack(&[&a, &a, &a], 0, 2);
    }

    #[test]
    #[should_panic(expected = "extent 1 along the batch axis")]
    fn pack_rejects_wide_items() {
        let a = item(&[1.0, 2.0], [2, 1]);
        let _ = pack(&[&a], 0, 4);
    }
}
