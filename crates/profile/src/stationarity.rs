//! Per-operation execution-time stability across steps (Figure 1).
//!
//! "Sampling the execution time of operations across many steps allows us
//! to quantify stability, and Figure 1 shows that this distribution is
//! stationary and has low variance." These statistics make the same
//! check: per-op-type step samples, their coefficient of variation, and a
//! first-half/second-half drift test.

use std::collections::BTreeMap;

use fathom_dataflow::trace::RunTrace;
use serde::{Deserialize, Serialize};

/// Step-time statistics for one op type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpStability {
    /// Operation type name.
    pub op: String,
    /// Per-step total time samples, in nanoseconds.
    pub samples: Vec<f64>,
    /// Mean of the samples.
    pub mean: f64,
    /// Standard deviation of the samples.
    pub std: f64,
}

impl OpStability {
    /// Coefficient of variation (std / mean; 0 for zero-mean series).
    pub fn cov(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }

    /// Relative drift between the first- and second-half means: a
    /// stationary series stays near 0.
    pub fn drift(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let half = n / 2;
        let first: f64 = self.samples[..half].iter().sum::<f64>() / half as f64;
        let second: f64 = self.samples[half..].iter().sum::<f64>() / (n - half) as f64;
        if first == 0.0 {
            0.0
        } else {
            (second - first) / first
        }
    }
}

/// Stability analysis of a multi-step trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Per-op stability, keyed by op name.
    pub ops: BTreeMap<String, OpStability>,
    /// Total per-step times (one sample per traced step).
    pub step_totals: Vec<f64>,
}

impl StabilityReport {
    /// Builds the report, bucketing event times by `(op, step)`.
    pub fn from_trace(trace: &RunTrace) -> Self {
        if trace.events.is_empty() {
            return StabilityReport::default();
        }
        let first_step = trace.events.iter().map(|e| e.step).min().expect("non-empty");
        let last_step = trace.events.iter().map(|e| e.step).max().expect("non-empty");
        let steps = (last_step - first_step + 1) as usize;
        let mut per_op: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut step_totals = vec![0.0; steps];
        for e in &trace.events {
            let idx = (e.step - first_step) as usize;
            per_op.entry(e.op.to_string()).or_insert_with(|| vec![0.0; steps])[idx] += e.nanos;
            step_totals[idx] += e.nanos;
        }
        let ops = per_op
            .into_iter()
            .map(|(op, samples)| {
                let mean = samples.iter().sum::<f64>() / samples.len() as f64;
                let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
                    / samples.len() as f64;
                (op.clone(), OpStability { op, samples, mean, std: var.sqrt() })
            })
            .collect();
        StabilityReport { ops, step_totals }
    }

    /// Time-weighted mean coefficient of variation across op types — the
    /// scalar summary of Figure 1's "low variance" claim.
    pub fn weighted_cov(&self) -> f64 {
        let total: f64 = self.ops.values().map(|o| o.mean).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.ops.values().map(|o| o.cov() * o.mean / total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::cost::OpCost;
    use fathom_dataflow::trace::TraceEvent;
    use fathom_dataflow::{NodeId, OpClass};

    fn trace_with(step_times: &[(&'static str, u64, f64)]) -> RunTrace {
        RunTrace {
            events: step_times
                .iter()
                .map(|(op, step, nanos)| TraceEvent {
                    node: NodeId::default(),
                    op,
                    class: OpClass::MatrixOps,
                    step: *step,
                    nanos: *nanos,
                    cost: OpCost::default(),
                })
                .collect(),
            steps: 3,
            ..RunTrace::default()
        }
    }

    #[test]
    fn constant_series_has_zero_cov_and_drift() {
        let t = trace_with(&[("MatMul", 0, 10.0), ("MatMul", 1, 10.0), ("MatMul", 2, 10.0)]);
        let r = StabilityReport::from_trace(&t);
        let s = &r.ops["MatMul"];
        assert!(s.cov() < 1e-12);
        assert!(s.drift().abs() < 1e-12);
        assert_eq!(s.mean, 10.0);
    }

    #[test]
    fn trending_series_has_drift() {
        let t = trace_with(&[("Add", 0, 10.0), ("Add", 1, 20.0), ("Add", 2, 30.0), ("Add", 3, 40.0)]);
        let r = StabilityReport::from_trace(&t);
        assert!(r.ops["Add"].drift() > 1.0, "drift {}", r.ops["Add"].drift());
    }

    #[test]
    fn multiple_events_per_step_accumulate() {
        let t = trace_with(&[("MatMul", 0, 5.0), ("MatMul", 0, 5.0), ("MatMul", 1, 10.0)]);
        let r = StabilityReport::from_trace(&t);
        assert_eq!(r.ops["MatMul"].samples, vec![10.0, 10.0]);
        assert_eq!(r.step_totals, vec![10.0, 10.0]);
    }

    #[test]
    fn weighted_cov_emphasizes_heavy_ops() {
        // A noisy tiny op must barely move the weighted CoV.
        let t = trace_with(&[
            ("Big", 0, 100.0),
            ("Big", 1, 100.0),
            ("Tiny", 0, 0.1),
            ("Tiny", 1, 2.0),
        ]);
        let r = StabilityReport::from_trace(&t);
        assert!(r.weighted_cov() < 0.05, "weighted cov {}", r.weighted_cov());
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let r = StabilityReport::from_trace(&RunTrace::new());
        assert!(r.ops.is_empty());
        assert_eq!(r.weighted_cov(), 0.0);
    }
}
