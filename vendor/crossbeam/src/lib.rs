//! Offline stand-in for the `crossbeam` facade crate.
//!
//! This workspace builds in environments with no access to a crates.io
//! registry, so the handful of crossbeam APIs the suite uses are
//! re-implemented here on top of `std::sync` primitives with the same
//! names and semantics:
//!
//! * [`channel::unbounded`] — a multi-producer/multi-consumer FIFO
//!   channel whose `Receiver` is cloneable and whose `recv` unblocks with
//!   an error once every `Sender` is dropped;
//! * [`sync::WaitGroup`] — a clone-counted barrier that releases `wait`
//!   when every other clone has been dropped.
//!
//! Throughput is a lock-and-condvar design rather than crossbeam's
//! lock-free one; for this suite the channel carries coarse-grained
//! work items (whole tensor operations), so the difference is noise.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (items are handed to exactly one
    /// receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by `send` when all receivers are gone. This stub
    /// never reports it (receiver liveness is not tracked), matching how
    /// the suite uses channels: receivers outlive the last send.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by `recv` once the channel is empty and every
    /// sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv` when no item is immediately ready.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues an item, waking one blocked receiver.
        ///
        /// # Errors
        ///
        /// Never fails in this stub; the `Result` mirrors crossbeam's
        /// signature.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.queue.lock().expect("channel lock");
            state.items.push_back(item);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.queue.lock().expect("channel lock");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and all
        /// senders have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.ready.wait(state).expect("channel lock");
            }
        }

        /// Dequeues an item if one is immediately available.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] when the queue is empty but
        /// senders remain, [`TryRecvError::Disconnected`] once it is
        /// empty with no senders left.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.queue.lock().expect("channel lock");
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

/// Synchronization helpers.
pub mod sync {
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner {
        count: Mutex<usize>,
        zero: Condvar,
    }

    /// A clone-counted rendezvous: `wait` returns once every other clone
    /// has been dropped.
    pub struct WaitGroup {
        inner: Arc<Inner>,
    }

    impl WaitGroup {
        /// Creates a group with one member (the caller).
        pub fn new() -> Self {
            WaitGroup { inner: Arc::new(Inner { count: Mutex::new(1), zero: Condvar::new() }) }
        }

        /// Drops this membership and blocks until the count reaches zero.
        pub fn wait(self) {
            let inner = Arc::clone(&self.inner);
            drop(self); // release our own membership
            let mut count = inner.count.lock().expect("waitgroup lock");
            while *count > 0 {
                count = inner.zero.wait(count).expect("waitgroup lock");
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self.inner.count.lock().expect("waitgroup lock") += 1;
            WaitGroup { inner: Arc::clone(&self.inner) }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self.inner.count.lock().expect("waitgroup lock");
            *count -= 1;
            let done = *count == 0;
            drop(count);
            if done {
                self.inner.zero.notify_all();
            }
        }
    }

    impl fmt::Debug for WaitGroup {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("WaitGroup { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::sync::WaitGroup;

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_across_threads() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let h1 = std::thread::spawn(move || rx.recv().unwrap());
        let h2 = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(10u32).unwrap();
        tx.send(20u32).unwrap();
        let mut got = vec![h1.join().unwrap(), h2.join().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
    }

    #[test]
    fn waitgroup_waits_for_all_clones() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let wg = wg.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
                drop(wg);
            });
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
