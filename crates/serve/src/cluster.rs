//! fathom-cluster: many models behind one front door.
//!
//! The single-model engine (`engine.rs`) answers "how do I batch
//! requests for *this* graph"; this module answers the fleet-level
//! questions production serving actually hinges on — which shard takes
//! a request, who gets shed when the fleet is saturated, and how a model
//! is swapped under load without dropping anything. Concretely:
//!
//! * **Sharded routing** — each model owns a group of shards (each
//!   shard a set of replicas sharing one queue). A [`Router`] places
//!   every request by consistent hashing with a load-aware spill
//!   override, so keys keep affinity until a shard runs hot.
//! * **SLO classes** — every request carries an [`SloClass`]
//!   (`Interactive`/`Standard`/`Batch`) with a per-class deadline.
//!   Admission is deadline-aware: a request whose deadline the current
//!   backlog makes unmeetable is shed on arrival
//!   (`deadline_infeasible`) instead of wasting queue space, and when a
//!   queue is full a higher-class arrival evicts the youngest
//!   lowest-class occupant (`priority_evicted`) rather than being
//!   refused. Dispatch serves classes strictly by priority.
//! * **Continuous batching** — under [`BatchPolicy::Continuous`] a
//!   replica that frees up immediately takes whatever is queued (up to
//!   `max_batch`), so newly arrived requests join the very next batch.
//!   [`BatchPolicy::FixedRound`] reproduces the single-model engine's
//!   pack/run/split rounds (wait for a full batch or `max_delay`) for
//!   A/B comparison — `BENCH_serve.json`'s cluster scenario runs both.
//! * **Hot reload** — a [`ReloadPlan`] swaps a model's weights from a
//!   v2 checkpoint at a virtual time, rolling: one replica per shard at
//!   a time drains (finishes its in-flight batch), swaps via
//!   [`ClusterRunner::reload`], and rejoins. Queued work is never
//!   dropped; it is served by the not-currently-swapping replicas and
//!   replayed onto the reloaded ones.
//!
//! Like the engine, everything runs in deterministic virtual time: the
//! same seed and runner behavior reproduce the identical
//! [`ClusterReport`], which is what lets `tests/serving.rs` assert exact
//! conservation and zero-loss properties under injected crashes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use fathom_tensor::{Rng, Tensor};

use fathom_dataflow::RuntimeCounters;

use crate::engine::{failure_verdict, FailureVerdict, RecoveryPolicy};
use crate::metrics::{json_f64, LatencyHistogram, RecoveryCounters, ShedBreakdown};
use crate::router::Router;
use crate::slo::{SloClass, SloMix, SloPolicy};
use crate::worker::{BatchRunner, Request, ServeError, SessionWorker};

/// A replica that can additionally hot-swap its weights from a
/// checkpoint byte stream — the contract the cluster's reload machinery
/// needs on top of [`BatchRunner`].
pub trait ClusterRunner: BatchRunner {
    /// Replaces the served weights with `checkpoint` (format v2 bytes).
    /// Called only while the replica is drained (no batch in flight).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the checkpoint is invalid for the
    /// replica's graph; the supervisor then quarantines the replica.
    fn reload(&mut self, checkpoint: &[u8]) -> Result<(), ServeError>;
}

impl ClusterRunner for SessionWorker {
    /// Swapping a `SessionWorker` is a `warm_start`: load the v2
    /// checkpoint and make it the new recovery baseline, so a replica
    /// crashed *after* a reload recovers into the reloaded weights.
    fn reload(&mut self, checkpoint: &[u8]) -> Result<(), ServeError> {
        self.warm_start(checkpoint)
    }
}

/// How replicas form batches from their shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// A freed replica immediately takes up to `max_batch` queued
    /// requests — arrivals join the next batch as soon as capacity
    /// exists.
    Continuous,
    /// The single-model engine's rule: dispatch only once the queue
    /// holds a full batch, the oldest request has waited `max_delay`,
    /// or arrivals have drained.
    FixedRound {
        /// Longest the oldest queued request may wait before a partial
        /// batch dispatches anyway, virtual nanoseconds.
        max_delay_nanos: u64,
    },
}

/// One scheduled hot model swap.
#[derive(Debug, Clone)]
pub struct ReloadPlan {
    /// Which model's shards swap.
    pub model: String,
    /// Virtual time the rollout begins.
    pub at_nanos: u64,
    /// Checkpoint (format v2) the replicas reload from.
    pub checkpoint: Vec<u8>,
}

/// Cluster-wide batching, admission, and reload parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Most requests coalesced into one session run.
    pub max_batch: usize,
    /// Admission bound per shard queue (all classes together).
    pub queue_cap: usize,
    /// Batch formation policy.
    pub batching: BatchPolicy,
    /// Per-class deadlines.
    pub slo: SloPolicy,
    /// Traffic mix over the classes.
    pub mix: SloMix,
    /// Open-loop arrival window, virtual nanoseconds.
    pub duration_nanos: u64,
    /// Seed for arrivals, class draws, and payload synthesis.
    pub seed: u64,
    /// Supervisor behavior for failed replicas.
    pub recovery: RecoveryPolicy,
    /// Queue-depth gap that triggers load-aware spill off the hashed
    /// shard (`None` = pure consistent hashing).
    pub spill_threshold: Option<usize>,
    /// Virtual time one replica spends swapping during a hot reload.
    pub swap_nanos: u64,
    /// Scheduled hot swaps, any order (applied in `at_nanos` order).
    pub reloads: Vec<ReloadPlan>,
}

impl ClusterConfig {
    /// Continuous batching, a queue of `16 * max_batch` per shard, the
    /// default SLO policy and mix, load-aware spill at `2 * max_batch`,
    /// a 1 ms swap, and no reloads.
    pub fn new(max_batch: usize) -> Self {
        ClusterConfig {
            max_batch,
            queue_cap: 16 * max_batch,
            batching: BatchPolicy::Continuous,
            slo: SloPolicy::default_serving(),
            mix: SloMix::default_mix(),
            duration_nanos: 1_000_000_000,
            seed: 0xC1057E4,
            recovery: RecoveryPolicy::default(),
            spill_threshold: Some(2 * max_batch),
            swap_nanos: 1_000_000,
            reloads: Vec::new(),
        }
    }
}

/// Synthesizes one admitted request's payload from the arrival RNG and
/// the request id.
pub type SynthFn<'a> = Box<dyn FnMut(&mut Rng, u64) -> Vec<Tensor> + 'a>;

/// One model's place in the cluster: its shard groups, offered load,
/// and payload synthesizer.
pub struct ModelSpec<'a> {
    /// Model name (reload plans and the report key off it).
    pub name: String,
    /// `shards[s]` holds the replicas of shard `s`; every shard shares
    /// one queue.
    pub shards: Vec<Vec<&'a mut dyn ClusterRunner>>,
    /// Offered open-loop Poisson rate, requests per second.
    pub rps: f64,
    /// Synthesizes one admitted request's payload.
    pub synth: SynthFn<'a>,
}

/// Per-class accounting, merged across a model's shards (or the whole
/// cluster).
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Requests generated for this class.
    pub issued: u64,
    /// Requests that returned a result.
    pub completed: u64,
    /// Requests shed (admission or replica loss).
    pub shed: u64,
    /// Why they were shed.
    pub shed_reasons: ShedBreakdown,
    /// Queued requests dropped past their class deadline.
    pub timed_out: u64,
    /// End-to-end latency of completed requests.
    pub latency: LatencyHistogram,
}

impl ClassStats {
    /// Folds another class's stats into this one (cross-shard /
    /// cross-model aggregation via [`LatencyHistogram::merge`]).
    pub fn merge(&mut self, other: &ClassStats) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.shed += other.shed;
        self.shed_reasons.merge(&other.shed_reasons);
        self.timed_out += other.timed_out;
        self.latency.merge(&other.latency);
    }
}

/// One model's slice of the cluster report.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Shard groups serving it.
    pub shards: usize,
    /// Total replicas across its shards.
    pub replicas: usize,
    /// Per-class accounting, `SloClass::ALL` order.
    pub per_class: [ClassStats; SloClass::COUNT],
    /// Executed batches.
    pub batches: u64,
    /// Requests carried across those batches.
    pub batched_requests: u64,
    /// Requests the load-aware rule moved off their hashed shard.
    pub spilled: u64,
    /// Completed replica swaps from hot reloads.
    pub reloads: u64,
}

impl ModelReport {
    /// Requests issued for this model (all classes).
    pub fn issued(&self) -> u64 {
        self.per_class.iter().map(|c| c.issued).sum()
    }

    /// Requests completed for this model (all classes).
    pub fn completed(&self) -> u64 {
        self.per_class.iter().map(|c| c.completed).sum()
    }

    /// Requests shed for this model (all classes).
    pub fn shed(&self) -> u64 {
        self.per_class.iter().map(|c| c.shed).sum()
    }

    /// Requests timed out for this model (all classes).
    pub fn timed_out(&self) -> u64 {
        self.per_class.iter().map(|c| c.timed_out).sum()
    }

    /// Mean carried batch size (0 when no batch ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / self.batches as f64
    }
}

/// Everything measured over one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Batch formation policy the run used.
    pub batching: BatchPolicy,
    /// Coalescing limit.
    pub max_batch: usize,
    /// Per-model slices.
    pub models: Vec<ModelReport>,
    /// Per-class accounting merged across every model and shard.
    pub per_class: [ClassStats; SloClass::COUNT],
    /// Virtual time from first arrival to last completion.
    pub makespan_nanos: u64,
    /// Supervisor counters across the whole fleet.
    pub recovery: RecoveryCounters,
    /// Unified-runtime counters folded across every replica session.
    pub runtime: RuntimeCounters,
}

impl ClusterReport {
    /// Requests issued across the cluster.
    pub fn issued(&self) -> u64 {
        self.per_class.iter().map(|c| c.issued).sum()
    }

    /// Requests completed across the cluster.
    pub fn completed(&self) -> u64 {
        self.per_class.iter().map(|c| c.completed).sum()
    }

    /// Requests shed across the cluster.
    pub fn shed(&self) -> u64 {
        self.per_class.iter().map(|c| c.shed).sum()
    }

    /// Requests timed out across the cluster.
    pub fn timed_out(&self) -> u64 {
        self.per_class.iter().map(|c| c.timed_out).sum()
    }

    /// Shed reasons merged across every class.
    pub fn shed_reasons(&self) -> ShedBreakdown {
        let mut total = ShedBreakdown::default();
        for c in &self.per_class {
            total.merge(&c.shed_reasons);
        }
        total
    }

    /// Conservation: every issued request resolved exactly once.
    pub fn conserved(&self) -> bool {
        self.issued() == self.completed() + self.shed() + self.timed_out()
            && self.per_class.iter().all(|c| {
                c.issued == c.completed + c.shed + c.timed_out
                    && c.shed_reasons.total() == c.shed
            })
    }

    /// Completed requests per second of virtual makespan.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_nanos == 0 {
            return 0.0;
        }
        self.completed() as f64 * 1e9 / self.makespan_nanos as f64
    }

    /// Completed replica swaps across every model.
    pub fn reloads(&self) -> u64 {
        self.models.iter().map(|m| m.reloads).sum()
    }

    /// Requests the load-aware rule spilled across every model.
    pub fn spilled(&self) -> u64 {
        self.models.iter().map(|m| m.spilled).sum()
    }

    /// Serializes the report to a JSON object (hand-rolled; the
    /// vendored serde is marker-traits only).
    pub fn to_json(&self) -> String {
        let ms = |nanos: f64| nanos / 1e6;
        let class_json = |stats: &[ClassStats; SloClass::COUNT], indent: &str| -> String {
            let rows: Vec<String> = SloClass::ALL
                .iter()
                .map(|class| {
                    let c = &stats[class.idx()];
                    let mut row = format!(
                        "{indent}  {{\"class\": \"{}\", \"issued\": {}, \"completed\": {}, \
                         \"shed\": {}, \"timed_out\": {}, ",
                        class, c.issued, c.completed, c.shed, c.timed_out
                    );
                    if c.shed_reasons.any() {
                        row.push_str(&format!("\"shed_reasons\": {}, ", c.shed_reasons.to_json()));
                    }
                    row.push_str(&format!(
                        "\"latency_ms\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \
                         \"mean\": {}, \"max\": {}}}}}",
                        json_f64(ms(c.latency.quantile(0.50)), 3),
                        json_f64(ms(c.latency.quantile(0.95)), 3),
                        json_f64(ms(c.latency.quantile(0.99)), 3),
                        json_f64(ms(c.latency.mean()), 3),
                        json_f64(ms(c.latency.max()), 3),
                    ));
                    row
                })
                .collect();
            format!("[\n{}\n{indent}]", rows.join(",\n"))
        };
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"batching\": \"{}\",\n",
            match self.batching {
                BatchPolicy::Continuous => "continuous",
                BatchPolicy::FixedRound { .. } => "fixed_round",
            }
        ));
        s.push_str(&format!("  \"max_batch\": {},\n", self.max_batch));
        s.push_str(&format!("  \"issued\": {},\n", self.issued()));
        s.push_str(&format!("  \"completed\": {},\n", self.completed()));
        s.push_str(&format!("  \"shed\": {},\n", self.shed()));
        let reasons = self.shed_reasons();
        if reasons.any() {
            s.push_str(&format!("  \"shed_reasons\": {},\n", reasons.to_json()));
        }
        s.push_str(&format!("  \"timed_out\": {},\n", self.timed_out()));
        s.push_str(&format!("  \"spilled\": {},\n", self.spilled()));
        s.push_str(&format!("  \"reloads\": {},\n", self.reloads()));
        s.push_str(&format!("  \"makespan_ms\": {},\n", json_f64(self.makespan_nanos as f64 / 1e6, 3)));
        s.push_str(&format!("  \"throughput_rps\": {},\n", json_f64(self.throughput_rps(), 3)));
        s.push_str(&format!("  \"classes\": {},\n", class_json(&self.per_class, "  ")));
        let models: Vec<String> = self
            .models
            .iter()
            .map(|m| {
                format!(
                    "    {{\"model\": \"{}\", \"shards\": {}, \"replicas\": {}, \"issued\": {}, \
                     \"completed\": {}, \"shed\": {}, \"timed_out\": {}, \"spilled\": {}, \
                     \"reloads\": {}, \"batches\": {}, \"mean_batch\": {},\n      \"classes\": {}}}",
                    m.model,
                    m.shards,
                    m.replicas,
                    m.issued(),
                    m.completed(),
                    m.shed(),
                    m.timed_out(),
                    m.spilled,
                    m.reloads,
                    m.batches,
                    json_f64(m.mean_batch(), 2),
                    class_json(&m.per_class, "      "),
                )
            })
            .collect();
        s.push_str(&format!("  \"models\": [\n{}\n  ]", models.join(",\n")));
        if self.recovery.any() {
            let r = &self.recovery;
            s.push_str(&format!(
                ",\n  \"recovery\": {{\"crashes\": {}, \"retried\": {}, \"dropped\": {}, \
                 \"quarantines\": {}, \"recoveries\": {}, \"dead_replicas\": {}}}",
                r.crashes, r.retried, r.dropped, r.quarantines, r.recoveries, r.dead_replicas
            ));
        }
        if self.runtime.any() {
            let rc = &self.runtime;
            s.push_str(&format!(
                ",\n  \"runtime\": {{\"allocations\": {}, \"arena_bytes\": {}, \"steal_count\": {}, \
                 \"wide_ops\": {}, \"coscheduled_ops\": {}}}",
                rc.allocations, rc.arena_bytes, rc.steal_count, rc.wide_ops, rc.coscheduled_ops
            ));
        }
        s.push_str("\n}\n");
        s
    }
}

/// One queued cluster request.
struct QueuedReq {
    id: u64,
    arrival: u64,
    class: SloClass,
    /// Absolute deadline, when the class has one.
    deadline: Option<u64>,
    inputs: Vec<Tensor>,
    retries: u32,
}

/// One shard's queue (segregated by class so priority dispatch and
/// eviction are O(1)) plus its local accounting.
#[derive(Default)]
struct ShardState {
    queues: [VecDeque<QueuedReq>; SloClass::COUNT],
    /// Latency of requests completed by this shard, per class — merged
    /// into the model report at the end.
    latency: [LatencyHistogram; SloClass::COUNT],
    /// EWMA of observed batch service time, nanoseconds (0 until the
    /// first batch lands); feeds the deadline-infeasibility estimate.
    est_batch_nanos: f64,
}

impl ShardState {
    fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn oldest_arrival(&self) -> Option<u64> {
        self.queues.iter().filter_map(|q| q.front().map(|r| r.arrival)).min()
    }

    /// Takes up to `limit` requests, highest class first, FIFO within a
    /// class.
    fn take_batch(&mut self, limit: usize) -> Vec<QueuedReq> {
        let mut batch = Vec::with_capacity(limit.min(self.queued()));
        for class in SloClass::ALL {
            let q = &mut self.queues[class.idx()];
            while batch.len() < limit {
                match q.pop_front() {
                    Some(r) => batch.push(r),
                    None => break,
                }
            }
        }
        batch
    }
}

/// A replica's lifecycle inside the cluster supervisor.
#[derive(Debug, Clone, Copy)]
enum RepState {
    Idle,
    Busy { free_at: u64 },
    Quarantined { until: u64 },
    /// Drained and swapping in reloaded weights until `until`.
    Reloading { until: u64 },
    Dead,
}

struct ReplicaState {
    state: RepState,
    restarts: u32,
    /// Number of reload generations this replica has applied.
    applied_gen: usize,
}

/// Runs one cluster experiment: offers each model's open-loop load to
/// its shard group under `cfg`, routing through consistent hashing with
/// load-aware spill, admitting by SLO class, and applying any scheduled
/// hot reloads. Returns when every admitted request has resolved.
///
/// Supervision matches the single-model engine: a crashed batch
/// requeues (front of its class queues) with per-request retry budgets,
/// the replica quarantines with exponential backoff and recovers via
/// [`BatchRunner::recover`], and a shard whose replicas all die has its
/// queue re-routed to surviving shards (or shed as `replica_loss` when
/// the whole model is dead). Conservation holds per class:
/// `issued == completed + shed + timed_out`.
///
/// # Errors
///
/// Returns [`ServeError::Unservable`] on an empty or zero-capacity
/// fleet or a non-positive rate, and [`ServeError::Fault`] if the event
/// loop ever stalls (an engine bug).
pub fn serve_cluster(
    models: &mut [ModelSpec<'_>],
    cfg: &ClusterConfig,
) -> Result<ClusterReport, ServeError> {
    if models.is_empty() {
        return Err(ServeError::Unservable("cluster needs at least one model".into()));
    }
    let mut max_batch = vec![0usize; models.len()];
    for (m, spec) in models.iter().enumerate() {
        if spec.shards.is_empty() || spec.shards.iter().any(|s| s.is_empty()) {
            return Err(ServeError::Unservable(format!(
                "model {} needs at least one replica in every shard",
                spec.name
            )));
        }
        let cap_floor =
            spec.shards.iter().flatten().map(|r| r.capacity()).min().unwrap_or(0);
        max_batch[m] = cfg.max_batch.min(cap_floor);
        if max_batch[m] == 0 {
            return Err(ServeError::Unservable(format!(
                "model {}: max_batch and every replica capacity must be at least 1",
                spec.name
            )));
        }
        if cfg.rps_invalid(spec.rps) {
            return Err(ServeError::Unservable(format!(
                "model {} needs a positive offered rate",
                spec.name
            )));
        }
    }

    // Pre-compute every model's Poisson arrival trace; the heap merges
    // them into one deterministic timeline (ties break by model order,
    // then per-model sequence).
    let mut arrivals: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();
    for (m, spec) in models.iter().enumerate() {
        let mut arr_rng = Rng::seeded(cfg.seed ^ (0x9E37_79B9 + m as u64));
        let mut t = 0.0f64;
        let mut seq = 0u64;
        loop {
            t += -(1.0 - arr_rng.uniform() as f64).ln() / spec.rps * 1e9;
            if t >= cfg.duration_nanos as f64 {
                break;
            }
            arrivals.push(Reverse((t as u64, m, seq)));
            seq += 1;
        }
    }

    let mut rng = Rng::seeded(cfg.seed);
    let routers: Vec<Router> = models
        .iter()
        .enumerate()
        .map(|(m, spec)| {
            Router::new(spec.shards.len(), cfg.seed ^ (m as u64) << 16, cfg.spill_threshold)
        })
        .collect();
    let mut shards: Vec<Vec<ShardState>> =
        models.iter().map(|s| (0..s.shards.len()).map(|_| ShardState::default()).collect()).collect();
    let mut reps: Vec<Vec<Vec<ReplicaState>>> = models
        .iter()
        .map(|s| {
            s.shards
                .iter()
                .map(|shard| {
                    shard
                        .iter()
                        .map(|_| ReplicaState { state: RepState::Idle, restarts: 0, applied_gen: 0 })
                        .collect()
                })
                .collect()
        })
        .collect();
    // Reload schedule per model, sorted by time; `gen` below counts how
    // many of a model's plans have come due.
    let reload_plans: Vec<Vec<&ReloadPlan>> = models
        .iter()
        .map(|spec| {
            let mut plans: Vec<&ReloadPlan> =
                cfg.reloads.iter().filter(|p| p.model == spec.name).collect();
            plans.sort_by_key(|p| p.at_nanos);
            plans
        })
        .collect();

    let mut report = ClusterReport {
        batching: cfg.batching,
        max_batch: cfg.max_batch,
        models: models
            .iter()
            .map(|spec| ModelReport {
                model: spec.name.clone(),
                shards: spec.shards.len(),
                replicas: spec.shards.iter().map(|s| s.len()).sum(),
                per_class: Default::default(),
                batches: 0,
                batched_requests: 0,
                spilled: 0,
                reloads: 0,
            })
            .collect(),
        per_class: Default::default(),
        makespan_nanos: 0,
        recovery: RecoveryCounters::default(),
        runtime: RuntimeCounters::default(),
    };

    // Session counters are cumulative; the report carries this run's
    // delta, folded across the fleet after the event loop drains.
    let runtime_base: Vec<Vec<Vec<RuntimeCounters>>> = models
        .iter()
        .map(|spec| {
            spec.shards
                .iter()
                .map(|shard| shard.iter().map(|r| r.runtime_counters()).collect())
                .collect()
        })
        .collect();

    let mut now = 0u64;
    let mut next_id = 0u64;

    loop {
        // 1. Completions, quarantine expiry, reload completion.
        for (m, spec) in models.iter_mut().enumerate() {
            for (s, shard) in spec.shards.iter_mut().enumerate() {
                for (r, runner) in shard.iter_mut().enumerate() {
                    let rep = &mut reps[m][s][r];
                    match rep.state {
                        RepState::Busy { free_at } if free_at <= now => {
                            rep.state = RepState::Idle;
                        }
                        RepState::Reloading { until } if until <= now => {
                            rep.state = RepState::Idle;
                        }
                        RepState::Quarantined { until } if until <= now => {
                            match runner.recover() {
                                Ok(()) => {
                                    report.recovery.recoveries += 1;
                                    rep.state = RepState::Idle;
                                    // A replica rebuilt from its baseline
                                    // may predate a reload that rolled out
                                    // while it was down; catch up below.
                                }
                                Err(_) => {
                                    match failure_verdict(
                                        &mut rep.restarts,
                                        &cfg.recovery,
                                        now,
                                        &mut report.recovery,
                                    ) {
                                        FailureVerdict::Retire => rep.state = RepState::Dead,
                                        FailureVerdict::Quarantine { until } => {
                                            rep.state = RepState::Quarantined { until }
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        // 2. Hot reloads: roll one replica per shard at a time through
        // the swap. A replica is only taken when Idle, so in-flight
        // batches always finish and queued work keeps flowing through
        // the shard's other replicas.
        for (m, spec) in models.iter_mut().enumerate() {
            let gen = reload_plans[m].iter().filter(|p| p.at_nanos <= now).count();
            if gen == 0 {
                continue;
            }
            let checkpoint = &reload_plans[m][gen - 1].checkpoint;
            for (s, shard) in spec.shards.iter_mut().enumerate() {
                let swapping = reps[m][s]
                    .iter()
                    .any(|rep| matches!(rep.state, RepState::Reloading { .. }));
                if swapping {
                    continue;
                }
                for (r, runner) in shard.iter_mut().enumerate() {
                    let rep = &mut reps[m][s][r];
                    if rep.applied_gen >= gen || !matches!(rep.state, RepState::Idle) {
                        continue;
                    }
                    match runner.reload(checkpoint) {
                        Ok(()) => {
                            rep.applied_gen = gen;
                            rep.state =
                                RepState::Reloading { until: now + cfg.swap_nanos.max(1) };
                            report.models[m].reloads += 1;
                        }
                        Err(_) => {
                            report.recovery.crashes += 1;
                            match failure_verdict(
                                &mut rep.restarts,
                                &cfg.recovery,
                                now,
                                &mut report.recovery,
                            ) {
                                FailureVerdict::Retire => rep.state = RepState::Dead,
                                FailureVerdict::Quarantine { until } => {
                                    rep.state = RepState::Quarantined { until }
                                }
                            }
                        }
                    }
                    break; // one replica per shard per rollout step
                }
            }
        }

        // 3. Arrivals due now: route, then admit or shed.
        while arrivals.peek().is_some_and(|Reverse((t, _, _))| *t <= now) {
            let Some(Reverse((at, m, _))) = arrivals.pop() else { break };
            let id = next_id;
            next_id += 1;
            let class = cfg.mix.draw(&mut rng);
            report.models[m].per_class[class.idx()].issued += 1;

            let loads: Vec<usize> = shards[m]
                .iter()
                .enumerate()
                .map(|(s, state)| {
                    if reps[m][s].iter().all(|rep| matches!(rep.state, RepState::Dead)) {
                        usize::MAX
                    } else {
                        state.queued()
                    }
                })
                .collect();
            if loads.iter().all(|&l| l == usize::MAX) {
                // Whole model dead: nothing can ever serve this.
                let stats = &mut report.models[m].per_class[class.idx()];
                stats.shed += 1;
                stats.shed_reasons.replica_loss += 1;
                continue;
            }
            let placement = routers[m].place(id, &loads);
            if placement.spilled {
                report.models[m].spilled += 1;
            }
            let s = placement.shard;

            // Deadline-aware admission: refuse on arrival when the
            // backlog at this class's priority already makes the
            // deadline unmeetable (estimate from the shard's observed
            // batch service time).
            let deadline = cfg.slo.deadline(class).map(|d| at + d);
            let est = shards[m][s].est_batch_nanos;
            if let (Some(dl), true) = (deadline, est > 0.0) {
                let live = reps[m][s]
                    .iter()
                    .filter(|rep| {
                        matches!(
                            rep.state,
                            RepState::Idle | RepState::Busy { .. } | RepState::Reloading { .. }
                        )
                    })
                    .count()
                    .max(1);
                let ahead: usize = SloClass::ALL
                    .iter()
                    .filter(|c| c.priority() >= class.priority())
                    .map(|c| shards[m][s].queues[c.idx()].len())
                    .sum();
                let rounds = (ahead / max_batch[m] + 1) as f64;
                let est_done = now as f64 + rounds * est / live as f64;
                if est_done > dl as f64 {
                    let stats = &mut report.models[m].per_class[class.idx()];
                    stats.shed += 1;
                    stats.shed_reasons.deadline_infeasible += 1;
                    continue;
                }
            }

            // Capacity admission: full queues evict the youngest
            // occupant of the lowest class below the arrival, else the
            // arrival itself is shed.
            if shards[m][s].queued() >= cfg.queue_cap {
                let victim_class = SloClass::ALL
                    .iter()
                    .rev()
                    .find(|c| {
                        c.priority() < class.priority() && !shards[m][s].queues[c.idx()].is_empty()
                    })
                    .copied();
                match victim_class {
                    Some(vc) => {
                        // Invariant: find() above checked non-empty.
                        let victim = shards[m][s].queues[vc.idx()].pop_back().expect("non-empty");
                        let vstats = &mut report.models[m].per_class[victim.class.idx()];
                        vstats.shed += 1;
                        vstats.shed_reasons.priority_evicted += 1;
                    }
                    None => {
                        let stats = &mut report.models[m].per_class[class.idx()];
                        stats.shed += 1;
                        stats.shed_reasons.queue_full += 1;
                        continue;
                    }
                }
            }
            let inputs = (models[m].synth)(&mut rng, id);
            shards[m][s].queues[class.idx()].push_back(QueuedReq {
                id,
                arrival: at,
                class,
                deadline,
                inputs,
                retries: 0,
            });
        }

        // 4. Deadline expiry of queued requests.
        for (m, model_shards) in shards.iter_mut().enumerate() {
            for shard in model_shards.iter_mut() {
                for class in SloClass::ALL {
                    let q = &mut shard.queues[class.idx()];
                    let before = q.len();
                    q.retain(|r| r.deadline.is_none_or(|d| d > now));
                    let expired = (before - q.len()) as u64;
                    report.models[m].per_class[class.idx()].timed_out += expired;
                }
            }
        }

        // 5. Shards whose replicas all died: re-route their queues to
        // surviving shards (ordinary admission applies); with the whole
        // model dead the work is shed as replica loss.
        for m in 0..models.len() {
            let dead: Vec<bool> = reps[m]
                .iter()
                .map(|shard| shard.iter().all(|rep| matches!(rep.state, RepState::Dead)))
                .collect();
            if !dead.iter().any(|&d| d) {
                continue;
            }
            let all_dead = dead.iter().all(|&d| d);
            for s in 0..dead.len() {
                if !dead[s] || shards[m][s].queued() == 0 {
                    continue;
                }
                let stranded = shards[m][s].take_batch(usize::MAX);
                for req in stranded {
                    let stats = &mut report.models[m].per_class[req.class.idx()];
                    if all_dead {
                        stats.shed += 1;
                        stats.shed_reasons.replica_loss += 1;
                        continue;
                    }
                    let loads: Vec<usize> = shards[m]
                        .iter()
                        .enumerate()
                        .map(|(i, st)| if dead[i] { usize::MAX } else { st.queued() })
                        .collect();
                    let target = routers[m].place(req.id, &loads).shard;
                    if shards[m][target].queued() >= cfg.queue_cap {
                        stats.shed += 1;
                        stats.shed_reasons.queue_full += 1;
                    } else {
                        shards[m][target].queues[req.class.idx()].push_back(req);
                    }
                }
            }
        }

        // 6. Dispatch. Continuous: any idle replica with queued work
        // takes a batch immediately. FixedRound: only on a full batch,
        // an expired delay timer, or drain.
        let draining = arrivals.is_empty();
        for (m, spec) in models.iter_mut().enumerate() {
            for (s, shard_runners) in spec.shards.iter_mut().enumerate() {
                for (r, runner) in shard_runners.iter_mut().enumerate() {
                    if !matches!(reps[m][s][r].state, RepState::Idle) {
                        continue;
                    }
                    let shard = &mut shards[m][s];
                    // Deadline-aware dispatch: once the shard knows its
                    // batch service time, a queued request whose deadline
                    // lands inside the upcoming batch window cannot finish
                    // in time — drop it now (timed out) instead of burning
                    // replica capacity on a response that arrives dead.
                    if shard.est_batch_nanos > 0.0 {
                        let horizon = now + shard.est_batch_nanos as u64;
                        for class in SloClass::ALL {
                            let q = &mut shard.queues[class.idx()];
                            let before = q.len();
                            q.retain(|req| req.deadline.is_none_or(|d| d >= horizon));
                            let expired = (before - q.len()) as u64;
                            report.models[m].per_class[class.idx()].timed_out += expired;
                        }
                    }
                    let queued = shard.queued();
                    if queued == 0 {
                        break;
                    }
                    if let BatchPolicy::FixedRound { max_delay_nanos } = cfg.batching {
                        // Invariant: queued > 0, so an oldest exists.
                        let oldest = shard.oldest_arrival().expect("non-empty queue");
                        if queued < max_batch[m] && now - oldest < max_delay_nanos && !draining {
                            continue;
                        }
                    }
                    let batch = shard.take_batch(max_batch[m]);
                    let reqs: Vec<Request> = batch
                        .iter()
                        .map(|q| Request { id: q.id, arrival: q.arrival, inputs: q.inputs.clone() })
                        .collect();
                    let refs: Vec<&Request> = reqs.iter().collect();
                    match runner.run_batch(&refs) {
                        Ok(result) => {
                            let service = (result.service_nanos as u64).max(1);
                            let done = now + service;
                            reps[m][s][r].state = RepState::Busy { free_at: done };
                            shard.est_batch_nanos = if shard.est_batch_nanos == 0.0 {
                                result.service_nanos
                            } else {
                                0.7 * shard.est_batch_nanos + 0.3 * result.service_nanos
                            };
                            report.models[m].batches += 1;
                            report.models[m].batched_requests += batch.len() as u64;
                            report.makespan_nanos = report.makespan_nanos.max(done);
                            for q in &batch {
                                let stats = &mut report.models[m].per_class[q.class.idx()];
                                stats.completed += 1;
                                shard.latency[q.class.idx()].record((done - q.arrival) as f64);
                            }
                        }
                        Err(_) => {
                            report.recovery.crashes += 1;
                            let rep = &mut reps[m][s][r];
                            match failure_verdict(
                                &mut rep.restarts,
                                &cfg.recovery,
                                now,
                                &mut report.recovery,
                            ) {
                                FailureVerdict::Retire => rep.state = RepState::Dead,
                                FailureVerdict::Quarantine { until } => {
                                    rep.state = RepState::Quarantined { until }
                                }
                            }
                            for mut q in batch.into_iter().rev() {
                                if q.retries >= cfg.recovery.max_retries {
                                    report.recovery.dropped += 1;
                                    let stats = &mut report.models[m].per_class[q.class.idx()];
                                    stats.shed += 1;
                                    stats.shed_reasons.replica_loss += 1;
                                } else {
                                    q.retries += 1;
                                    report.recovery.retried += 1;
                                    shard.queues[q.class.idx()].push_front(q);
                                }
                            }
                        }
                    }
                }
            }
        }

        // 7. Terminate once fully drained: no arrivals, nothing queued,
        // nothing running or mid-swap.
        let any_queued = shards.iter().flatten().any(|s| s.queued() > 0);
        let any_active = reps.iter().flatten().flatten().any(|rep| {
            matches!(rep.state, RepState::Busy { .. } | RepState::Reloading { .. })
        });
        if arrivals.is_empty() && !any_queued && !any_active {
            break;
        }

        // 8. Advance the clock to the next event.
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            let t = t.max(now + 1);
            next = Some(next.map_or(t, |n: u64| n.min(t)));
        };
        if let Some(Reverse((t, _, _))) = arrivals.peek() {
            consider(*t);
        }
        for rep in reps.iter().flatten().flatten() {
            match rep.state {
                RepState::Busy { free_at } => consider(free_at),
                RepState::Quarantined { until } | RepState::Reloading { until } => consider(until),
                RepState::Idle | RepState::Dead => {}
            }
        }
        for (m, model_shards) in shards.iter().enumerate() {
            for (s, shard) in model_shards.iter().enumerate() {
                if shard.queued() == 0 {
                    continue;
                }
                let any_idle =
                    reps[m][s].iter().any(|rep| matches!(rep.state, RepState::Idle));
                if any_idle {
                    if let BatchPolicy::FixedRound { max_delay_nanos } = cfg.batching {
                        if let Some(oldest) = shard.oldest_arrival() {
                            consider(oldest + max_delay_nanos);
                        }
                    }
                }
                for class in SloClass::ALL {
                    if let Some(front) = shard.queues[class.idx()].front() {
                        if let Some(dl) = front.deadline {
                            consider(dl);
                        }
                    }
                }
            }
        }
        for (m, plans) in reload_plans.iter().enumerate() {
            let gen = plans.iter().filter(|p| p.at_nanos <= now).count();
            if gen < plans.len() {
                consider(plans[gen].at_nanos);
            }
            let _ = m;
        }
        match next {
            Some(t) => now = t,
            None => {
                return Err(ServeError::Fault(
                    "cluster stalled: work remains but no future event is scheduled".into(),
                ))
            }
        }
    }

    // Cross-shard aggregation: shard histograms merge into the model's
    // per-class stats, which merge into the cluster's.
    for (m, model_shards) in shards.iter().enumerate() {
        for shard in model_shards {
            for class in SloClass::ALL {
                report.models[m].per_class[class.idx()]
                    .latency
                    .merge(&shard.latency[class.idx()]);
            }
        }
        for class in SloClass::ALL {
            report.per_class[class.idx()].merge(&report.models[m].per_class[class.idx()]);
        }
    }
    for (spec, base_model) in models.iter().zip(&runtime_base) {
        for (shard, base_shard) in spec.shards.iter().zip(base_model) {
            for (runner, base) in shard.iter().zip(base_shard) {
                report.runtime.merge(&runner.runtime_counters().delta_since(base));
            }
        }
    }

    Ok(report)
}

impl ClusterConfig {
    /// True when `rps` cannot drive an open-loop arrival process.
    fn rps_invalid(&self, rps: f64) -> bool {
        rps.is_nan() || rps <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::BatchResult;

    /// Deterministic runner with a fixed per-batch service time; records
    /// the ids it served and the reload checkpoints it applied.
    struct FakeRunner {
        capacity: usize,
        service_nanos: f64,
        served: Vec<u64>,
        reloaded: Vec<Vec<u8>>,
    }

    impl FakeRunner {
        fn new(capacity: usize, service_nanos: f64) -> Self {
            FakeRunner { capacity, service_nanos, served: Vec::new(), reloaded: Vec::new() }
        }
    }

    impl BatchRunner for FakeRunner {
        fn capacity(&self) -> usize {
            self.capacity
        }

        fn run_batch(&mut self, reqs: &[&Request]) -> Result<BatchResult, ServeError> {
            self.served.extend(reqs.iter().map(|r| r.id));
            Ok(BatchResult {
                outputs: reqs.iter().map(|_| Tensor::zeros([1])).collect(),
                service_nanos: self.service_nanos,
                class_nanos: [0.0; 7],
            })
        }
    }

    impl ClusterRunner for FakeRunner {
        fn reload(&mut self, checkpoint: &[u8]) -> Result<(), ServeError> {
            self.reloaded.push(checkpoint.to_vec());
            Ok(())
        }
    }

    fn no_inputs() -> SynthFn<'static> {
        Box::new(|_rng, _id| Vec::new())
    }

    fn spec<'a>(
        name: &str,
        shards: Vec<Vec<&'a mut dyn ClusterRunner>>,
        rps: f64,
    ) -> ModelSpec<'a> {
        ModelSpec { name: name.into(), shards, rps, synth: no_inputs() }
    }

    #[test]
    fn two_models_conserve_and_spread_over_shards() {
        let mut a0 = FakeRunner::new(4, 2_000_000.0);
        let mut a1 = FakeRunner::new(4, 2_000_000.0);
        let mut b0 = FakeRunner::new(4, 1_000_000.0);
        let mut b1 = FakeRunner::new(4, 1_000_000.0);
        let mut models = vec![
            spec("alpha", vec![vec![&mut a0], vec![&mut a1]], 300.0),
            spec("beta", vec![vec![&mut b0], vec![&mut b1]], 500.0),
        ];
        let cfg = ClusterConfig { duration_nanos: 500_000_000, ..ClusterConfig::new(4) };
        let r = serve_cluster(&mut models, &cfg).expect("serves");
        assert!(r.conserved(), "conservation must hold");
        assert!(r.issued() > 200, "Poisson(800 rps, 0.5 s) issues ~400, got {}", r.issued());
        assert_eq!(r.shed(), 0, "no overload, nothing shed");
        assert_eq!(r.timed_out(), 0);
        drop(models);
        // Both shards of both models must have served work.
        for f in [&a0, &a1, &b0, &b1] {
            assert!(!f.served.is_empty(), "every shard must serve under hashed routing");
        }
        // No request served twice.
        let mut all: Vec<u64> = [&a0, &a1, &b0, &b1].iter().flat_map(|f| f.served.clone()).collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "a request must never be served twice");
        assert_eq!(total as u64, r.completed());
    }

    #[test]
    fn same_seed_reproduces_the_identical_report() {
        let run = || {
            let mut a = FakeRunner::new(4, 3_000_000.0);
            let mut b = FakeRunner::new(4, 3_000_000.0);
            let mut models = vec![spec("alpha", vec![vec![&mut a], vec![&mut b]], 900.0)];
            let cfg = ClusterConfig { duration_nanos: 300_000_000, ..ClusterConfig::new(4) };
            serve_cluster(&mut models, &cfg).expect("serves").to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overload_sheds_batch_class_first_and_interactive_meets_its_deadline() {
        // One slow replica, heavy offered load: the queue saturates and
        // admission must push the cost onto the Batch class while
        // Interactive completions stay inside their deadline.
        let mut only = FakeRunner::new(4, 20_000_000.0);
        let mut models = vec![spec("alpha", vec![vec![&mut only]], 2_000.0)];
        let cfg = ClusterConfig {
            duration_nanos: 400_000_000,
            queue_cap: 16,
            ..ClusterConfig::new(4)
        };
        let r = serve_cluster(&mut models, &cfg).expect("serves");
        assert!(r.conserved());
        let [inter, std_, batch] = &r.per_class;
        assert!(r.shed() > 0, "2000 rps into a 200 rps replica must shed");
        assert!(
            batch.shed + std_.shed > inter.shed,
            "lower classes shed first: interactive {} vs standard {} + batch {}",
            inter.shed,
            std_.shed,
            batch.shed
        );
        let deadline_ms = cfg.slo.deadline(SloClass::Interactive).unwrap() as f64 / 1e6;
        assert!(
            inter.latency.quantile(0.99) / 1e6 <= deadline_ms,
            "interactive p99 {:.3} ms must stay within its {deadline_ms} ms deadline",
            inter.latency.quantile(0.99) / 1e6
        );
        // The shed breakdown is itemized, not a single bucket.
        let reasons = r.shed_reasons();
        assert_eq!(reasons.total(), r.shed());
        assert!(
            reasons.priority_evicted > 0 || reasons.deadline_infeasible > 0,
            "overload must exercise typed shedding: {reasons:?}"
        );
    }

    #[test]
    fn continuous_batching_cuts_latency_versus_fixed_rounds() {
        // Moderate load on a capacity-4 replica: fixed rounds hold
        // partial batches for the delay timer; continuous dispatches the
        // moment the replica frees, so waiting time shrinks.
        let run = |batching: BatchPolicy| {
            let mut only = FakeRunner::new(4, 4_000_000.0);
            let mut models = vec![spec("alpha", vec![vec![&mut only]], 400.0)];
            let cfg = ClusterConfig {
                duration_nanos: 500_000_000,
                batching,
                ..ClusterConfig::new(4)
            };
            serve_cluster(&mut models, &cfg).expect("serves")
        };
        let cont = run(BatchPolicy::Continuous);
        let fixed = run(BatchPolicy::FixedRound { max_delay_nanos: 2_000_000 });
        assert!(cont.conserved() && fixed.conserved());
        let p99 = |r: &ClusterReport| {
            let mut all = LatencyHistogram::new();
            for c in &r.per_class {
                all.merge(&c.latency);
            }
            all.quantile(0.99)
        };
        assert!(
            p99(&cont) < p99(&fixed),
            "continuous p99 {} must beat fixed-round p99 {}",
            p99(&cont),
            p99(&fixed)
        );
    }

    #[test]
    fn hot_reload_swaps_every_replica_with_zero_drops() {
        let ck = vec![0xAB, 0xCD, 0xEF];
        let run = || {
            let mut a = FakeRunner::new(4, 2_000_000.0);
            let mut b = FakeRunner::new(4, 2_000_000.0);
            let mut c = FakeRunner::new(4, 2_000_000.0);
            let mut d = FakeRunner::new(4, 2_000_000.0);
            let mut models =
                vec![spec("alpha", vec![vec![&mut a, &mut b], vec![&mut c, &mut d]], 600.0)];
            let cfg = ClusterConfig {
                duration_nanos: 400_000_000,
                reloads: vec![ReloadPlan {
                    model: "alpha".into(),
                    at_nanos: 150_000_000,
                    checkpoint: ck.clone(),
                }],
                swap_nanos: 5_000_000,
                ..ClusterConfig::new(4)
            };
            let r = serve_cluster(&mut models, &cfg).expect("serves");
            drop(models);
            let reloaded: Vec<usize> = [&a, &b, &c, &d].iter().map(|f| f.reloaded.len()).collect();
            let mut served: Vec<u64> =
                [&a, &b, &c, &d].iter().flat_map(|f| f.served.clone()).collect();
            let total = served.len();
            served.sort_unstable();
            served.dedup();
            (r.to_json(), r.conserved(), r.shed() + r.timed_out(), r.reloads(), reloaded, served.len() == total)
        };
        let (json, conserved, lost, reloads, reloaded, unique) = run();
        assert!(conserved);
        assert_eq!(lost, 0, "a hot reload must drop nothing");
        assert_eq!(reloads, 4, "all four replicas swap");
        assert!(reloaded.iter().all(|&n| n == 1), "each replica reloads exactly once: {reloaded:?}");
        assert!(unique, "no request may be served twice across the swap");
        // Determinism across two seeded runs (acceptance criterion).
        let (json2, ..) = run();
        assert_eq!(json, json2);
    }

    #[test]
    fn a_crashed_replica_loses_nothing_the_retry_budget_covers() {
        use crate::chaos::FaultyRunner;
        use fathom_dataflow::{FaultAction, FaultPlan, FaultSite};
        use std::sync::Arc;

        let plan = Arc::new(
            FaultPlan::new(3).with(FaultSite::ServeBatch { replica: 0 }, 1, FaultAction::Crash),
        );
        let mut crashy = FaultyRunner::new(FakeRunner::new(4, 3_000_000.0), plan.clone(), 0);
        let mut healthy = FakeRunner::new(4, 3_000_000.0);
        let mut models =
            vec![spec("alpha", vec![vec![&mut crashy], vec![&mut healthy]], 400.0)];
        let cfg = ClusterConfig { duration_nanos: 400_000_000, ..ClusterConfig::new(4) };
        let r = serve_cluster(&mut models, &cfg).expect("serves");
        assert!(r.conserved());
        assert_eq!(r.recovery.crashes, 1, "the planned crash fires");
        assert!(r.recovery.retried >= 1, "the crashed batch requeues");
        assert_eq!(r.recovery.dropped, 0);
        assert_eq!(r.shed(), 0, "retries within budget lose nothing");
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn a_dead_shard_reroutes_its_queue_to_survivors() {
        use crate::chaos::FaultyRunner;
        use fathom_dataflow::{FaultAction, FaultPlan, FaultSite};
        use std::sync::Arc;

        // Replica 0 crashes on every dispatch until retired; its queued
        // work must flow to shard 1 rather than being stranded.
        let mut plan = FaultPlan::new(5);
        for hit in 0..16 {
            plan = plan.with(FaultSite::ServeBatch { replica: 0 }, hit, FaultAction::Crash);
        }
        let mut crashy = FaultyRunner::new(FakeRunner::new(4, 3_000_000.0), Arc::new(plan), 0);
        let mut healthy = FakeRunner::new(4, 3_000_000.0);
        let mut models =
            vec![spec("alpha", vec![vec![&mut crashy], vec![&mut healthy]], 500.0)];
        let cfg = ClusterConfig {
            duration_nanos: 400_000_000,
            recovery: RecoveryPolicy { max_retries: 8, ..RecoveryPolicy::default() },
            ..ClusterConfig::new(4)
        };
        let r = serve_cluster(&mut models, &cfg).expect("serves");
        assert!(r.conserved());
        assert_eq!(r.recovery.dead_replicas, 1, "shard 0's only replica retires");
        drop(models);
        assert!(
            healthy.served.len() as u64 == r.completed(),
            "every completion must come from the surviving shard"
        );
        assert!(r.completed() > 0);
    }

    #[test]
    fn whole_model_dead_sheds_as_replica_loss_and_terminates() {
        use crate::chaos::FaultyRunner;
        use fathom_dataflow::{FaultAction, FaultPlan, FaultSite};
        use std::sync::Arc;

        let mut plan = FaultPlan::new(1);
        for hit in 0..16 {
            plan = plan.with(FaultSite::ServeBatch { replica: 0 }, hit, FaultAction::Crash);
        }
        let mut only = FaultyRunner::new(FakeRunner::new(4, 3_000_000.0), Arc::new(plan), 0);
        let mut models = vec![spec("alpha", vec![vec![&mut only]], 300.0)];
        let cfg = ClusterConfig { duration_nanos: 300_000_000, ..ClusterConfig::new(4) };
        let r = serve_cluster(&mut models, &cfg).expect("terminates");
        assert!(r.conserved());
        assert_eq!(r.completed(), 0);
        assert!(r.shed_reasons().replica_loss > 0);
        assert_eq!(r.shed_reasons().replica_loss + r.timed_out(), r.shed() + r.timed_out());
    }

    #[test]
    fn empty_fleet_and_degenerate_configs_are_unservable() {
        let cfg = ClusterConfig::new(4);
        assert!(matches!(
            serve_cluster(&mut [], &cfg),
            Err(ServeError::Unservable(_))
        ));
        let mut models = vec![spec("alpha", vec![], 100.0)];
        assert!(matches!(
            serve_cluster(&mut models, &cfg),
            Err(ServeError::Unservable(_))
        ));
        let mut zero = FakeRunner::new(4, 1_000_000.0);
        let mut models = vec![spec("alpha", vec![vec![&mut zero]], 0.0)];
        assert!(matches!(
            serve_cluster(&mut models, &cfg),
            Err(ServeError::Unservable(_))
        ));
    }

    #[test]
    fn report_json_carries_per_class_and_per_model_blocks() {
        let mut a = FakeRunner::new(4, 2_000_000.0);
        let mut models = vec![spec("alpha", vec![vec![&mut a]], 300.0)];
        let cfg = ClusterConfig { duration_nanos: 200_000_000, ..ClusterConfig::new(4) };
        let r = serve_cluster(&mut models, &cfg).expect("serves");
        let json = r.to_json();
        for key in [
            "\"batching\": \"continuous\"",
            "\"classes\":",
            "\"class\": \"interactive\"",
            "\"class\": \"standard\"",
            "\"class\": \"batch\"",
            "\"models\":",
            "\"model\": \"alpha\"",
            "\"p99\"",
            "\"reloads\": 0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
