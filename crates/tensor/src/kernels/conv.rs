//! 2-D convolution kernels (op class B in the paper's taxonomy).
//!
//! Layout follows TensorFlow's defaults: activations are NHWC
//! (`[batch, height, width, channels]`) and filters are
//! `[kh, kw, in_channels, out_channels]`.
//!
//! The backward passes are separate kernels (`Conv2DBackpropInput`,
//! `Conv2DBackpropFilter`) because the paper's profiles treat them as
//! distinct operation types (see Figure 6a for `deepq`).

use crate::kernels::gemm;
use crate::pool::ExecPool;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution: square stride and symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Step between adjacent output pixels, in input pixels.
    pub stride: usize,
    /// Zero padding applied to each spatial edge of the input.
    pub pad: usize,
}

impl Conv2dSpec {
    /// Unit-stride, unpadded ("valid") convolution.
    pub fn valid() -> Self {
        Conv2dSpec { stride: 1, pad: 0 }
    }

    /// Unit-stride convolution padded to preserve spatial size for odd
    /// kernel extents ("same" padding).
    pub fn same(kernel: usize) -> Self {
        Conv2dSpec { stride: 1, pad: kernel / 2 }
    }

    /// Output spatial extent for an input extent and kernel extent.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (plus padding) does not fit in the input or
    /// the stride is zero.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        let padded = input + 2 * self.pad;
        assert!(padded >= kernel, "kernel {kernel} larger than padded input {padded}");
        (padded - kernel) / self.stride + 1
    }

    /// Output shape `[n, oh, ow, oc]` for an NHWC input and a filter.
    ///
    /// # Panics
    ///
    /// Panics if ranks are wrong or channel counts disagree.
    pub fn out_shape(&self, input: &Shape, filter: &Shape) -> Shape {
        assert_eq!(input.rank(), 4, "conv2d input must be NHWC, got {input}");
        assert_eq!(filter.rank(), 4, "conv2d filter must be [kh,kw,ic,oc], got {filter}");
        assert_eq!(
            input.dim(3),
            filter.dim(2),
            "input channels {} != filter channels {}",
            input.dim(3),
            filter.dim(2)
        );
        Shape::new(vec![
            input.dim(0),
            self.out_extent(input.dim(1), filter.dim(0)),
            self.out_extent(input.dim(2), filter.dim(1)),
            filter.dim(3),
        ])
    }
}

/// Forward convolution: NHWC input by `[kh, kw, ic, oc]` filter.
///
/// # Panics
///
/// Panics if the shapes are not a valid convolution (see
/// [`Conv2dSpec::out_shape`]).
pub fn conv2d(input: &Tensor, filter: &Tensor, spec: Conv2dSpec, pool: &ExecPool) -> Tensor {
    let out_shape = spec.out_shape(input.shape(), filter.shape());
    let (_n, h, w, ic) = dims4(input.shape());
    let (kh, kw, _, oc) = dims4(filter.shape());
    let (oh, ow) = (out_shape.dim(1), out_shape.dim(2));
    let mut out = Tensor::zeros(out_shape);
    if out.is_empty() {
        return out;
    }
    let x = input.data();
    let f = filter.data();
    let span = ow * oc; // one output row
    let work = kh * kw * ic * ow * oc;
    pool.for_spans(out.data_mut(), span, work, |row, dst| {
        let b = row / oh;
        let oy = row % oh;
        for ky in 0..kh {
            let y = (oy * spec.stride + ky) as isize - spec.pad as isize;
            if y < 0 || y >= h as isize {
                continue;
            }
            let y = y as usize;
            for ox in 0..ow {
                let dst_px = &mut dst[ox * oc..(ox + 1) * oc];
                for kx in 0..kw {
                    let xx = (ox * spec.stride + kx) as isize - spec.pad as isize;
                    if xx < 0 || xx >= w as isize {
                        continue;
                    }
                    let xx = xx as usize;
                    let in_px = &x[((b * h + y) * w + xx) * ic..((b * h + y) * w + xx) * ic + ic];
                    let f_base = (ky * kw + kx) * ic * oc;
                    for (c, &xv) in in_px.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let f_row = &f[f_base + c * oc..f_base + c * oc + oc];
                        for (d, &fv) in dst_px.iter_mut().zip(f_row) {
                            *d += xv * fv;
                        }
                    }
                }
            }
        }
    });
    out
}

/// Gradient of the convolution with respect to its input
/// (`Conv2DBackpropInput`).
///
/// `input_shape` is the NHWC shape of the forward input; `grad` is the
/// gradient flowing into the forward output.
///
/// # Panics
///
/// Panics if `grad`'s shape is not the forward output shape for
/// `input_shape`/`filter`/`spec`.
pub fn conv2d_backprop_input(
    input_shape: &Shape,
    filter: &Tensor,
    grad: &Tensor,
    spec: Conv2dSpec,
    pool: &ExecPool,
) -> Tensor {
    let expect = spec.out_shape(input_shape, filter.shape());
    assert_eq!(grad.shape(), &expect, "grad shape {} != forward output {}", grad.shape(), expect);
    let (_n, h, w, ic) = dims4(input_shape);
    let (kh, kw, _, oc) = dims4(filter.shape());
    let (oh, ow) = (expect.dim(1), expect.dim(2));
    let mut out = Tensor::zeros(input_shape.clone());
    if out.is_empty() || grad.is_empty() {
        return out;
    }
    let g = grad.data();
    let f = filter.data();
    let span = w * ic; // one input row
    let work = kh * kw * oc * w * ic / spec.stride.max(1);
    pool.for_spans(out.data_mut(), span, work, |row, dst| {
        let b = row / h;
        let y = row % h;
        for ky in 0..kh {
            // oy * stride + ky - pad == y  =>  oy = (y + pad - ky) / stride
            let num = y as isize + spec.pad as isize - ky as isize;
            if num < 0 || !(num as usize).is_multiple_of(spec.stride) {
                continue;
            }
            let oy = num as usize / spec.stride;
            if oy >= oh {
                continue;
            }
            for x in 0..w {
                let dst_px = &mut dst[x * ic..(x + 1) * ic];
                for kx in 0..kw {
                    let num = x as isize + spec.pad as isize - kx as isize;
                    if num < 0 || !(num as usize).is_multiple_of(spec.stride) {
                        continue;
                    }
                    let ox = num as usize / spec.stride;
                    if ox >= ow {
                        continue;
                    }
                    let g_px = &g[((b * oh + oy) * ow + ox) * oc..((b * oh + oy) * ow + ox) * oc + oc];
                    let f_base = (ky * kw + kx) * ic * oc;
                    for (c, d) in dst_px.iter_mut().enumerate() {
                        let f_row = &f[f_base + c * oc..f_base + c * oc + oc];
                        let mut acc = 0.0;
                        for (&gv, &fv) in g_px.iter().zip(f_row) {
                            acc += gv * fv;
                        }
                        *d += acc;
                    }
                }
            }
        }
    });
    out
}

/// Gradient of the convolution with respect to its filter
/// (`Conv2DBackpropFilter`).
///
/// # Panics
///
/// Panics if `grad`'s shape is not the forward output shape for
/// `input`/`filter_shape`/`spec`.
pub fn conv2d_backprop_filter(
    input: &Tensor,
    filter_shape: &Shape,
    grad: &Tensor,
    spec: Conv2dSpec,
    pool: &ExecPool,
) -> Tensor {
    let expect = spec.out_shape(input.shape(), filter_shape);
    assert_eq!(grad.shape(), &expect, "grad shape {} != forward output {}", grad.shape(), expect);
    let (n, h, w, ic) = dims4(input.shape());
    let (_kh, kw, _, oc) = dims4(filter_shape);
    let (oh, ow) = (expect.dim(1), expect.dim(2));
    let mut out = Tensor::zeros(filter_shape.clone());
    if out.is_empty() || input.is_empty() {
        return out;
    }
    let x = input.data();
    let g = grad.data();
    let span = oc; // one filter pixel-channel: dw[ky, kx, c, :]
    let work = n * oh * ow * oc;
    pool.for_spans(out.data_mut(), span, work, |idx, dst| {
        let c = idx % ic;
        let kx = (idx / ic) % kw;
        let ky = idx / (ic * kw);
        for b in 0..n {
            for oy in 0..oh {
                let y = (oy * spec.stride + ky) as isize - spec.pad as isize;
                if y < 0 || y >= h as isize {
                    continue;
                }
                let y = y as usize;
                for ox in 0..ow {
                    let xx = (ox * spec.stride + kx) as isize - spec.pad as isize;
                    if xx < 0 || xx >= w as isize {
                        continue;
                    }
                    let xv = x[((b * h + y) * w + xx as usize) * ic + c];
                    if xv == 0.0 {
                        continue;
                    }
                    let g_px = &g[((b * oh + oy) * ow + ox) * oc..((b * oh + oy) * ow + ox) * oc + oc];
                    for (d, &gv) in dst.iter_mut().zip(g_px) {
                        *d += xv * gv;
                    }
                }
            }
        }
    });
    out
}

/// `Conv2DBackpropInput` lowered onto the packed GEMM engine:
/// `dP = G * F^T` (grad `[n*oh*ow, oc]` by filter `[kh*kw*ic, oc]`
/// transposed), then [`crate::kernels::im2col::col2im`] folds the patch
/// gradient back onto the input grid. Numerically equivalent to
/// [`conv2d_backprop_input`]; bitwise deterministic across worker counts.
///
/// # Panics
///
/// Panics if `grad`'s shape is not the forward output shape for
/// `input_shape`/`filter`/`spec`.
pub fn conv2d_backprop_input_im2col(
    input_shape: &Shape,
    filter: &Tensor,
    grad: &Tensor,
    spec: Conv2dSpec,
    pool: &ExecPool,
) -> Tensor {
    use crate::kernels::im2col::{col2im, is_pointwise};

    let expect = spec.out_shape(input_shape, filter.shape());
    assert_eq!(grad.shape(), &expect, "grad shape {} != forward output {}", grad.shape(), expect);
    let (kh, kw, ic, oc) = dims4(filter.shape());
    let rows = expect.dim(0) * expect.dim(1) * expect.dim(2);
    let kdim = kh * kw * ic;
    if is_pointwise(kh, kw, spec) {
        // dP == dX: write the product straight into the input gradient.
        let mut dx = crate::recycle::take_buffer(rows * ic);
        gemm::gemm_into(&mut dx, rows, ic, oc, grad.data(), false, filter.data(), true, pool);
        return Tensor::from_vec(dx, input_shape.clone());
    }
    let mut dp = crate::recycle::take_buffer(rows * kdim);
    gemm::gemm_into(&mut dp, rows, kdim, oc, grad.data(), false, filter.data(), true, pool);
    let dx = col2im(&dp, input_shape, kh, kw, spec, pool);
    crate::recycle::give_buffer(dp);
    dx
}

/// `Conv2DBackpropFilter` lowered onto the packed GEMM engine:
/// `dF = P^T * G` where `P` is the im2col patch matrix and `G` the
/// output gradient viewed as `[n*oh*ow, oc]`. The transpose costs
/// nothing extra — GEMM packing absorbs it. Numerically equivalent to
/// [`conv2d_backprop_filter`]; bitwise deterministic across worker
/// counts.
///
/// # Panics
///
/// Panics if `grad`'s shape is not the forward output shape for
/// `input`/`filter_shape`/`spec`.
pub fn conv2d_backprop_filter_im2col(
    input: &Tensor,
    filter_shape: &Shape,
    grad: &Tensor,
    spec: Conv2dSpec,
    pool: &ExecPool,
) -> Tensor {
    use crate::kernels::im2col::{im2col, is_pointwise};

    let expect = spec.out_shape(input.shape(), filter_shape);
    assert_eq!(grad.shape(), &expect, "grad shape {} != forward output {}", grad.shape(), expect);
    let (kh, kw, ic, oc) = dims4(filter_shape);
    let rows = expect.dim(0) * expect.dim(1) * expect.dim(2);
    let kdim = kh * kw * ic;
    let mut df = crate::recycle::take_buffer(kdim * oc);
    if is_pointwise(kh, kw, spec) {
        gemm::gemm_into(&mut df, kdim, oc, rows, input.data(), true, grad.data(), false, pool);
    } else {
        let patches = im2col(input, kh, kw, spec, pool);
        gemm::gemm_into(&mut df, kdim, oc, rows, patches.data(), true, grad.data(), false, pool);
        crate::recycle::reclaim(patches);
    }
    Tensor::from_vec(df, filter_shape.clone())
}

pub(crate) fn dims4(s: &Shape) -> (usize, usize, usize, usize) {
    assert_eq!(s.rank(), 4, "expected rank-4 shape, got {s}");
    (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn pool() -> ExecPool {
        ExecPool::new(4).with_grain(1)
    }

    /// Brute-force reference convolution.
    fn conv_naive(input: &Tensor, filter: &Tensor, spec: Conv2dSpec) -> Tensor {
        let out_shape = spec.out_shape(input.shape(), filter.shape());
        let (n, h, w, ic) = dims4(input.shape());
        let (kh, kw, _, oc) = dims4(filter.shape());
        let (oh, ow) = (out_shape.dim(1), out_shape.dim(2));
        let mut out = Tensor::zeros(out_shape);
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for o in 0..oc {
                        let mut acc = 0.0;
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let y = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                let x = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                if y < 0 || y >= h as isize || x < 0 || x >= w as isize {
                                    continue;
                                }
                                for c in 0..ic {
                                    acc += input.at(&[b, y as usize, x as usize, c])
                                        * filter.at(&[ky, kx, c, o]);
                                }
                            }
                        }
                        out.set(&[b, oy, ox, o], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn out_shape_math() {
        let spec = Conv2dSpec { stride: 2, pad: 1 };
        assert_eq!(spec.out_extent(8, 3), 4);
        assert_eq!(Conv2dSpec::valid().out_extent(8, 3), 6);
        assert_eq!(Conv2dSpec::same(3).out_extent(8, 3), 8);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1 on a single channel is the identity.
        let mut rng = Rng::seeded(1);
        let x = Tensor::randn([1, 4, 4, 1], 0.0, 1.0, &mut rng);
        let f = Tensor::ones([1, 1, 1, 1]);
        let y = conv2d(&x, &f, Conv2dSpec::valid(), &pool());
        assert!(x.max_abs_diff(&y.reshaped([1, 4, 4, 1])) < 1e-6);
    }

    #[test]
    fn matches_naive_various_geometries() {
        let mut rng = Rng::seeded(2);
        for &(h, w, kh, kw, ic, oc, stride, pad) in &[
            (5, 5, 3, 3, 2, 3, 1, 0),
            (6, 6, 3, 3, 1, 2, 1, 1),
            (8, 8, 3, 3, 2, 2, 2, 1),
            (9, 7, 5, 3, 3, 4, 2, 2),
            (4, 4, 4, 4, 1, 1, 4, 0),
        ] {
            let spec = Conv2dSpec { stride, pad };
            let x = Tensor::randn([2, h, w, ic], 0.0, 1.0, &mut rng);
            let f = Tensor::randn([kh, kw, ic, oc], 0.0, 1.0, &mut rng);
            let fast = conv2d(&x, &f, spec, &pool());
            let slow = conv_naive(&x, &f, spec);
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "conv mismatch for h={h} w={w} k={kh}x{kw} s={stride} p={pad}"
            );
        }
    }

    /// Numerical check of both backward kernels via finite differences of
    /// the scalar `sum(conv2d(x, f))`.
    #[test]
    fn backprop_matches_finite_differences() {
        let mut rng = Rng::seeded(3);
        let spec = Conv2dSpec { stride: 2, pad: 1 };
        let x = Tensor::randn([1, 5, 5, 2], 0.0, 1.0, &mut rng);
        let f = Tensor::randn([3, 3, 2, 2], 0.0, 1.0, &mut rng);
        let out = conv2d(&x, &f, spec, &pool());
        let ones = Tensor::ones(out.shape().clone());

        let dx = conv2d_backprop_input(x.shape(), &f, &ones, spec, &pool());
        let dw = conv2d_backprop_filter(&x, f.shape(), &ones, spec, &pool());

        let eps = 1e-2;
        for idx in [0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (conv2d(&xp, &f, spec, &pool()).sum() - conv2d(&xm, &f, spec, &pool()).sum())
                / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 1e-2,
                "dx[{idx}]: numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
        for idx in [0usize, 5, 17, 35] {
            let mut fp = f.clone();
            fp.data_mut()[idx] += eps;
            let mut fm = f.clone();
            fm.data_mut()[idx] -= eps;
            let num = (conv2d(&x, &fp, spec, &pool()).sum() - conv2d(&x, &fm, spec, &pool()).sum())
                / (2.0 * eps);
            assert!(
                (num - dw.data()[idx]).abs() < 1e-2,
                "dw[{idx}]: numeric {num} vs analytic {}",
                dw.data()[idx]
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = Rng::seeded(4);
        let spec = Conv2dSpec::same(3);
        let x = Tensor::randn([2, 16, 16, 8], 0.0, 1.0, &mut rng);
        let f = Tensor::randn([3, 3, 8, 16], 0.0, 1.0, &mut rng);
        let serial = conv2d(&x, &f, spec, &ExecPool::serial());
        let par = conv2d(&x, &f, spec, &ExecPool::new(8).with_grain(1));
        assert!(serial.max_abs_diff(&par) < 1e-5);
    }

    #[test]
    fn backprop_im2col_lowerings_match_direct() {
        let mut rng = Rng::seeded(17);
        for &(h, w, k, ic, oc, stride, pad) in &[
            (6, 6, 3, 2, 4, 1, 1),
            (8, 8, 3, 3, 5, 2, 1),
            (9, 7, 5, 1, 3, 2, 2),
            (5, 5, 1, 4, 4, 1, 0), // pointwise fast path
            (20, 20, 8, 4, 16, 4, 0), // dqn geometry
        ] {
            let spec = Conv2dSpec { stride, pad };
            let x = Tensor::randn([2, h, w, ic], 0.0, 1.0, &mut rng);
            let f = Tensor::randn([k, k, ic, oc], 0.0, 1.0, &mut rng);
            let g = Tensor::randn(spec.out_shape(x.shape(), f.shape()), 0.0, 1.0, &mut rng);

            let dx_direct = conv2d_backprop_input(x.shape(), &f, &g, spec, &pool());
            let dx_gemm = conv2d_backprop_input_im2col(x.shape(), &f, &g, spec, &pool());
            assert!(
                dx_direct.max_abs_diff(&dx_gemm) < 1e-3,
                "dx mismatch for h={h} k={k} s={stride} p={pad}: {}",
                dx_direct.max_abs_diff(&dx_gemm)
            );

            let dw_direct = conv2d_backprop_filter(&x, f.shape(), &g, spec, &pool());
            let dw_gemm = conv2d_backprop_filter_im2col(&x, f.shape(), &g, spec, &pool());
            assert!(
                dw_direct.max_abs_diff(&dw_gemm) < 1e-3,
                "dw mismatch for h={h} k={k} s={stride} p={pad}: {}",
                dw_direct.max_abs_diff(&dw_gemm)
            );
        }
    }

    #[test]
    fn backprop_im2col_parallel_is_bitwise_identical_to_serial() {
        let mut rng = Rng::seeded(18);
        let spec = Conv2dSpec { stride: 2, pad: 1 };
        let x = Tensor::randn([2, 14, 14, 6], 0.0, 1.0, &mut rng);
        let f = Tensor::randn([3, 3, 6, 12], 0.0, 1.0, &mut rng);
        let g = Tensor::randn(spec.out_shape(x.shape(), f.shape()), 0.0, 1.0, &mut rng);
        let serial = ExecPool::serial();
        let dx0 = conv2d_backprop_input_im2col(x.shape(), &f, &g, spec, &serial);
        let dw0 = conv2d_backprop_filter_im2col(&x, f.shape(), &g, spec, &serial);
        for threads in [2, 8] {
            let par = ExecPool::new(threads).with_grain(1);
            let dx = conv2d_backprop_input_im2col(x.shape(), &f, &g, spec, &par);
            let dw = conv2d_backprop_filter_im2col(&x, f.shape(), &g, spec, &par);
            assert_eq!(dx0.data(), dx.data(), "dx diverged at {threads} workers");
            assert_eq!(dw0.data(), dw.data(), "dw diverged at {threads} workers");
        }
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_panics() {
        conv2d(
            &Tensor::zeros([1, 4, 4, 3]),
            &Tensor::zeros([3, 3, 2, 8]),
            Conv2dSpec::valid(),
            &pool(),
        );
    }
}
