//! `cargo bench -p fathom-bench --bench ablation_recovery`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::recovery::run(&effort));
}
