//! Elementwise arithmetic kernels (op class C in the paper's taxonomy).
//!
//! Binary kernels support NumPy-style broadcasting. All kernels parallelize
//! across flat output chunks through an [`ExecPool`].

use crate::pool::ExecPool;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Span length used when chunking flat elementwise loops.
const FLAT_SPAN: usize = 1024;

/// Applies `f` to every element, producing a new tensor.
pub fn unary(x: &Tensor, pool: &ExecPool, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = Tensor::zeros(x.shape().clone());
    let src = x.data();
    let span = FLAT_SPAN.min(src.len().max(1));
    let tail = src.len() % span;
    // Process the aligned prefix in parallel, the remainder serially.
    let aligned = src.len() - tail;
    pool.for_spans(&mut out.data_mut()[..aligned], span, 0, |i, dst| {
        let base = i * span;
        for (j, d) in dst.iter_mut().enumerate() {
            *d = f(src[base + j]);
        }
    });
    for (d, &s) in out.data_mut()[aligned..].iter_mut().zip(&src[aligned..]) {
        *d = f(s);
    }
    out
}

/// Applies `f(a, b)` elementwise with broadcasting.
///
/// # Panics
///
/// Panics if the shapes are not broadcast-compatible.
pub fn binary(a: &Tensor, b: &Tensor, pool: &ExecPool, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));

    // Fast path: identical shapes.
    if a.shape() == b.shape() {
        let mut out = Tensor::zeros(out_shape);
        let (x, y) = (a.data(), b.data());
        let span = FLAT_SPAN.min(x.len().max(1));
        let aligned = x.len() - x.len() % span;
        pool.for_spans(&mut out.data_mut()[..aligned], span, 0, |i, dst| {
            let base = i * span;
            for (j, d) in dst.iter_mut().enumerate() {
                *d = f(x[base + j], y[base + j]);
            }
        });
        for j in aligned..x.len() {
            out.data_mut()[j] = f(x[j], y[j]);
        }
        return out;
    }

    // Fast path: one side is a scalar (or single element).
    if a.len() == 1 {
        let s = a.data()[0];
        return unary(b, pool, |v| f(s, v)).reshaped(out_shape);
    }
    if b.len() == 1 {
        let s = b.data()[0];
        let out = unary(a, pool, |v| f(v, s));
        return out.reshaped(out_shape);
    }

    // General strided broadcast.
    let rank = out_shape.rank();
    let out_dims = out_shape.dims().to_vec();
    let a_strides = broadcast_strides(a.shape(), rank, &out_dims);
    let b_strides = broadcast_strides(b.shape(), rank, &out_dims);
    let mut out = Tensor::zeros(out_shape.clone());
    let inner = if rank == 0 { 1 } else { out_dims[rank - 1] };
    let a_data = a.data();
    let b_data = b.data();
    pool.for_spans(out.data_mut(), inner.max(1), 0, |row, dst| {
        // Decompose the row index into the leading coordinates.
        let mut rem = row;
        let mut a_off = 0;
        let mut b_off = 0;
        for axis in (0..rank.saturating_sub(1)).rev() {
            let coord = rem % out_dims[axis];
            rem /= out_dims[axis];
            a_off += coord * a_strides[axis];
            b_off += coord * b_strides[axis];
        }
        let a_inner = if rank == 0 { 0 } else { a_strides[rank - 1] };
        let b_inner = if rank == 0 { 0 } else { b_strides[rank - 1] };
        for (j, d) in dst.iter_mut().enumerate() {
            *d = f(a_data[a_off + j * a_inner], b_data[b_off + j * b_inner]);
        }
    });
    out
}

/// Strides for reading a tensor of shape `shape` as though it had the
/// broadcast target's rank and dims: broadcast axes get stride 0.
fn broadcast_strides(shape: &Shape, target_rank: usize, target_dims: &[usize]) -> Vec<usize> {
    let own = shape.strides();
    let offset = target_rank - shape.rank();
    let mut strides = vec![0; target_rank];
    for (i, (&dim, &stride)) in shape.dims().iter().zip(own.iter()).enumerate() {
        let t = i + offset;
        strides[t] = if dim == 1 && target_dims[t] != 1 { 0 } else { stride };
    }
    strides
}

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor, pool: &ExecPool) -> Tensor {
    binary(a, b, pool, |x, y| x + y)
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor, pool: &ExecPool) -> Tensor {
    binary(a, b, pool, |x, y| x - y)
}

/// `a * b` with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor, pool: &ExecPool) -> Tensor {
    binary(a, b, pool, |x, y| x * y)
}

/// `a / b` with broadcasting.
pub fn div(a: &Tensor, b: &Tensor, pool: &ExecPool) -> Tensor {
    binary(a, b, pool, |x, y| x / y)
}

/// Elementwise maximum with broadcasting.
pub fn maximum(a: &Tensor, b: &Tensor, pool: &ExecPool) -> Tensor {
    binary(a, b, pool, f32::max)
}

/// Elementwise `a^b` with broadcasting.
pub fn pow(a: &Tensor, b: &Tensor, pool: &ExecPool) -> Tensor {
    binary(a, b, pool, f32::powf)
}

/// Elementwise negation.
pub fn neg(x: &Tensor, pool: &ExecPool) -> Tensor {
    unary(x, pool, |v| -v)
}

/// Elementwise `e^x`.
pub fn exp(x: &Tensor, pool: &ExecPool) -> Tensor {
    unary(x, pool, f32::exp)
}

/// Elementwise natural logarithm.
pub fn log(x: &Tensor, pool: &ExecPool) -> Tensor {
    unary(x, pool, f32::ln)
}

/// Elementwise square root.
pub fn sqrt(x: &Tensor, pool: &ExecPool) -> Tensor {
    unary(x, pool, f32::sqrt)
}

/// Elementwise square.
pub fn square(x: &Tensor, pool: &ExecPool) -> Tensor {
    unary(x, pool, |v| v * v)
}

/// Elementwise hyperbolic tangent.
pub fn tanh(x: &Tensor, pool: &ExecPool) -> Tensor {
    unary(x, pool, f32::tanh)
}

/// Elementwise logistic sigmoid.
pub fn sigmoid(x: &Tensor, pool: &ExecPool) -> Tensor {
    unary(x, pool, |v| 1.0 / (1.0 + (-v).exp()))
}

/// Elementwise rectified linear unit.
pub fn relu(x: &Tensor, pool: &ExecPool) -> Tensor {
    unary(x, pool, |v| v.max(0.0))
}

/// Sum of `n >= 1` same-shaped tensors (the `AddN` kernel).
///
/// # Panics
///
/// Panics if `inputs` is empty or shapes differ.
pub fn add_n(inputs: &[&Tensor], pool: &ExecPool) -> Tensor {
    assert!(!inputs.is_empty(), "add_n requires at least one input");
    let shape = inputs[0].shape().clone();
    for t in inputs {
        assert_eq!(t.shape(), &shape, "add_n inputs must share a shape");
    }
    let mut out = Tensor::zeros(shape);
    let span = FLAT_SPAN.min(out.len().max(1));
    let aligned = out.len() - out.len() % span;
    let n = out.len();
    pool.for_spans(&mut out.data_mut()[..aligned], span, inputs.len(), |i, dst| {
        let base = i * span;
        for (j, d) in dst.iter_mut().enumerate() {
            *d = inputs.iter().map(|t| t.data()[base + j]).sum();
        }
    });
    for j in aligned..n {
        out.data_mut()[j] = inputs.iter().map(|t| t.data()[j]).sum();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ExecPool {
        ExecPool::new(4).with_grain(1)
    }

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3]);
        assert_eq!(add(&a, &b, &pool()).data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn scalar_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let s = Tensor::scalar(10.0);
        assert_eq!(mul(&a, &s, &pool()).data(), &[10.0, 20.0]);
        assert_eq!(sub(&s, &a, &pool()).data(), &[9.0, 8.0]);
    }

    #[test]
    fn row_broadcast() {
        // [2,3] + [3] broadcasts the vector across rows.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3]);
        let c = add(&a, &b, &pool());
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn column_broadcast() {
        // [2,3] * [2,1] broadcasts the column across columns.
        let a = Tensor::ones([2, 3]);
        let b = Tensor::from_vec(vec![2.0, 3.0], [2, 1]);
        let c = mul(&a, &b, &pool());
        assert_eq!(c.data(), &[2.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn both_sides_broadcast() {
        // [2,1] + [1,3] -> [2,3]
        let a = Tensor::from_vec(vec![1.0, 2.0], [2, 1]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], [1, 3]);
        let c = add(&a, &b, &pool());
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert_eq!(c.data(), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        add(&Tensor::zeros([2]), &Tensor::zeros([3]), &pool());
    }

    #[test]
    fn unary_functions() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], [3]);
        assert_eq!(relu(&x, &pool()).data(), &[0.0, 0.0, 1.0]);
        assert_eq!(neg(&x, &pool()).data(), &[1.0, 0.0, -1.0]);
        assert_eq!(square(&x, &pool()).data(), &[1.0, 0.0, 1.0]);
        let s = sigmoid(&x, &pool());
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
    }

    #[test]
    fn exp_log_roundtrip() {
        let x = Tensor::from_vec(vec![0.5, 1.0, 2.0], [3]);
        let y = log(&exp(&x, &pool()), &pool());
        assert!(x.max_abs_diff(&y) < 1e-5);
    }

    #[test]
    fn add_n_accumulates() {
        let a = Tensor::ones([4]);
        let b = Tensor::filled([4], 2.0);
        let c = Tensor::filled([4], 3.0);
        let s = add_n(&[&a, &b, &c], &pool());
        assert_eq!(s.data(), &[6.0; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn add_n_empty_panics() {
        add_n(&[], &pool());
    }

    #[test]
    fn large_parallel_matches_serial() {
        let n = 100_000;
        let x = Tensor::from_vec((0..n).map(|i| i as f32 * 0.001).collect(), [n]);
        let serial = tanh(&x, &ExecPool::serial());
        let parallel = tanh(&x, &ExecPool::new(8));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn high_rank_broadcast() {
        // [2,1,2] * [3,1] -> [2,3,2]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 1, 2]);
        let b = Tensor::from_vec(vec![1.0, 10.0, 100.0], [3, 1]);
        let c = mul(&a, &b, &pool());
        assert_eq!(c.shape().dims(), &[2, 3, 2]);
        assert_eq!(
            c.data(),
            &[1.0, 2.0, 10.0, 20.0, 100.0, 200.0, 3.0, 4.0, 30.0, 40.0, 300.0, 400.0]
        );
    }
}
