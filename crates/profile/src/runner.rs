//! Convenience drivers: trace a workload for N steps and aggregate.

use fathom::{BuildConfig, ModelKind, Workload};
use fathom_dataflow::trace::RunTrace;

use crate::profile::OpProfile;

/// Runs `steps` steps of an already-built workload with tracing enabled,
/// returning the raw trace.
///
/// Reset semantics: any events a caller traced before this function is
/// entered are discarded first — `take_trace` both drains the buffer and
/// disables tracing — so tracing is (re-)enabled exactly once and the
/// returned trace covers precisely these `steps` steps.
pub fn trace_steps(model: &mut dyn Workload, steps: usize) -> RunTrace {
    let _ = model.session_mut().take_trace();
    model.session_mut().enable_tracing();
    for _ in 0..steps {
        model.step();
    }
    model.session_mut().take_trace()
}

/// Builds a workload, runs `warmup + steps` steps, and profiles the last
/// `steps` of them.
pub fn profile_workload(kind: ModelKind, cfg: &BuildConfig, warmup: usize, steps: usize) -> OpProfile {
    let mut model = kind.build(cfg);
    for _ in 0..warmup {
        model.step();
    }
    let trace = trace_steps(model.as_mut(), steps);
    OpProfile::from_trace(kind.name(), &trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_a_small_workload() {
        let p = profile_workload(ModelKind::Autoenc, &BuildConfig::training(), 1, 2);
        assert_eq!(p.workload, "autoenc");
        assert_eq!(p.steps, 2);
        assert!(p.total_nanos() > 0.0);
        // A VAE profile must contain matmul, random sampling, and the
        // optimizer.
        assert!(p.fraction("MatMul") > 0.0);
        assert!(p.entry("StandardRandomNormal").is_some());
        assert!(p.entry("ApplyAdam").is_some());
    }

    #[test]
    fn trace_steps_resets_prior_state() {
        let mut model = ModelKind::Autoenc.build(&BuildConfig::inference());
        model.step(); // untraced
        let trace = trace_steps(model.as_mut(), 1);
        assert_eq!(trace.steps, 1);
    }
}
