//! Reduced-precision compute support: bf16 storage conversion and
//! symmetric per-channel int8 quantization with an i8×i8→i32 GEMM.
//!
//! Two independent paths share this module (DESIGN.md §18):
//!
//! * **bf16 storage / f32 accumulate** — [`f32_to_bf16`] /
//!   [`bf16_to_f32`] are the conversion points the packed GEMM engine
//!   uses when it packs operand panels at half width (see
//!   [`crate::kernels::gemm::matmul_packed_bf16`]). Conversion is
//!   round-to-nearest-even on the dropped mantissa bits, so every value
//!   already representable in bf16 (including ±0, ±inf and all
//!   8-bit-mantissa floats) round-trips exactly.
//! * **int8 inference** — [`QuantizedGemm`] holds weights quantized
//!   symmetrically per output channel plus one activation scale from
//!   calibration, and runs `i8×i8→i32` matrix products with the f32
//!   dequantization fused into the writeback, before any epilogue.
//!
//! Quantization is *symmetric* (no zero point): `q = clamp(round(x /
//! scale), -127, 127)`, which keeps zero exact, keeps `q(-x) == -q(x)`,
//! and lets the GEMM skip zero-point correction terms entirely.

use crate::kernels::epilogue::Epilogue;
use crate::pool::ExecPool;
use crate::tensor::Tensor;

/// Numeric storage precision for GEMM operand panels.
///
/// `F32` is the default everywhere; `Bf16` opts flop/byte-bound packed
/// products into bf16 panel storage with f32 accumulation. The knob
/// rides on `BuildConfig` and the session, and the cost model decides
/// per geometry whether a product actually takes the bf16 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// Full f32 storage and accumulation (the default).
    #[default]
    F32,
    /// bf16 packed-panel storage, f32 accumulation.
    Bf16,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::F32 => write!(f, "f32"),
            Precision::Bf16 => write!(f, "bf16"),
        }
    }
}

/// Converts an `f32` to bf16 bits with round-to-nearest-even on the 16
/// dropped mantissa bits. NaN maps to a canonical quiet NaN so the
/// result is never an accidental infinity.
#[inline(always)]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return 0x7FC0;
    }
    // Round to nearest even: add 0x7FFF plus the lowest kept bit.
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// Widens bf16 bits back to `f32` (exact: bf16 is a prefix of f32).
#[inline(always)]
pub fn bf16_to_f32(x: u16) -> f32 {
    f32::from_bits(u32::from(x) << 16)
}

/// Largest magnitude representable in the symmetric int8 grid.
pub const Q8_MAX: f32 = 127.0;

/// Scale mapping `max_abs` onto the symmetric int8 grid. Degenerate
/// ranges (all zeros, or a non-finite max from a diverged calibration)
/// fall back to 1.0 so quantization stays total; every value in such a
/// channel quantizes to 0 regardless.
#[inline]
pub fn quant_scale(max_abs: f32) -> f32 {
    if max_abs.is_finite() && max_abs > 0.0 {
        max_abs / Q8_MAX
    } else {
        1.0
    }
}

/// Quantizes one value onto the symmetric grid: round half away from
/// zero, clamp to ±127 (so `-128` is never produced and negation is
/// always exact).
#[inline(always)]
pub fn quantize_i8(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(-Q8_MAX, Q8_MAX) as i8
}

/// Per-column max-abs of a row-major `[k, n]` matrix (the per-output-
/// channel weight ranges).
pub fn col_max_abs(data: &[f32], k: usize, n: usize) -> Vec<f32> {
    assert_eq!(data.len(), k * n, "col_max_abs length mismatch");
    let mut maxes = vec![0.0f32; n];
    for row in data.chunks_exact(n.max(1)) {
        for (m, &v) in maxes.iter_mut().zip(row) {
            *m = m.max(v.abs());
        }
    }
    maxes
}

/// One GEMM's inference-quantized weights: `wq` is the weight matrix in
/// `[k, n]` row-major order on the int8 grid, `col_scales[j]` restores
/// column `j`, and `act_scale` (from calibration) quantizes the
/// activation operand per tensor.
///
/// Activation scales are per *tensor*, not per channel: a per-k-channel
/// activation scale cannot be factored out of the i32 accumulation
/// (each product term would need its own rescale), so calibration's
/// per-channel ranges collapse to their max here. Weight scales stay
/// per output channel, which is where the accuracy lives.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedGemm {
    /// Quantized weights, `[k, n]` row-major.
    pub wq: Vec<i8>,
    /// Contraction extent.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Per-output-column dequantization scales.
    pub col_scales: Vec<f32>,
    /// Per-tensor activation quantization scale.
    pub act_scale: f32,
}

impl QuantizedGemm {
    /// Quantizes `weights` (row-major `[k, n]`, or `[n, k]` when
    /// `transposed`) symmetrically per output column. `act_max_abs` is
    /// the calibrated activation range (max over channels).
    ///
    /// # Panics
    ///
    /// Panics if the weight slice length is not `k * n`.
    pub fn from_weights(
        weights: &[f32],
        k: usize,
        n: usize,
        transposed: bool,
        act_max_abs: f32,
    ) -> Self {
        assert_eq!(weights.len(), k * n, "quantized weight length mismatch");
        // Normalize to [k, n] row-major first so the GEMM inner loop
        // streams both operands with unit stride.
        let normal: Vec<f32> = if transposed {
            let mut out = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    out[kk * n + j] = weights[j * k + kk];
                }
            }
            out
        } else {
            weights.to_vec()
        };
        let col_scales: Vec<f32> =
            col_max_abs(&normal, k, n).into_iter().map(quant_scale).collect();
        let mut wq = vec![0i8; k * n];
        for (row_q, row) in wq.chunks_exact_mut(n.max(1)).zip(normal.chunks_exact(n.max(1))) {
            for ((q, &v), &s) in row_q.iter_mut().zip(row).zip(&col_scales) {
                *q = quantize_i8(v, s);
            }
        }
        QuantizedGemm { wq, k, n, col_scales, act_scale: quant_scale(act_max_abs) }
    }

    /// `activations [m, k] × wq [k, n]` in int8, dequantized to f32 in
    /// the writeback. i32 accumulation is exact for `k` up to ~130k
    /// (127·127·k < 2³¹), far past any suite geometry.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not `[m, k]` for this plan's `k`.
    pub fn matmul(&self, a: &Tensor, pool: &ExecPool) -> Tensor {
        self.matmul_fused(a, None, &[], pool)
    }

    /// [`QuantizedGemm::matmul`] with an optional [`Epilogue`] applied
    /// as a flat pass over the dequantized f32 output — the same program
    /// the f32 path would have fused into its writeback.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, an invalid epilogue, or mis-sized
    /// operands.
    pub fn matmul_fused(
        &self,
        a: &Tensor,
        epilogue: Option<&Epilogue>,
        operands: &[&[f32]],
        pool: &ExecPool,
    ) -> Tensor {
        assert_eq!(a.shape().rank(), 2, "quantized matmul lhs must be rank 2, got {}", a.shape());
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        assert_eq!(k, self.k, "quantized matmul contraction mismatch: [{m}, {k}] vs k={}", self.k);
        let n = self.n;
        if let Some(ep) = epilogue {
            ep.check_operands(m, n, operands);
        }
        // Quantize the activations once, per tensor.
        let a_data = a.data();
        let mut aq = vec![0i8; m * k];
        for (q, &v) in aq.iter_mut().zip(a_data) {
            *q = quantize_i8(v, self.act_scale);
        }
        let mut out = Tensor::zeros([m, n]);
        if m == 0 || n == 0 {
            return out;
        }
        let wq = &self.wq;
        let scales = &self.col_scales;
        let act_scale = self.act_scale;
        // Row-parallel i32 accumulation, dequantized into the row before
        // it is stored; blocked over k purely for i32 lane locality.
        pool.for_spans(out.data_mut(), n, k.saturating_mul(n), |i, c_row| {
            let mut acc = vec![0i32; n];
            let a_row = &aq[i * k..(i + 1) * k];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0 {
                    continue;
                }
                let av = i32::from(av);
                let w_row = &wq[kk * n..kk * n + n];
                for (slot, &wv) in acc.iter_mut().zip(w_row) {
                    *slot += av * i32::from(wv);
                }
            }
            for ((c, &sum), &s) in c_row.iter_mut().zip(&acc).zip(scales) {
                *c = sum as f32 * (act_scale * s);
            }
        });
        if let Some(ep) = epilogue {
            ep.apply_flat(out.data_mut(), m, n, operands, pool);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::matmul_naive;
    use crate::rng::Rng;

    #[test]
    fn bf16_round_trips_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 96.0, -0.375, f32::INFINITY] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)), v, "{v} must round-trip");
        }
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-8 sits exactly between bf16 neighbours 1.0 and
        // 1.0078125; ties go to the even mantissa (1.0).
        let tie = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_to_f32(f32_to_bf16(tie)), 1.0);
        // Just above the tie rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(bf16_to_f32(f32_to_bf16(above)), f32::from_bits(0x3F81_0000));
    }

    #[test]
    fn quantization_is_zero_preserving_and_symmetric() {
        let s = quant_scale(6.35);
        assert_eq!(quantize_i8(0.0, s), 0);
        for v in [0.01f32, 0.5, 1.7, 6.35, 9.9] {
            assert_eq!(quantize_i8(-v, s), -quantize_i8(v, s), "q(-{v}) != -q({v})");
        }
    }

    #[test]
    fn degenerate_scale_quantizes_to_zero() {
        assert_eq!(quant_scale(0.0), 1.0);
        assert_eq!(quant_scale(f32::NAN), 1.0);
        assert_eq!(quantize_i8(0.0, quant_scale(0.0)), 0);
    }

    #[test]
    fn quantized_matmul_tracks_f32_within_grid_error() {
        let mut rng = Rng::seeded(17);
        for &(m, k, n) in &[(4usize, 32usize, 8usize), (1, 64, 16), (7, 20, 5)] {
            let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
            let w = Tensor::randn([k, n], 0.0, 0.5, &mut rng);
            let act_max = a.data().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let w_max = w.data().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let q = QuantizedGemm::from_weights(w.data(), k, n, false, act_max);
            let got = q.matmul(&a, &ExecPool::serial());
            let want = matmul_naive(&a, &w, false, false);
            // Per product term the rounding error is at most half a grid
            // step on each operand: |Δ(a·w)| ≤ (s_a/2)|w| + (s_w/2)|a|
            // with s = max/127; bound the k-term sum with the max
            // magnitudes.
            let tol = k as f32 * act_max * w_max / 127.0;
            assert!(
                got.max_abs_diff(&want) < tol,
                "m={m} k={k} n={n}: diff {} over tol {tol}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn transposed_weights_match_normal_layout() {
        let mut rng = Rng::seeded(23);
        let (k, n) = (12, 6);
        let w = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
        let mut wt = vec![0.0f32; k * n];
        for kk in 0..k {
            for j in 0..n {
                wt[j * k + kk] = w.data()[kk * n + j];
            }
        }
        let q = QuantizedGemm::from_weights(w.data(), k, n, false, 3.0);
        let qt = QuantizedGemm::from_weights(&wt, k, n, true, 3.0);
        assert_eq!(q, qt, "transposed quantization must normalize to the same plan");
    }

    #[test]
    fn fused_epilogue_matches_unfused_then_flat() {
        use crate::kernels::epilogue::{EpilogueArg, EpilogueInstr, OperandKind};
        use crate::kernels::fused::FusedOp;
        let mut rng = Rng::seeded(31);
        let (m, k, n) = (5, 24, 9);
        let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
        let w = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
        let bias = Tensor::randn([n], 0.0, 1.0, &mut rng);
        let ep = Epilogue {
            n_operands: 1,
            instrs: vec![
                EpilogueInstr {
                    op: FusedOp::Add,
                    args: vec![
                        EpilogueArg::Acc,
                        EpilogueArg::Operand { index: 0, kind: OperandKind::Col },
                    ],
                },
                EpilogueInstr { op: FusedOp::Relu, args: vec![EpilogueArg::Acc] },
            ],
        };
        let q = QuantizedGemm::from_weights(w.data(), k, n, false, 4.0);
        let pool = ExecPool::new(2).with_grain(1);
        let fused = q.matmul_fused(&a, Some(&ep), &[bias.data()], &pool);
        let mut unfused = q.matmul(&a, &pool);
        ep.apply_flat(unfused.data_mut(), m, n, &[bias.data()], &pool);
        assert_eq!(fused.data(), unfused.data());
    }
}
