//! Shared profiling sweep: training profiles for all eight workloads.

use fathom::{BuildConfig, ModelKind};
use fathom_profile::{runner, OpProfile};

use crate::Effort;

/// Profiles every workload in training mode on a single-threaded CPU
/// (the paper's primary measurement configuration, §V-A).
pub fn all_training_profiles(effort: &Effort) -> Vec<OpProfile> {
    ModelKind::ALL
        .iter()
        .map(|kind| {
            runner::profile_workload(*kind, &BuildConfig::training(), effort.warmup, effort.steps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_eight_profiles_in_table_order() {
        let profiles = all_training_profiles(&Effort::quick());
        assert_eq!(profiles.len(), 8);
        assert_eq!(profiles[0].workload, "seq2seq");
        assert_eq!(profiles[7].workload, "deepq");
        for p in &profiles {
            assert!(p.total_nanos() > 0.0, "{} captured no time", p.workload);
        }
    }
}
