//! Figure 4 — hierarchical similarity of the Fathom workloads.
//!
//! Cosine distance between op-type profiles, agglomerative clustering
//! with centroidal linkage, rendered as a dendrogram. The paper's
//! qualitative structure: "the three ImageNet challenge networks are
//! grouped closely, and deepq ... is not far off"; the two recurrent
//! networks (speech, seq2seq) land far apart.

use std::fmt::Write as _;

use fathom_profile::{cluster, report};

use crate::experiments::profiles::all_training_profiles;
use crate::{write_artifact, Effort};

/// Regenerates Figure 4 over all eight training profiles.
pub fn run(effort: &Effort) -> String {
    // Similarity distances are second-order statistics of noisy wall-time
    // shares, so sample more steps than the other figures.
    let effort = Effort { steps: (effort.steps * 3).max(9), ..*effort };
    let profiles = all_training_profiles(&effort);
    let dendrogram = cluster(&profiles);

    let mut out = String::new();
    let _ = writeln!(out, "FIGURE 4: Hierarchical similarity (cosine distance, centroidal linkage)\n");
    out.push_str(&report::render_dendrogram(&dendrogram));

    let _ = writeln!(out, "\nPairwise cosine distances:");
    let _ = write!(out, "{:<9}", "");
    for n in &dendrogram.names {
        let _ = write!(out, " {:>8}", &n[..n.len().min(8)]);
    }
    out.push('\n');
    let mut csv_rows = Vec::new();
    for (i, n) in dendrogram.names.iter().enumerate() {
        let _ = write!(out, "{:<9}", n);
        for j in 0..dendrogram.names.len() {
            let _ = write!(out, " {:>8.3}", dendrogram.distances[i][j]);
        }
        out.push('\n');
        csv_rows.push((n.clone(), dendrogram.distances[i].clone()));
    }

    // The paper's two qualitative checks.
    let d = |a: &str, b: &str| {
        let i = dendrogram.names.iter().position(|n| n == a).expect("known workload");
        let j = dendrogram.names.iter().position(|n| n == b).expect("known workload");
        dendrogram.distances[i][j]
    };
    let conv_pairs = [("alexnet", "vgg"), ("alexnet", "residual"), ("vgg", "residual")];
    let conv_max = conv_pairs.iter().map(|(a, b)| d(a, b)).fold(0.0, f64::max);
    let recurrent_gap = d("speech", "seq2seq");
    let _ = writeln!(
        out,
        "\nPaper's claims to reproduce:\n\
         - ImageNet networks cluster tightly: max pairwise distance {conv_max:.3}\n\
         - the two recurrent nets are distant:  speech<->seq2seq = {recurrent_gap:.3}\n\
         - check: recurrent gap exceeds conv-cluster spread: {}",
        recurrent_gap > conv_max
    );

    let mut header = vec!["workload"];
    header.extend(dendrogram.names.iter().map(String::as_str));
    write_artifact("fig4_similarity.csv", &report::to_csv(&header, &csv_rows));
    write_artifact("fig4_similarity.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dendrogram_has_all_leaves() {
        let out = run(&Effort::quick());
        for name in ["seq2seq", "memnet", "speech", "autoenc", "residual", "vgg", "alexnet", "deepq"] {
            assert!(out.contains(name));
        }
        assert!(out.contains("Pairwise cosine distances"));
    }
}
