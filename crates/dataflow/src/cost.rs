//! Static cost estimates for operations.
//!
//! Costs drive the [`crate::device::GpuModel`] roofline device (the Fathom
//! paper measured a real GTX 960; we substitute an analytic model — see
//! DESIGN.md) and provide flop counts for reports.

use fathom_tensor::kernels::conv::Conv2dSpec;
use fathom_tensor::kernels::epilogue::EpilogueInstr;
use fathom_tensor::kernels::fused::{FusedInstr, FusedOp};
use fathom_tensor::{Precision, Shape};

use crate::graph::Node;
use crate::op::{GemmOp, OpKind};

/// Per-output-element flop weight of one scalar op with `n_args`
/// operands, matching what [`estimate`] charges the same op unfused.
fn op_flops_per_elem(op: FusedOp, n_args: usize) -> f64 {
    match op {
        FusedOp::Exp
        | FusedOp::Log
        | FusedOp::Tanh
        | FusedOp::Sigmoid
        | FusedOp::Sqrt
        | FusedOp::Pow => 8.0,
        // Unfused AddN is charged in_elems = n_args * out_elems.
        FusedOp::AddN => n_args as f64,
        _ => 1.0,
    }
}

/// Per-output-element flop weight of one fused instruction, matching
/// what [`estimate`] charges the same op unfused. Also used by the
/// executor to apportion a fused node's measured time across its
/// constituents for trace attribution.
pub fn fused_instr_flops_per_elem(instr: &FusedInstr) -> f64 {
    op_flops_per_elem(instr.op, instr.args.len())
}

/// Per-output-element flop weight of one GEMM-epilogue instruction —
/// the same scale as [`fused_instr_flops_per_elem`], so Figure 3
/// attribution charges an op identically whichever pass absorbed it.
pub fn epilogue_instr_flops_per_elem(instr: &EpilogueInstr) -> f64 {
    op_flops_per_elem(instr.op, instr.args.len())
}

/// Estimated work of one operation execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct OpCost {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved between memory and the compute units (inputs + outputs,
    /// each counted once).
    pub bytes: f64,
}

impl OpCost {
    /// Arithmetic intensity in flops per byte (0 when no bytes move).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            0.0
        } else {
            self.flops / self.bytes
        }
    }

    /// The op's work in abstract "elements" — the larger of its flop
    /// count and the f32 elements it moves. This is the unit
    /// [`crate::sched::chosen_width`] compares against the intra-op
    /// pool's grain when deciding how wide to run the op.
    pub fn work_elements(&self) -> usize {
        let elems = (self.bytes / 4.0).max(0.0);
        let work = self.flops.max(elems);
        if work >= usize::MAX as f64 {
            usize::MAX
        } else {
            work.max(0.0) as usize
        }
    }
}

/// How a convolution (and its gradients) should execute on CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvLowering {
    /// Direct nested loops over the output (or input/filter for the
    /// gradients).
    Direct,
    /// im2col patch materialization plus a packed GEMM (col2im for the
    /// input gradient).
    Im2colGemm,
}

/// Picks the convolution lowering from flop/byte estimates of the
/// geometry, at full precision. See [`conv2d_lowering_with`].
pub fn conv2d_lowering(input: &Shape, filter: &Shape, spec: Conv2dSpec) -> ConvLowering {
    conv2d_lowering_with(input, filter, spec, Precision::F32)
}

/// Picks the convolution lowering from flop/byte estimates of the
/// geometry.
///
/// im2col duplicates the input up to `kh*kw` times, so it only pays when
/// the GEMM does enough arithmetic per byte of patch-matrix traffic to
/// amortize the copy — and when there is enough total work for packed
/// GEMM to beat the direct kernel's simpler loops.
///
/// Intensity and total work alone over-predict im2col on small-`k`
/// geometries: the PR-4 ablation's `32x32 3x3 c16->16` case clears both
/// bars (intensity 3.6, 4.7 MFLOP) yet loses to the direct kernel,
/// because its weight panel (`kdim × oc` ≈ 9 KB) is too small for the
/// packed engine's panel reuse to beat direct loops that never build a
/// patch matrix at all. The third condition below captures that: im2col
/// needs either a large filter window (`kh*kw ≥ 25`, where the direct
/// kernel's per-output work explodes — the deepq 8×8 geometry) or a
/// weight panel big enough to amortize packing (≥ 32 KB, the same
/// `k*n ≥ 8192`-elements-at-f32 floor as
/// [`fathom_tensor::kernels::gemm::use_packed`]). The panel bound is in
/// *bytes* at the packed element width, so bf16 halves it and marginal
/// panels drop back to Direct — under bf16 the GEMM's bandwidth win
/// shrinks while the (always-f32) patch-copy cost does not.
///
/// Every term is **per sample**: the batch extent is deliberately
/// excluded so a batch-1 serving graph and a batch-B graph over the same
/// geometry pick the same lowering (serving's bitwise batch-independence
/// contract).
pub fn conv2d_lowering_with(
    input: &Shape,
    filter: &Shape,
    spec: Conv2dSpec,
    precision: Precision,
) -> ConvLowering {
    assert_eq!(input.rank(), 4, "conv2d input must be NHWC, got {input}");
    assert_eq!(filter.rank(), 4, "conv2d filter must be [kh,kw,ic,oc], got {filter}");
    let (kh, kw, ic, oc) = (filter.dim(0), filter.dim(1), filter.dim(2), filter.dim(3));
    let (h, w) = (input.dim(1), input.dim(2));
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let kdim = (kh * kw * ic) as f64;
    let out_px = (oh * ow) as f64;
    // Work and traffic for one sample's lowered GEMM: patch matrix
    // written once and read once, plus filter, input, and output moved
    // once each. The patch matrix is always materialized at f32; only
    // the packed GEMM panels narrow under bf16.
    let gemm_flops = 2.0 * out_px * kdim * oc as f64;
    let bytes = 4.0
        * (2.0 * out_px * kdim
            + kdim * oc as f64
            + (h * w * ic) as f64
            + out_px * oc as f64);
    let intensity = OpCost { flops: gemm_flops, bytes }.intensity();
    let elem_bytes = match precision {
        Precision::F32 => 4.0,
        Precision::Bf16 => 2.0,
    };
    let panel_bytes = elem_bytes * kdim * oc as f64;
    let big_window = kh * kw >= 25;
    if intensity >= 2.0 && gemm_flops >= 100_000.0 && (big_window || panel_bytes >= 32768.0) {
        ConvLowering::Im2colGemm
    } else {
        ConvLowering::Direct
    }
}

/// Whether a `[m,k]x[k,n]` product should take the bf16 packed path when
/// the session opts into [`Precision::Bf16`].
///
/// bf16's entire win is halved panel bandwidth at the pack step, so it
/// only pays on products the packed engine takes anyway
/// ([`fathom_tensor::kernels::gemm::use_packed`]) and whose contraction
/// is deep enough that panel streaming — not the one-pass pack
/// conversion — dominates (`k ≥ 64`, one microkernel pass per output
/// tile reading at least 64 panel rows). Like `use_packed`, the answer
/// deliberately ignores `m`: `m` is the batch-scaled extent and the
/// choice must not break serving's bitwise batch-independence contract.
pub fn bf16_gemm_eligible(k: usize, n: usize) -> bool {
    fathom_tensor::kernels::gemm::use_packed(k, n) && k >= 64
}

/// Whether a MatMul/Conv2D node with these input shapes is a profitable
/// root for GEMM-epilogue fusion.
///
/// Every MatMul qualifies: geometries that route through the packed
/// engine apply the epilogue to register-resident tiles, and the
/// row-parallel fallback applies it as one flat pass over the output —
/// either way the absorbed chain sheds its node dispatches, intermediate
/// allocations, and round trips, so fusion is never a loss. (On
/// RNN-style graphs with thousands of small matmuls per step, the
/// dispatch savings on the fallback path are most of the win.) Conv2D
/// qualifies only when it lowers through im2col — the direct kernel is
/// chosen precisely when the output is too small for the GEMM machinery
/// to pay off, and its post-hoc epilogue pass saves nothing over leaving
/// the chain to [`crate::optimize::fuse_in_place`].
///
/// Like [`fathom_tensor::kernels::gemm::use_packed`] and [`conv2d_lowering`], the answer is
/// independent of the batch extent, preserving serving's bitwise
/// batch-independence contract.
pub fn gemm_epilogue_profitable(kind: &OpKind, input_shapes: &[&Shape]) -> bool {
    match kind {
        OpKind::MatMul { .. } => true,
        OpKind::Conv2D(spec) => {
            conv2d_lowering(input_shapes[0], input_shapes[1], *spec) == ConvLowering::Im2colGemm
        }
        _ => false,
    }
}

/// Estimates the cost of executing `node` once, given resolved input
/// shapes.
pub fn estimate(node: &Node, input_shapes: &[&Shape]) -> OpCost {
    let out_elems = node.shape.num_elements() as f64;
    let in_elems: f64 = input_shapes.iter().map(|s| s.num_elements() as f64).sum();
    let bytes = 4.0 * (in_elems + out_elems);
    let flops = match &node.kind {
        OpKind::MatMul { transpose_a, .. } => {
            // out is [m, n]; contraction length from the lhs.
            let a = input_shapes[0];
            let k = if *transpose_a { a.dim(0) } else { a.dim(1) } as f64;
            2.0 * out_elems * k
        }
        OpKind::Conv2D(_) => {
            // out [n, oh, ow, oc]; filter [kh, kw, ic, oc]
            let f = input_shapes[1];
            2.0 * out_elems * (f.dim(0) * f.dim(1) * f.dim(2)) as f64
        }
        OpKind::Conv2DBackpropInput { .. } => {
            let f = input_shapes[0];
            2.0 * input_shapes[1].num_elements() as f64 * (f.dim(0) * f.dim(1) * f.dim(2)) as f64
        }
        OpKind::Conv2DBackpropFilter { filter_shape, .. } => {
            2.0 * input_shapes[1].num_elements() as f64
                * (filter_shape.dim(0) * filter_shape.dim(1) * filter_shape.dim(2)) as f64
        }
        OpKind::MaxPool(spec) | OpKind::AvgPool(spec) => {
            out_elems * (spec.window * spec.window) as f64
        }
        OpKind::MaxPoolGrad(spec) => {
            input_shapes[1].num_elements() as f64 * (spec.window * spec.window) as f64
        }
        OpKind::AvgPoolGrad { spec, .. } => {
            input_shapes[0].num_elements() as f64 * (spec.window * spec.window) as f64
        }
        // Transcendentals are several flops per element.
        OpKind::Exp | OpKind::Log | OpKind::Tanh | OpKind::Sigmoid | OpKind::Sqrt | OpKind::Pow => {
            8.0 * out_elems
        }
        OpKind::Softmax | OpKind::LogSoftmax | OpKind::SoftmaxGrad => 10.0 * out_elems,
        OpKind::SoftmaxCrossEntropy | OpKind::SoftmaxCrossEntropyGrad => {
            10.0 * input_shapes[0].num_elements() as f64
        }
        OpKind::CtcLoss { .. } | OpKind::CtcLossGrad { .. } => {
            // Forward-backward over the extended label lattice: roughly
            // 2 * T * B * (2L+1) * 3 plus the per-frame softmax. Label
            // length is unknown statically; approximate the lattice with
            // the class count.
            30.0 * input_shapes[0].num_elements() as f64
        }
        OpKind::StandardRandomNormal { .. } | OpKind::RandomUniform { .. }
        | OpKind::DropoutMask { .. } => 12.0 * out_elems,
        OpKind::ApplyGradientDescent { .. } => 2.0 * out_elems,
        OpKind::ApplyMomentum { .. } => 4.0 * out_elems,
        OpKind::ApplyRmsProp { .. } => 8.0 * out_elems,
        OpKind::ApplyAdam { .. } => 10.0 * out_elems,
        OpKind::AddN => in_elems,
        // A fused group's arithmetic is the sum of its constituents'
        // (the default `bytes` above already counts only external
        // traffic, which is exactly the fusion win).
        OpKind::Fused(program) => {
            program.instrs.iter().map(fused_instr_flops_per_elem).sum::<f64>() * out_elems
        }
        // GEMM root plus its absorbed epilogue; as with `Fused`, the
        // default `bytes` counts only external traffic.
        OpKind::GemmFused { gemm, epilogue } => {
            let root = match gemm {
                GemmOp::MatMul { transpose_a, .. } => {
                    let a = input_shapes[0];
                    let k = if *transpose_a { a.dim(0) } else { a.dim(1) } as f64;
                    2.0 * out_elems * k
                }
                GemmOp::Conv2D(_) => {
                    let f = input_shapes[1];
                    2.0 * out_elems * (f.dim(0) * f.dim(1) * f.dim(2)) as f64
                }
            };
            root + epilogue.instrs.iter().map(epilogue_instr_flops_per_elem).sum::<f64>()
                * out_elems
        }
        OpKind::Sum { .. } | OpKind::Mean { .. } | OpKind::MaxReduce { .. } => in_elems,
        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Maximum
        | OpKind::Greater | OpKind::GreaterEqual | OpKind::Equal | OpKind::Select
        | OpKind::Neg | OpKind::Square | OpKind::Relu | OpKind::ReluGrad | OpKind::TanhGrad
        | OpKind::SigmoidGrad => out_elems,
        // Pure movement and metadata.
        OpKind::Placeholder { .. } | OpKind::Variable { .. } | OpKind::Constant(_)
        | OpKind::Identity | OpKind::Reshape(_) | OpKind::Transpose { .. }
        | OpKind::Concat { .. } | OpKind::Slice { .. } | OpKind::Gather
        | OpKind::ScatterAddRows { .. } | OpKind::ShapeOf | OpKind::StopGradient
        | OpKind::Tile { .. } | OpKind::Group => 0.0,
    };
    OpCost { flops, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use fathom_tensor::kernels::conv::Conv2dSpec;
    use fathom_tensor::Tensor;

    #[test]
    fn matmul_flops() {
        let mut g = Graph::new();
        let a = g.placeholder("a", Shape::matrix(8, 16));
        let b = g.placeholder("b", Shape::matrix(16, 4));
        let c = g.matmul(a, b);
        let cost = estimate(g.node(c), &[g.shape(a), g.shape(b)]);
        assert_eq!(cost.flops, 2.0 * 8.0 * 16.0 * 4.0);
        assert_eq!(cost.bytes, 4.0 * (8.0 * 16.0 + 16.0 * 4.0 + 8.0 * 4.0));
    }

    #[test]
    fn conv_flops() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::new(vec![1, 8, 8, 3]));
        let f = g.variable("f", Tensor::zeros([3, 3, 3, 16]));
        let y = g.conv2d(x, f, Conv2dSpec::same(3));
        let cost = estimate(g.node(y), &[g.shape(x), g.shape(f)]);
        // out elems = 8*8*16 = 1024; per-output macs = 3*3*3 = 27
        assert_eq!(cost.flops, 2.0 * 1024.0 * 27.0);
    }

    #[test]
    fn movement_ops_have_zero_flops() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(4, 4));
        let t = g.transpose(x, vec![1, 0]);
        let cost = estimate(g.node(t), &[g.shape(x)]);
        assert_eq!(cost.flops, 0.0);
        assert!(cost.bytes > 0.0);
    }

    #[test]
    fn lowering_heuristic_on_clear_cut_geometries() {
        // Deep residual-style body: many channels both sides, 3x3 same.
        // GEMM arithmetic dwarfs the patch copy.
        assert_eq!(
            conv2d_lowering(
                &Shape::new(vec![1, 8, 8, 64]),
                &Shape::new(vec![3, 3, 64, 64]),
                Conv2dSpec::same(3),
            ),
            ConvLowering::Im2colGemm
        );
        // The deepq first conv: fat 8x8 patches, enough output channels.
        assert_eq!(
            conv2d_lowering(
                &Shape::new(vec![4, 20, 20, 4]),
                &Shape::new(vec![8, 8, 4, 16]),
                Conv2dSpec { stride: 4, pad: 0 },
            ),
            ConvLowering::Im2colGemm
        );
        // Single output channel: the GEMM cannot amortize duplicating
        // the input kh*kw times.
        assert_eq!(
            conv2d_lowering(
                &Shape::new(vec![1, 32, 32, 3]),
                &Shape::new(vec![3, 3, 3, 1]),
                Conv2dSpec::same(3),
            ),
            ConvLowering::Direct
        );
        // Tiny total work: packing overhead swamps the product.
        assert_eq!(
            conv2d_lowering(
                &Shape::new(vec![1, 5, 5, 2]),
                &Shape::new(vec![3, 3, 2, 4]),
                Conv2dSpec::valid(),
            ),
            ConvLowering::Direct
        );
    }

    #[test]
    fn refit_rejects_the_small_panel_ablation_loser() {
        // The `32x32 3x3 c16->16` geometry cleared the old intensity/
        // flop bars but lost to the direct kernel in the PR-4 ablation
        // (3/4): its 9 KB weight panel cannot amortize im2col's patch
        // copy. The panel-bytes condition pins it to Direct.
        assert_eq!(
            conv2d_lowering(
                &Shape::new(vec![2, 32, 32, 16]),
                &Shape::new(vec![3, 3, 16, 16]),
                Conv2dSpec::same(3),
            ),
            ConvLowering::Direct
        );
    }

    #[test]
    fn lowering_panel_bound_narrows_under_bf16() {
        // 36 KB f32 weight panel: above the 32 KB bound at f32, below it
        // at bf16 (18 KB) — the GEMM's bandwidth win halves while the
        // f32 patch copy does not, so the marginal geometry drops back
        // to Direct.
        let input = Shape::new(vec![1, 16, 16, 32]);
        let filter = Shape::new(vec![3, 3, 32, 32]);
        let spec = Conv2dSpec::same(3);
        assert_eq!(
            conv2d_lowering_with(&input, &filter, spec, Precision::F32),
            ConvLowering::Im2colGemm
        );
        assert_eq!(
            conv2d_lowering_with(&input, &filter, spec, Precision::Bf16),
            ConvLowering::Direct
        );
        // A deep geometry stays Im2colGemm at either width.
        let deep_in = Shape::new(vec![1, 8, 8, 64]);
        let deep_f = Shape::new(vec![3, 3, 64, 64]);
        assert_eq!(
            conv2d_lowering_with(&deep_in, &deep_f, spec, Precision::Bf16),
            ConvLowering::Im2colGemm
        );
    }

    #[test]
    fn bf16_eligibility_requires_packed_and_deep_k() {
        assert!(bf16_gemm_eligible(512, 512));
        assert!(bf16_gemm_eligible(64, 128));
        assert!(!bf16_gemm_eligible(32, 512), "shallow k: pack pass dominates");
        assert!(!bf16_gemm_eligible(512, 8), "n below NR never packs");
        assert!(!bf16_gemm_eligible(4, 512));
    }

    #[test]
    fn lowering_ignores_batch() {
        // Identical geometry, batch 1 vs 64: same choice, by construction.
        for &(h, ic, oc) in &[(6, 2, 4), (8, 64, 64), (20, 4, 16)] {
            let f = Shape::new(vec![3, 3, ic, oc]);
            let spec = Conv2dSpec::same(3);
            let one = conv2d_lowering(&Shape::new(vec![1, h, h, ic]), &f, spec);
            let many = conv2d_lowering(&Shape::new(vec![64, h, h, ic]), &f, spec);
            assert_eq!(one, many, "lowering must not depend on batch (h={h} ic={ic} oc={oc})");
        }
    }

    #[test]
    fn intensity_of_matmul_exceeds_elementwise() {
        let mut g = Graph::new();
        let a = g.placeholder("a", Shape::matrix(128, 128));
        let b = g.placeholder("b", Shape::matrix(128, 128));
        let mm = g.matmul(a, b);
        let ew = g.add_op(a, b);
        let mm_cost = estimate(g.node(mm), &[g.shape(a), g.shape(b)]);
        let ew_cost = estimate(g.node(ew), &[g.shape(a), g.shape(b)]);
        assert!(mm_cost.intensity() > 10.0 * ew_cost.intensity());
    }
}
