//! Figure 6 — operation-type scaling under intra-op parallelism.
//!
//! "Each of these plots shows the absolute time spent in each operation
//! type as we increase the amount of parallelism available within an
//! operation." Three workloads, as in the paper: `deepq` (6a), `seq2seq`
//! (6b), `memnet` (6c), swept over 1/2/4/8 threads. The expected shape:
//! convolution and large matmul shrink with threads while skinny-tensor
//! ops and the optimizer stay flat, flattening the profile (Amdahl).

use std::fmt::Write as _;

use fathom::{BuildConfig, ModelKind};
use fathom_dataflow::Device;
use fathom_profile::{runner, OpProfile};

use crate::{write_artifact, Effort};

/// Thread counts swept, matching the paper's 1-8 range.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The three workloads of Figure 6a-c.
pub const SUBJECTS: [ModelKind; 3] = [ModelKind::Deepq, ModelKind::Seq2Seq, ModelKind::Memnet];

/// Per-op-type absolute time (ns/step) at each thread count.
#[derive(Debug, Clone)]
pub struct ScalingSweep {
    /// Workload name.
    pub workload: &'static str,
    /// Op names shown (heaviest at 1 thread first).
    pub ops: Vec<String>,
    /// `times[t][o]` = ns/step of op `o` at `THREADS[t]`.
    pub times: Vec<Vec<f64>>,
}

/// Runs the sweep for one workload.
pub fn sweep(kind: ModelKind, effort: &Effort) -> ScalingSweep {
    let profiles: Vec<OpProfile> = THREADS
        .iter()
        .map(|&t| {
            let cfg = BuildConfig::training().with_device(Device::cpu_or_model(t));
            runner::profile_workload(kind, &cfg, effort.warmup, effort.steps)
        })
        .collect();
    // Op list: the heaviest ops in the single-threaded profile.
    let ops: Vec<String> = profiles[0]
        .ranked()
        .into_iter()
        .take(8)
        .map(|e| e.op.clone())
        .collect();
    let times = profiles
        .iter()
        .map(|p| {
            ops.iter()
                .map(|op| {
                    p.entry(op).map_or(0.0, |e| e.nanos / p.steps.max(1) as f64)
                })
                .collect()
        })
        .collect();
    ScalingSweep { workload: kind.name(), ops, times }
}

/// Regenerates Figure 6 (all three subplots).
pub fn run(effort: &Effort) -> String {
    let mut out = String::new();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(
        out,
        "FIGURE 6: Absolute per-op-type time vs intra-op threads (training)\n\
         (host has {cores} core(s); thread counts beyond that use the analytic\n\
         SimCpu scaling model -- see DESIGN.md)\n"
    );
    let mut csv_rows = Vec::new();
    for (fig, kind) in ["6a", "6b", "6c"].iter().zip(SUBJECTS) {
        let s = sweep(kind, effort);
        let _ = writeln!(out, "({fig}) {}:", s.workload);
        let _ = write!(out, "  {:<26}", "op / threads");
        for t in THREADS {
            let _ = write!(out, " {:>9}", t);
        }
        let _ = writeln!(out, " {:>9}", "speedup");
        for (o, op) in s.ops.iter().enumerate() {
            let _ = write!(out, "  {:<26}", op);
            for t in 0..THREADS.len() {
                let _ = write!(out, " {:>9.0}", s.times[t][o] / 1_000.0);
            }
            let base = s.times[0][o];
            let best = s.times[THREADS.len() - 1][o];
            let _ = writeln!(out, " {:>8.2}x", base / best.max(1.0));
            csv_rows.push((
                format!("{}:{}", s.workload, op),
                s.times.iter().map(|row| row[o]).collect(),
            ));
        }
        // Profile flattening: share of the heaviest op at 1 vs 8 threads.
        let total = |t: usize| -> f64 { s.ops.iter().enumerate().map(|(o, _)| s.times[t][o]).sum() };
        let head_share_1 = s.times[0][0] / total(0).max(1.0);
        let head_share_8 = s.times[THREADS.len() - 1][0] / total(THREADS.len() - 1).max(1.0);
        let _ = writeln!(
            out,
            "  heaviest-op share: {:.1}% @1t -> {:.1}% @8t (flattening = {})\n",
            head_share_1 * 100.0,
            head_share_8 * 100.0,
            head_share_8 < head_share_1
        );
    }
    let _ = writeln!(
        out,
        "Paper's claims to reproduce (times above are us/step):\n\
         - deepq's Conv2D/Conv2DBackprop* scale with threads; ApplyRMSProp does not,\n\
           so the optimizer's relative share grows;\n\
         - seq2seq's MatMul-heavy LSTM work scales while loss/attention plumbing\n\
           (Tile, Sum, Sub) stays flat;\n\
         - memnet's skinny-tensor memory ops barely scale at all."
    );

    write_artifact(
        "fig6_parallelism.csv",
        &fathom_profile::report::to_csv(&["workload:op", "t1", "t2", "t4", "t8"], &csv_rows),
    );
    write_artifact("fig6_parallelism.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes() {
        let s = sweep(ModelKind::Memnet, &Effort::quick());
        assert_eq!(s.times.len(), THREADS.len());
        assert!(!s.ops.is_empty());
        for row in &s.times {
            assert_eq!(row.len(), s.ops.len());
        }
    }
}
