//! `cargo bench -p fathom-bench --bench overhead_check`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::overhead::run(&effort));
}
