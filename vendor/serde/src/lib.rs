//! Offline stand-in for `serde`.
//!
//! The suite derives `Serialize`/`Deserialize` on its public data types
//! as a statement of intent, but every artifact writer in-tree emits
//! JSON/CSV by hand — no code takes a `T: Serialize` bound. That lets
//! this stub reduce serde to marker traits (satisfied by every type)
//! plus no-op derive macros, so the workspace builds with no registry
//! access while keeping the derive annotations compiling unchanged.

/// Marker for types the suite considers serializable.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types the suite considers deserializable.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
