//! Text renderers for the analyses: tables, heatmaps (Figure 3), and
//! dendrograms (Figure 4), plus CSV output for external plotting.

use std::fmt::Write as _;

use crate::profile::OpProfile;
use crate::similarity::{Dendrogram, DendrogramNode};

/// Shade characters from empty to full, used by the heatmap.
const SHADES: [char; 6] = [' ', '░', '▒', '▓', '█', '█'];

fn shade(fraction: f64) -> char {
    let idx = (fraction * 5.0).ceil().clamp(0.0, 5.0) as usize;
    SHADES[idx]
}

/// Renders Figure 3's heatmap: workloads as rows, the union of op types
/// (grouped by class, A-G) as columns, cell intensity = time share.
/// Ops below `min_fraction` in every workload are dropped, mirroring the
/// paper's 1% display threshold.
pub fn render_heatmap(profiles: &[OpProfile], min_fraction: f64) -> String {
    // Collect ops that pass the threshold anywhere, ordered by class then
    // by total weight.
    let mut ops: Vec<(String, char, f64)> = Vec::new();
    for p in profiles {
        for e in p.ranked() {
            let frac = p.fraction(&e.op);
            if frac >= min_fraction {
                if let Some(existing) = ops.iter_mut().find(|(name, _, _)| *name == e.op) {
                    existing.2 += frac;
                } else {
                    ops.push((e.op.clone(), e.class.letter(), frac));
                }
            }
        }
    }
    // Order columns by class letter (A..G), heaviest first within a class.
    ops.sort_by(|a, b| {
        a.1.cmp(&b.1)
            .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
    });

    let name_width = profiles.iter().map(|p| p.workload.len()).max().unwrap_or(8).max(8);
    let mut out = String::new();
    // Class letter header.
    let _ = write!(out, "{:>name_width$} ", "class:");
    for (_, class, _) in &ops {
        let _ = write!(out, "{class}");
    }
    out.push('\n');
    for p in profiles {
        let _ = write!(out, "{:>name_width$} ", p.workload);
        for (op, _, _) in &ops {
            out.push(shade(p.fraction(op)));
        }
        out.push('\n');
    }
    // Column legend.
    out.push('\n');
    for (i, (op, class, _)) in ops.iter().enumerate() {
        let _ = writeln!(out, "  col {i:>2} [{class}] {op}");
    }
    out
}

/// Renders Figure 4's dendrogram as ASCII: leaves left-aligned, merges
/// annotated with their cosine distance.
pub fn render_dendrogram(d: &Dendrogram) -> String {
    let mut out = String::new();
    render_node(&d.root, 0, &mut out);
    out
}

fn render_node(node: &DendrogramNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match node {
        DendrogramNode::Leaf { name } => {
            let _ = writeln!(out, "{indent}- {name}");
        }
        DendrogramNode::Merge { distance, left, right } => {
            let _ = writeln!(out, "{indent}+ d = {distance:.3}");
            render_node(left, depth + 1, out);
            render_node(right, depth + 1, out);
        }
    }
}

/// Renders a profile as a two-column table of op name and time share.
pub fn render_profile_table(profile: &OpProfile, max_rows: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<28} {:>8} {:>10} {:>7}", "op", "share", "time(us)", "count");
    for e in profile.ranked().into_iter().take(max_rows) {
        let _ = writeln!(
            out,
            "{:<28} {:>7.2}% {:>10.1} {:>7}",
            e.op,
            profile.fraction(&e.op) * 100.0,
            e.nanos / 1_000.0,
            e.count
        );
    }
    out
}

/// Serializes rows of `(label, values...)` as CSV with a header.
pub fn to_csv(header: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for (label, values) in rows {
        let cells: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(out, "{label},{}", cells.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cluster;
    use fathom_dataflow::cost::OpCost;
    use fathom_dataflow::trace::{RunTrace, TraceEvent};
    use fathom_dataflow::{NodeId, OpClass};

    fn profile(name: &str, times: &[(&'static str, OpClass, f64)]) -> OpProfile {
        let events = times
            .iter()
            .map(|(op, class, nanos)| TraceEvent {
                node: NodeId::default(),
                op,
                class: *class,
                step: 0,
                nanos: *nanos,
                cost: OpCost::default(),
            })
            .collect();
        OpProfile::from_trace(name, &RunTrace { events, steps: 1, ..RunTrace::default() })
    }

    #[test]
    fn heatmap_contains_workloads_and_classes() {
        let a = profile("alexnet", &[("Conv2D", OpClass::Convolution, 90.0), ("MatMul", OpClass::MatrixOps, 10.0)]);
        let b = profile("speech", &[("MatMul", OpClass::MatrixOps, 100.0)]);
        let s = render_heatmap(&[a, b], 0.01);
        assert!(s.contains("alexnet"));
        assert!(s.contains("speech"));
        assert!(s.contains("Conv2D"));
        assert!(s.contains("[B]"));
        assert!(s.contains("[A]"));
    }

    #[test]
    fn heatmap_drops_below_threshold() {
        let a = profile("m", &[("Big", OpClass::MatrixOps, 995.0), ("Tiny", OpClass::MatrixOps, 5.0)]);
        let s = render_heatmap(&[a], 0.01);
        assert!(s.contains("Big"));
        assert!(!s.contains("Tiny"));
    }

    #[test]
    fn shade_is_monotone() {
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(1.0), '█');
        let mut prev = ' ';
        for i in 0..=10 {
            let c = shade(i as f64 / 10.0);
            assert!(SHADES.iter().position(|&s| s == c) >= SHADES.iter().position(|&s| s == prev));
            prev = c;
        }
    }

    #[test]
    fn dendrogram_renders_all_leaves() {
        let a = profile("a", &[("Conv2D", OpClass::Convolution, 1.0)]);
        let b = profile("b", &[("MatMul", OpClass::MatrixOps, 1.0)]);
        let d = cluster(&[a, b]);
        let s = render_dendrogram(&d);
        assert!(s.contains("- a"));
        assert!(s.contains("- b"));
        assert!(s.contains("d = "));
    }

    #[test]
    fn table_lists_ranked_ops() {
        let p = profile("x", &[("MatMul", OpClass::MatrixOps, 80.0), ("Add", OpClass::ElementwiseArithmetic, 20.0)]);
        let s = render_profile_table(&p, 10);
        let matmul_pos = s.find("MatMul").unwrap();
        let add_pos = s.find("Add").unwrap();
        assert!(matmul_pos < add_pos, "rows must be ranked");
        assert!(s.contains("80.00%"));
    }

    #[test]
    fn csv_format() {
        let rows = vec![("a".to_string(), vec![1.0, 2.5]), ("b".to_string(), vec![3.0, 4.0])];
        let s = to_csv(&["name", "x", "y"], &rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name,x,y");
        assert_eq!(lines[1], "a,1,2.5");
        assert_eq!(lines[2], "b,3,4");
    }
}
