// The doc example reproduces the real bAbI format, whose answer field is
// tab-separated; keep the literal tabs.
#![allow(clippy::tabs_in_doc_comments)]

//! The bAbI plain-text task format (Weston et al.).
//!
//! Real bAbI files look like:
//!
//! ```text
//! 1 Mary went to the kitchen.
//! 2 John moved to the garden.
//! 3 Where is Mary?	kitchen	1
//! 1 Sandra travelled to the office.
//! ...
//! ```
//!
//! Lines are numbered within a story; a question line carries a tab-
//! separated answer and supporting-fact ids; numbering restarting at 1
//! begins a new story. This module parses that format and serializes the
//! synthetic generator's stories into it, so the two corpora are
//! interchangeable.

use std::fmt::Write as _;

use crate::babi::{BabiTask, Story};

/// A parsed bAbI story: statements, then one question with its answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextStory {
    /// Statement sentences, in order, lowercased, without punctuation.
    pub statements: Vec<String>,
    /// The question text (without the trailing question mark).
    pub question: String,
    /// The answer token.
    pub answer: String,
    /// Supporting-fact line numbers, when present.
    pub supporting: Vec<usize>,
}

/// Errors produced while parsing bAbI text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BabiParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BabiParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "babi parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BabiParseError {}

fn normalize(sentence: &str) -> String {
    sentence
        .trim()
        .trim_end_matches(['.', '?'])
        .to_lowercase()
}

/// Parses bAbI-format text into stories. Stories with no question are
/// dropped (matching how readers of the real corpus treat trailing
/// fragments).
///
/// # Errors
///
/// Returns an error for unnumbered lines or question lines without an
/// answer field.
pub fn parse(text: &str) -> Result<Vec<TextStory>, BabiParseError> {
    let mut stories = Vec::new();
    let mut statements: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (num_str, rest) = line
            .split_once(' ')
            .ok_or_else(|| BabiParseError { line: lineno + 1, message: "missing line number".into() })?;
        let num: usize = num_str
            .parse()
            .map_err(|_| BabiParseError { line: lineno + 1, message: format!("bad line number '{num_str}'") })?;
        if num == 1 {
            statements.clear();
        }
        if rest.contains('?') {
            // Question line: "Where is Mary?\tkitchen\t1"
            let mut fields = rest.split('\t');
            let question = normalize(fields.next().unwrap_or_default());
            let answer = fields
                .next()
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .ok_or_else(|| BabiParseError {
                    line: lineno + 1,
                    message: "question without an answer field".into(),
                })?
                .to_lowercase();
            let supporting = fields
                .next()
                .map(|s| s.split_whitespace().filter_map(|t| t.parse().ok()).collect())
                .unwrap_or_default();
            stories.push(TextStory {
                statements: statements.clone(),
                question,
                answer,
                supporting,
            });
        } else {
            statements.push(normalize(rest));
        }
    }
    Ok(stories)
}

/// Serializes one generated [`Story`] in the bAbI text format, using the
/// generator's vocabulary for surface forms.
pub fn serialize_story(task: &BabiTask, story: &Story) -> String {
    let mut out = String::new();
    let mut support_line = 0;
    for (i, sent) in story.sentences.iter().enumerate() {
        let _ = writeln!(
            out,
            "{} {} {} to the {}.",
            i + 1,
            capitalize(task.word_str(sent[0])),
            task.word_str(sent[1]),
            task.word_str(sent[2]),
        );
        if sent[0] == story.question {
            support_line = i + 1;
        }
    }
    let _ = writeln!(
        out,
        "{} Where is {}?\t{}\t{}",
        story.sentences.len() + 1,
        capitalize(task.word_str(story.question)),
        task.word_str(story.answer_word),
        support_line
    );
    out
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "1 Mary went to the kitchen.\n\
                          2 John moved to the garden.\n\
                          3 Where is Mary?\tkitchen\t1\n\
                          1 Sandra travelled to the office.\n\
                          2 Where is Sandra?\toffice\t1\n";

    #[test]
    fn parses_the_reference_layout() {
        let stories = parse(SAMPLE).unwrap();
        assert_eq!(stories.len(), 2);
        assert_eq!(stories[0].statements.len(), 2);
        assert_eq!(stories[0].statements[0], "mary went to the kitchen");
        assert_eq!(stories[0].question, "where is mary");
        assert_eq!(stories[0].answer, "kitchen");
        assert_eq!(stories[0].supporting, vec![1]);
        // Numbering reset started a fresh story.
        assert_eq!(stories[1].statements.len(), 1);
        assert_eq!(stories[1].answer, "office");
    }

    #[test]
    fn rejects_unnumbered_lines() {
        let err = parse("Mary went to the kitchen.").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bad line number") || err.message.contains("missing"));
    }

    #[test]
    fn rejects_answerless_questions() {
        let err = parse("1 Where is Mary?").unwrap_err();
        assert!(err.message.contains("without an answer"));
    }

    #[test]
    fn generated_stories_round_trip() {
        let mut task = BabiTask::new(6, 42);
        for _ in 0..20 {
            let story = task.story();
            let text = serialize_story(&task, &story);
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed.len(), 1, "exactly one story in: {text}");
            let p = &parsed[0];
            assert_eq!(p.statements.len(), story.sentences.len());
            assert_eq!(p.answer, task.word_str(story.answer_word));
            assert!(p.question.contains(task.word_str(story.question)));
            // The supporting fact is the LAST mention of the entity.
            let support = p.supporting[0];
            assert_eq!(story.sentences[support - 1][0], story.question);
            assert!(
                story.sentences[support..]
                    .iter()
                    .all(|s| s[0] != story.question),
                "supporting fact must be the most recent mention"
            );
        }
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = "1 Mary went to the kitchen.\n\n2 Where is Mary?\tkitchen\t1\n";
        assert_eq!(parse(text).unwrap().len(), 1);
    }
}
