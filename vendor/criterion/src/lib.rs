//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the suite's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! [`BenchmarkId`], and the `criterion_group!` / `criterion_main!`
//! macros — backed by a simple wall-clock harness: each sample times
//! one closure call with `std::time::Instant`, and the median over
//! `sample_size` samples is printed per benchmark. No statistical
//! analysis, plots, or baselines; the point is that `cargo bench`
//! still runs every registered benchmark and reports stable medians
//! in environments with no registry access.

use std::time::{Duration, Instant};

/// Top-level harness handle, passed to each bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().id, sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Times `f` under `id`, handing it a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (No summary state to flush in this stub.)
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing callback handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one call of `routine`; the result is passed through
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // One untimed warmup sample, then `sample_size` timed ones.
    let mut bencher = Bencher { elapsed: Duration::ZERO };
    f(&mut bencher);
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!("  {label}: median {median:?} over {sample_size} samples");
}

/// Bundles bench functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        let mut calls = 0usize;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2).bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
    }
}
