//! Feed-forward layer builders: dense, convolution, pooling, batch norm,
//! dropout, and embeddings.
//!
//! Every builder appends primitive operations to a [`Graph`]; layers exist
//! only at construction time, exactly as in TensorFlow ("those layers only
//! exist as internal data structures", paper §V-A).

use fathom_dataflow::{Graph, NodeId};
use fathom_tensor::kernels::conv::Conv2dSpec;
use fathom_tensor::kernels::pool2d::Pool2dSpec;
use fathom_tensor::Tensor;

use crate::init::{Init, Params};

/// Activation applied after a layer's affine part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// No activation.
    #[default]
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a node.
    pub fn apply(&self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Linear => x,
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
        }
    }
}

/// Fully-connected layer: `act(x @ W + b)` for `x` of shape
/// `[batch, in_dim]`.
///
/// # Panics
///
/// Panics if `x` is not rank 2.
pub fn dense(
    g: &mut Graph,
    p: &mut Params,
    name: &str,
    x: NodeId,
    out_dim: usize,
    act: Activation,
) -> NodeId {
    let in_dim = {
        let s = g.shape(x);
        assert_eq!(s.rank(), 2, "dense expects [batch, features], got {s}");
        s.dim(1)
    };
    let init = if act == Activation::Relu { Init::He } else { Init::Xavier };
    let w = p.variable(g, format!("{name}/weights"), [in_dim, out_dim], init);
    let b = p.variable(g, format!("{name}/bias"), [out_dim], Init::Zeros);
    let xw = g.matmul(x, w);
    let pre = g.add_op(xw, b);
    act.apply(g, pre)
}

/// Convolution layer: `act(conv2d(x, W) + b)` for NHWC `x`.
///
/// # Panics
///
/// Panics if `x` is not rank 4.
#[allow(clippy::too_many_arguments)] // mirrors the TF layer signature
pub fn conv2d(
    g: &mut Graph,
    p: &mut Params,
    name: &str,
    x: NodeId,
    kernel: usize,
    out_channels: usize,
    spec: Conv2dSpec,
    act: Activation,
) -> NodeId {
    let in_channels = {
        let s = g.shape(x);
        assert_eq!(s.rank(), 4, "conv2d expects NHWC, got {s}");
        s.dim(3)
    };
    let init = if act == Activation::Relu { Init::He } else { Init::Xavier };
    let w = p.variable(
        g,
        format!("{name}/filters"),
        [kernel, kernel, in_channels, out_channels],
        init,
    );
    let b = p.variable(g, format!("{name}/bias"), [out_channels], Init::Zeros);
    let conv = g.conv2d(x, w, spec);
    let pre = g.add_op(conv, b); // bias broadcasts over [n, h, w, oc]
    act.apply(g, pre)
}

/// Max pooling with a square window.
pub fn max_pool(g: &mut Graph, x: NodeId, window: usize, stride: usize) -> NodeId {
    g.max_pool(x, Pool2dSpec { window, stride })
}

/// Average pooling with a square window.
pub fn avg_pool(g: &mut Graph, x: NodeId, window: usize, stride: usize) -> NodeId {
    g.avg_pool(x, Pool2dSpec { window, stride })
}

/// Flattens `[batch, ...]` to `[batch, features]`.
pub fn flatten(g: &mut Graph, x: NodeId) -> NodeId {
    let s = g.shape(x).clone();
    let batch = s.dim(0);
    let features = s.num_elements() / batch.max(1);
    g.reshape(x, [batch, features])
}

/// Inverted dropout: `x * mask` with a freshly sampled mask each step.
/// Identity when `rate == 0`.
pub fn dropout(g: &mut Graph, x: NodeId, rate: f32) -> NodeId {
    if rate == 0.0 {
        return x;
    }
    let mask = g.dropout_mask(x, rate);
    g.mul(x, mask)
}

/// Shared normalization body: standardize `x` over `axes` (keeping dims
/// so statistics broadcast back), then apply a learnable per-channel
/// scale/offset named `{name}/gamma` and `{name}/beta`.
fn normalize_over(
    g: &mut Graph,
    p: &mut Params,
    name: &str,
    x: NodeId,
    epsilon: f32,
    axes: std::ops::Range<usize>,
) -> NodeId {
    let shape = g.shape(x).clone();
    let channels = shape.dim(shape.rank() - 1);
    let gamma = p.variable(g, format!("{name}/gamma"), [channels], Init::Ones);
    let beta = p.variable(g, format!("{name}/beta"), [channels], Init::Zeros);
    let mut mean = x;
    for axis in axes.clone() {
        mean = g.mean_axis(mean, axis, true);
    }
    let centered = g.sub(x, mean);
    let sq = g.square(centered);
    let mut var = sq;
    for axis in axes {
        var = g.mean_axis(var, axis, true);
    }
    let eps = g.constant(Tensor::scalar(epsilon));
    let var_eps = g.add_op(var, eps);
    let std = g.sqrt(var_eps);
    let normed = g.div(centered, std);
    let scaled = g.mul(normed, gamma);
    g.add_op(scaled, beta)
}

/// Batch normalization over all axes except the last (channels), with
/// learnable scale/offset. Uses batch statistics (training-style): every
/// output row depends on every row of the minibatch. Inference graphs
/// that must be batch-size invariant (the serving batcher packs unrelated
/// requests into one minibatch) should use [`instance_norm`] instead.
pub fn batch_norm(g: &mut Graph, p: &mut Params, name: &str, x: NodeId, epsilon: f32) -> NodeId {
    let rank = g.shape(x).rank();
    normalize_over(g, p, name, x, epsilon, 0..rank - 1)
}

/// Per-sample normalization over the non-batch, non-channel axes (for
/// NHWC activations: the two spatial axes), with the same learnable
/// `{name}/gamma` / `{name}/beta` parameters as [`batch_norm`].
///
/// Each sample is standardized independently, so the output for one row
/// never depends on its batchmates — the property the serving layer
/// relies on to make batched inference bitwise identical to batch-1
/// inference. Parameter names and shapes match [`batch_norm`], so
/// checkpoints transfer between a training graph (batch statistics) and
/// an inference graph (per-sample statistics).
pub fn instance_norm(g: &mut Graph, p: &mut Params, name: &str, x: NodeId, epsilon: f32) -> NodeId {
    let rank = g.shape(x).rank();
    assert!(rank >= 3, "instance_norm needs [batch, ..., channels] input of rank >= 3");
    normalize_over(g, p, name, x, epsilon, 1..rank - 1)
}

/// Embedding lookup: builds a `[vocab, dim]` table and gathers `indices`
/// (an integer-valued tensor) into `indices.shape() + [dim]`.
pub fn embedding(
    g: &mut Graph,
    p: &mut Params,
    name: &str,
    indices: NodeId,
    vocab: usize,
    dim: usize,
) -> NodeId {
    let table = p.variable(g, format!("{name}/table"), [vocab, dim], Init::Normal(0.1));
    g.gather(table, indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::{grad::gradients, Device, Session};
    use fathom_tensor::{Rng, Shape};

    #[test]
    fn dense_shapes_and_forward() {
        let mut g = Graph::new();
        let mut p = Params::seeded(1);
        let x = g.placeholder("x", Shape::matrix(5, 3));
        let y = dense(&mut g, &mut p, "fc", x, 7, Activation::Relu);
        assert_eq!(g.shape(y).dims(), &[5, 7]);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s.run1(y, &[(x, Tensor::ones([5, 3]))]).unwrap();
        assert!(out.min() >= 0.0, "relu output must be non-negative");
    }

    #[test]
    fn conv_layer_shapes() {
        let mut g = Graph::new();
        let mut p = Params::seeded(2);
        let x = g.placeholder("x", Shape::new(vec![2, 8, 8, 3]));
        let y = conv2d(&mut g, &mut p, "c1", x, 3, 16, Conv2dSpec::same(3), Activation::Relu);
        assert_eq!(g.shape(y).dims(), &[2, 8, 8, 16]);
        let z = max_pool(&mut g, y, 2, 2);
        assert_eq!(g.shape(z).dims(), &[2, 4, 4, 16]);
        let f = flatten(&mut g, z);
        assert_eq!(g.shape(f).dims(), &[2, 256]);
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4));
        let y = dropout(&mut g, x, 0.0);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(100_000));
        let y = dropout(&mut g, x, 0.3);
        let mut s = Session::new(g, Device::cpu(1));
        let out = s.run1(y, &[(x, Tensor::ones([100_000]))]).unwrap();
        assert!((out.mean() - 1.0).abs() < 0.02, "mean {}", out.mean());
    }

    #[test]
    fn batch_norm_normalizes() {
        let mut rng = Rng::seeded(3);
        let mut g = Graph::new();
        let mut p = Params::seeded(3);
        let x = g.placeholder("x", Shape::matrix(64, 4));
        let y = batch_norm(&mut g, &mut p, "bn", x, 1e-5);
        let mut s = Session::new(g, Device::cpu(1));
        let data = Tensor::randn([64, 4], 5.0, 3.0, &mut rng);
        let out = s.run1(y, &[(x, data)]).unwrap();
        // With gamma=1, beta=0, per-channel mean ~0 and std ~1.
        for c in 0..4 {
            let col: Vec<f32> = (0..64).map(|r| out.at(&[r, c])).collect();
            let mean = col.iter().sum::<f32>() / 64.0;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 0.05, "var {var}");
        }
    }

    #[test]
    fn batch_norm_is_differentiable() {
        let mut g = Graph::new();
        let mut p = Params::seeded(4);
        let x = g.placeholder("x", Shape::matrix(8, 2));
        let y = batch_norm(&mut g, &mut p, "bn", x, 1e-5);
        let sq = g.square(y);
        let loss = g.sum_all(sq);
        let grads = gradients(&mut g, loss, p.trainable());
        assert_eq!(grads.len(), 2);
        let mut s = Session::new(g, Device::cpu(1));
        let mut rng = Rng::seeded(4);
        let data = Tensor::randn([8, 2], 0.0, 1.0, &mut rng);
        let dg = s.run1(grads[0], &[(x, data)]).unwrap();
        assert!(dg.all_finite());
    }

    #[test]
    fn instance_norm_is_batch_size_invariant() {
        // The same sample must normalize identically whether it sits in a
        // batch of 1 or a batch of 4 — the serving-layer contract.
        let mut rng = Rng::seeded(9);
        let sample = Tensor::randn([1, 3, 3, 2], 5.0, 3.0, &mut rng);
        let filler = Tensor::randn([3, 3, 3, 2], -2.0, 7.0, &mut rng);

        let run = |batch: usize, data: Tensor| -> Tensor {
            let mut g = Graph::new();
            let mut p = Params::seeded(9);
            let x = g.placeholder("x", [batch, 3, 3, 2]);
            let y = instance_norm(&mut g, &mut p, "in", x, 1e-5);
            let mut s = Session::new(g, Device::cpu(1));
            s.run1(y, &[(x, data)]).unwrap()
        };

        let solo = run(1, sample.clone());
        let mut packed = sample.data().to_vec();
        packed.extend_from_slice(filler.data());
        let batched = run(4, Tensor::from_vec(packed, [4, 3, 3, 2]));
        assert_eq!(&batched.data()[..solo.len()], solo.data(), "row 0 depends on batchmates");
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut g = Graph::new();
        let mut p = Params::seeded(5);
        let idx = g.placeholder("idx", Shape::matrix(2, 3));
        let e = embedding(&mut g, &mut p, "emb", idx, 10, 8);
        assert_eq!(g.shape(e).dims(), &[2, 3, 8]);
    }
}
