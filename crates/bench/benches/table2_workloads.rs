//! `cargo bench -p fathom-bench --bench table2_workloads`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::table2::run(&effort));
}
