//! Synthetic handwritten-digit images standing in for MNIST.
//!
//! Each class renders a distinct stroke pattern (line segments on a 28x28
//! canvas) with per-sample jitter and pixel noise, giving the variational
//! autoencoder a structured manifold to learn while keeping exactly
//! MNIST's tensor shapes (`[batch, 784]`, values in `[0, 1]`).

use fathom_tensor::{Rng, Tensor};

/// Image edge length, matching MNIST.
pub const SIDE: usize = 28;
/// Flattened image size.
pub const PIXELS: usize = SIDE * SIDE;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// One stroke: (row, col) start and end points on a 28x28 canvas.
type Segment = ((f32, f32), (f32, f32));

/// Stroke endpoints per class, loosely tracing digit shapes.
const STROKES: [&[Segment]; CLASSES] = [
    // 0: a box
    &[((5.0, 9.0), (5.0, 19.0)), ((5.0, 19.0), (22.0, 19.0)), ((22.0, 19.0), (22.0, 9.0)), ((22.0, 9.0), (5.0, 9.0))],
    // 1: a vertical bar
    &[((4.0, 14.0), (23.0, 14.0))],
    // 2: top bar, diagonal, bottom bar
    &[((6.0, 9.0), (6.0, 19.0)), ((6.0, 19.0), (22.0, 9.0)), ((22.0, 9.0), (22.0, 19.0))],
    // 3: two stacked right bumps
    &[((5.0, 9.0), (5.0, 19.0)), ((5.0, 19.0), (13.0, 19.0)), ((13.0, 9.0), (13.0, 19.0)), ((13.0, 19.0), (22.0, 19.0)), ((22.0, 19.0), (22.0, 9.0))],
    // 4: two verticals and a crossbar
    &[((4.0, 9.0), (14.0, 9.0)), ((14.0, 9.0), (14.0, 19.0)), ((4.0, 19.0), (23.0, 19.0))],
    // 5: mirrored 2
    &[((6.0, 19.0), (6.0, 9.0)), ((6.0, 9.0), (14.0, 9.0)), ((14.0, 9.0), (14.0, 19.0)), ((14.0, 19.0), (22.0, 19.0)), ((22.0, 19.0), (22.0, 9.0))],
    // 6: left spine with lower loop
    &[((5.0, 14.0), (22.0, 9.0)), ((22.0, 9.0), (22.0, 19.0)), ((22.0, 19.0), (14.0, 19.0)), ((14.0, 19.0), (14.0, 9.0))],
    // 7: top bar and diagonal
    &[((5.0, 9.0), (5.0, 19.0)), ((5.0, 19.0), (23.0, 11.0))],
    // 8: two boxes
    &[((5.0, 10.0), (5.0, 18.0)), ((5.0, 18.0), (13.0, 18.0)), ((13.0, 18.0), (13.0, 10.0)), ((13.0, 10.0), (5.0, 10.0)), ((13.0, 10.0), (22.0, 10.0)), ((22.0, 10.0), (22.0, 18.0)), ((22.0, 18.0), (13.0, 18.0))],
    // 9: upper loop with right spine
    &[((5.0, 10.0), (5.0, 18.0)), ((5.0, 10.0), (13.0, 10.0)), ((13.0, 10.0), (13.0, 18.0)), ((5.0, 18.0), (23.0, 18.0))],
];

/// Synthetic digit-image generator.
#[derive(Debug, Clone)]
pub struct DigitCorpus {
    rng: Rng,
}

impl DigitCorpus {
    /// Creates a deterministic generator.
    pub fn new(seed: u64) -> Self {
        DigitCorpus { rng: Rng::seeded(seed) }
    }

    /// The stream's RNG state, for checkpointing the pipeline cursor.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores a stream captured with [`DigitCorpus::rng_state`];
    /// subsequent batches continue exactly where the capture left off.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = Rng::from_state(state);
    }

    /// Renders one image of the given class into a `[PIXELS]` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `class >= CLASSES`.
    pub fn render(&mut self, class: usize) -> Vec<f32> {
        assert!(class < CLASSES, "class {class} out of range");
        let mut img = vec![0.0f32; PIXELS];
        let jitter_r = self.rng.normal() * 1.0;
        let jitter_c = self.rng.normal() * 1.0;
        let scale = 1.0 + self.rng.normal() * 0.05;
        for &((r0, c0), (r1, c1)) in STROKES[class] {
            let steps = 40;
            for s in 0..=steps {
                let t = s as f32 / steps as f32;
                let r = (r0 + (r1 - r0) * t) * scale + jitter_r;
                let c = (c0 + (c1 - c0) * t) * scale + jitter_c;
                stamp(&mut img, r, c);
            }
        }
        // Pixel noise, clamped to [0, 1].
        for v in &mut img {
            *v = (*v + 0.05 * self.rng.normal().abs()).clamp(0.0, 1.0);
        }
        img
    }

    /// Generates a minibatch `(images [batch, PIXELS], labels [batch])`
    /// with uniformly random classes.
    pub fn batch(&mut self, batch: usize) -> (Tensor, Tensor) {
        let mut images = Vec::with_capacity(batch * PIXELS);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch {
            let class = self.rng.below(CLASSES);
            images.extend(self.render(class));
            labels.push(class as f32);
        }
        (
            Tensor::from_vec(images, [batch, PIXELS]),
            Tensor::from_vec(labels, [batch]),
        )
    }
}

/// Deposits a soft 2x2 dot at a fractional coordinate.
fn stamp(img: &mut [f32], r: f32, c: f32) {
    let (ri, ci) = (r.floor() as isize, c.floor() as isize);
    for dr in 0..2 {
        for dc in 0..2 {
            let (rr, cc) = (ri + dr, ci + dc);
            if (0..SIDE as isize).contains(&rr) && (0..SIDE as isize).contains(&cc) {
                let w = (1.0 - (r - rr as f32).abs().min(1.0)) * (1.0 - (c - cc as f32).abs().min(1.0));
                let px = &mut img[rr as usize * SIDE + cc as usize];
                *px = (*px + w).min(1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_valid_probabilities() {
        let mut c = DigitCorpus::new(1);
        let (images, labels) = c.batch(16);
        assert_eq!(images.shape().dims(), &[16, PIXELS]);
        assert!(images.min() >= 0.0 && images.max() <= 1.0);
        for &l in labels.data() {
            assert!((l as usize) < CLASSES);
        }
    }

    #[test]
    fn images_have_ink() {
        let mut c = DigitCorpus::new(2);
        for class in 0..CLASSES {
            let img = c.render(class);
            let ink: f32 = img.iter().sum();
            assert!(ink > 10.0, "class {class} rendered almost nothing");
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean intra-class distance should be well below inter-class
        // distance for at least the easy pairs (0 vs 1).
        let mut c = DigitCorpus::new(3);
        let a1 = c.render(0);
        let a2 = c.render(0);
        let b = c.render(1);
        let d = |x: &[f32], y: &[f32]| -> f32 {
            x.iter().zip(y).map(|(p, q)| (p - q) * (p - q)).sum()
        };
        assert!(d(&a1, &a2) < d(&a1, &b), "0s look more like 1s than each other");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = DigitCorpus::new(7);
        let mut b = DigitCorpus::new(7);
        assert_eq!(a.batch(4).0, b.batch(4).0);
    }

    #[test]
    fn samples_of_one_class_vary() {
        let mut c = DigitCorpus::new(9);
        let a = c.render(5);
        let b = c.render(5);
        assert_ne!(a, b, "jitter should differentiate samples");
    }
}
