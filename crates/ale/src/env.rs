//! ALE-style environment wrapper with DQN frame stacking.

use fathom_tensor::Tensor;

use crate::game::{Action, CatchGame, GameState, FRAME_SIDE};

/// Number of consecutive frames stacked into one observation, as in the
/// original DQN preprocessing.
pub const STACK: usize = 4;

/// An Arcade-Learning-Environment-style wrapper around [`CatchGame`]:
/// `reset`/`step` semantics, episode bookkeeping, and 4-frame stacked
/// observations shaped `[1, 84, 84, 4]` (NHWC).
#[derive(Debug, Clone)]
pub struct AleEnv {
    game: CatchGame,
    frames: [Vec<f32>; STACK],
    episode_reward: f32,
    episodes: u64,
}

/// A copyable capture of the environment — game state, frame stack, and
/// episode bookkeeping — sufficient to resume bitwise-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvState {
    /// Underlying game state.
    pub game: GameState,
    /// The stacked observation history, oldest first.
    pub frames: [Vec<f32>; STACK],
    /// Reward accumulated in the current episode.
    pub episode_reward: f32,
    /// Completed episode count.
    pub episodes: u64,
}

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Stacked observation after the action, `[1, 84, 84, STACK]`.
    pub observation: Tensor,
    /// Reward emitted by this step.
    pub reward: f32,
    /// Whether an episode boundary was crossed.
    pub done: bool,
}

impl AleEnv {
    /// Creates an environment with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        let game = CatchGame::new(seed);
        let frame = game.render();
        AleEnv {
            frames: [frame.clone(), frame.clone(), frame.clone(), frame],
            game,
            episode_reward: 0.0,
            episodes: 0,
        }
    }

    /// Number of discrete actions.
    pub fn num_actions(&self) -> usize {
        Action::ALL.len()
    }

    /// Completed episode count.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Resets episode statistics and returns the current observation.
    pub fn reset(&mut self) -> Tensor {
        self.episode_reward = 0.0;
        self.observation()
    }

    /// Applies an action index, advancing the game one tick.
    ///
    /// # Panics
    ///
    /// Panics if `action >= self.num_actions()`.
    pub fn step(&mut self, action: usize) -> StepResult {
        let tick = self.game.tick(Action::from_index(action));
        self.frames.rotate_left(1);
        self.frames[STACK - 1] = self.game.render();
        self.episode_reward += tick.reward;
        if tick.done {
            self.episodes += 1;
        }
        StepResult { observation: self.observation(), reward: tick.reward, done: tick.done }
    }

    /// The current stacked observation `[1, 84, 84, STACK]` in NHWC.
    pub fn observation(&self) -> Tensor {
        let mut data = vec![0.0f32; FRAME_SIDE * FRAME_SIDE * STACK];
        for (s, frame) in self.frames.iter().enumerate() {
            for (px, &v) in frame.iter().enumerate() {
                data[px * STACK + s] = v;
            }
        }
        Tensor::from_vec(data, [1, FRAME_SIDE, FRAME_SIDE, STACK])
    }

    /// Read-only access to the underlying game (for oracle policies in
    /// tests and demos).
    pub fn game(&self) -> &CatchGame {
        &self.game
    }

    /// Captures the full environment state for checkpointing.
    pub fn save_state(&self) -> EnvState {
        EnvState {
            game: self.game.snapshot(),
            frames: self.frames.clone(),
            episode_reward: self.episode_reward,
            episodes: self.episodes,
        }
    }

    /// Restores a state captured with [`AleEnv::save_state`]; subsequent
    /// steps continue exactly where the capture left off.
    pub fn load_state(&mut self, state: &EnvState) {
        self.game.restore(&state.game);
        self.frames = state.frames.clone();
        self.episode_reward = state.episode_reward;
        self.episodes = state.episodes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_shape() {
        let env = AleEnv::new(1);
        let obs = env.observation();
        assert_eq!(obs.shape().dims(), &[1, FRAME_SIDE, FRAME_SIDE, STACK]);
    }

    #[test]
    fn stacking_shifts_history() {
        let mut env = AleEnv::new(2);
        let before = env.observation();
        env.step(2);
        env.step(2);
        let after = env.observation();
        // The newest plane must differ from the oldest (ball moved).
        assert!(before != after);
        // Frame plane 3 of `after` is the most recent render.
        let latest = env.game().render();
        for (px, &pixel) in latest.iter().enumerate() {
            assert_eq!(after.data()[px * STACK + (STACK - 1)], pixel);
        }
    }

    #[test]
    fn save_load_state_resumes_bitwise() {
        let mut a = AleEnv::new(4);
        for i in 0..37 {
            a.step(i % 3);
        }
        let state = a.save_state();
        let mut b = AleEnv::new(1234);
        b.load_state(&state);
        assert_eq!(a.observation(), b.observation());
        for i in 0..200 {
            let ra = a.step(i % 3);
            let rb = b.step(i % 3);
            assert_eq!(ra.observation, rb.observation);
            assert_eq!(ra.reward, rb.reward);
            assert_eq!(ra.done, rb.done);
        }
        assert_eq!(a.episodes(), b.episodes());
    }

    #[test]
    fn episodes_counted() {
        let mut env = AleEnv::new(3);
        let mut dones = 0;
        for _ in 0..500 {
            if env.step(0).done {
                dones += 1;
            }
        }
        assert_eq!(env.episodes(), dones);
        assert!(dones > 0);
    }
}
