//! `fathom` — command-line driver for the Fathom-rs workload suite.
//!
//! ```text
//! fathom list
//! fathom run alexnet --steps 10 --threads 4
//! fathom profile seq2seq --steps 3
//! fathom trace deepq --out deepq.json     # open in chrome://tracing
//! fathom dot memnet --out memnet.dot      # render with graphviz
//! ```

mod args;

use std::process::ExitCode;

use args::{parse, Command, RunArgs, ServeArgs, USAGE};
use fathom::{BuildConfig, Mode, ModelKind, Workload};
use fathom_dataflow::{checkpoint, export, Device};
use fathom_profile::{report, runner, OpProfile};
use fathom_serve::{serve, synth_inputs, BatchRunner, LoadModel, ServeConfig, SessionWorker};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(command: Command) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::List { json } => {
            if json {
                println!("{}", list_json());
            } else {
                println!(
                    "{:<9} {:>5} {:<22} {:>6} {:<14} {:<10}",
                    "model", "year", "style", "layers", "task", "dataset"
                );
                for kind in ModelKind::ALL {
                    let m = kind.metadata();
                    println!(
                        "{:<9} {:>5} {:<22} {:>6} {:<14} {:<10}",
                        m.name, m.year, m.style, m.layers, m.task, m.dataset
                    );
                }
            }
            Ok(())
        }
        Command::Run(a) => cmd_run(a),
        Command::Profile(a) => cmd_profile(a),
        Command::Trace(a) => cmd_trace(a),
        Command::Dot(a) => cmd_dot(a),
        Command::ServeBench(a) => cmd_serve_bench(a),
    }
}

/// The workload inventory as a JSON array (hand-rolled; the vendored
/// serde is marker-traits only).
fn list_json() -> String {
    let rows: Vec<String> = ModelKind::ALL
        .iter()
        .map(|kind| {
            let m = kind.metadata();
            format!(
                "  {{\"name\": \"{}\", \"year\": {}, \"style\": \"{}\", \"layers\": {}, \
                 \"task\": \"{}\", \"dataset\": \"{}\", \"reference\": \"{}\"}}",
                m.name, m.year, m.style, m.layers, m.task, m.dataset, m.reference
            )
        })
        .collect();
    format!("[\n{}\n]", rows.join(",\n"))
}

fn build(a: &RunArgs) -> Box<dyn Workload> {
    let cfg = BuildConfig {
        mode: a.mode,
        scale: a.scale,
        device: Device::cpu_inter_op(a.threads, a.inter_ops),
        seed: a.seed,
        batch: None,
    };
    a.model.build(&cfg)
}

fn cmd_run(a: RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut model = build(&a);
    if let Some(path) = &a.load {
        let file = std::fs::File::open(path)?;
        checkpoint::load(model.session_mut(), std::io::BufReader::new(file))?;
        println!("restored variables from {path}");
    }
    println!(
        "{} | {} | {} ops in graph",
        model.name(),
        a.mode.label(),
        model.session().graph().len()
    );
    for step in 0..a.steps {
        let stats = model.step();
        match (stats.loss, stats.metric) {
            (Some(loss), Some(metric)) => println!("step {step}: loss {loss:.4}  metric {metric:.4}"),
            (Some(loss), None) => println!("step {step}: loss {loss:.4}"),
            (None, Some(metric)) => println!("step {step}: metric {metric:.4}"),
            (None, None) => println!("step {step}: done"),
        }
    }
    if let Some(path) = &a.save {
        let file = std::fs::File::create(path)?;
        checkpoint::save(model.session(), std::io::BufWriter::new(file))?;
        println!("saved variables to {path}");
    }
    Ok(())
}

fn cmd_profile(a: RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut model = build(&a);
    model.step(); // warm-up
    let trace = runner::trace_steps(model.as_mut(), a.steps);
    let profile = OpProfile::from_trace(a.model.name(), &trace);
    println!("{} | {} steps traced", a.model.name(), a.steps);
    print!("{}", report::render_profile_table(&profile, 15));
    println!("\nclass shares:");
    for (class, fraction) in profile.class_fractions() {
        if fraction > 0.0 {
            println!("  [{}] {:<24} {:>5.1}%", class.letter(), class.label(), fraction * 100.0);
        }
    }
    println!("\ninter-op overhead: {:.2}%", trace.overhead_fraction() * 100.0);
    Ok(())
}

fn cmd_trace(a: RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let out = a.out.clone().expect("parser enforces --out");
    let mut model = build(&a);
    model.step();
    let trace = runner::trace_steps(model.as_mut(), a.steps);
    std::fs::write(&out, export::to_chrome_trace(&trace))?;
    println!(
        "wrote {} events to {out} (open in chrome://tracing or Perfetto)",
        trace.events.len()
    );
    Ok(())
}

fn cmd_serve_bench(a: ServeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = BuildConfig {
        mode: Mode::Inference,
        scale: a.scale,
        device: Device::cpu_inter_op(a.threads, a.inter_ops),
        seed: a.seed,
        batch: Some(a.max_batch),
    };
    let mut workers = Vec::with_capacity(a.replicas);
    for _ in 0..a.replicas {
        let mut w = SessionWorker::new(a.model, &cfg)?;
        if let Some(path) = &a.load {
            let file = std::fs::File::open(path)?;
            w.warm_start(std::io::BufReader::new(file))?;
        }
        w.enable_tracing();
        workers.push(w);
    }
    if a.load.is_some() {
        println!("restored variables from {} into {} replica(s)", a.load.as_deref().unwrap(), a.replicas);
    }
    let shapes = workers[0].item_shapes();
    let domains = workers[0].domains();

    let serve_cfg = ServeConfig {
        max_batch: a.max_batch,
        max_delay_nanos: (a.max_delay_ms * 1e6) as u64,
        queue_cap: a.queue_cap.unwrap_or(8 * a.max_batch),
        deadline_nanos: a.deadline_ms.map(|ms| (ms * 1e6) as u64),
        seed: a.seed,
    };
    let load = match (a.clients, a.requests) {
        (None, None) => {
            LoadModel::Open { rps: a.rps, duration_nanos: (a.duration * 1e9) as u64 }
        }
        (clients, requests) => {
            let clients = clients.unwrap_or(2 * a.max_batch);
            LoadModel::Closed { clients, requests: requests.unwrap_or(8 * clients) }
        }
    };

    let mut runners: Vec<&mut dyn BatchRunner> =
        workers.iter_mut().map(|w| w as &mut dyn BatchRunner).collect();
    let report = serve(
        &mut runners,
        &serve_cfg,
        &load,
        &mut |rng, _id| synth_inputs(&shapes, &domains, rng),
        a.model.name(),
    )?;

    let ms = |nanos: f64| nanos / 1e6;
    println!("{} | serve-bench | {:?}", a.model.name(), load);
    println!(
        "issued {}  completed {}  shed {}  timed-out {}",
        report.issued, report.completed, report.shed, report.timed_out
    );
    println!(
        "throughput {:.1} req/s over {:.1} ms of virtual time",
        report.throughput_rps(),
        report.makespan_nanos as f64 / 1e6
    );
    println!(
        "latency ms: p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}",
        ms(report.latency.quantile(0.50)),
        ms(report.latency.quantile(0.95)),
        ms(report.latency.quantile(0.99)),
        ms(report.latency.max()),
    );
    println!(
        "batches {}  mean size {:.2}  max queue depth {}",
        report.batches.len(),
        report.mean_batch_size(),
        report.max_queue_depth()
    );
    if let Some(path) = &a.out {
        std::fs::write(path, report.to_json())?;
        println!("wrote report to {path}");
    }
    Ok(())
}

fn cmd_dot(a: RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let out = a.out.clone().expect("parser enforces --out");
    let model = build(&a);
    let dot = export::to_dot(model.session().graph());
    std::fs::write(&out, &dot)?;
    println!(
        "wrote {}-node graph to {out} (render with: dot -Tsvg {out} -o graph.svg)",
        model.session().graph().len()
    );
    let _ = Mode::Inference; // silence unused import warnings in some cfgs
    Ok(())
}
