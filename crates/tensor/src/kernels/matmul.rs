//! Matrix multiplication kernels (op class A in the paper's taxonomy).
//!
//! The `MatMul` kernel is the dominant operation of the fully-connected and
//! recurrent Fathom workloads (`speech`, `autoenc`, `seq2seq`, `memnet`).
//! [`matmul`] dispatches between two implementations: the packed,
//! register-tiled engine in [`crate::kernels::gemm`] for products large
//! enough to amortize packing, and the cache-blocked row-parallel kernel
//! [`matmul_rows`] for everything else. The choice depends only on the
//! `(k, n)` geometry — never on `m` — so batched and batch-1 runs of the
//! same graph take the same kernel (serving's bitwise batch-independence
//! contract).

use crate::kernels::gemm;
use crate::pool::ExecPool;
use crate::tensor::Tensor;

/// Cache block edge for the k dimension.
const BLOCK_K: usize = 64;

/// `C = op(A) * op(B)` where `op` optionally transposes its argument.
///
/// `a` must be `[m, k]` (or `[k, m]` when `transpose_a`), `b` must be
/// `[k, n]` (or `[n, k]` when `transpose_b`). The result is `[m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the contraction dimensions
/// disagree.
pub fn matmul(a: &Tensor, b: &Tensor, transpose_a: bool, transpose_b: bool, pool: &ExecPool) -> Tensor {
    if a.shape().rank() == 2 && b.shape().rank() == 2 {
        let (k, n) = if transpose_b {
            (b.shape().dim(1), b.shape().dim(0))
        } else {
            (b.shape().dim(0), b.shape().dim(1))
        };
        if gemm::use_packed(k, n) {
            return gemm::matmul_packed(a, b, transpose_a, transpose_b, pool);
        }
    }
    matmul_rows(a, b, transpose_a, transpose_b, pool)
}

/// The pre-packing kernel: one parallel span per row of C, k-blocked.
/// Kept as the dispatch target for small products (packing would cost
/// more than it saves) and as the baseline the `gemm_scaling` benchmark
/// measures the packed engine against.
pub fn matmul_rows(a: &Tensor, b: &Tensor, transpose_a: bool, transpose_b: bool, pool: &ExecPool) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, ka) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (kb, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    assert_eq!(
        ka, kb,
        "matmul contraction mismatch: op(a) is [{m}, {ka}], op(b) is [{kb}, {n}]"
    );
    let k = ka;
    let mut out = Tensor::zeros([m, n]);
    if m == 0 || n == 0 {
        return out;
    }
    let a_data = a.data();
    let b_data = b.data();
    // Row-parallel: each span is one row of C; work per span ~ k * n.
    pool.for_spans(out.data_mut(), n, k.saturating_mul(n), |i, c_row| {
        for k0 in (0..k).step_by(BLOCK_K) {
            let k1 = (k0 + BLOCK_K).min(k);
            if !transpose_b {
                // Stream rows of B; good locality in both B and C. The
                // transpose select is hoisted out of the k loop, and there
                // is no zero-skip: a data-dependent branch in the inner
                // loop costs more in mispredictions than the multiplies
                // it saves on typical (dense) activations.
                if transpose_a {
                    for kk in k0..k1 {
                        let a_ik = a_data[kk * m + i];
                        let b_row = &b_data[kk * n..kk * n + n];
                        for (c, &bv) in c_row.iter_mut().zip(b_row) {
                            *c += a_ik * bv;
                        }
                    }
                } else {
                    let a_row = &a_data[i * k + k0..i * k + k1];
                    for (off, &a_ik) in a_row.iter().enumerate() {
                        let b_row = &b_data[(k0 + off) * n..(k0 + off) * n + n];
                        for (c, &bv) in c_row.iter_mut().zip(b_row) {
                            *c += a_ik * bv;
                        }
                    }
                }
            } else {
                // B is [n, k]: dot products along contiguous rows of B.
                for (j, c) in c_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * k + k0..j * k + k1];
                    let mut acc = 0.0;
                    if transpose_a {
                        for (off, &bv) in b_row.iter().enumerate() {
                            acc += a_data[(k0 + off) * m + i] * bv;
                        }
                    } else {
                        let a_row = &a_data[i * k + k0..i * k + k1];
                        for (av, bv) in a_row.iter().zip(b_row) {
                            acc += av * bv;
                        }
                    }
                    *c += acc;
                }
            }
        }
    });
    out
}

/// Reference implementation used by tests and property checks.
pub fn matmul_naive(a: &Tensor, b: &Tensor, transpose_a: bool, transpose_b: bool) -> Tensor {
    let (m, k) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let n = if transpose_b { b.shape().dim(0) } else { b.shape().dim(1) };
    let get_a = |i: usize, kk: usize| if transpose_a { a.at(&[kk, i]) } else { a.at(&[i, kk]) };
    let get_b = |kk: usize, j: usize| if transpose_b { b.at(&[j, kk]) } else { b.at(&[kk, j]) };
    let mut out = Tensor::zeros([m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += get_a(i, kk) * get_b(kk, j);
            }
            out.set(&[i, j], acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn pool() -> ExecPool {
        ExecPool::new(4).with_grain(1)
    }

    #[test]
    fn identity_multiplication() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(matmul(&a, &eye, false, false, &pool()), a);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let c = matmul(&a, &b, false, false, &pool());
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Tensor::ones([3, 5]);
        let b = Tensor::ones([5, 2]);
        let c = matmul(&a, &b, false, false, &pool());
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.data(), &[5.0; 6]);
    }

    #[test]
    fn all_transpose_combinations_match_naive() {
        let mut rng = Rng::seeded(21);
        for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
            let (m, k, n) = (7, 9, 5);
            let a = Tensor::randn(if ta { [k, m] } else { [m, k] }, 0.0, 1.0, &mut rng);
            let b = Tensor::randn(if tb { [n, k] } else { [k, n] }, 0.0, 1.0, &mut rng);
            let fast = matmul(&a, &b, ta, tb, &pool());
            let slow = matmul_naive(&a, &b, ta, tb);
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "mismatch for ta={ta} tb={tb}: {}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn large_parallel_matches_serial() {
        let mut rng = Rng::seeded(5);
        let a = Tensor::randn([64, 128], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([128, 96], 0.0, 1.0, &mut rng);
        let serial = matmul(&a, &b, false, false, &ExecPool::serial());
        let par = matmul(&a, &b, false, false, &ExecPool::new(8).with_grain(1));
        assert!(serial.max_abs_diff(&par) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "contraction mismatch")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]), false, false, &pool());
    }

    #[test]
    #[should_panic(expected = "must be rank 2")]
    fn non_matrix_panics() {
        matmul(&Tensor::zeros([2, 3, 4]), &Tensor::zeros([4, 2]), false, false, &pool());
    }

    #[test]
    fn empty_dimension() {
        let c = matmul(&Tensor::zeros([0, 3]), &Tensor::zeros([3, 4]), false, false, &pool());
        assert_eq!(c.shape().dims(), &[0, 4]);
        assert!(c.is_empty());
    }
}
