//! `deepq` — deep Q-learning on Atari-style games (Mnih et al., NIPS DL
//! workshop 2013).
//!
//! A convolutional network maps raw 84x84 pixel stacks to action values;
//! the agent improves "as it receives in-game feedback, not by observing
//! perfect play" (paper §IV), using epsilon-greedy exploration, a frozen
//! target network, experience replay, and RMSProp — the optimizer whose
//! cost surfaces at high thread counts in the paper's Figure 6a.
//!
//! The Arcade Learning Environment is substituted by the deterministic
//! `fathom-ale` paddle game with identical observation/action/reward
//! contracts (see DESIGN.md).

use fathom_ale::{AleEnv, EnvState, GameState, ReplayBuffer, Transition, FRAME_SIDE, STACK};
use fathom_dataflow::{ExecError, Graph, NodeId, Optimizer, Session, TrainHandles};
use fathom_nn::{Activation, Init, Params};
use fathom_tensor::kernels::conv::Conv2dSpec;
use fathom_tensor::{Rng, Tensor};

use crate::models::codec::{Dec, Enc};
use crate::workload::{
    BatchSpec, BuildConfig, InputPort, Mode, ModelScale, OutputPort, PortDomain, StepStats,
    TrainProbes, Workload, WorkloadMetadata,
};

struct Dims {
    batch: usize,
    conv_channels: [usize; 3],
    fc: usize,
    replay_capacity: usize,
    target_sync: u64,
    gamma: f32,
}

fn dims(scale: ModelScale) -> Dims {
    match scale {
        ModelScale::Reference => Dims {
            batch: 16,
            conv_channels: [8, 16, 16],
            fc: 64,
            replay_capacity: 2_000,
            target_sync: 25,
            gamma: 0.99,
        },
        ModelScale::Full => Dims {
            batch: 32,
            conv_channels: [32, 64, 64],
            fc: 512,
            replay_capacity: 100_000,
            target_sync: 1_000,
            gamma: 0.99,
        },
    }
}

/// Table II metadata for `deepq`.
pub fn metadata() -> WorkloadMetadata {
    WorkloadMetadata {
        name: "deepq",
        year: 2013,
        reference: "Mnih et al., NIPS Deep Learning Workshop 2013",
        style: "Convolutional, Full",
        layers: 5,
        task: "Reinforcement",
        dataset: "Atari ALE",
        purpose: "Atari-playing neural network from DeepMind. Achieves \
                  superhuman performance on majority of Atari2600 games, \
                  without any preconceptions.",
    }
}

/// The shared weights of a Q-network (3 conv + 2 dense layers), applied
/// as separate towers for acting (batch 1) and learning (batch B).
struct QNetwork {
    conv_w: [NodeId; 3],
    conv_b: [NodeId; 3],
    fc_w: NodeId,
    fc_b: NodeId,
    out_w: NodeId,
    out_b: NodeId,
}

const CONV_SPECS: [(usize, Conv2dSpec); 3] = [
    (8, Conv2dSpec { stride: 4, pad: 0 }),
    (4, Conv2dSpec { stride: 2, pad: 0 }),
    (3, Conv2dSpec { stride: 1, pad: 0 }),
];

impl QNetwork {
    /// Creates the network's variables. When `params` is `Some`, the
    /// variables are registered as trainable (the online network); the
    /// target network passes `None`.
    fn new(
        g: &mut Graph,
        p: &mut Params,
        prefix: &str,
        d: &Dims,
        actions: usize,
        trainable: bool,
    ) -> Self {
        let mut make = |name: String, shape: Vec<usize>, init: Init| -> NodeId {
            if trainable {
                p.variable(g, name, shape, init)
            } else {
                let value = init.materialize(&shape.clone().into(), p.rng());
                g.variable(name, value)
            }
        };
        let mut in_ch = STACK;
        let mut conv_w = Vec::with_capacity(3);
        let mut conv_b = Vec::with_capacity(3);
        for (i, ((k, _), &oc)) in CONV_SPECS.iter().zip(&d.conv_channels).enumerate() {
            conv_w.push(make(format!("{prefix}/conv{i}/w"), vec![*k, *k, in_ch, oc], Init::He));
            conv_b.push(make(format!("{prefix}/conv{i}/b"), vec![oc], Init::Zeros));
            in_ch = oc;
        }
        let flat = Self::flat_features(d);
        QNetwork {
            conv_w: [conv_w[0], conv_w[1], conv_w[2]],
            conv_b: [conv_b[0], conv_b[1], conv_b[2]],
            fc_w: make(format!("{prefix}/fc/w"), vec![flat, d.fc], Init::He),
            fc_b: make(format!("{prefix}/fc/b"), vec![d.fc], Init::Zeros),
            out_w: make(format!("{prefix}/out/w"), vec![d.fc, actions], Init::Xavier),
            out_b: make(format!("{prefix}/out/b"), vec![actions], Init::Zeros),
        }
    }

    /// Spatial size after the three valid convolutions on 84x84 input.
    fn flat_features(d: &Dims) -> usize {
        let mut side = FRAME_SIDE;
        for (k, spec) in CONV_SPECS {
            side = spec.out_extent(side, k);
        }
        side * side * d.conv_channels[2]
    }

    /// Builds a Q-value tower `[batch, actions]` over `states`.
    fn apply(&self, g: &mut Graph, states: NodeId) -> NodeId {
        let mut x = states;
        for (i, &(_, spec)) in CONV_SPECS.iter().enumerate() {
            let conv = g.conv2d(x, self.conv_w[i], spec);
            let biased = g.add_op(conv, self.conv_b[i]);
            x = Activation::Relu.apply(g, biased);
        }
        let batch = g.shape(x).dim(0);
        let features = g.shape(x).num_elements() / batch;
        let flat = g.reshape(x, [batch, features]);
        let fc = g.matmul(flat, self.fc_w);
        let fc_b = g.add_op(fc, self.fc_b);
        let h = Activation::Relu.apply(g, fc_b);
        let out = g.matmul(h, self.out_w);
        g.add_op(out, self.out_b)
    }

    /// All variable ids, online-to-target sync order.
    fn variables(&self) -> Vec<NodeId> {
        let mut v = Vec::new();
        v.extend(self.conv_w);
        v.extend(self.conv_b);
        v.extend([self.fc_w, self.fc_b, self.out_w, self.out_b]);
        v
    }
}

/// The `deepq` workload (DQN agent on the ALE substrate).
pub struct Deepq {
    meta: WorkloadMetadata,
    mode: Mode,
    session: Session,
    env: AleEnv,
    replay: ReplayBuffer,
    rng: Rng,
    // Graph handles.
    act_state: NodeId,
    act_q: NodeId,
    batch_states: NodeId,
    batch_q: NodeId,
    batch_actions_onehot: NodeId,
    batch_targets: NodeId,
    loss: NodeId,
    target_next_q: NodeId,
    target_states: NodeId,
    train: Option<TrainHandles>,
    online_vars: Vec<NodeId>,
    target_vars: Vec<NodeId>,
    // Agent state.
    epsilon: f32,
    steps_done: u64,
    episode_rewards: Vec<f32>,
    d: Dims,
}

impl Deepq {
    /// Builds the workload per the configuration.
    pub fn build(cfg: &BuildConfig) -> Self {
        let mut d = dims(cfg.scale);
        d.batch = cfg.batch_or(d.batch);
        let env = AleEnv::new(cfg.seed ^ 0xA7A21);
        let actions = env.num_actions();
        let mut g = Graph::new();
        let mut p = Params::seeded(cfg.seed);

        let online = QNetwork::new(&mut g, &mut p, "online", &d, actions, true);
        let target = QNetwork::new(&mut g, &mut p, "target", &d, actions, false);

        // Acting tower: single observation.
        let act_state = g.placeholder("act_state", [1, FRAME_SIDE, FRAME_SIDE, STACK]);
        let act_q = online.apply(&mut g, act_state);

        // Learning tower: replay minibatch.
        let batch_states = g.placeholder("states", [d.batch, FRAME_SIDE, FRAME_SIDE, STACK]);
        let q_values = online.apply(&mut g, batch_states); // [b, actions]
        let batch_actions_onehot = g.placeholder("actions_onehot", [d.batch, actions]);
        let selected = g.mul(q_values, batch_actions_onehot);
        let q_sa = g.sum_axis(selected, 1); // [b]
        let batch_targets = g.placeholder("targets", [d.batch]);
        let err = g.sub(q_sa, batch_targets);
        let sq = g.square(err);
        let loss = g.mean_all(sq);

        // Target tower: next-state values from the frozen network.
        let target_states = g.placeholder("next_states", [d.batch, FRAME_SIDE, FRAME_SIDE, STACK]);
        let target_next_q = target.apply(&mut g, target_states);

        let train = match cfg.mode {
            Mode::Training => {
                Some(Optimizer::rms_prop(1e-3).minimize_tracked(&mut g, loss, p.trainable()))
            }
            Mode::Inference => None,
        };
        let mut session = Session::with_seed(g, cfg.device.clone(), cfg.seed);
        if cfg.fusion.enabled() {
            let mut keep = vec![act_q, q_values, loss, target_next_q];
            keep.extend(train.iter().flat_map(|h| [h.step, h.grad_norm]));
            session.enable_fusion_with(
                &keep,
                fathom_dataflow::optimize::FusionOptions {
                    gemm_epilogues: cfg.fusion.gemm_epilogues(),
                },
            );
        }
        Deepq {
            meta: metadata(),
            mode: cfg.mode,
            session,
            env,
            replay: ReplayBuffer::new(d.replay_capacity),
            rng: Rng::seeded(cfg.seed ^ 0xE9),
            act_state,
            act_q,
            batch_states,
            batch_q: q_values,
            batch_actions_onehot,
            batch_targets,
            loss,
            target_next_q,
            target_states,
            train,
            online_vars: online.variables(),
            target_vars: target.variables(),
            epsilon: 1.0,
            steps_done: 0,
            episode_rewards: Vec::new(),
            d,
        }
    }

    /// Epsilon-greedy action for the current observation.
    fn select_action(&mut self, observation: &Tensor) -> Result<usize, ExecError> {
        if self.rng.chance(self.epsilon) {
            Ok(self.rng.below(self.env.num_actions()))
        } else {
            let q = self
                .session
                .run1(self.act_q, &[(self.act_state, observation.clone())])?;
            Ok(q.argmax_last_axis().data()[0] as usize)
        }
    }

    /// Copies every online variable into its target twin.
    fn sync_target(&mut self) {
        for (&src, &dst) in self.online_vars.clone().iter().zip(&self.target_vars.clone()) {
            let value = self
                .session
                .variable_value(src)
                .expect("online vars exist")
                .clone();
            self.session.assign(dst, value).expect("towers have equal shapes");
        }
    }

    /// Current exploration rate (diagnostics).
    pub fn debug_epsilon(&self) -> f32 {
        self.epsilon
    }

    /// `(min, mean, max)` of the acting tower's Q-values on the current
    /// observation (diagnostics).
    pub fn debug_q_summary(&mut self) -> (f32, f32, f32) {
        let obs = self.env.observation();
        let q = self
            .session
            .run1(self.act_q, &[(self.act_state, obs)])
            .expect("workload graphs are well-formed");
        (q.min(), q.mean(), q.max())
    }

    /// Mean reward over the most recent completed episodes.
    pub fn recent_reward(&self) -> f32 {
        let window = self.episode_rewards.len().min(20);
        if window == 0 {
            return 0.0;
        }
        let tail = &self.episode_rewards[self.episode_rewards.len() - window..];
        tail.iter().sum::<f32>() / window as f32
    }

    /// Plays `frames` environment steps with the current policy, storing
    /// transitions. Returns accumulated reward.
    fn play(&mut self, frames: usize) -> Result<f32, ExecError> {
        let mut episode_reward = 0.0;
        let mut total = 0.0;
        for _ in 0..frames {
            let state = self.env.observation();
            let action = self.select_action(&state)?;
            let result = self.env.step(action);
            total += result.reward;
            episode_reward += result.reward;
            self.replay.push(Transition {
                state,
                action,
                reward: result.reward,
                next_state: result.observation.clone(),
                done: result.done,
            });
            if result.done {
                self.episode_rewards.push(episode_reward);
                episode_reward = 0.0;
            }
        }
        Ok(total)
    }

    /// One gradient update from replay; returns `(TD loss, grad norm)`.
    fn learn(&mut self) -> Result<(f32, f32), ExecError> {
        let batch = self.replay.sample(self.d.batch, &mut self.rng);
        // Bootstrapped targets from the frozen network (computed with the
        // target tower; max over actions on the host).
        let next_q = self
            .session
            .run1(self.target_next_q, &[(self.target_states, batch.next_states.clone())])?;
        let actions = self.env.num_actions();
        let mut targets = Tensor::zeros([self.d.batch]);
        let mut onehot = Tensor::zeros([self.d.batch, actions]);
        for b in 0..self.d.batch {
            let row = &next_q.data()[b * actions..(b + 1) * actions];
            let max_next = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let done = batch.dones.data()[b] > 0.5;
            let y = batch.rewards.data()[b]
                + if done { 0.0 } else { self.d.gamma * max_next };
            targets.set(&[b], y);
            onehot.set(&[b, batch.actions.data()[b] as usize], 1.0);
        }
        let train = self.train.expect("training graph was built");
        let out = self.session.run(
            &[self.loss, train.grad_norm, train.step],
            &[
                (self.batch_states, batch.states),
                (self.batch_actions_onehot, onehot),
                (self.batch_targets, targets),
            ],
        )?;
        Ok((out[0].scalar_value(), out[1].scalar_value()))
    }
}

impl Workload for Deepq {
    fn metadata(&self) -> &WorkloadMetadata {
        &self.meta
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn try_step(&mut self) -> Result<StepStats, ExecError> {
        // A failed step rolls the agent back to where it started: action
        // RNG, exploration schedule, environment, episode log, and the
        // replay buffer (the mark undoes this step's pushes without
        // cloning the whole ring — a replayed step must not train on
        // duplicated experience).
        let replay_mark = self.replay.mark(4);
        let rng_before = self.rng.state();
        let epsilon_before = self.epsilon;
        let steps_before = self.steps_done;
        let env_before = self.env.save_state();
        let rewards_before = self.episode_rewards.len();
        let result = match self.mode {
            Mode::Training => {
                // Anneal exploration from 1.0 to 0.1 over the first ~100
                // steps (scaled-down DQN schedule).
                self.epsilon = (1.0 - self.steps_done as f32 * 0.009).max(0.1);
                self.play(4).and_then(|_| self.learn()).map(|(loss, grad_norm)| {
                    self.steps_done += 1;
                    if self.steps_done.is_multiple_of(self.d.target_sync) {
                        self.sync_target();
                    }
                    StepStats {
                        loss: Some(loss),
                        metric: Some(self.recent_reward()),
                        grad_norm: Some(grad_norm),
                    }
                })
            }
            Mode::Inference => {
                // Same environment-frame budget as a training step, so
                // train/inference times compare the way the paper's
                // Figure 5 does.
                self.epsilon = 0.05;
                self.play(4).map(|reward| StepStats {
                    loss: None,
                    metric: Some(reward),
                    grad_norm: None,
                })
            }
        };
        if result.is_err() {
            self.rng = Rng::from_state(rng_before);
            self.epsilon = epsilon_before;
            self.steps_done = steps_before;
            self.env.load_state(&env_before);
            self.episode_rewards.truncate(rewards_before);
            self.replay.rollback(replay_mark);
        }
        result
    }

    fn session(&self) -> &Session {
        &self.session
    }

    fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    fn batch_spec(&self) -> Option<BatchSpec> {
        if self.mode != Mode::Inference {
            return None;
        }
        // Serve the learning tower (`states -> q_values`): the act tower
        // is pinned to batch 1 for the environment loop, but policy
        // evaluation over observation batches is the natural serving
        // shape for a DQN.
        Some(BatchSpec {
            inputs: vec![InputPort {
                node: self.batch_states,
                batch_axis: 0,
                domain: PortDomain::Real,
            }],
            output: OutputPort { node: self.batch_q, batch_axis: 0 },
            capacity: self.d.batch,
        })
    }

    fn train_probes(&self) -> Option<TrainProbes> {
        self.train.map(|h| TrainProbes { loss: self.loss, grad_norm: h.grad_norm })
    }

    fn export_pipeline(&self) -> Vec<u8> {
        let mut e = Enc::new(self.meta.name);
        e.rng(self.rng.state());
        e.f32(self.epsilon);
        e.u64(self.steps_done);
        e.f32s(&self.episode_rewards);
        // Environment: game physics + RNG, frame stack, episode tallies.
        let env = self.env.save_state();
        e.f32(env.game.ball_x);
        e.f32(env.game.ball_y);
        e.f32(env.game.drift);
        e.f32(env.game.paddle_x);
        e.u64(env.game.rng_state);
        for frame in &env.frames {
            e.f32s(frame);
        }
        e.f32(env.episode_reward);
        e.u64(env.episodes);
        // Replay buffer, palette-compressed frame tensors dominating.
        e.u64(self.replay.capacity() as u64);
        e.u64(self.replay.cursor() as u64);
        e.u64(self.replay.len() as u64);
        for t in self.replay.items() {
            e.tensor(&t.state);
            e.u64(t.action as u64);
            e.f32(t.reward);
            e.tensor(&t.next_state);
            e.bool(t.done);
        }
        e.finish()
    }

    fn import_pipeline(&mut self, blob: &[u8]) -> Result<(), String> {
        let mut d = Dec::new(self.meta.name, blob)?;
        let rng = d.rng()?;
        let epsilon = d.f32()?;
        let steps_done = d.u64()?;
        let episode_rewards = d.f32s()?;
        let game = GameState {
            ball_x: d.f32()?,
            ball_y: d.f32()?,
            drift: d.f32()?,
            paddle_x: d.f32()?,
            rng_state: d.u64()?,
        };
        let frames = [d.f32s()?, d.f32s()?, d.f32s()?, d.f32s()?];
        for frame in &frames {
            if frame.len() != FRAME_SIDE * FRAME_SIDE {
                return Err(format!(
                    "frame stack entry has {} pixels, expected {}",
                    frame.len(),
                    FRAME_SIDE * FRAME_SIDE
                ));
            }
        }
        let env = EnvState {
            game,
            frames,
            episode_reward: d.f32()?,
            episodes: d.u64()?,
        };
        let capacity = d.u64()? as usize;
        let cursor = d.u64()? as usize;
        let len = d.u64()? as usize;
        if capacity == 0 || capacity > (1 << 24) || len > capacity || cursor >= capacity.max(1) {
            return Err(format!(
                "implausible replay geometry: capacity {capacity}, len {len}, cursor {cursor}"
            ));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(Transition {
                state: d.tensor()?,
                action: d.u64()? as usize,
                reward: d.f32()?,
                next_state: d.tensor()?,
                done: d.bool()?,
            });
        }
        d.done()?;
        self.rng = Rng::from_state(rng);
        self.epsilon = epsilon;
        self.steps_done = steps_done;
        self.episode_rewards = episode_rewards;
        self.env.load_state(&env);
        self.replay = ReplayBuffer::restore(capacity, items, cursor);
        Ok(())
    }

    fn skip_batch(&mut self) {
        // Burn one replay draw so the retried step samples a different
        // minibatch; the aborted step's transitions are already banked.
        if !self.replay.is_empty() {
            let _ = self.replay.sample(self.d.batch, &mut self.rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::OpKind;

    #[test]
    fn training_steps_run_and_sync() {
        let mut m = Deepq::build(&BuildConfig::training());
        for _ in 0..30 {
            let stats = m.step();
            assert!(stats.loss.unwrap().is_finite());
        }
        // After 30 steps (> target_sync = 25) the target net must match
        // the online net's first conv filter.
        let online = m.session.variable_value(m.online_vars[0]).unwrap().clone();
        let target = m.session.variable_value(m.target_vars[0]).unwrap().clone();
        assert_eq!(online.shape(), target.shape());
    }

    #[test]
    fn profile_contains_dqn_signature_ops() {
        // Figure 6a's deepq op mix: Conv2D and its two backprops, MatMul,
        // ApplyRMSProp.
        let mut m = Deepq::build(&BuildConfig::training());
        m.step(); // warm up replay
        m.session_mut().enable_tracing();
        m.step();
        let trace = m.session_mut().take_trace();
        for op in ["Conv2D", "Conv2DBackpropFilter", "Conv2DBackpropInput", "MatMul", "ApplyRMSProp"] {
            assert!(
                trace.events.iter().any(|e| e.op == op),
                "expected {op} in the deepq training profile"
            );
        }
    }

    #[test]
    fn inference_plays_the_game() {
        let mut m = Deepq::build(&BuildConfig::inference());
        let stats = m.step();
        assert!(stats.metric.is_some());
    }

    #[test]
    fn target_variables_are_not_trainable() {
        let m = Deepq::build(&BuildConfig::training());
        let g = m.session().graph();
        // No Apply op may touch a target variable.
        for (_, n) in g.iter() {
            if matches!(n.kind, OpKind::ApplyRmsProp { .. }) {
                let var = n.inputs[0];
                assert!(
                    m.online_vars.contains(&var),
                    "optimizer updates a non-online variable"
                );
            }
        }
    }
}
