//! The eight reference workloads.

mod codec;
mod common;

pub mod alexnet;
pub mod autoenc;
pub mod deepq;
pub mod memnet;
pub mod residual;
pub mod seq2seq;
pub mod speech;
pub mod vgg;
