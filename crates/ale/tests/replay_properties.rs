//! Property-based tests for the environment and replay buffer.

use fathom_ale::{AleEnv, CatchGame, ReplayBuffer, Transition};
use fathom_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn transition(tag: f32) -> Transition {
    Transition {
        state: Tensor::filled([1, 2], tag),
        action: (tag as usize) % 3,
        reward: tag,
        next_state: Tensor::filled([1, 2], tag + 0.25),
        done: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The buffer never exceeds capacity and always keeps the newest item.
    #[test]
    fn buffer_is_bounded_and_keeps_newest(capacity in 1usize..20, pushes in 1usize..60) {
        let mut b = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            b.push(transition(i as f32));
        }
        prop_assert_eq!(b.len(), pushes.min(capacity));
        // The most recent push must be sampleable.
        let mut rng = Rng::seeded(1);
        let batch = b.sample(200, &mut rng);
        let newest = (pushes - 1) as f32;
        prop_assert!(batch.rewards.data().contains(&newest));
    }

    /// Every sampled reward corresponds to something actually pushed and
    /// still retained (the last `capacity` pushes).
    #[test]
    fn samples_come_from_retained_items(
        capacity in 1usize..16,
        pushes in 1usize..48,
        seed in 0u64..1000,
    ) {
        let mut b = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            b.push(transition(i as f32));
        }
        let oldest_retained = pushes.saturating_sub(capacity) as f32;
        let mut rng = Rng::seeded(seed);
        let batch = b.sample(32, &mut rng);
        for &r in batch.rewards.data() {
            prop_assert!(r >= oldest_retained && r < pushes as f32, "sampled evicted reward {r}");
        }
    }

    /// Batched tensors keep (state, action, reward, next_state) aligned.
    #[test]
    fn sample_rows_stay_aligned(seed in 0u64..1000) {
        let mut b = ReplayBuffer::new(32);
        for i in 0..32 {
            b.push(transition(i as f32));
        }
        let mut rng = Rng::seeded(seed);
        let batch = b.sample(16, &mut rng);
        for i in 0..16 {
            let tag = batch.rewards.data()[i];
            prop_assert_eq!(batch.states.data()[i * 2], tag);
            prop_assert_eq!(batch.next_states.data()[i * 2], tag + 0.25);
            prop_assert_eq!(batch.actions.data()[i], ((tag as usize) % 3) as f32);
        }
    }

    /// The game is fully deterministic under any action sequence.
    #[test]
    fn game_is_deterministic(
        seed in 0u64..10_000,
        actions in proptest::collection::vec(0usize..3, 1..80),
    ) {
        let mut a = CatchGame::new(seed);
        let mut b = CatchGame::new(seed);
        for &act in &actions {
            let (ta, tb) = (
                a.tick(fathom_ale::Action::from_index(act)),
                b.tick(fathom_ale::Action::from_index(act)),
            );
            prop_assert_eq!(ta, tb);
        }
        prop_assert_eq!(a.render(), b.render());
    }

    /// Rewards are only emitted at episode boundaries and are always ±1.
    #[test]
    fn rewards_only_at_episode_ends(
        seed in 0u64..10_000,
        actions in proptest::collection::vec(0usize..3, 1..120),
    ) {
        let mut env = AleEnv::new(seed);
        for &act in &actions {
            let r = env.step(act);
            if r.done {
                prop_assert!(r.reward == 1.0 || r.reward == -1.0);
            } else {
                prop_assert_eq!(r.reward, 0.0);
            }
        }
    }

    /// Observations are always valid [0,1] grayscale stacks.
    #[test]
    fn observations_stay_normalized(seed in 0u64..1000, steps in 1usize..60) {
        let mut env = AleEnv::new(seed);
        for i in 0..steps {
            let r = env.step(i % 3);
            prop_assert!(r.observation.min() >= 0.0);
            prop_assert!(r.observation.max() <= 1.0);
            prop_assert_eq!(r.observation.shape().dims(), &[1, 84, 84, 4]);
        }
    }
}
