//! `fathom-serve` — batched inference serving for the Fathom workloads.
//!
//! The paper frames its workloads as *reference benchmarks* for both
//! training and deployment; this crate adds the deployment half's
//! missing piece: a serving layer that coalesces independent inference
//! requests into the minibatches the graphs are built for, with the
//! admission-control and observability machinery a real model server
//! needs. It is deliberately framework-free and reuses the suite's own
//! substrate end to end:
//!
//! * [`worker::SessionWorker`] — one pre-built inference [`Session`]
//!   (with the inter-op executor and buffer recycling from
//!   `fathom-dataflow`) per replica, packing and splitting request
//!   tensors via `fathom_dataflow::batch` along each workload's declared
//!   [`BatchSpec`](fathom::BatchSpec);
//! * [`engine::serve`] — a deterministic virtual-time event loop:
//!   dynamic batching up to `max_batch`/`max_delay`, bounded-queue load
//!   shedding, per-request deadlines, graceful drain;
//! * [`metrics::ServeReport`] — per-request latency quantiles, queue
//!   depth, batch-size distribution, shed/timeout counters, and op-class
//!   time slices fed from the session trace;
//! * supervised recovery — a failed replica is quarantined with
//!   exponential backoff and rebuilt from its checkpoint, its in-flight
//!   batch retries on a healthy replica, and
//!   [`metrics::RecoveryCounters`] account for every crash. The
//!   [`chaos::FaultyRunner`] wrapper drives all of it deterministically
//!   from a seeded [`FaultPlan`](fathom_dataflow::FaultPlan);
//! * [`cluster::serve_cluster`] — the fleet layer: multiple models, each
//!   behind a group of shards, with consistent-hash routing and
//!   load-aware spill ([`router::Router`]), per-request SLO classes and
//!   deadline-aware admission ([`slo::SloClass`]), continuous batching
//!   versus fixed rounds ([`cluster::BatchPolicy`]), and zero-drop hot
//!   model reload from a v2 checkpoint ([`cluster::ReloadPlan`]).
//!
//! The correctness contract is *batch independence*: a request's output
//! is bitwise identical whether it rode in a batch of one or a full
//! batch (verified for all eight workloads in `tests/serving.rs`).
//!
//! [`Session`]: fathom_dataflow::Session

#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod engine;
pub mod metrics;
pub mod router;
pub mod slo;
pub mod worker;

pub use chaos::FaultyRunner;
pub use cluster::{
    serve_cluster, BatchPolicy, ClassStats, ClusterConfig, ClusterReport, ClusterRunner,
    ModelReport, ModelSpec, ReloadPlan, SynthFn,
};
pub use engine::{serve, LoadModel, RecoveryPolicy, ServeConfig};
pub use metrics::{BatchRecord, LatencyHistogram, RecoveryCounters, ServeReport, ShedBreakdown};
pub use router::{HashRing, Placement, Router};
pub use slo::{SloClass, SloMix, SloPolicy};
pub use worker::{synth_inputs, BatchResult, BatchRunner, Request, ServeError, SessionWorker};
