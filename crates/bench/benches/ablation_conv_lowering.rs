//! `cargo bench -p fathom-bench --bench ablation_conv_lowering`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::ablation::run_conv_lowering(&effort));
}
