//! Application-level graph optimization.
//!
//! The paper observes that most deep learning frameworks ship "an
//! application-level, compiler-esque optimizer" (§III-C). This module is
//! that component: a rewrite pipeline over a finished graph performing
//!
//! * **dead-code elimination** — only ancestors of the kept nodes survive;
//! * **identity elimination** — `Identity`/`StopGradient` pass-throughs
//!   are spliced out (gradients are already built by that point);
//! * **constant folding** — pure ops whose inputs are all constants are
//!   evaluated once at optimization time;
//! * **common-subexpression elimination** — structurally identical pure
//!   ops are merged (the autodiff pass emits many duplicate scalars and
//!   reduction chains, so this fires often in practice).
//!
//! Optimization is opt-in: the profiling experiments characterize the
//! graphs as built, and the `ablation_optimizer` bench quantifies what
//! the optimizer buys.

use std::collections::HashMap;

use crate::device::Device;
use crate::exec::Session;
use crate::graph::{Graph, NodeId};
use crate::op::OpKind;

/// What the optimizer did, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Node count before optimization.
    pub original_nodes: usize,
    /// Node count after optimization.
    pub optimized_nodes: usize,
    /// Nodes dropped because nothing kept depends on them.
    pub dead_removed: usize,
    /// `Identity`/`StopGradient` nodes spliced out.
    pub identities_removed: usize,
    /// Pure ops evaluated at optimization time.
    pub constants_folded: usize,
    /// Duplicate pure ops merged.
    pub subexpressions_merged: usize,
}

/// An optimized graph plus the id remapping for the caller's handles.
#[derive(Debug, Clone)]
pub struct OptimizedGraph {
    /// The rewritten graph.
    pub graph: Graph,
    map: Vec<Option<NodeId>>,
    /// Rewrite statistics.
    pub stats: OptimizeStats,
}

impl OptimizedGraph {
    /// The new id of an original node (`None` if it was dead code).
    pub fn remap(&self, old: NodeId) -> Option<NodeId> {
        self.map.get(old.index()).copied().flatten()
    }
}

/// Whether CSE/folding may touch this op at all.
fn is_pure(kind: &OpKind) -> bool {
    !kind.is_stateful()
        && !matches!(kind, OpKind::Placeholder { .. } | OpKind::Variable { .. } | OpKind::Group)
}

/// A structural key for CSE. `None` when the op must not be merged.
fn cse_key(kind: &OpKind, inputs: &[NodeId]) -> Option<String> {
    if !is_pure(kind) {
        return None;
    }
    match kind {
        // Tensor's Debug truncates large buffers, so constants key on the
        // exact bits.
        OpKind::Constant(t) => {
            let mut key = format!("Const:{}:", t.shape());
            for v in t.data() {
                key.push_str(&format!("{:08x}", v.to_bits()));
            }
            Some(key)
        }
        _ => Some(format!("{kind:?}|{inputs:?}")),
    }
}

/// Evaluates a pure op whose inputs are all constants, by running it in a
/// throwaway single-op session.
fn fold(kind: &OpKind, inputs: &[&OpKind]) -> Option<fathom_tensor::Tensor> {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = inputs
        .iter()
        .map(|k| match k {
            OpKind::Constant(t) => g.constant(t.clone()),
            _ => unreachable!("fold is only called with constant inputs"),
        })
        .collect();
    let node = g.try_add(kind.clone(), &ids).ok()?;
    let mut sess = Session::new(g, Device::cpu(1));
    sess.run1(node, &[]).ok()
}

/// Optimizes `g`, preserving the behavior of every node in `keep` (and,
/// transitively, the side effects of stateful ops they depend on).
///
/// # Panics
///
/// Panics if a kept id does not belong to `g`.
pub fn optimize(g: &Graph, keep: &[NodeId]) -> OptimizedGraph {
    let mut stats = OptimizeStats { original_nodes: g.len(), ..OptimizeStats::default() };

    // Reachability from the kept set.
    let mut needed = vec![false; g.len()];
    let mut stack: Vec<NodeId> = keep.to_vec();
    while let Some(id) = stack.pop() {
        assert!(id.index() < g.len(), "kept node {id} is not in this graph");
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        stack.extend(g.node(id).inputs.iter().copied());
    }

    let mut out = Graph::new();
    let mut map: Vec<Option<NodeId>> = vec![None; g.len()];
    let mut cse: HashMap<String, NodeId> = HashMap::new();

    for (id, node) in g.iter() {
        if !needed[id.index()] {
            stats.dead_removed += 1;
            continue;
        }
        let inputs: Vec<NodeId> = node
            .inputs
            .iter()
            .map(|i| map[i.index()].expect("inputs precede outputs"))
            .collect();

        // Identity elimination.
        if matches!(node.kind, OpKind::Identity | OpKind::StopGradient) {
            stats.identities_removed += 1;
            map[id.index()] = Some(inputs[0]);
            continue;
        }

        // Constant folding.
        let mut kind = node.kind.clone();
        if is_pure(&kind)
            && !matches!(kind, OpKind::Constant(_))
            && !inputs.is_empty()
            && inputs
                .iter()
                .all(|i| matches!(out.node(*i).kind, OpKind::Constant(_)))
        {
            let input_kinds: Vec<&OpKind> = inputs.iter().map(|i| &out.node(*i).kind).collect();
            if let Some(folded) = fold(&kind, &input_kinds) {
                stats.constants_folded += 1;
                kind = OpKind::Constant(folded);
            }
        }

        // CSE (covers folded results too, so equal constants merge).
        let inputs_for_key = if matches!(kind, OpKind::Constant(_)) { Vec::new() } else { inputs.clone() };
        if let Some(key) = cse_key(&kind, &inputs_for_key) {
            if let Some(&existing) = cse.get(&key) {
                stats.subexpressions_merged += 1;
                map[id.index()] = Some(existing);
                continue;
            }
            let new_inputs = if matches!(kind, OpKind::Constant(_)) { Vec::new() } else { inputs };
            let new_id = out.add(kind, &new_inputs);
            if let Some(name) = &node.name {
                out.set_name(new_id, name.clone());
            }
            cse.insert(key, new_id);
            map[id.index()] = Some(new_id);
        } else {
            let new_id = out.add(kind, &inputs);
            if let Some(name) = &node.name {
                out.set_name(new_id, name.clone());
            }
            map[id.index()] = Some(new_id);
        }
    }

    stats.optimized_nodes = out.len();
    OptimizedGraph { graph: out, map, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_tensor::{Shape, Tensor};

    #[test]
    fn dead_code_is_removed() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(2));
        let live = g.neg(x);
        let dead_in = g.placeholder("unused", Shape::vector(3));
        let _dead = g.exp(dead_in);
        let opt = optimize(&g, &[live]);
        assert_eq!(opt.stats.dead_removed, 2);
        assert_eq!(opt.graph.len(), 2);
        assert!(opt.remap(live).is_some());
        assert!(opt.remap(dead_in).is_none());
    }

    #[test]
    fn identities_are_spliced_out() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(2));
        let i1 = g.add(OpKind::Identity, &[x]);
        let i2 = g.stop_gradient(i1);
        let y = g.neg(i2);
        let opt = optimize(&g, &[y]);
        assert_eq!(opt.stats.identities_removed, 2);
        // Only the placeholder and the Neg remain.
        assert_eq!(opt.graph.len(), 2);
        // The Neg's input is the placeholder directly.
        let new_y = opt.remap(y).unwrap();
        let new_x = opt.remap(x).unwrap();
        assert_eq!(opt.graph.node(new_y).inputs, vec![new_x]);
    }

    #[test]
    fn constants_fold() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from(vec![1.0, 2.0]));
        let b = g.constant(Tensor::from(vec![3.0, 4.0]));
        let sum = g.add_op(a, b);
        let x = g.placeholder("x", Shape::vector(2));
        let y = g.mul(sum, x);
        let opt = optimize(&g, &[y]);
        assert_eq!(opt.stats.constants_folded, 1);
        let new_y = opt.remap(y).unwrap();
        let folded_input = opt.graph.node(new_y).inputs[0];
        match &opt.graph.node(folded_input).kind {
            OpKind::Constant(t) => assert_eq!(t.data(), &[4.0, 6.0]),
            other => panic!("expected folded constant, got {other:?}"),
        }
    }

    #[test]
    fn folding_cascades() {
        // (1 + 2) * 3 folds all the way to a single constant.
        let mut g = Graph::new();
        let one = g.constant(Tensor::scalar(1.0));
        let two = g.constant(Tensor::scalar(2.0));
        let three = g.constant(Tensor::scalar(3.0));
        let sum = g.add_op(one, two);
        let product = g.mul(sum, three);
        let opt = optimize(&g, &[product]);
        assert_eq!(opt.stats.constants_folded, 2);
        let new = opt.remap(product).unwrap();
        match &opt.graph.node(new).kind {
            OpKind::Constant(t) => assert_eq!(t.scalar_value(), 9.0),
            other => panic!("expected constant, got {other:?}"),
        }
    }

    #[test]
    fn common_subexpressions_merge() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(4));
        let s1 = g.square(x);
        let s2 = g.square(x); // duplicate
        let sum = g.add_op(s1, s2);
        let opt = optimize(&g, &[sum]);
        assert_eq!(opt.stats.subexpressions_merged, 1);
        assert_eq!(opt.remap(s1), opt.remap(s2));
    }

    #[test]
    fn duplicate_constants_merge_but_different_ones_do_not() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar(2.0));
        let b = g.constant(Tensor::scalar(2.0));
        let c = g.constant(Tensor::scalar(3.0));
        let ab = g.add_op(a, b);
        let abc = g.add_op(ab, c);
        let opt = optimize(&g, &[abc]);
        // a and b merge; everything then folds into one constant.
        assert_eq!(opt.remap(a), opt.remap(b));
        assert_ne!(opt.remap(a), opt.remap(c));
    }

    #[test]
    fn random_ops_are_never_merged() {
        let mut g = Graph::new();
        let r1 = g.random_normal([4]);
        let r2 = g.random_normal([4]);
        let sum = g.add_op(r1, r2);
        let opt = optimize(&g, &[sum]);
        assert_eq!(opt.stats.subexpressions_merged, 0);
        assert_ne!(opt.remap(r1), opt.remap(r2));
    }

    #[test]
    fn variables_are_never_merged_or_folded() {
        let mut g = Graph::new();
        let v1 = g.variable("a", Tensor::scalar(1.0));
        let v2 = g.variable("b", Tensor::scalar(1.0));
        let sum = g.add_op(v1, v2);
        let opt = optimize(&g, &[sum]);
        assert_ne!(opt.remap(v1), opt.remap(v2));
        assert_eq!(opt.stats.constants_folded, 0);
        // Variable initial values survive the rewrite.
        let new_graph = opt.graph.clone();
        assert_eq!(new_graph.variables().len(), 2);
    }

    #[test]
    fn optimized_graph_computes_identical_values() {
        use crate::grad::gradients;
        use fathom_tensor::Rng;
        // A training-shaped graph with gradients: optimize and compare.
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::matrix(3, 4));
        let mut rng = Rng::seeded(5);
        let w = g.variable("w", Tensor::randn([4, 2], 0.0, 1.0, &mut rng));
        let y = g.matmul(x, w);
        let act = g.tanh(y);
        let loss = g.sum_all(act);
        let grads = gradients(&mut g, loss, &[w]);
        let opt = optimize(&g, &[loss, grads[0]]);
        assert!(opt.graph.len() < g.len(), "optimizer should shrink a grad graph");

        let x_val = Tensor::randn([3, 4], 0.0, 1.0, &mut rng);
        let mut original = Session::new(g, Device::cpu(1));
        let mut rewritten = Session::new(opt.graph.clone(), Device::cpu(1));
        let a = original.run(&[loss, grads[0]], &[(x, x_val.clone())]).unwrap();
        let b = rewritten
            .run(
                &[opt.remap(loss).unwrap(), opt.remap(grads[0]).unwrap()],
                &[(opt.remap(x).unwrap(), x_val)],
            )
            .unwrap();
        assert_eq!(a[0], b[0]);
        assert!(a[1].max_abs_diff(&b[1]) < 1e-6);
    }

    #[test]
    fn stats_add_up() {
        let mut g = Graph::new();
        let x = g.placeholder("x", Shape::vector(2));
        let i = g.add(OpKind::Identity, &[x]);
        let s1 = g.square(i);
        let s2 = g.square(i);
        let keep = g.add_op(s1, s2);
        let _dead = g.exp(x);
        let opt = optimize(&g, &[keep]);
        let s = opt.stats;
        assert_eq!(s.original_nodes, 6);
        assert_eq!(s.dead_removed, 1);
        assert_eq!(s.identities_removed, 1);
        assert_eq!(s.subexpressions_merged, 1);
        assert_eq!(s.optimized_nodes, 3); // x, square, add
    }
}
