//! `residual` — deep residual networks (He, Zhang, Ren & Sun, arXiv 2015;
//! winner of all five ILSVRC 2015 tracks).
//!
//! ResNet-34 topology: a stem convolution, four stages of basic blocks
//! (`[3, 4, 6, 3]` blocks, two 3x3 convolutions each) with identity
//! shortcuts, batch normalization after every convolution, global average
//! pooling, and a single dense classifier — 34 weight layers in total.
//! The identity connections "effectively train these layers on the
//! difference between input and output" (paper §IV).

use fathom_dataflow::{Graph, NodeId, Optimizer, Session};
use fathom_nn::{avg_pool, batch_norm, conv2d, dense, flatten, instance_norm, Activation, Params};
use fathom_tensor::kernels::conv::Conv2dSpec;

use crate::models::common::ImageClassifier;
use crate::workload::{BuildConfig, Mode, ModelScale, StepStats, Workload, WorkloadMetadata};

/// Blocks per stage in ResNet-34.
const STAGE_BLOCKS: [usize; 4] = [3, 4, 6, 3];

struct Dims {
    batch: usize,
    side: usize,
    classes: usize,
    stage_channels: [usize; 4],
}

fn dims(scale: ModelScale) -> Dims {
    match scale {
        ModelScale::Reference => Dims {
            batch: 2,
            side: 32,
            classes: 10,
            stage_channels: [16, 32, 64, 128],
        },
        ModelScale::Full => Dims {
            batch: 8,
            side: 224,
            classes: 1000,
            stage_channels: [64, 128, 256, 512],
        },
    }
}

/// Table II metadata for `residual`.
pub fn metadata() -> WorkloadMetadata {
    WorkloadMetadata {
        name: "residual",
        year: 2015,
        reference: "He, Zhang, Ren & Sun, arXiv:1512.03385",
        style: "Convolutional",
        layers: 34,
        task: "Supervised",
        dataset: "ImageNet",
        purpose: "Image classifier from Microsoft Research Asia. Dramatically \
                  increased the practical depth of convolutional networks. \
                  ILSVRC 2015 winner.",
    }
}

/// The normalization layer applied after every convolution. Training
/// graphs use classic batch statistics; inference graphs use the
/// per-sample variant so batched serving output is independent of
/// batchmates (see [`instance_norm`]). Both share parameter names, so
/// checkpoints move freely between the two graphs.
type NormFn = fn(&mut Graph, &mut Params, &str, NodeId, f32) -> NodeId;

fn norm_for(mode: Mode) -> NormFn {
    match mode {
        Mode::Training => batch_norm,
        Mode::Inference => instance_norm,
    }
}

/// One basic residual block: two 3x3 conv+norm layers with an identity
/// (or 1x1-projection) shortcut.
#[allow(clippy::too_many_arguments)]
fn basic_block(
    g: &mut Graph,
    p: &mut Params,
    name: &str,
    x: NodeId,
    channels: usize,
    stride: usize,
    norm: NormFn,
) -> NodeId {
    let in_channels = g.shape(x).dim(3);
    let c1 = conv2d(
        g,
        p,
        &format!("{name}/conv1"),
        x,
        3,
        channels,
        Conv2dSpec { stride, pad: 1 },
        Activation::Linear,
    );
    let b1 = norm(g, p, &format!("{name}/bn1"), c1, 1e-5);
    let a1 = g.relu(b1);
    let c2 = conv2d(
        g,
        p,
        &format!("{name}/conv2"),
        a1,
        3,
        channels,
        Conv2dSpec::same(3),
        Activation::Linear,
    );
    let b2 = norm(g, p, &format!("{name}/bn2"), c2, 1e-5);
    let shortcut = if stride != 1 || in_channels != channels {
        // Projection shortcut: 1x1 convolution matching shape.
        let proj = conv2d(
            g,
            p,
            &format!("{name}/proj"),
            x,
            1,
            channels,
            Conv2dSpec { stride, pad: 0 },
            Activation::Linear,
        );
        norm(g, p, &format!("{name}/proj_bn"), proj, 1e-5)
    } else {
        x
    };
    let sum = g.add_op(b2, shortcut);
    g.relu(sum)
}

/// The `residual` workload (ResNet-34).
pub struct Residual {
    inner: ImageClassifier,
}

impl Residual {
    /// Builds the workload per the configuration.
    pub fn build(cfg: &BuildConfig) -> Self {
        let mut d = dims(cfg.scale);
        d.batch = cfg.batch_or(d.batch);
        let full = cfg.scale == ModelScale::Full;
        let norm = norm_for(cfg.mode);
        let inner = ImageClassifier::new(
            metadata(),
            cfg,
            d.batch,
            d.side,
            d.classes,
            Optimizer::momentum(0.01),
            |g, p, images| {
                // Stem: 7x7/2 + maxpool at full scale, 3x3 at reference
                // (the standard CIFAR-style adaptation for small inputs).
                let mut x = if full {
                    let c = conv2d(
                        g,
                        p,
                        "stem",
                        images,
                        7,
                        d.stage_channels[0],
                        Conv2dSpec { stride: 2, pad: 3 },
                        Activation::Linear,
                    );
                    let b = norm(g, p, "stem_bn", c, 1e-5);
                    let r = g.relu(b);
                    fathom_nn::max_pool(g, r, 3, 2)
                } else {
                    let c = conv2d(
                        g,
                        p,
                        "stem",
                        images,
                        3,
                        d.stage_channels[0],
                        Conv2dSpec::same(3),
                        Activation::Linear,
                    );
                    let b = norm(g, p, "stem_bn", c, 1e-5);
                    g.relu(b)
                };
                for (stage, (&blocks, &channels)) in
                    STAGE_BLOCKS.iter().zip(&d.stage_channels).enumerate()
                {
                    for block in 0..blocks {
                        let stride = if stage > 0 && block == 0 { 2 } else { 1 };
                        x = basic_block(
                            g,
                            p,
                            &format!("stage{}/block{}", stage + 1, block + 1),
                            x,
                            channels,
                            stride,
                            norm,
                        );
                    }
                }
                // Global average pooling.
                let spatial = g.shape(x).dim(1);
                let pooled = avg_pool(g, x, spatial, spatial);
                let flat = flatten(g, pooled);
                dense(g, p, "fc", flat, d.classes, Activation::Linear)
            },
        );
        Residual { inner }
    }
}

impl Workload for Residual {
    fn metadata(&self) -> &WorkloadMetadata {
        self.inner.metadata()
    }

    fn mode(&self) -> Mode {
        self.inner.mode()
    }

    fn try_step(&mut self) -> Result<StepStats, fathom_dataflow::ExecError> {
        self.inner.try_step()
    }

    fn session(&self) -> &Session {
        self.inner.session()
    }

    fn session_mut(&mut self) -> &mut Session {
        self.inner.session_mut()
    }

    fn batch_spec(&self) -> Option<crate::workload::BatchSpec> {
        self.inner.batch_spec()
    }

    fn train_probes(&self) -> Option<crate::workload::TrainProbes> {
        self.inner.train_probes()
    }

    fn export_pipeline(&self) -> Vec<u8> {
        self.inner.export_pipeline()
    }

    fn import_pipeline(&mut self, blob: &[u8]) -> Result<(), String> {
        self.inner.import_pipeline(blob)
    }

    fn skip_batch(&mut self) {
        self.inner.skip_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::OpKind;

    #[test]
    fn weight_layer_count_is_34() {
        // 34 = stem + 32 block convs + final dense; projection shortcuts
        // are extra parameters but not counted as layers (per the paper).
        let m = Residual::build(&BuildConfig::inference());
        let g = m.session().graph();
        let convs = g.iter().filter(|(_, n)| matches!(n.kind, OpKind::Conv2D(_))).count();
        let projections = STAGE_BLOCKS.len() - 1; // stages 2-4 change shape
        assert_eq!(convs - projections, 33, "stem + 32 block convolutions");
        let dense_layers = g
            .iter()
            .filter(|(_, n)| matches!(n.kind, OpKind::MatMul { .. }))
            .count();
        assert_eq!(dense_layers, 1, "single classification layer");
    }

    #[test]
    fn shortcut_addition_present_in_every_block() {
        // Each of the 16 blocks ends in an Add feeding a Relu.
        let m = Residual::build(&BuildConfig::inference());
        let g = m.session().graph();
        let mut shortcut_adds = 0;
        for (id, n) in g.iter() {
            if matches!(n.kind, OpKind::Relu) {
                let input = g.node(n.inputs[0]);
                if matches!(input.kind, OpKind::Add)
                    && g.shape(id).rank() == 4
                    && g.shape(input.inputs[0]) == g.shape(input.inputs[1])
                {
                    shortcut_adds += 1;
                }
            }
        }
        assert!(shortcut_adds >= 16, "found {shortcut_adds} residual additions");
    }

    #[test]
    fn training_step_produces_finite_loss() {
        let mut m = Residual::build(&BuildConfig::training());
        let stats = m.step();
        assert!(stats.loss.unwrap().is_finite());
    }
}
