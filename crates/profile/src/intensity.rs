//! Arithmetic-intensity analysis: where each workload sits on a roofline.
//!
//! The paper's §V discussion of "where the cycles are being spent" has a
//! natural companion question for accelerator designers: is a workload
//! compute-bound or memory-bound? Using the per-op cost estimates carried
//! in every trace event, this module aggregates flops and bytes per op
//! class and computes the intensity (flop/byte) each workload presents to
//! a device.

use fathom_dataflow::trace::RunTrace;
use fathom_dataflow::OpClass;
use serde::Serialize;

/// Flops/bytes aggregates for one op class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ClassWork {
    /// Total estimated floating-point operations.
    pub flops: f64,
    /// Total estimated bytes moved.
    pub bytes: f64,
}

impl ClassWork {
    /// Arithmetic intensity in flops per byte (0 when nothing moved).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            0.0
        } else {
            self.flops / self.bytes
        }
    }
}

/// Work aggregates for one traced workload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IntensityReport {
    /// Workload name.
    pub workload: String,
    /// Per-class work, in A-G order.
    pub per_class: [ClassWork; 7],
    /// Whole-workload totals.
    pub total: ClassWork,
    /// Steps aggregated.
    pub steps: u64,
}

impl IntensityReport {
    /// Aggregates a trace.
    pub fn from_trace(workload: impl Into<String>, trace: &RunTrace) -> Self {
        let mut per_class = [ClassWork::default(); 7];
        let mut total = ClassWork::default();
        for e in &trace.events {
            let idx = OpClass::ALL.iter().position(|c| *c == e.class).expect("class in ALL");
            per_class[idx].flops += e.cost.flops;
            per_class[idx].bytes += e.cost.bytes;
            total.flops += e.cost.flops;
            total.bytes += e.cost.bytes;
        }
        IntensityReport { workload: workload.into(), per_class, total, steps: trace.steps }
    }

    /// Work for one class.
    pub fn class(&self, class: OpClass) -> ClassWork {
        let idx = OpClass::ALL.iter().position(|c| *c == class).expect("class in ALL");
        self.per_class[idx]
    }

    /// Whether the workload is compute-bound on a device with the given
    /// flops-per-byte balance point (its "ridge"): intensities above the
    /// ridge saturate compute, below it saturate memory.
    pub fn compute_bound_on(&self, ridge_flops_per_byte: f64) -> bool {
        self.total.intensity() > ridge_flops_per_byte
    }

    /// Estimated flops per step.
    pub fn flops_per_step(&self) -> f64 {
        self.total.flops / self.steps.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fathom_dataflow::cost::OpCost;
    use fathom_dataflow::trace::TraceEvent;
    use fathom_dataflow::NodeId;

    fn trace() -> RunTrace {
        let mk = |op: &'static str, class: OpClass, flops: f64, bytes: f64| TraceEvent {
            node: NodeId::default(),
            op,
            class,
            step: 0,
            nanos: 1.0,
            cost: OpCost { flops, bytes },
        };
        RunTrace {
            events: vec![
                mk("MatMul", OpClass::MatrixOps, 1000.0, 100.0),
                mk("MatMul", OpClass::MatrixOps, 500.0, 50.0),
                mk("Add", OpClass::ElementwiseArithmetic, 10.0, 40.0),
            ],
            steps: 2,
            ..RunTrace::default()
        }
    }

    #[test]
    fn aggregates_per_class() {
        let r = IntensityReport::from_trace("toy", &trace());
        assert_eq!(r.class(OpClass::MatrixOps).flops, 1500.0);
        assert_eq!(r.class(OpClass::MatrixOps).bytes, 150.0);
        assert_eq!(r.class(OpClass::ElementwiseArithmetic).flops, 10.0);
        assert_eq!(r.total.flops, 1510.0);
        assert_eq!(r.flops_per_step(), 755.0);
    }

    #[test]
    fn intensity_and_roofline_position() {
        let r = IntensityReport::from_trace("toy", &trace());
        // Matrix class: 1500/150 = 10 flops/byte; elementwise: 0.25.
        assert!((r.class(OpClass::MatrixOps).intensity() - 10.0).abs() < 1e-12);
        assert!((r.class(OpClass::ElementwiseArithmetic).intensity() - 0.25).abs() < 1e-12);
        // Total intensity ~7.9: compute-bound on a ridge of 1, memory-bound on 20.
        assert!(r.compute_bound_on(1.0));
        assert!(!r.compute_bound_on(20.0));
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let r = IntensityReport::from_trace("empty", &RunTrace::new());
        assert_eq!(r.total.flops, 0.0);
        assert_eq!(r.total.intensity(), 0.0);
        assert!(!r.compute_bound_on(0.1));
    }
}
