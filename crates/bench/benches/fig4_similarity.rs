//! `cargo bench -p fathom-bench --bench fig4_similarity`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::fig4::run(&effort));
}
