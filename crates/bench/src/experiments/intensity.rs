//! Arithmetic-intensity report: where each workload sits on the roofline
//! of the modeled GTX 960-class device (companion analysis to Figure 5's
//! device comparison).

use std::fmt::Write as _;

use fathom::{BuildConfig, ModelKind};
use fathom_dataflow::GpuModel;
use fathom_profile::{runner, IntensityReport};

use crate::{write_artifact, Effort};

/// Regenerates the intensity report over training traces.
pub fn run(effort: &Effort) -> String {
    let gpu = GpuModel::default();
    let ridge = gpu.peak_flops / gpu.bandwidth; // flops/byte balance point
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ARITHMETIC INTENSITY: estimated flops/byte per workload (training)\n\
         (ridge of the modeled GTX 960-class device: {ridge:.1} flop/byte)\n"
    );
    let _ = writeln!(
        out,
        "{:<9} {:>14} {:>12} {:>11} {:>9} {:>14}",
        "workload", "Gflop/step", "MB/step", "flop/byte", "bound", "A+B intensity"
    );
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        let mut model = kind.build(&BuildConfig::training());
        for _ in 0..effort.warmup {
            model.step();
        }
        let trace = runner::trace_steps(model.as_mut(), effort.steps.max(1));
        let report = IntensityReport::from_trace(kind.name(), &trace);
        let dense = {
            let a = report.class(fathom_dataflow::OpClass::MatrixOps);
            let b = report.class(fathom_dataflow::OpClass::Convolution);
            let flops = a.flops + b.flops;
            let bytes = a.bytes + b.bytes;
            if bytes == 0.0 { 0.0 } else { flops / bytes }
        };
        let _ = writeln!(
            out,
            "{:<9} {:>14.4} {:>12.2} {:>11.2} {:>9} {:>14.2}",
            kind.name(),
            report.flops_per_step() / 1e9,
            report.total.bytes / report.steps.max(1) as f64 / 1e6,
            report.total.intensity(),
            if report.compute_bound_on(ridge) { "compute" } else { "memory" },
            dense
        );
        rows.push((
            kind.name().to_string(),
            vec![report.flops_per_step(), report.total.bytes, report.total.intensity(), dense],
        ));
    }
    let _ = writeln!(
        out,
        "\nExpected shape: the conv nets present by far the highest intensity\n\
         (their dense kernels reuse each byte many times); memnet and seq2seq\n\
         sit lowest -- the roofline view of Figure 5's GPU speedup ordering."
    );
    write_artifact(
        "intensity_report.csv",
        &fathom_profile::report::to_csv(
            &["workload", "flops_per_step", "bytes", "intensity", "dense_intensity"],
            &rows,
        ),
    );
    write_artifact("intensity_report.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_nets_have_higher_intensity_than_memnet() {
        let grab = |kind: ModelKind| {
            let mut m = kind.build(&BuildConfig::training());
            let t = runner::trace_steps(m.as_mut(), 1);
            IntensityReport::from_trace(kind.name(), &t).total.intensity()
        };
        let vgg = grab(ModelKind::Vgg);
        let memnet = grab(ModelKind::Memnet);
        assert!(vgg > 3.0 * memnet, "vgg {vgg} vs memnet {memnet}");
    }
}
