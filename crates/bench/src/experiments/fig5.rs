//! Figure 5 — training vs inference on CPU and (simulated) GPU.
//!
//! All times are normalized to each workload's CPU training time ("the
//! lowest performance configuration"). The paper's shapes to reproduce:
//! training > inference everywhere; conv nets pay a relatively higher
//! training cost (two backward reductions per conv); GPU speedups are
//! largest for workloads with high op-profile skew; CPU and GPU
//! train/infer ratios correlate.

use std::fmt::Write as _;
use std::time::Instant;

use fathom::{BuildConfig, Mode, ModelKind};
use fathom_dataflow::Device;
use fathom_profile::runner;

use crate::{write_artifact, Effort};

/// Seconds per step for one configuration. Wall time on the CPU; modeled
/// op time on the simulated GPU.
fn step_seconds(kind: ModelKind, mode: Mode, device: Device, effort: &Effort) -> f64 {
    let cfg = BuildConfig { mode, ..BuildConfig::training() }.with_device(device.clone());
    let mut model = kind.build(&cfg);
    for _ in 0..effort.warmup {
        model.step();
    }
    if device.is_modeled() {
        let trace = runner::trace_steps(model.as_mut(), effort.steps);
        trace.op_nanos() / trace.steps.max(1) as f64 / 1e9
    } else {
        let start = Instant::now();
        for _ in 0..effort.steps {
            model.step();
        }
        start.elapsed().as_secs_f64() / effort.steps.max(1) as f64
    }
}

/// One workload's four measurements.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: &'static str,
    /// CPU training seconds/step (the normalization basis).
    pub train_cpu: f64,
    /// CPU inference seconds/step.
    pub infer_cpu: f64,
    /// Simulated-GPU training seconds/step.
    pub train_gpu: f64,
    /// Simulated-GPU inference seconds/step.
    pub infer_gpu: f64,
}

/// Measures all four configurations for every workload. The CPU device
/// uses 4 intra-op threads (the paper's quad-core i7-6700k).
pub fn measure(effort: &Effort) -> Vec<Fig5Row> {
    ModelKind::ALL
        .iter()
        .map(|&kind| Fig5Row {
            workload: kind.name(),
            train_cpu: step_seconds(kind, Mode::Training, Device::cpu_or_model(4), effort),
            infer_cpu: step_seconds(kind, Mode::Inference, Device::cpu_or_model(4), effort),
            train_gpu: step_seconds(kind, Mode::Training, Device::sim_gpu(), effort),
            infer_gpu: step_seconds(kind, Mode::Inference, Device::sim_gpu(), effort),
        })
        .collect()
}

/// Regenerates Figure 5.
pub fn run(effort: &Effort) -> String {
    let rows = measure(effort);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 5: Training and inference runtime, normalized to CPU training\n\
         (CPU = 4-thread host; GPU = roofline-modeled GTX 960-class device)\n"
    );
    let _ = writeln!(
        out,
        "{:<9} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "workload", "train CPU", "infer CPU", "train GPU", "infer GPU", "(abs tr. s/step)"
    );
    let mut csv_rows = Vec::new();
    for r in &rows {
        let base = r.train_cpu.max(f64::MIN_POSITIVE);
        let _ = writeln!(
            out,
            "{:<9} {:>12.3} {:>12.3} {:>12.4} {:>12.4} {:>14.4}",
            r.workload,
            1.0,
            r.infer_cpu / base,
            r.train_gpu / base,
            r.infer_gpu / base,
            r.train_cpu
        );
        csv_rows.push((
            r.workload.to_string(),
            vec![1.0, r.infer_cpu / base, r.train_gpu / base, r.infer_gpu / base, r.train_cpu],
        ));
    }

    // The paper's shape checks.
    let all_train_slower = rows.iter().all(|r| r.train_cpu > r.infer_cpu && r.train_gpu > r.infer_gpu);
    let gpu_faster = rows.iter().filter(|r| r.train_gpu < r.train_cpu).count();
    // Ratio correlation: compare CPU and GPU train/infer gaps.
    let ratios: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.train_cpu / r.infer_cpu.max(1e-12), r.train_gpu / r.infer_gpu.max(1e-12)))
        .collect();
    let corr = pearson(
        &ratios.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
        &ratios.iter().map(|(_, b)| *b).collect::<Vec<_>>(),
    );
    // deepq's step mixes graph compute with host-side game emulation and
    // replay sampling, which skews its CPU ratio; report both.
    let no_dq: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.workload != "deepq")
        .map(|r| (r.train_cpu / r.infer_cpu.max(1e-12), r.train_gpu / r.infer_gpu.max(1e-12)))
        .collect();
    let corr_no_dq = pearson(
        &no_dq.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
        &no_dq.iter().map(|(_, b)| *b).collect::<Vec<_>>(),
    );
    let _ = writeln!(
        out,
        "\nPaper's claims to reproduce:\n\
         - training costs more than inference everywhere: {all_train_slower}\n\
         - GPU beats CPU on {gpu_faster}/8 workloads\n\
         - CPU and GPU train/infer ratios correlate: r = {corr:.2} \
         (excluding deepq: r = {corr_no_dq:.2})"
    );

    write_artifact(
        "fig5_train_inference.csv",
        &fathom_profile::report::to_csv(
            &["workload", "train_cpu", "infer_cpu", "train_gpu", "infer_gpu", "train_cpu_seconds"],
            &csv_rows,
        ),
    );
    write_artifact("fig5_train_inference.txt", &out);
    out
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let vy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-9);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn single_workload_measurement_sane() {
        // Full fig5 is exercised by `cargo bench`; here just one cheap
        // workload end-to-end.
        let e = Effort::quick();
        let train = step_seconds(ModelKind::Autoenc, Mode::Training, Device::cpu(1), &e);
        let infer = step_seconds(ModelKind::Autoenc, Mode::Inference, Device::cpu(1), &e);
        assert!(train > 0.0 && infer > 0.0);
        let gpu = step_seconds(ModelKind::Autoenc, Mode::Training, Device::sim_gpu(), &e);
        assert!(gpu > 0.0);
    }
}
