//! Property-based tests for the analysis pipeline: metric axioms for
//! cosine distance, structural invariants of the clustering, and
//! conservation laws of profiles and skew curves.

use fathom_dataflow::cost::OpCost;
use fathom_dataflow::trace::{RunTrace, TraceEvent};
use fathom_dataflow::{NodeId, OpClass};
use fathom_profile::{cluster, cosine_distance, OpProfile, SkewCurve};
use proptest::prelude::*;

const OPS: [&str; 6] = ["MatMul", "Conv2D", "Add", "Tile", "Softmax", "Sum"];

/// A random profile over the fixed op menu.
fn profile_strategy(name: &'static str) -> impl Strategy<Value = OpProfile> {
    proptest::collection::vec(0.0f64..100.0, OPS.len()).prop_map(move |times| {
        let events = OPS
            .iter()
            .zip(&times)
            .filter(|(_, &t)| t > 0.0)
            .map(|(&op, &nanos)| TraceEvent {
                node: NodeId::default(),
                op,
                class: OpClass::MatrixOps,
                step: 0,
                nanos,
                cost: OpCost::default(),
            })
            .collect();
        OpProfile::from_trace(name, &RunTrace { events, steps: 1, ..RunTrace::default() })
    })
}

fn nonneg_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cosine distance is bounded, symmetric, and zero on identical
    /// non-zero vectors.
    #[test]
    fn cosine_distance_axioms(a in nonneg_vec()) {
        let b: Vec<f64> = a.iter().rev().copied().collect();
        let d_ab = cosine_distance(&a, &b);
        let d_ba = cosine_distance(&b, &a);
        prop_assert!((0.0..=2.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        if a.iter().any(|&v| v > 0.0) {
            prop_assert!(cosine_distance(&a, &a) < 1e-9);
        }
    }

    /// Cosine distance is scale-invariant.
    #[test]
    fn cosine_distance_scale_invariant(a in nonneg_vec(), k in 0.1f64..50.0) {
        let b: Vec<f64> = a.iter().rev().copied().collect();
        let scaled: Vec<f64> = a.iter().map(|v| v * k).collect();
        let d1 = cosine_distance(&a, &b);
        let d2 = cosine_distance(&scaled, &b);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    /// Class fractions always sum to 1 for a non-empty profile.
    #[test]
    fn class_fractions_sum_to_one(p in profile_strategy("w")) {
        prop_assume!(p.total_nanos() > 0.0);
        let total: f64 = p.class_fractions().iter().map(|(_, f)| f).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Skew curves are monotone non-decreasing and end at 1.
    #[test]
    fn skew_curves_are_monotone(p in profile_strategy("w")) {
        prop_assume!(p.total_nanos() > 0.0);
        let c = SkewCurve::from_profile(&p);
        for w in c.cumulative.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        prop_assert!((c.cumulative.last().unwrap() - 1.0).abs() < 1e-9);
        // ops_for_fraction is consistent with the curve.
        if let Some(k) = c.ops_for_fraction(0.5) {
            prop_assert!(c.cumulative[k - 1] >= 0.5);
            if k >= 2 {
                prop_assert!(c.cumulative[k - 2] < 0.5);
            }
        }
    }

    /// Clustering keeps every input as a leaf, exactly once, and merge
    /// distances are bounded.
    #[test]
    fn dendrogram_structure(
        a in profile_strategy("w_a"),
        b in profile_strategy("w_b"),
        c in profile_strategy("w_c"),
    ) {
        prop_assume!(a.total_nanos() > 0.0 && b.total_nanos() > 0.0 && c.total_nanos() > 0.0);
        let d = cluster(&[a, b, c]);
        let mut leaves = d.root.leaves();
        leaves.sort_unstable();
        prop_assert_eq!(leaves, vec!["w_a", "w_b", "w_c"]);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((0.0..=2.0).contains(&d.distances[i][j]));
                prop_assert!((d.distances[i][j] - d.distances[j][i]).abs() < 1e-12);
            }
            prop_assert!(d.distances[i][i] < 1e-9);
        }
    }

    /// The profile's ranked list is a permutation of its entries with
    /// non-increasing times.
    #[test]
    fn ranking_is_sorted(p in profile_strategy("w")) {
        let ranked = p.ranked();
        for w in ranked.windows(2) {
            prop_assert!(w[0].nanos >= w[1].nanos);
        }
    }
}
