//! A small deterministic random number generator.
//!
//! Random-sampling operations (`StandardRandomNormal`, dropout masks, the
//! variational autoencoder's reparameterization trick) must be reproducible
//! across runs so that workload profiles are stable. This module provides a
//! seeded xoshiro256**-based generator that is fast enough to be treated as
//! a tensor kernel.

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use fathom_tensor::Rng;
///
/// let mut a = Rng::seeded(42);
/// let mut b = Rng::seeded(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seeded(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, per the
        // xoshiro authors' recommendation; avoids the all-zero state.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng { state: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Use the top 24 bits for a uniform float with full mantissa.
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }

    /// Standard normal `f32` via Box-Muller.
    pub fn normal(&mut self) -> f32 {
        // Avoid ln(0) by flooring the uniform draw.
        let u1 = self.uniform().max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below called with bound 0");
        (self.next_u64() % bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Derives an independent generator, advancing this one.
    pub fn fork(&mut self) -> Rng {
        Rng::seeded(self.next_u64())
    }

    /// The raw xoshiro256** state, for checkpointing a stream mid-run.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from a captured [`Rng::state`]; the restored
    /// stream continues exactly where the captured one left off.
    pub fn from_state(state: [u64; 4]) -> Rng {
        Rng { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::seeded(9);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng::seeded(11);
        let n = 100_000;
        let mean: f32 = (0..n).map(|_| rng.uniform()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seeded(13);
        let n = 100_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = Rng::seeded(17);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound 0")]
    fn below_zero_panics() {
        Rng::seeded(0).below(0);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = Rng::seeded(23);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seeded(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
