//! `cargo bench -p fathom-bench --bench ablation_fusion`
fn main() {
    let effort = fathom_bench::Effort::from_env();
    print!("{}", fathom_bench::experiments::fusion::run(&effort));
}
