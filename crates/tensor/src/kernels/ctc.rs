//! Connectionist temporal classification (CTC) loss.
//!
//! Deep Speech's "CTC loss function can learn from unsegmented data"
//! (Graves et al., ICML 2006); the paper's Figure 3 shows CTC as the only
//! significant non-matmul computation in the `speech` workload. This is a
//! full log-space forward-backward implementation with analytic gradients.

use crate::pool::ExecPool;
use crate::tensor::Tensor;

/// Log of the sum of exponentials of two log-domain values.
fn log_add(a: f32, b: f32) -> f32 {
    if a == f32::NEG_INFINITY {
        return b;
    }
    if b == f32::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Builds the blank-interleaved extended label sequence
/// `[blank, l1, blank, l2, ..., blank]`.
fn extend_labels(labels: &[usize], blank: usize) -> Vec<usize> {
    let mut ext = Vec::with_capacity(labels.len() * 2 + 1);
    ext.push(blank);
    for &l in labels {
        ext.push(l);
        ext.push(blank);
    }
    ext
}

/// CTC negative log-likelihood and its gradient for a batch.
///
/// `logits` is `[time, batch, classes]` (pre-softmax). `labels[b]` is the
/// target sequence for batch item `b` (values in `0..classes`, excluding
/// `blank`). Returns `(mean_loss, dlogits)` where `dlogits` is the gradient
/// of the *mean* loss with respect to the logits.
///
/// Batch items whose label is longer than representable in `time` frames
/// contribute an infinite loss and a zero gradient (matching TensorFlow's
/// behavior of rejecting such items).
///
/// # Panics
///
/// Panics if shapes are inconsistent, `blank >= classes`, or a label value
/// is out of range.
pub fn ctc_loss(
    logits: &Tensor,
    labels: &[Vec<usize>],
    blank: usize,
    pool: &ExecPool,
) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 3, "ctc logits must be [time, batch, classes]");
    let t_max = logits.shape().dim(0);
    let batch = logits.shape().dim(1);
    let classes = logits.shape().dim(2);
    assert_eq!(labels.len(), batch, "ctc label batch mismatch");
    assert!(blank < classes, "blank {blank} out of range for {classes} classes");
    for seq in labels {
        for &l in seq {
            assert!(l < classes && l != blank, "ctc label {l} invalid (classes {classes}, blank {blank})");
        }
    }

    let mut grad = Tensor::zeros(logits.shape().clone());
    if t_max == 0 || batch == 0 {
        return (0.0, grad);
    }
    let src = logits.data();

    // One batch item per worker: the gradient layout is [T, B, C], so the
    // per-item columns are strided. We accumulate per-item gradients into
    // scratch and write them out under a lock-free disjoint pattern by
    // returning them from map_reduce.
    let results: Vec<(f32, Vec<f32>)> = pool
        .map_reduce(
            batch,
            t_max * classes * 8,
            Vec::new(),
            |range| {
                let mut out = Vec::new();
                for b in range {
                    out.push(ctc_single(src, t_max, batch, classes, b, &labels[b], blank));
                }
                out
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
        .into_iter()
        .collect();

    let mut total = 0.0;
    let mut valid = 0usize;
    let g = grad.data_mut();
    for (b, (loss, item_grad)) in results.into_iter().enumerate() {
        if loss.is_finite() {
            total += loss;
            valid += 1;
            for t in 0..t_max {
                for c in 0..classes {
                    g[(t * batch + b) * classes + c] = item_grad[t * classes + c];
                }
            }
        }
    }
    let denom = valid.max(1) as f32;
    for v in g.iter_mut() {
        *v /= denom;
    }
    (if valid == 0 { f32::INFINITY } else { total / denom }, grad)
}

/// Loss and gradient (w.r.t. logits, unnormalized) for one batch item.
/// The returned gradient is `[t_max * classes]` in row-major `[t, c]`.
fn ctc_single(
    src: &[f32],
    t_max: usize,
    batch: usize,
    classes: usize,
    b: usize,
    labels: &[usize],
    blank: usize,
) -> (f32, Vec<f32>) {
    let ext = extend_labels(labels, blank);
    let s = ext.len();
    // Minimum frames: every label plus a mandatory blank between repeats.
    let mut min_frames = labels.len();
    for w in labels.windows(2) {
        if w[0] == w[1] {
            min_frames += 1;
        }
    }
    if t_max < min_frames {
        return (f32::INFINITY, vec![0.0; t_max * classes]);
    }

    // Per-frame log-softmax for this batch item.
    let mut logp = vec![0.0f32; t_max * classes];
    for t in 0..t_max {
        let row = &src[(t * batch + b) * classes..(t * batch + b) * classes + classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let logsum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        for c in 0..classes {
            logp[t * classes + c] = row[c] - max - logsum;
        }
    }

    let ninf = f32::NEG_INFINITY;
    // Forward (alpha) and backward (beta) passes in log space.
    let mut alpha = vec![ninf; t_max * s];
    alpha[0] = logp[ext[0]];
    if s > 1 {
        alpha[1] = logp[ext[1]];
    }
    for t in 1..t_max {
        for i in 0..s {
            let mut acc = alpha[(t - 1) * s + i];
            if i >= 1 {
                acc = log_add(acc, alpha[(t - 1) * s + i - 1]);
            }
            // Skip connection allowed when the symbol differs from the one
            // two positions back (i.e. not a blank and not a repeat).
            if i >= 2 && ext[i] != blank && ext[i] != ext[i - 2] {
                acc = log_add(acc, alpha[(t - 1) * s + i - 2]);
            }
            alpha[t * s + i] = acc + logp[t * classes + ext[i]];
        }
    }
    let mut beta = vec![ninf; t_max * s];
    beta[(t_max - 1) * s + s - 1] = 0.0;
    if s > 1 {
        beta[(t_max - 1) * s + s - 2] = 0.0;
    }
    for t in (0..t_max - 1).rev() {
        for i in 0..s {
            let mut acc = beta[(t + 1) * s + i] + logp[(t + 1) * classes + ext[i]];
            if i + 1 < s {
                acc = log_add(acc, beta[(t + 1) * s + i + 1] + logp[(t + 1) * classes + ext[i + 1]]);
            }
            if i + 2 < s && ext[i + 2] != blank && ext[i + 2] != ext[i] {
                acc = log_add(acc, beta[(t + 1) * s + i + 2] + logp[(t + 1) * classes + ext[i + 2]]);
            }
            beta[t * s + i] = acc;
        }
    }

    let mut log_lik = ninf;
    log_lik = log_add(log_lik, alpha[(t_max - 1) * s + s - 1]);
    if s > 1 {
        log_lik = log_add(log_lik, alpha[(t_max - 1) * s + s - 2]);
    }
    if log_lik == ninf {
        return (f32::INFINITY, vec![0.0; t_max * classes]);
    }

    // Gradient w.r.t. logits: p(c|t) - sum over matching extended positions
    // of the posterior gamma.
    let mut grad = vec![0.0f32; t_max * classes];
    for t in 0..t_max {
        // gamma mass per class at this frame
        let mut class_mass = vec![ninf; classes];
        for i in 0..s {
            let g = alpha[t * s + i] + beta[t * s + i];
            class_mass[ext[i]] = log_add(class_mass[ext[i]], g);
        }
        for c in 0..classes {
            let p = logp[t * classes + c].exp();
            let posterior = if class_mass[c] == ninf {
                0.0
            } else {
                (class_mass[c] - log_lik).exp()
            };
            grad[t * classes + c] = p - posterior;
        }
    }
    (-log_lik, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn pool() -> ExecPool {
        ExecPool::serial()
    }

    /// Brute-force CTC likelihood: enumerate every alignment path and sum
    /// the probabilities of those that collapse to the label.
    fn ctc_brute_force(logits: &Tensor, labels: &[usize], blank: usize) -> f32 {
        let t_max = logits.shape().dim(0);
        let classes = logits.shape().dim(2);
        // log-softmax per frame (batch item 0)
        let mut logp = vec![0.0f32; t_max * classes];
        for t in 0..t_max {
            let row: Vec<f32> = (0..classes).map(|c| logits.at(&[t, 0, c])).collect();
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let logsum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            for c in 0..classes {
                logp[t * classes + c] = row[c] - max - logsum;
            }
        }
        fn collapse(path: &[usize], blank: usize) -> Vec<usize> {
            let mut out = Vec::new();
            let mut prev = usize::MAX;
            for &p in path {
                if p != prev && p != blank {
                    out.push(p);
                }
                prev = p;
            }
            out
        }
        let mut total = f32::NEG_INFINITY;
        let paths = (classes as u64).pow(t_max as u32);
        for code in 0..paths {
            let mut c = code;
            let mut path = Vec::with_capacity(t_max);
            let mut lp = 0.0;
            for t in 0..t_max {
                let sym = (c % classes as u64) as usize;
                c /= classes as u64;
                path.push(sym);
                lp += logp[t * classes + sym];
            }
            if collapse(&path, blank) == labels {
                total = log_add(total, lp);
            }
        }
        -total
    }

    #[test]
    fn matches_brute_force_enumeration() {
        let mut rng = Rng::seeded(1);
        // 4 frames, 3 classes (blank=0), label "1 2"
        let logits = Tensor::randn([4, 1, 3], 0.0, 1.0, &mut rng);
        let labels = vec![vec![1usize, 2]];
        let (loss, _) = ctc_loss(&logits, &labels, 0, &pool());
        let brute = ctc_brute_force(&logits, &[1, 2], 0);
        assert!((loss - brute).abs() < 1e-4, "fb {loss} vs brute {brute}");
    }

    #[test]
    fn repeated_labels_need_separating_blank() {
        let mut rng = Rng::seeded(2);
        let logits = Tensor::randn([5, 1, 3], 0.0, 1.0, &mut rng);
        let (loss, _) = ctc_loss(&logits, &[vec![1, 1]], 0, &pool());
        let brute = ctc_brute_force(&logits, &[1, 1], 0);
        assert!((loss - brute).abs() < 1e-4, "fb {loss} vs brute {brute}");
    }

    #[test]
    fn impossible_label_is_infinite() {
        // 2 frames cannot emit 3 labels.
        let logits = Tensor::zeros([2, 1, 4]);
        let (loss, grad) = ctc_loss(&logits, &[vec![1, 2, 3]], 0, &pool());
        assert!(loss.is_infinite());
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Rng::seeded(3);
        let logits = Tensor::randn([5, 2, 4], 0.0, 1.0, &mut rng);
        let labels = vec![vec![1usize, 2], vec![3usize]];
        let (_, grad) = ctc_loss(&logits, &labels, 0, &pool());
        let eps = 1e-2;
        for idx in [0usize, 3, 11, 17, 26, 39] {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (fp, _) = ctc_loss(&lp, &labels, 0, &pool());
            let (fm, _) = ctc_loss(&lm, &labels, 0, &pool());
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grad.data()[idx]).abs() < 5e-3,
                "grad[{idx}]: numeric {num} vs analytic {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn perfect_logits_give_small_loss() {
        // Logits strongly favoring the path "1 blank 2 blank" for label [1,2].
        let mut logits = Tensor::filled([4, 1, 3], -10.0);
        logits.set(&[0, 0, 1], 10.0);
        logits.set(&[1, 0, 0], 10.0);
        logits.set(&[2, 0, 2], 10.0);
        logits.set(&[3, 0, 0], 10.0);
        let (loss, _) = ctc_loss(&logits, &[vec![1, 2]], 0, &pool());
        assert!(loss < 0.01, "loss {loss}");
    }

    #[test]
    fn batch_means_losses() {
        let mut rng = Rng::seeded(4);
        let l0 = Tensor::randn([4, 1, 3], 0.0, 1.0, &mut rng);
        let l1 = Tensor::randn([4, 1, 3], 0.0, 1.0, &mut rng);
        // Interleave into a batch of 2: [T, 2, C]
        let mut both = Tensor::zeros([4, 2, 3]);
        for t in 0..4 {
            for c in 0..3 {
                both.set(&[t, 0, c], l0.at(&[t, 0, c]));
                both.set(&[t, 1, c], l1.at(&[t, 0, c]));
            }
        }
        let (a, _) = ctc_loss(&l0, &[vec![1]], 0, &pool());
        let (b, _) = ctc_loss(&l1, &[vec![2]], 0, &pool());
        let (mean, _) = ctc_loss(&both, &[vec![1], vec![2]], 0, &pool());
        assert!((mean - (a + b) / 2.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn label_equal_to_blank_panics() {
        ctc_loss(&Tensor::zeros([2, 1, 3]), &[vec![0]], 0, &pool());
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = Rng::seeded(5);
        let logits = Tensor::randn([6, 4, 5], 0.0, 1.0, &mut rng);
        let labels = vec![vec![1, 2], vec![3], vec![4, 1, 2], vec![2, 2]];
        let (ls, gs) = ctc_loss(&logits, &labels, 0, &ExecPool::serial());
        let (lp, gp) = ctc_loss(&logits, &labels, 0, &ExecPool::new(4).with_grain(1));
        assert!((ls - lp).abs() < 1e-6);
        assert!(gs.max_abs_diff(&gp) < 1e-6);
    }

    #[test]
    fn empty_label_prefers_all_blanks() {
        // With an empty label the only valid paths are all-blank.
        let mut logits = Tensor::filled([3, 1, 2], 0.0);
        logits.set(&[0, 0, 0], 5.0);
        logits.set(&[1, 0, 0], 5.0);
        logits.set(&[2, 0, 0], 5.0);
        let (loss, _) = ctc_loss(&logits, &[vec![]], 0, &pool());
        assert!(loss < 0.05, "loss {loss}");
    }
}
