//! Integration: the op-type profiles of the workloads show the structure
//! the paper's Figure 3 reports.

use fathom_suite::fathom::{BuildConfig, ModelKind};
use fathom_suite::fathom_dataflow::OpClass;
use fathom_suite::fathom_profile::{runner, OpProfile, SkewCurve};

fn training_profile(kind: ModelKind) -> OpProfile {
    runner::profile_workload(kind, &BuildConfig::training(), 0, 1)
}

fn class_share(p: &OpProfile, class: OpClass) -> f64 {
    p.class_fractions()
        .iter()
        .find(|(c, _)| *c == class)
        .map(|(_, f)| *f)
        .expect("class always present")
}

#[test]
fn conv_nets_are_convolution_dominated() {
    for kind in [ModelKind::Alexnet, ModelKind::Vgg, ModelKind::Residual, ModelKind::Deepq] {
        let p = training_profile(kind);
        let conv = class_share(&p, OpClass::Convolution);
        assert!(conv > 0.5, "{kind}: convolution share {conv:.2} too low");
    }
}

#[test]
fn fully_connected_nets_are_matmul_dominated() {
    for kind in [ModelKind::Speech, ModelKind::Autoenc] {
        let p = training_profile(kind);
        let matrix = class_share(&p, OpClass::MatrixOps);
        assert!(matrix > 0.4, "{kind}: matrix share {matrix:.2} too low");
    }
}

#[test]
fn memnet_lives_in_reduction_and_movement() {
    let p = training_profile(ModelKind::Memnet);
    let skinny = class_share(&p, OpClass::ReductionExpansion) + class_share(&p, OpClass::DataMovement);
    let conv = class_share(&p, OpClass::Convolution);
    assert!(skinny > 0.4, "memnet skinny-op share {skinny:.2} too low");
    assert_eq!(conv, 0.0, "memnet has no convolutions");
}

#[test]
fn seq2seq_mixes_matrix_elementwise_and_movement() {
    let p = training_profile(ModelKind::Seq2Seq);
    let matrix = class_share(&p, OpClass::MatrixOps);
    let element = class_share(&p, OpClass::ElementwiseArithmetic);
    let movement = class_share(&p, OpClass::DataMovement);
    assert!(matrix > 0.15, "matrix {matrix:.2}");
    assert!(element > 0.15, "elementwise {element:.2}");
    // Movement ops are memcpys whose cost barely changes between debug
    // and release builds, while compute slows ~30x in debug — so the
    // movement *share* swings widely with the build profile. Release
    // measures ~0.15-0.20; keep the bound loose enough for debug runs.
    assert!(movement > 0.02, "movement {movement:.2}");
}

#[test]
fn a_handful_of_ops_dominate_everywhere() {
    // Figure 2's claim: <= 15 op types cover 90% of the time.
    for kind in ModelKind::ALL {
        let p = training_profile(kind);
        let curve = SkewCurve::from_profile(&p);
        let heavy = curve.ops_for_fraction(0.9).unwrap_or(curve.num_ops());
        assert!(heavy <= 15, "{kind}: {heavy} op types needed for 90%");
    }
}

#[test]
fn training_profiles_contain_backward_and_optimizer_ops() {
    let p = training_profile(ModelKind::Alexnet);
    assert!(p.entry("Conv2DBackpropFilter").is_some());
    assert!(p.entry("Conv2DBackpropInput").is_some());
    assert!(p.entry("ApplyMomentum").is_some());
    // Inference must not contain them.
    let q = runner::profile_workload(ModelKind::Alexnet, &BuildConfig::inference(), 0, 1);
    assert!(q.entry("Conv2DBackpropFilter").is_none());
    assert!(q.entry("ApplyMomentum").is_none());
}

#[test]
fn vae_samples_during_inference() {
    // "They require stochastic sampling as part of inference" (§IV).
    let p = runner::profile_workload(ModelKind::Autoenc, &BuildConfig::inference(), 0, 1);
    assert!(p.entry("StandardRandomNormal").is_some());
}

#[test]
fn speech_contains_ctc_ops() {
    let p = training_profile(ModelKind::Speech);
    assert!(p.entry("CTCLoss").is_some());
    assert!(p.entry("CTCLossGrad").is_some());
}
