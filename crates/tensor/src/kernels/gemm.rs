//! Packed, register-tiled GEMM engine (op class A in the paper's taxonomy).
//!
//! This is the BLIS-style counterpart to the row-parallel kernel in
//! [`crate::kernels::matmul`]: both operands are first *packed* into
//! contiguous panels, then an MR×NR register-tiled microkernel walks the
//! panels with unit stride. Packing pays one pass over each operand and
//! buys three things:
//!
//! 1. Every microkernel read is sequential, so the `transpose_a` path —
//!    a strided column walk in the row kernel — costs the same as the
//!    plain layout.
//! 2. The accumulator tile is a local `[[f32; NR]; MR]` array with
//!    independent lanes, which the compiler can keep in vector registers
//!    and auto-vectorize *without* reassociating any floating-point sum.
//! 3. Work splits over a 2D grid of MC×NC output tiles rather than rows
//!    of C, so small-m matrices (one row per request in serving,
//!    per-step seq2seq/memnet matrices) still fan out across workers.
//!
//! # Determinism
//!
//! Parallel output is bitwise identical to serial. Each C element is
//! owned by exactly one output tile (tiles partition the M×N plane), and
//! its value is produced by a fixed-order sum: K blocks are walked in
//! ascending order, each block's partial sum accumulates sequentially
//! over `kk` into a fresh microkernel accumulator, and the block results
//! are added into a tile-resident accumulator left to right before the
//! tile is stored once. None of that order depends on worker count, tile
//! ownership, or whether the element sits in a full or edge tile — edge
//! tiles compute the same lanes against zero padding.
//!
//! # Epilogue fusion
//!
//! [`gemm_into_fused`] threads an [`Epilogue`] program into the
//! writeback: because the tile accumulator holds each element's final
//! K-reduced value before any store, bias adds / activations / residual
//! adds apply to registers and C is written exactly once, already
//! post-processed. The epilogue runs per element after the fixed-order
//! reduction completes, so it changes no sum order and the bitwise
//! contract above carries over unchanged (see
//! [`crate::kernels::epilogue`] for the formula-level contract).
//!
//! Packing buffers come from the thread's installed [`crate::BufferPool`]
//! (see [`crate::recycle::take_buffer`]), so steady-state training does
//! no kernel-scratch allocation.

use crate::kernels::epilogue::Epilogue;
use crate::pool::ExecPool;
use crate::recycle;
use crate::tensor::Tensor;

/// Microkernel tile rows: one accumulator row per packed-A lane.
pub const MR: usize = 8;
/// Microkernel tile columns: one SIMD-friendly strip of packed B.
pub const NR: usize = 16;
/// K-dimension block: a KC-deep slice of packed A and B panels stays
/// resident in L1/L2 while a tile's partial products accumulate.
const KC: usize = 512;
/// Rows of C per parallel task (must be a multiple of `MR`).
const MC: usize = 64;
/// Columns of C per parallel task (must be a multiple of `NR`).
const NC: usize = 64;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");

/// Raw output pointer shared across tile tasks. Safe because the tile
/// grid partitions C: no two tasks touch the same element.
struct SharedOut(*mut f32);
unsafe impl Sync for SharedOut {}

impl SharedOut {
    /// Accessor rather than field reads inside closures: 2021-edition
    /// closures capture individual fields, and a captured bare `*mut`
    /// would lose the wrapper's `Sync`.
    fn ptr(&self) -> *mut f32 {
        self.0
    }
}

/// Whether `matmul` should route a `[m,k]x[k,n]` product through the
/// packed engine rather than the row-parallel kernel.
///
/// Deliberately independent of `m`: serving's batch-independence
/// contract compares batch-1 against batch-B outputs bitwise, and `m` is
/// the batch-scaled dimension. Keying the choice on `m` would make the
/// two runs take different kernels. Small `k*n` products do not amortize
/// the packing pass, and `n < NR` leaves most microkernel lanes padding.
pub fn use_packed(k: usize, n: usize) -> bool {
    k >= 32 && n >= NR && k.saturating_mul(n) >= 8192
}

/// `C = op(A) * op(B)` through the packed engine. Same contract as
/// [`crate::kernels::matmul::matmul`].
///
/// # Panics
///
/// Panics if either input is not rank 2 or the contraction dimensions
/// disagree.
pub fn matmul_packed(
    a: &Tensor,
    b: &Tensor,
    transpose_a: bool,
    transpose_b: bool,
    pool: &ExecPool,
) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, ka) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (kb, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    assert_eq!(
        ka, kb,
        "matmul contraction mismatch: op(a) is [{m}, {ka}], op(b) is [{kb}, {n}]"
    );
    let mut c = recycle::take_buffer(m * n);
    gemm_into(&mut c, m, n, ka, a.data(), transpose_a, b.data(), transpose_b, pool);
    Tensor::from_vec(c, [m, n])
}

/// `op(A) * op(B)` through the packed engine when the geometry warrants
/// it (see [`use_packed`]), with `epilogue` applied before each tile is
/// stored; falls back to the row-parallel kernel plus a flat epilogue
/// pass otherwise. Either route is bitwise identical to the matching
/// unfused matmul followed by the unfused elementwise chain.
///
/// # Panics
///
/// Panics on non-rank-2 inputs, contraction mismatch, an invalid
/// epilogue, or mis-sized operands.
pub fn matmul_fused(
    a: &Tensor,
    b: &Tensor,
    transpose_a: bool,
    transpose_b: bool,
    epilogue: &Epilogue,
    operands: &[&Tensor],
    pool: &ExecPool,
) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, ka) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (kb, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    assert_eq!(
        ka, kb,
        "matmul contraction mismatch: op(a) is [{m}, {ka}], op(b) is [{kb}, {n}]"
    );
    let ops: Vec<&[f32]> = operands.iter().map(|t| t.data()).collect();
    if use_packed(ka, n) {
        let mut c = recycle::take_buffer(m * n);
        gemm_into_fused(
            &mut c,
            m,
            n,
            ka,
            a.data(),
            transpose_a,
            b.data(),
            transpose_b,
            Some(epilogue),
            &ops,
            pool,
        );
        Tensor::from_vec(c, [m, n])
    } else {
        let mut c = crate::kernels::matmul::matmul(a, b, transpose_a, transpose_b, pool);
        epilogue.apply_flat(c.data_mut(), m, n, &ops, pool);
        c
    }
}

/// Writes `op(A) * op(B)` into `c` (`c` is fully overwritten; prior
/// contents are ignored). `a` is `[m, k]` (`[k, m]` when `transpose_a`)
/// and `b` is `[k, n]` (`[n, k]` when `transpose_b`), both row-major.
///
/// # Panics
///
/// Panics if `c.len() != m * n` or an operand slice is shorter than its
/// claimed extent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    transpose_a: bool,
    b: &[f32],
    transpose_b: bool,
    pool: &ExecPool,
) {
    gemm_into_fused(c, m, n, k, a, transpose_a, b, transpose_b, None, &[], pool);
}

/// [`gemm_into`] with an optional [`Epilogue`] applied to each
/// accumulator tile before it is stored. The epilogue sees the final
/// K-reduced element values in registers, so the fused result is
/// bitwise identical to `gemm_into` followed by
/// [`Epilogue::apply_flat`].
///
/// # Panics
///
/// Panics on length mismatches, an invalid epilogue, or mis-sized
/// operands.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_fused(
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    transpose_a: bool,
    b: &[f32],
    transpose_b: bool,
    epilogue: Option<&Epilogue>,
    operands: &[&[f32]],
    pool: &ExecPool,
) {
    assert_eq!(c.len(), m * n, "gemm output length mismatch");
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    if let Some(ep) = epilogue {
        ep.check_operands(m, n, operands);
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // An empty contraction is all zeros; the epilogue still applies.
        c.fill(0.0);
        if let Some(ep) = epilogue {
            ep.apply_flat(c, m, n, operands, pool);
        }
        return;
    }

    let m_strips = m.div_ceil(MR);
    let n_strips = n.div_ceil(NR);
    let k_blocks = k.div_ceil(KC);
    let m_pad = m_strips * MR;
    let n_pad = n_strips * NR;

    // Pack both operands once, up front, in parallel over strips. A
    // strip is MR (or NR) rows/columns of one K block, stored as
    // `[kc][MR]` (`[kc][NR]`): the microkernel then reads both panels
    // with unit stride regardless of the source transpose flags.
    // Rows/columns past the matrix edge pack as zeros, so edge tiles
    // run the identical lane schedule as interior tiles.
    let mut apack = recycle::take_buffer(k * m_pad);
    let mut bpack = recycle::take_buffer(k * n_pad);
    let a_out = SharedOut(apack.as_mut_ptr());
    pool.for_indices(k_blocks * m_strips, KC * MR, |idx| {
        let (p, s) = (idx / m_strips, idx % m_strips);
        let kstart = p * KC;
        let kc = KC.min(k - kstart);
        // SAFETY: strip (p, s) owns exactly this MR*kc region; the
        // (p, s) -> offset map is injective across tasks.
        let strip = unsafe {
            std::slice::from_raw_parts_mut(a_out.ptr().add(kstart * m_pad + s * MR * kc), MR * kc)
        };
        for (kk, row) in strip.chunks_exact_mut(MR).enumerate() {
            let krow = kstart + kk;
            for (r, slot) in row.iter_mut().enumerate() {
                let i = s * MR + r;
                *slot = if i >= m {
                    0.0
                } else if transpose_a {
                    a[krow * m + i]
                } else {
                    a[i * k + krow]
                };
            }
        }
    });
    let b_out = SharedOut(bpack.as_mut_ptr());
    pool.for_indices(k_blocks * n_strips, KC * NR, |idx| {
        let (p, t) = (idx / n_strips, idx % n_strips);
        let kstart = p * KC;
        let kc = KC.min(k - kstart);
        // SAFETY: strip (p, t) owns exactly this NR*kc region.
        let strip = unsafe {
            std::slice::from_raw_parts_mut(b_out.ptr().add(kstart * n_pad + t * NR * kc), NR * kc)
        };
        for (kk, row) in strip.chunks_exact_mut(NR).enumerate() {
            let krow = kstart + kk;
            for (col, slot) in row.iter_mut().enumerate() {
                let j = t * NR + col;
                *slot = if j >= n {
                    0.0
                } else if transpose_b {
                    b[j * k + krow]
                } else {
                    b[krow * n + j]
                };
            }
        }
    });

    // 2D parallelism over the MC×NC output-tile grid. Each task owns a
    // disjoint C rectangle (at most MC×NC floats, 16 KB — L1/L2
    // resident). K blocks are walked in the *outer* loop so each packed
    // A/B panel is reused across the whole macro tile while hot — with
    // the K loop innermost, a deep contraction streams every panel per
    // register tile and the working set blows past cache. Accumulation
    // is per element in ascending p order on both paths below, so the
    // reduction order is fixed (see module docs). With an epilogue the
    // tile accumulates in a local block so the whole program can be
    // applied to it before the single store; without one it accumulates
    // directly into the cache-hot C rectangle.
    let mc_blocks = m.div_ceil(MC);
    let nc_blocks = n.div_ceil(NC);
    let c_out = SharedOut(c.as_mut_ptr());
    let (ap, bp) = (apack.as_slice(), bpack.as_slice());
    pool.for_indices(mc_blocks * nc_blocks, 2 * MC * NC * k, |idx| {
        let (ic, jc) = (idx / nc_blocks, idx % nc_blocks);
        let i_hi = (ic * MC + MC).min(m);
        let j_hi = (jc * NC + NC).min(n);
        let (s_lo, s_hi) = (ic * MC / MR, i_hi.div_ceil(MR));
        let (t_lo, t_hi) = (jc * NC / NR, j_hi.div_ceil(NR));
        if let Some(ep) = epilogue {
            // Accumulate the macro tile in a local block, apply the
            // whole epilogue to it (one dispatch per instruction per
            // tile — per-row application at 64-element grain costs more
            // than the saved round trip), then store each row once.
            let mut block = [0.0f32; MC * NC];
            for p in 0..k_blocks {
                let kstart = p * KC;
                let kc = KC.min(k - kstart);
                for s in s_lo..s_hi {
                    let apanel = &ap[kstart * m_pad + s * MR * kc..][..MR * kc];
                    for t in t_lo..t_hi {
                        let bpanel = &bp[kstart * n_pad + t * NR * kc..][..NR * kc];
                        let acc = micro_kernel(apanel, bpanel, kc);
                        let (r0, c0) = ((s - s_lo) * MR, (t - t_lo) * NR);
                        for (r, acc_row) in acc.iter().enumerate() {
                            let brow = &mut block[(r0 + r) * NC + c0..][..NR];
                            for (bv, &av) in brow.iter_mut().zip(acc_row) {
                                *bv += av;
                            }
                        }
                    }
                }
            }
            let rows = i_hi - ic * MC;
            let cols = j_hi - jc * NC;
            ep.apply_block(&mut block, ic * MC, jc * NC, rows, cols, NC, n, operands);
            for r_local in 0..rows {
                // SAFETY: rows [ic*MC, i_hi) × cols [jc*NC, j_hi) lie
                // inside this task's rectangle; rectangles partition C.
                let c_row = unsafe {
                    std::slice::from_raw_parts_mut(
                        c_out.ptr().add((ic * MC + r_local) * n + jc * NC),
                        cols,
                    )
                };
                c_row.copy_from_slice(&block[r_local * NC..][..cols]);
            }
        } else {
            // No epilogue: accumulate straight into the C rectangle.
            // It is at most MC×NC floats (16 KB), so it stays cache-hot
            // across K blocks; the first block stores and later blocks
            // add, which keeps the per-element reduction in ascending p
            // order (bitwise identical to the block path) without a
            // zero-fill pass over C.
            for p in 0..k_blocks {
                let kstart = p * KC;
                let kc = KC.min(k - kstart);
                for s in s_lo..s_hi {
                    let apanel = &ap[kstart * m_pad + s * MR * kc..][..MR * kc];
                    let rows = MR.min(i_hi - s * MR);
                    for t in t_lo..t_hi {
                        let bpanel = &bp[kstart * n_pad + t * NR * kc..][..NR * kc];
                        let acc = micro_kernel(apanel, bpanel, kc);
                        let cols = NR.min(j_hi - t * NR);
                        for (r, acc_row) in acc.iter().enumerate().take(rows) {
                            // SAFETY: rows [s*MR, i_hi) × cols
                            // [t*NR, j_hi) lie inside this task's
                            // rectangle; rectangles partition C.
                            let c_row = unsafe {
                                std::slice::from_raw_parts_mut(
                                    c_out.ptr().add((s * MR + r) * n + t * NR),
                                    cols,
                                )
                            };
                            if p == 0 {
                                for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                    *cv = av;
                                }
                            } else {
                                for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                    *cv += av;
                                }
                            }
                        }
                    }
                }
            }
        }
    });
    recycle::give_buffer(apack);
    recycle::give_buffer(bpack);
}

/// One MR×NR tile against one K block of packed panels. `apanel` is
/// `[kc][MR]`, `bpanel` is `[kc][NR]`. The accumulator lanes are
/// independent (no cross-lane sum), so the compiler vectorizes this
/// without changing any reduction order.
#[inline]
fn micro_kernel(apanel: &[f32], bpanel: &[f32], kc: usize) -> [[f32; NR]; MR] {
    const { assert!(MR == 8, "micro_kernel unrolls exactly MR accumulator rows") };
    // One named accumulator row per MR lane, updated through `axpy`. The
    // row loop is unrolled by hand rather than written `for r in 0..MR`:
    // given a 2D accumulator array, LLVM's loop vectorizer (with wide
    // vectors available) prefers vectorizing *across rows* with
    // gather/scatter on the accumulator — an order of magnitude slower
    // than broadcasting `a` and streaming `b`. With the rows as distinct
    // locals only the contiguous NR axis is left to vectorize, which is
    // the canonical broadcast GEMM kernel.
    let mut r0 = [0.0f32; NR];
    let mut r1 = [0.0f32; NR];
    let mut r2 = [0.0f32; NR];
    let mut r3 = [0.0f32; NR];
    let mut r4 = [0.0f32; NR];
    let mut r5 = [0.0f32; NR];
    let mut r6 = [0.0f32; NR];
    let mut r7 = [0.0f32; NR];
    for kk in 0..kc {
        let a: &[f32; MR] = apanel[kk * MR..kk * MR + MR].try_into().unwrap();
        let b: &[f32; NR] = bpanel[kk * NR..kk * NR + NR].try_into().unwrap();
        axpy(&mut r0, a[0], b);
        axpy(&mut r1, a[1], b);
        axpy(&mut r2, a[2], b);
        axpy(&mut r3, a[3], b);
        axpy(&mut r4, a[4], b);
        axpy(&mut r5, a[5], b);
        axpy(&mut r6, a[6], b);
        axpy(&mut r7, a[7], b);
    }
    [r0, r1, r2, r3, r4, r5, r6, r7]
}

/// `acc += a * b` over one register-width row; the independent lanes
/// vectorize without reordering any per-lane sum.
#[inline(always)]
fn axpy(acc: &mut [f32; NR], a: f32, b: &[f32; NR]) {
    for (slot, &bv) in acc.iter_mut().zip(b) {
        *slot += a * bv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::matmul_naive;
    use crate::rng::Rng;

    fn close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        assert!(a.max_abs_diff(b) < tol, "{what}: max diff {}", a.max_abs_diff(b));
    }

    #[test]
    fn matches_naive_on_odd_shapes_for_all_transposes() {
        let mut rng = Rng::seeded(11);
        for &(m, k, n) in &[(1, 37, 17), (13, 300, 31), (67, 129, 19), (8, 256, 16)] {
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                let a = Tensor::randn(if ta { [k, m] } else { [m, k] }, 0.0, 1.0, &mut rng);
                let b = Tensor::randn(if tb { [n, k] } else { [k, n] }, 0.0, 1.0, &mut rng);
                let packed = matmul_packed(&a, &b, ta, tb, &ExecPool::new(4).with_grain(1));
                let naive = matmul_naive(&a, &b, ta, tb);
                close(&packed, &naive, 1e-3, &format!("m={m} k={k} n={n} ta={ta} tb={tb}"));
            }
        }
    }

    #[test]
    fn parallel_is_bitwise_identical_to_serial() {
        let mut rng = Rng::seeded(29);
        let a = Tensor::randn([129, 517], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([517, 143], 0.0, 1.0, &mut rng);
        let serial = matmul_packed(&a, &b, false, false, &ExecPool::serial());
        for threads in [2, 4, 8] {
            let par = matmul_packed(&a, &b, false, false, &ExecPool::new(threads).with_grain(1));
            assert_eq!(serial.data(), par.data(), "{threads} workers diverged");
        }
    }

    #[test]
    fn degenerate_extents_yield_zeros_or_empty() {
        let pool = ExecPool::serial();
        let c = matmul_packed(&Tensor::zeros([0, 5]), &Tensor::zeros([5, 4]), false, false, &pool);
        assert_eq!(c.shape().dims(), &[0, 4]);
        let c = matmul_packed(&Tensor::ones([3, 0]), &Tensor::ones([0, 4]), false, false, &pool);
        assert_eq!(c.shape().dims(), &[3, 4]);
        assert!(c.data().iter().all(|&v| v == 0.0), "k=0 product must be all zeros");
    }

    #[test]
    fn gemm_into_overwrites_stale_output() {
        let mut c = vec![f32::NAN; 4];
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        gemm_into(&mut c, 2, 2, 2, &a, false, &b, false, &ExecPool::serial());
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn dispatch_threshold_ignores_m() {
        assert!(use_packed(512, 512));
        assert!(!use_packed(4, 512), "tiny k cannot amortize packing");
        assert!(!use_packed(512, 8), "n below NR leaves lanes as padding");
    }

    use crate::kernels::epilogue::{EpilogueArg, EpilogueInstr, OperandKind};
    use crate::kernels::fused::FusedOp;

    fn bias_relu_epilogue() -> Epilogue {
        Epilogue {
            n_operands: 1,
            instrs: vec![
                EpilogueInstr {
                    op: FusedOp::Add,
                    args: vec![
                        EpilogueArg::Acc,
                        EpilogueArg::Operand { index: 0, kind: OperandKind::Col },
                    ],
                },
                EpilogueInstr { op: FusedOp::Relu, args: vec![EpilogueArg::Acc] },
            ],
        }
    }

    #[test]
    fn fused_epilogue_is_bitwise_identical_to_unfused_then_flat() {
        let mut rng = Rng::seeded(41);
        // Straddles tile edges on both axes and the packed threshold.
        for &(m, k, n) in &[(1, 64, 160), (13, 300, 31), (67, 129, 19), (5, 10, 7)] {
            let a = Tensor::randn([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::randn([k, n], 0.0, 1.0, &mut rng);
            let bias = Tensor::randn([n], 0.0, 1.0, &mut rng);
            let ep = bias_relu_epilogue();
            let pool = ExecPool::new(4).with_grain(1);
            let fused = matmul_fused(&a, &b, false, false, &ep, &[&bias], &pool);
            let mut unfused = crate::kernels::matmul::matmul(&a, &b, false, false, &pool);
            ep.apply_flat(unfused.data_mut(), m, n, &[bias.data()], &pool);
            assert_eq!(fused.data(), unfused.data(), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn fused_epilogue_parallel_is_bitwise_identical_to_serial() {
        let mut rng = Rng::seeded(43);
        let a = Tensor::randn([67, 300], 0.0, 1.0, &mut rng);
        let b = Tensor::randn([300, 93], 0.0, 1.0, &mut rng);
        let bias = Tensor::randn([93], 0.0, 1.0, &mut rng);
        let ep = bias_relu_epilogue();
        let serial = matmul_fused(&a, &b, false, false, &ep, &[&bias], &ExecPool::serial());
        for threads in [2, 4, 8] {
            let pool = ExecPool::new(threads).with_grain(1);
            let par = matmul_fused(&a, &b, false, false, &ep, &[&bias], &pool);
            assert_eq!(serial.data(), par.data(), "{threads} workers diverged");
        }
    }

    #[test]
    fn zero_k_fused_product_applies_epilogue_to_zeros() {
        let bias = Tensor::from_vec(vec![1.0, -2.0], [2]);
        let a = Tensor::zeros([3, 0]);
        let b = Tensor::zeros([0, 2]);
        let ep = bias_relu_epilogue();
        let c = matmul_fused(&a, &b, false, false, &ep, &[&bias], &ExecPool::serial());
        // relu(0 + bias): [1, 0] per row.
        assert_eq!(c.data(), &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }
}
