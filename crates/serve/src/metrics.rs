//! Per-request observability: latency distribution, queue pressure,
//! batch shape, and op-class time slices for a serving run.
//!
//! Everything here is plain data plus a hand-rolled JSON writer (the
//! vendored `serde` is marker-traits only; see `vendor/README.md`), so a
//! [`ServeReport`] can be dropped next to the other `BENCH_*.json`
//! artifacts and diffed across runs.

use fathom_dataflow::{OpClass, RuntimeCounters};
use serde::Serialize;

/// Formats a float with `prec` decimals for the hand-rolled JSON
/// writers, degrading non-finite values to `null`. JSON has no
/// NaN/Infinity tokens — `format!("{:.3}", f64::NAN)` would emit a
/// bare `NaN` and corrupt the whole artifact — and a single poisoned
/// sample should cost one field, not the file. Finite values format
/// exactly as the inline `{:.prec$}` they replace, so well-formed
/// reports stay byte-identical.
pub(crate) fn json_f64(value: f64, prec: usize) -> String {
    if value.is_finite() {
        format!("{value:.prec$}")
    } else {
        "null".to_string()
    }
}

/// An exact-quantile latency recorder. Samples are kept raw (a serving
/// run records at most a few thousand requests), so percentiles are
/// computed from the sorted data rather than from bucket midpoints.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LatencyHistogram {
    samples: Vec<f64>,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample, in nanoseconds.
    pub fn record(&mut self, nanos: f64) {
        self.samples.push(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, by the
    /// nearest-rank method: the smallest sample with at least `q * n`
    /// samples at or below it.
    ///
    /// Contract at the edges (covered by unit tests): an empty histogram
    /// returns 0 regardless of `q`; `q = 0.0` returns the minimum
    /// (rank clamps up to 1); `q = 1.0` returns the maximum; a singleton
    /// histogram returns its only sample for every `q`. Out-of-range or
    /// NaN `q` never panics or indexes out of bounds — the rank is
    /// clamped into `1..=n`, so `q < 0.0` and NaN degrade to the minimum
    /// and `q > 1.0` to the maximum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        // `ceil` then clamp: the float-to-usize cast saturates (NaN to
        // 0), and the clamp keeps every pathological rank in bounds.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample in nanoseconds (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().cloned().fold(0.0, f64::max)
    }

    /// Folds another histogram's samples into this one. Because samples
    /// are kept raw, merging per-shard histograms yields exactly the
    /// quantiles a single combined histogram would report — the property
    /// the cluster report relies on for cross-shard aggregation (covered
    /// by `tests/metrics_properties.rs`).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// One executed batch: how full it was, how long the session run took,
/// and (when the worker traces) where that time went by op class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BatchRecord {
    /// Requests carried (1..=max_batch; padding slots are not counted).
    pub size: usize,
    /// Wall time of the `Session::run`, in nanoseconds.
    pub service_nanos: f64,
    /// Op time by paper class A-G (all zeros when tracing is off).
    pub class_nanos: [f64; 7],
}

/// Supervisor activity over one serving run: how often replicas failed
/// and what the recovery machinery did about it. All zeros on a
/// fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryCounters {
    /// Batch dispatches that returned an error (replica crash).
    pub crashes: u64,
    /// Requests re-queued for another attempt after their batch failed.
    pub retried: u64,
    /// Requests dropped after exhausting the retry budget (these are
    /// also counted in [`ServeReport::shed`] so conservation holds).
    pub dropped: u64,
    /// Times a replica entered quarantine after a failure.
    pub quarantines: u64,
    /// Successful replica rebuilds (quarantine exits back to service).
    pub recoveries: u64,
    /// Replicas retired permanently after exhausting restarts.
    pub dead_replicas: u64,
}

impl RecoveryCounters {
    /// True when any failure or recovery activity was recorded.
    pub fn any(&self) -> bool {
        *self != RecoveryCounters::default()
    }
}

/// Why requests were shed, itemized. The sum of the fields equals the
/// report's `shed` counter; a run that sheds nothing leaves all fields
/// zero and the breakdown out of the JSON entirely (so no-shed output
/// stays byte-identical to earlier builds, like the `recovery` block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ShedBreakdown {
    /// Refused at admission because the queue was at capacity.
    pub queue_full: u64,
    /// Refused at admission because the backlog made the request's
    /// deadline provably unmeetable (cluster admission only).
    pub deadline_infeasible: u64,
    /// Evicted from the queue to make room for a higher-priority
    /// arrival (cluster admission only).
    pub priority_evicted: u64,
    /// Lost to replica failure: retry budget exhausted after crashed
    /// batches, or stranded when every replica died.
    pub replica_loss: u64,
}

impl ShedBreakdown {
    /// True when any shed was recorded.
    pub fn any(&self) -> bool {
        *self != ShedBreakdown::default()
    }

    /// Sum across all reasons — must equal the companion `shed` counter.
    pub fn total(&self) -> u64 {
        self.queue_full + self.deadline_infeasible + self.priority_evicted + self.replica_loss
    }

    /// Folds another breakdown into this one (cross-shard aggregation).
    pub fn merge(&mut self, other: &ShedBreakdown) {
        self.queue_full += other.queue_full;
        self.deadline_infeasible += other.deadline_infeasible;
        self.priority_evicted += other.priority_evicted;
        self.replica_loss += other.replica_loss;
    }

    /// The breakdown as a JSON object string.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queue_full\": {}, \"deadline_infeasible\": {}, \"priority_evicted\": {}, \"replica_loss\": {}}}",
            self.queue_full, self.deadline_infeasible, self.priority_evicted, self.replica_loss
        )
    }
}

/// Everything measured over one serving run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeReport {
    /// Workload short name.
    pub workload: String,
    /// Batcher coalescing limit.
    pub max_batch: usize,
    /// Session workers serving in parallel.
    pub replicas: usize,
    /// Requests generated by the load model.
    pub issued: u64,
    /// Requests that returned a result.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub shed: u64,
    /// Why each shed happened; `shed_reasons.total() == shed` always.
    pub shed_reasons: ShedBreakdown,
    /// Requests dropped from the queue past their deadline.
    pub timed_out: u64,
    /// Virtual time from the first arrival to the last completion, ns.
    pub makespan_nanos: u64,
    /// End-to-end request latency (admission to batch completion).
    pub latency: LatencyHistogram,
    /// Queue depth observed after each admission.
    pub queue_depths: Vec<usize>,
    /// Executed batches in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Supervisor counters: crashes, retries, quarantines, recoveries.
    pub recovery: RecoveryCounters,
    /// Unified-runtime counters folded across all replica sessions.
    pub runtime: RuntimeCounters,
}

impl ServeReport {
    /// Creates an empty report shell for `workload`.
    pub fn new(workload: &str, max_batch: usize, replicas: usize) -> Self {
        ServeReport {
            workload: workload.to_string(),
            max_batch,
            replicas,
            issued: 0,
            completed: 0,
            shed: 0,
            shed_reasons: ShedBreakdown::default(),
            timed_out: 0,
            makespan_nanos: 0,
            latency: LatencyHistogram::new(),
            queue_depths: Vec::new(),
            batches: Vec::new(),
            recovery: RecoveryCounters::default(),
            runtime: RuntimeCounters::default(),
        }
    }

    /// Completed requests per second of virtual makespan.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_nanos == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / self.makespan_nanos as f64
    }

    /// Mean carried batch size across executed batches (0 when none ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.size as f64).sum::<f64>() / self.batches.len() as f64
    }

    /// Deepest queue observed at any admission.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depths.iter().copied().max().unwrap_or(0)
    }

    /// Count of executed batches that carried exactly `size` requests.
    pub fn batches_of_size(&self, size: usize) -> usize {
        self.batches.iter().filter(|b| b.size == size).count()
    }

    /// Total op time attributed to each paper class across all traced
    /// batches, A-G order.
    pub fn class_nanos(&self) -> [f64; 7] {
        let mut total = [0.0; 7];
        for b in &self.batches {
            for (t, c) in total.iter_mut().zip(b.class_nanos) {
                *t += c;
            }
        }
        total
    }

    /// Serializes the report to a JSON object (hand-rolled; the vendored
    /// serde is marker-traits only).
    pub fn to_json(&self) -> String {
        let ms = |nanos: f64| nanos / 1e6;
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        s.push_str(&format!("  \"max_batch\": {},\n", self.max_batch));
        s.push_str(&format!("  \"replicas\": {},\n", self.replicas));
        s.push_str(&format!("  \"issued\": {},\n", self.issued));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"shed\": {},\n", self.shed));
        // Itemized only when something was actually shed, so no-shed
        // output is byte-identical to the single-counter format.
        if self.shed_reasons.any() {
            s.push_str(&format!("  \"shed_reasons\": {},\n", self.shed_reasons.to_json()));
        }
        s.push_str(&format!("  \"timed_out\": {},\n", self.timed_out));
        s.push_str(&format!("  \"makespan_ms\": {},\n", json_f64(self.makespan_nanos as f64 / 1e6, 3)));
        s.push_str(&format!("  \"throughput_rps\": {},\n", json_f64(self.throughput_rps(), 3)));
        s.push_str(&format!(
            "  \"latency_ms\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}, \"max\": {}}},\n",
            json_f64(ms(self.latency.quantile(0.50)), 3),
            json_f64(ms(self.latency.quantile(0.95)), 3),
            json_f64(ms(self.latency.quantile(0.99)), 3),
            json_f64(ms(self.latency.mean()), 3),
            json_f64(ms(self.latency.max()), 3),
        ));
        s.push_str(&format!(
            "  \"queue_depth\": {{\"max\": {}, \"samples\": {}}},\n",
            self.max_queue_depth(),
            self.queue_depths.len()
        ));
        s.push_str(&format!(
            "  \"batches\": {{\"count\": {}, \"mean_size\": {}}},\n",
            self.batches.len(),
            json_f64(self.mean_batch_size(), 3)
        ));
        // Emitted only when the supervisor actually did something, so
        // fault-free runs produce byte-identical JSON to earlier builds.
        if self.recovery.any() {
            let r = &self.recovery;
            s.push_str(&format!(
                "  \"recovery\": {{\"crashes\": {}, \"retried\": {}, \"dropped\": {}, \"quarantines\": {}, \"recoveries\": {}, \"dead_replicas\": {}}},\n",
                r.crashes, r.retried, r.dropped, r.quarantines, r.recoveries, r.dead_replicas
            ));
        }
        // Emitted only when the unified runtime recorded something, so
        // serial or modeled-device runs keep byte-identical JSON.
        if self.runtime.any() {
            let rc = &self.runtime;
            s.push_str(&format!(
                "  \"runtime\": {{\"allocations\": {}, \"arena_bytes\": {}, \"steal_count\": {}, \"wide_ops\": {}, \"coscheduled_ops\": {}}},\n",
                rc.allocations, rc.arena_bytes, rc.steal_count, rc.wide_ops, rc.coscheduled_ops
            ));
        }
        let class_totals = self.class_nanos();
        let classes: Vec<String> = OpClass::ALL
            .iter()
            .zip(class_totals)
            .map(|(c, nanos)| format!("\"{}\": {}", c.letter(), json_f64(nanos, 0)))
            .collect();
        s.push_str(&format!("  \"class_nanos\": {{{}}}\n", classes.join(", ")));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for v in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.50), 50.0);
        assert_eq!(h.quantile(0.99), 100.0);
        assert_eq!(h.quantile(0.0), 10.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantile_edge_ranks() {
        let mut h = LatencyHistogram::new();
        for v in [30.0, 10.0, 20.0] {
            h.record(v);
        }
        // q=0 clamps the rank up to 1 (the minimum), q=1 lands exactly
        // on rank n (the maximum) — no off-by-one at either edge.
        assert_eq!(h.quantile(0.0), 10.0);
        assert_eq!(h.quantile(1.0), 30.0);
        // One third of 3 samples is exactly rank 1.
        assert_eq!(h.quantile(1.0 / 3.0), 10.0);
        assert_eq!(h.quantile(1.0 / 3.0 + 1e-9), 20.0);
    }

    #[test]
    fn singleton_histogram_returns_its_sample_for_every_q() {
        let mut h = LatencyHistogram::new();
        h.record(42.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42.0);
        }
    }

    #[test]
    fn pathological_q_never_panics() {
        let mut h = LatencyHistogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        // Out-of-range and NaN q degrade to the edges instead of
        // panicking or indexing out of bounds.
        assert_eq!(h.quantile(-0.5), 10.0);
        assert_eq!(h.quantile(f64::NAN), 10.0);
        assert_eq!(h.quantile(1.5), 30.0);
        assert_eq!(h.quantile(f64::INFINITY), 30.0);
    }

    #[test]
    fn merged_histograms_match_a_single_combined_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for (i, v) in [5.0, 90.0, 15.0, 70.0, 30.0, 55.0, 10.0, 85.0].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            combined.record(*v);
        }
        let mut merged = LatencyHistogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), combined.count());
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), combined.quantile(q), "q={q}");
        }
        assert_eq!(merged.mean(), combined.mean());
        assert_eq!(merged.max(), combined.max());
    }

    #[test]
    fn merging_an_empty_histogram_is_a_noop() {
        let mut h = LatencyHistogram::new();
        h.record(7.0);
        h.merge(&LatencyHistogram::new());
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 7.0);
        let mut empty = LatencyHistogram::new();
        empty.merge(&h);
        assert_eq!(empty.quantile(1.0), 7.0);
    }

    #[test]
    fn shed_breakdown_totals_and_merge() {
        let mut a = ShedBreakdown { queue_full: 2, ..ShedBreakdown::default() };
        assert!(a.any());
        assert_eq!(a.total(), 2);
        let b = ShedBreakdown { deadline_infeasible: 1, priority_evicted: 3, replica_loss: 4, ..ShedBreakdown::default() };
        a.merge(&b);
        assert_eq!(a.total(), 10);
        assert!(!ShedBreakdown::default().any());
    }

    #[test]
    fn shed_reasons_appear_in_json_only_when_nonzero() {
        let mut r = ServeReport::new("vgg", 4, 1);
        assert!(!r.to_json().contains("shed_reasons"));
        r.shed = 3;
        r.shed_reasons.queue_full = 2;
        r.shed_reasons.replica_loss = 1;
        let json = r.to_json();
        assert!(json.contains("\"shed_reasons\""));
        assert!(json.contains("\"queue_full\": 2"));
        assert!(json.contains("\"replica_loss\": 1"));
    }

    #[test]
    fn report_aggregates_batches() {
        let mut r = ServeReport::new("alexnet", 4, 1);
        let mut class_a = [0.0; 7];
        class_a[0] = 100.0;
        r.batches.push(BatchRecord { size: 4, service_nanos: 500.0, class_nanos: class_a });
        r.batches.push(BatchRecord { size: 2, service_nanos: 300.0, class_nanos: class_a });
        r.completed = 6;
        r.makespan_nanos = 3_000_000_000;
        assert_eq!(r.mean_batch_size(), 3.0);
        assert_eq!(r.batches_of_size(4), 1);
        assert_eq!(r.class_nanos()[0], 200.0);
        assert!((r.throughput_rps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_samples_degrade_to_null_not_bare_tokens() {
        let mut r = ServeReport::new("speech", 4, 1);
        r.issued = 2;
        r.completed = 2;
        r.latency.record(f64::NAN);
        r.latency.record(f64::INFINITY);
        let mut poisoned = [0.0; 7];
        poisoned[3] = f64::NEG_INFINITY;
        r.batches.push(BatchRecord { size: 1, service_nanos: 10.0, class_nanos: poisoned });
        let json = r.to_json();
        assert!(json.contains("null"), "poisoned fields should emit null: {json}");
        for token in ["NaN", "inf", "Infinity"] {
            assert!(!json.contains(token), "bare {token} leaked into JSON: {json}");
        }
        // Integer-derived fields are untouched by the degradation.
        assert!(json.contains("\"issued\": 2"));
    }

    #[test]
    fn finite_floats_format_exactly_as_before_the_null_guard() {
        assert_eq!(json_f64(1.0, 3), "1.000");
        assert_eq!(json_f64(0.12349, 3), "0.123");
        assert_eq!(json_f64(250.0, 0), "250");
        assert_eq!(json_f64(f64::NAN, 3), "null");
        assert_eq!(json_f64(f64::INFINITY, 0), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY, 2), "null");
    }

    #[test]
    fn json_has_the_headline_fields() {
        let mut r = ServeReport::new("vgg", 8, 2);
        r.issued = 3;
        r.completed = 3;
        r.latency.record(1_000_000.0);
        let json = r.to_json();
        for key in [
            "\"workload\": \"vgg\"",
            "\"max_batch\": 8",
            "\"replicas\": 2",
            "\"throughput_rps\"",
            "\"latency_ms\"",
            "\"p99\"",
            "\"class_nanos\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
