//! Figure 2 — cumulative execution-time curves.
//!
//! "A handful of 'heavy' operation types (usually 5 to 15) are
//! collectively responsible for upwards of 90% of the programs'
//! duration."

use std::fmt::Write as _;

use fathom_profile::SkewCurve;

use crate::experiments::profiles::all_training_profiles;
use crate::{write_artifact, Effort};

/// Regenerates Figure 2 over all eight training profiles.
pub fn run(effort: &Effort) -> String {
    let profiles = all_training_profiles(effort);
    let curves: Vec<SkewCurve> = profiles.iter().map(SkewCurve::from_profile).collect();

    let mut out = String::new();
    let _ = writeln!(out, "FIGURE 2: Cumulative op-type execution time per workload\n");
    let _ = writeln!(
        out,
        "{:<9} {:>8} {:>12} {:>12} {:>24}",
        "workload", "op types", "ops for 90%", "top-1 share", "heaviest op"
    );
    let mut csv_rows = Vec::new();
    for c in &curves {
        let _ = writeln!(
            out,
            "{:<9} {:>8} {:>12} {:>11.1}% {:>24}",
            c.workload,
            c.num_ops(),
            c.ops_for_fraction(0.9).unwrap_or(c.num_ops()),
            c.cumulative.first().copied().unwrap_or(0.0) * 100.0,
            c.ops.first().map(String::as_str).unwrap_or("-")
        );
        csv_rows.push((c.workload.clone(), c.cumulative.clone()));
    }
    let _ = writeln!(out, "\nCumulative curves (x = rank of op type, value = cumulative share):");
    for c in &curves {
        let pts: Vec<String> = c
            .cumulative
            .iter()
            .take(15)
            .map(|v| format!("{:.2}", v))
            .collect();
        let _ = writeln!(out, "  {:<9} {}", c.workload, pts.join(" "));
    }
    let heavy: Vec<usize> = curves
        .iter()
        .map(|c| c.ops_for_fraction(0.9).unwrap_or(c.num_ops()))
        .collect();
    let _ = writeln!(
        out,
        "\nPaper's claim to reproduce: 5-15 op types cover >=90% of runtime.\n\
         Measured ops-for-90% range: {} .. {}",
        heavy.iter().min().unwrap(),
        heavy.iter().max().unwrap()
    );

    let header: Vec<&str> = vec!["workload", "cumulative..."];
    write_artifact("fig2_skew.csv", &fathom_profile::report::to_csv(&header, &csv_rows));
    write_artifact("fig2_skew.txt", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_holds_for_every_workload() {
        let out = run(&Effort::quick());
        assert!(out.contains("FIGURE 2"));
        // The summary range line must exist and the max must stay small.
        assert!(out.contains("ops-for-90%"));
    }
}
