//! Operation-level characterization tools for the Fathom-rs suite.
//!
//! These are the reproduction's equivalent of the paper's "custom,
//! high-level analysis framework built around TensorFlow" (§V-A):
//!
//! * [`OpProfile`] — time by operation type and by A-G class (Figure 3);
//! * [`SkewCurve`] — cumulative dominance curves (Figure 2);
//! * [`similarity`] — cosine distance + centroidal agglomerative
//!   clustering (Figure 4);
//! * [`StabilityReport`] — per-op stationarity across steps (Figure 1);
//! * [`report`] — ASCII heatmaps, dendrograms, tables, CSV;
//! * [`runner`] — one-call workload tracing.
//!
//! # Examples
//!
//! ```no_run
//! use fathom::{BuildConfig, ModelKind};
//! use fathom_profile::{report, runner};
//!
//! let profile = runner::profile_workload(
//!     ModelKind::Alexnet,
//!     &BuildConfig::training(),
//!     1,
//!     5,
//! );
//! println!("{}", report::render_profile_table(&profile, 10));
//! ```

#![warn(missing_docs)]

pub mod intensity;
mod profile;
pub mod report;
pub mod runner;
pub mod similarity;
mod skew;
mod stationarity;

pub use intensity::{ClassWork, IntensityReport};
pub use profile::{OpEntry, OpProfile};
pub use similarity::{cluster, cosine_distance, Dendrogram, DendrogramNode};
pub use skew::SkewCurve;
pub use stationarity::{OpStability, StabilityReport};
