//! Quickstart: build any Fathom workload by name, train it a few steps,
//! and print where its time goes.
//!
//! ```text
//! cargo run --release --example quickstart -- alexnet
//! ```

use std::error::Error;

use fathom_suite::fathom::{BuildConfig, ModelKind};
use fathom_suite::fathom_profile::{report, runner, OpProfile};

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "autoenc".to_string());
    let kind: ModelKind = name.parse()?;
    let meta = kind.metadata();
    println!("== {} ({}, {}) ==", meta.name, meta.year, meta.reference);
    println!("{} | {} layers | {} | dataset: {}\n", meta.style, meta.layers, meta.task, meta.dataset);

    // The standard interface: build, step, inspect.
    let mut model = kind.build(&BuildConfig::training());
    println!("graph has {} operations", model.session().graph().len());
    for step in 0..5 {
        let stats = model.step();
        if let Some(loss) = stats.loss {
            println!("step {step}: loss = {loss:.4}");
        }
    }

    // Trace two more steps and show the op-type profile (a Figure 3 row).
    let trace = runner::trace_steps(model.as_mut(), 2);
    let profile = OpProfile::from_trace(kind.name(), &trace);
    println!("\ntop operation types by execution time:");
    print!("{}", report::render_profile_table(&profile, 12));
    println!(
        "\ninter-op overhead: {:.2}% of wall time",
        trace.overhead_fraction() * 100.0
    );
    Ok(())
}
