//! `fathom-serve` — batched inference serving for the Fathom workloads.
//!
//! The paper frames its workloads as *reference benchmarks* for both
//! training and deployment; this crate adds the deployment half's
//! missing piece: a serving layer that coalesces independent inference
//! requests into the minibatches the graphs are built for, with the
//! admission-control and observability machinery a real model server
//! needs. It is deliberately framework-free and reuses the suite's own
//! substrate end to end:
//!
//! * [`worker::SessionWorker`] — one pre-built inference [`Session`]
//!   (with the inter-op executor and buffer recycling from
//!   `fathom-dataflow`) per replica, packing and splitting request
//!   tensors via `fathom_dataflow::batch` along each workload's declared
//!   [`BatchSpec`](fathom::BatchSpec);
//! * [`engine::serve`] — a deterministic virtual-time event loop:
//!   dynamic batching up to `max_batch`/`max_delay`, bounded-queue load
//!   shedding, per-request deadlines, graceful drain;
//! * [`metrics::ServeReport`] — per-request latency quantiles, queue
//!   depth, batch-size distribution, shed/timeout counters, and op-class
//!   time slices fed from the session trace;
//! * supervised recovery — a failed replica is quarantined with
//!   exponential backoff and rebuilt from its checkpoint, its in-flight
//!   batch retries on a healthy replica, and
//!   [`metrics::RecoveryCounters`] account for every crash. The
//!   [`chaos::FaultyRunner`] wrapper drives all of it deterministically
//!   from a seeded [`FaultPlan`](fathom_dataflow::FaultPlan).
//!
//! The correctness contract is *batch independence*: a request's output
//! is bitwise identical whether it rode in a batch of one or a full
//! batch (verified for all eight workloads in `tests/serving.rs`).
//!
//! [`Session`]: fathom_dataflow::Session

#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod metrics;
pub mod worker;

pub use chaos::FaultyRunner;
pub use engine::{serve, LoadModel, RecoveryPolicy, ServeConfig};
pub use metrics::{BatchRecord, LatencyHistogram, RecoveryCounters, ServeReport};
pub use worker::{synth_inputs, BatchResult, BatchRunner, Request, ServeError, SessionWorker};
